/**
 * @file
 * Figure 14: under the hybrid policy, the percentage of runahead cycles
 * spent using the runahead buffer (the remainder uses traditional
 * runahead). Paper average: 71% buffer; omnetpp and sphinx spend a
 * large fraction in traditional mode.
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Figure 14", "hybrid policy: buffer share of runahead cycles",
           options);

    CellRunner runner(options);
    TextTable table({"workload", "buffer share"});
    double sum = 0;
    int count = 0;
    for (const WorkloadSpec &spec :
         selectWorkloads(mediumHighSuite(), options.workloadFilter)) {
        const SimResult &r =
            runner.get(spec, RunaheadConfig::kHybrid, false);
        table.addRow({spec.params.name, pct(r.hybridBufferFraction)});
        sum += r.hybridBufferFraction;
        ++count;
    }
    table.print();
    std::printf("\naverage buffer share: %s (paper: 71%%; omnetpp and "
                "sphinx lean on traditional runahead)\n",
                pct(count ? sum / count : 0).c_str());
    return 0;
}
