/**
 * @file
 * Figure 13: of all chain cache hits, the percentage whose stored chain
 * exactly matches the chain that would have been generated from the
 * ROB at that moment. Paper average: 53%; hits need not be exact —
 * runahead is a prefetching heuristic, so a stale chain is usually
 * still worth using. sphinx (variable chains) scores low.
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Figure 13", "chain cache hits matching the ROB chain",
           options);

    CellRunner runner(options);
    TextTable table({"workload", "exact-match hits"});
    double sum = 0;
    int count = 0;
    for (const WorkloadSpec &spec :
         selectWorkloads(mediumHighSuite(), options.workloadFilter)) {
        const SimResult &r =
            runner.get(spec, RunaheadConfig::kRunaheadBufferCC, false);
        table.addRow({spec.params.name, pct(r.chainCacheExactRate)});
        sum += r.chainCacheExactRate;
        ++count;
    }
    table.print();
    std::printf("\naverage exact-match rate: %s (paper: 53%%)\n",
                pct(count ? sum / count : 0).c_str());
    return 0;
}
