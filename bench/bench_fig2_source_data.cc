/**
 * @file
 * Figure 2: percent of all cache misses whose source data (everything
 * needed to compute the miss address) is available on chip. These are
 * the misses runahead can target. Paper shape: the large majority of
 * misses qualify for most workloads; dependent-miss workloads (pointer
 * chases) are the exception.
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Figure 2", "misses with source data available on chip",
           options);

    CellRunner runner(options);
    TextTable table({"workload", "class", "on-chip sources"});
    std::vector<double> fractions;
    for (const WorkloadSpec &spec :
         selectWorkloads(spec06Suite(), options.workloadFilter)) {
        const SimResult &r =
            runner.get(spec, RunaheadConfig::kBaseline, false);
        table.addRow({spec.params.name, intensityName(spec.intensity),
                      pct(r.fig2OnChipFraction)});
        if (r.mpki > 2.0)
            fractions.push_back(r.fig2OnChipFraction);
    }
    table.print();
    double sum = 0;
    for (const double f : fractions)
        sum += f;
    std::printf("\nmean over medium+high intensity: %s (paper: most "
                "source data is available on chip)\n",
                pct(fractions.empty() ? 0 : sum / fractions.size())
                    .c_str());
    return 0;
}
