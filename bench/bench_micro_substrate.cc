/**
 * @file
 * google-benchmark microbenchmarks for the substrate primitives: cache
 * tag access, DRAM scheduling, branch prediction, chain generation and
 * whole-core simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "backend/core.hh"
#include "common/rng.hh"
#include "core/simulation.hh"
#include "frontend/branch_predictor.hh"
#include "memory/cache.hh"
#include "memory/dram.hh"
#include "workloads/suite.hh"

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    rab::Cache cache(rab::CacheConfig{"bench", 1024 * 1024, 8, 64, 18});
    rab::Rng rng(7);
    for (auto _ : state) {
        const rab::Addr addr = rng.range(16u << 20);
        benchmark::DoNotOptimize(cache.access(addr, false).hit);
        if (!cache.probe(addr))
            cache.insert(addr, false);
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_DramSchedule(benchmark::State &state)
{
    rab::Dram dram{rab::DramConfig{}};
    rab::Rng rng(11);
    rab::Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dram.access(rng.range(1u << 30) & ~63ull, now, false));
        now += 5;
    }
}
BENCHMARK(BM_DramSchedule);

void
BM_BranchPredict(benchmark::State &state)
{
    rab::BranchPredictor bp{rab::BranchPredictorConfig{}};
    rab::Rng rng(13);
    for (auto _ : state) {
        const rab::Pc pc = rng.range(512);
        const auto pred = bp.predictBranch(pc);
        bp.update(pc, rng.chance(0.6), pc + 7, pred.taken);
    }
}
BENCHMARK(BM_BranchPredict);

void
BM_CoreSimulation(benchmark::State &state)
{
    // Whole-core throughput in simulated instructions per second.
    for (auto _ : state) {
        rab::SimConfig config =
            rab::makeConfig(rab::RunaheadConfig::kHybrid, false);
        config.warmupInstructions = 0;
        config.instructions = 5000;
        rab::Simulation sim(config, rab::buildSuiteWorkload("mcf"));
        benchmark::DoNotOptimize(sim.run().cycles);
    }
    state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_CoreSimulation);

} // namespace

BENCHMARK_MAIN();
