/**
 * @file
 * Figure 3: of all the operations executed during traditional runahead,
 * the fraction that belongs to a dependence chain that generates a
 * cache miss ("necessary" ops). Paper shape: for most workloads a
 * minority of runahead-executed ops are necessary (mcf ~36%); omnetpp
 * is the outlier where nearly everything is on a chain.
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Figure 3", "runahead ops on miss dependence chains", options);

    CellRunner runner(options);
    TextTable table({"workload", "class", "dependence chain",
                     "other ops"});
    for (const WorkloadSpec &spec :
         selectWorkloads(spec06Suite(), options.workloadFilter)) {
        const SimResult &r =
            runner.get(spec, RunaheadConfig::kRunahead, false);
        table.addRow({spec.params.name, intensityName(spec.intensity),
                      pct(r.necessaryFraction),
                      pct(std::max(0.0, 1.0 - r.necessaryFraction))});
    }
    table.print();
    std::printf("\npaper: most runahead-executed ops are NOT needed to "
                "generate misses\n(mcf: only ~36%% necessary; omnetpp: "
                "~100%% necessary).\n");
    return 0;
}
