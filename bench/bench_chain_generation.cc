/**
 * @file
 * Chain-generation latency microbenchmark: Algorithm 1 against a full
 * 192-entry ROB, timed per call through the incremental PC/producer
 * indexes ("indexed", the default) and through the retained
 * linear-scan reference paths ("scan", the pre-indexing behaviour).
 * Reports the latency distribution of each and the mean speedup; the
 * same measurement is embedded in every rabsweep manifest.
 */

#include <cstdlib>

#include "bench_common.hh"
#include "runahead/chain_microbench.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    int iterations = 4000;
    if (const char *env = std::getenv("RAB_ITERATIONS"))
        iterations = std::atoi(env);
    if (iterations <= 0)
        iterations = 4000;

    std::printf("=== chain generation: per-call latency, indexed vs "
                "scan ===\n");
    std::printf("(%d timed generate() calls per variant against a full "
                "Table 1 ROB;\noverride with RAB_ITERATIONS)\n\n",
                iterations);

    const ChainGenMicrobench r = runChainGenMicrobench(192, iterations);

    TextTable table({"variant", "calls", "min ns", "p50 ns", "p90 ns",
                     "p99 ns", "max ns", "mean ns"});
    const auto row = [&](const char *name,
                         const ChainGenLatencyDist &d) {
        table.addRow({name, num(double(d.calls), "%.0f"),
                      num(d.minNs, "%.0f"), num(d.p50Ns, "%.0f"),
                      num(d.p90Ns, "%.0f"), num(d.p99Ns, "%.0f"),
                      num(d.maxNs, "%.0f"), num(d.meanNs, "%.1f")});
    };
    row("indexed", r.indexed);
    row("scan", r.scan);
    table.print();

    std::printf("\nrob entries: %d, generated chain length: %d ops\n",
                r.robEntries, r.chainLength);
    std::printf("mean speedup (scan/indexed): %.2fx\n", r.speedup);
    std::printf("\nThe indexed and scan paths are certified identical "
                "in results by\ntests/test_rob_index.cc; this bench "
                "quantifies the latency difference.\n");
    return 0;
}
