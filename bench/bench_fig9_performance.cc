/**
 * @file
 * Figure 9: performance of the four runahead configurations, normalised
 * to the no-prefetching baseline. Paper GMeans over the medium+high
 * intensity workloads: Runahead +14.3%, Runahead Buffer +14.4%,
 * Runahead Buffer + Chain Cache +17.2%, Hybrid +21.0%; the low
 * intensity group moves ~0.8%.
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Figure 9", "IPC vs no-prefetching baseline", options);

    static const RunaheadConfig kConfigs[] = {
        RunaheadConfig::kRunahead,
        RunaheadConfig::kRunaheadBuffer,
        RunaheadConfig::kRunaheadBufferCC,
        RunaheadConfig::kHybrid,
    };

    CellRunner runner(options);
    const std::vector<WorkloadSpec> workloads =
        selectWorkloads(spec06Suite(), options.workloadFilter);
    runner.prefill(workloads,
                   {{RunaheadConfig::kBaseline, false},
                    {RunaheadConfig::kRunahead, false},
                    {RunaheadConfig::kRunaheadBuffer, false},
                    {RunaheadConfig::kRunaheadBufferCC, false},
                    {RunaheadConfig::kHybrid, false}});
    TextTable table({"workload", "class", "Runahead", "RA-Buffer",
                     "RAB+CC", "Hybrid"});
    std::map<RunaheadConfig, std::vector<double>> speedups;
    for (const WorkloadSpec &spec : workloads) {
        const SimResult &base =
            runner.get(spec, RunaheadConfig::kBaseline, false);
        std::vector<std::string> row{spec.params.name,
                                     intensityName(spec.intensity)};
        for (const RunaheadConfig config : kConfigs) {
            const SimResult &r = runner.get(spec, config, false);
            const double ratio = r.ipc / base.ipc;
            row.push_back(pctDiff(ratio));
            if (spec.intensity != MemIntensity::kLow)
                speedups[config].push_back(ratio - 1.0);
        }
        table.addRow(row);
    }
    table.print();

    static const double kPaper[] = {14.3, 14.4, 17.2, 21.0};
    std::printf("\nGMean speedup over medium+high intensity:\n");
    for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
        std::printf("  %-18s measured %+6.1f%%   (paper %+.1f%%)\n",
                    runaheadConfigName(kConfigs[i]),
                    100.0 * geomeanSpeedup(speedups[kConfigs[i]]),
                    kPaper[i]);
    }
    return 0;
}
