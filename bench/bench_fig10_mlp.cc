/**
 * @file
 * Figure 10: average number of cache misses generated per runahead
 * interval (the MLP each mechanism uncovers), with and without the
 * stream prefetcher. Paper shape: the runahead buffer generates over
 * 2x the misses of traditional runahead on average; prefetching
 * reduces runahead-generated MLP (~27% for traditional, ~36% for the
 * buffer) but the buffer still leads by ~80%.
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Figure 10", "cache misses per runahead interval", options);

    CellRunner runner(options);
    const std::vector<WorkloadSpec> workloads =
        selectWorkloads(mediumHighSuite(), options.workloadFilter);
    runner.prefill(workloads,
                   {{RunaheadConfig::kRunahead, false},
                    {RunaheadConfig::kRunaheadBufferCC, false},
                    {RunaheadConfig::kRunahead, true},
                    {RunaheadConfig::kRunaheadBufferCC, true}});
    TextTable table({"workload", "Runahead", "RA-Buffer", "Runahead+PF",
                     "RA-Buffer+PF"});
    double sums[4] = {};
    int count = 0;
    for (const WorkloadSpec &spec : workloads) {
        const double ra =
            runner.get(spec, RunaheadConfig::kRunahead, false)
                .missesPerInterval;
        const double rb =
            runner.get(spec, RunaheadConfig::kRunaheadBufferCC, false)
                .missesPerInterval;
        const double ra_pf =
            runner.get(spec, RunaheadConfig::kRunahead, true)
                .missesPerInterval;
        const double rb_pf =
            runner.get(spec, RunaheadConfig::kRunaheadBufferCC, true)
                .missesPerInterval;
        table.addRow({spec.params.name, num(ra), num(rb), num(ra_pf),
                      num(rb_pf)});
        sums[0] += ra;
        sums[1] += rb;
        sums[2] += ra_pf;
        sums[3] += rb_pf;
        ++count;
    }
    table.print();
    if (count) {
        std::printf("\naverages: RA %.2f, RAB %.2f (%.2fx, paper ~2x); "
                    "RA+PF %.2f, RAB+PF %.2f (%.2fx, paper ~1.8x)\n",
                    sums[0] / count, sums[1] / count,
                    sums[0] > 0 ? sums[1] / sums[0] : 0,
                    sums[2] / count, sums[3] / count,
                    sums[2] > 0 ? sums[3] / sums[2] : 0);
    }
    return 0;
}
