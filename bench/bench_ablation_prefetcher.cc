/**
 * @file
 * Ablation (beyond the paper): how does the runahead buffer compose
 * with different prefetcher baselines? The paper evaluates only the
 * POWER4-style stream prefetcher; its related work cites PC-indexed
 * stride prefetchers [11, 14, 27], implemented here as an alternative.
 * Stride prefetching covers the large-stride FP codes the stream
 * prefetcher misses (milc, GemsFDTD, leslie), shrinking — but not
 * eliminating — the runahead buffer's advantage there.
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

namespace
{

SimResult
run(const WorkloadSpec &spec, RunaheadConfig rc, bool prefetch,
    PrefetcherKind kind, const BenchOptions &options)
{
    SimConfig config = makeConfig(rc, prefetch);
    config.mem.prefetcherKind = kind;
    config.instructions = options.instructions;
    config.warmupInstructions = options.warmup;
    Simulation sim(config, buildWorkload(spec.params));
    return sim.run();
}

} // namespace

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Ablation", "stream vs stride prefetching, with and without "
                       "the runahead buffer",
           options);

    TextTable table({"workload", "stream-PF", "stride-PF", "ghb-PF",
                     "Hybrid", "Hybrid+stream", "Hybrid+stride"});
    std::map<int, std::vector<double>> speedups;
    for (const WorkloadSpec &spec :
         selectWorkloads(mediumHighSuite(), options.workloadFilter)) {
        const double base = run(spec, RunaheadConfig::kBaseline, false,
                                PrefetcherKind::kStream, options)
                                .ipc;
        const double cells[] = {
            run(spec, RunaheadConfig::kBaseline, true,
                PrefetcherKind::kStream, options).ipc,
            run(spec, RunaheadConfig::kBaseline, true,
                PrefetcherKind::kStride, options).ipc,
            run(spec, RunaheadConfig::kBaseline, true,
                PrefetcherKind::kGhb, options).ipc,
            run(spec, RunaheadConfig::kHybrid, false,
                PrefetcherKind::kStream, options).ipc,
            run(spec, RunaheadConfig::kHybrid, true,
                PrefetcherKind::kStream, options).ipc,
            run(spec, RunaheadConfig::kHybrid, true,
                PrefetcherKind::kStride, options).ipc,
        };
        std::vector<std::string> row{spec.params.name};
        for (std::size_t i = 0; i < std::size(cells); ++i) {
            row.push_back(pctDiff(cells[i] / base));
            speedups[static_cast<int>(i)].push_back(cells[i] / base
                                                    - 1.0);
        }
        table.addRow(row);
    }
    table.print();

    static const char *kNames[] = {"stream-PF", "stride-PF", "ghb-PF",
                                   "Hybrid", "Hybrid+stream",
                                   "Hybrid+stride"};
    std::printf("\nGMean speedup (medium+high):\n");
    for (std::size_t i = 0; i < std::size(kNames); ++i) {
        std::printf("  %-14s %+6.1f%%\n", kNames[i],
                    100.0 * geomeanSpeedup(speedups[static_cast<int>(i)]));
    }
    return 0;
}
