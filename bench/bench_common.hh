/**
 * @file
 * Helpers shared by the per-figure bench binaries.
 */

#ifndef RAB_BENCH_BENCH_COMMON_HH
#define RAB_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/experiment.hh"

namespace rab::bench
{

/** Percent formatting. */
inline std::string
pct(double fraction)
{
    return strprintf("%.1f%%", fraction * 100.0);
}

/** Signed percent-difference formatting. */
inline std::string
pctDiff(double ratio)
{
    return strprintf("%+.1f%%", (ratio - 1.0) * 100.0);
}

inline std::string
num(double v, const char *fmt = "%.2f")
{
    return strprintf(fmt, v);
}

/** Run (workload x config) once per cell with a small cache so several
 *  figures computed by one binary don't re-simulate. */
class CellRunner
{
  public:
    explicit CellRunner(const BenchOptions &options)
        : options_(options)
    {
    }

    const SimResult &
    get(const WorkloadSpec &spec, RunaheadConfig config, bool prefetch)
    {
        const std::string key = spec.params.name + "/"
            + runaheadConfigName(config) + (prefetch ? "+PF" : "");
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            it = cache_.emplace(key,
                                runCell(spec, config, prefetch, options_))
                     .first;
        }
        return it->second;
    }

    const BenchOptions &options() const { return options_; }

  private:
    BenchOptions options_;
    std::map<std::string, SimResult> cache_;
};

/** Print the standard bench banner. */
inline void
banner(const char *figure, const char *title, const BenchOptions &opts)
{
    std::printf("=== %s: %s ===\n", figure, title);
    std::printf("(%llu instructions/workload after %llu warmup; override "
                "with RAB_INSTRUCTIONS / RAB_WARMUP / RAB_WORKLOADS)\n\n",
                (unsigned long long)opts.instructions,
                (unsigned long long)opts.warmup);
}

} // namespace rab::bench

#endif // RAB_BENCH_BENCH_COMMON_HH
