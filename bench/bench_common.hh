/**
 * @file
 * Helpers shared by the per-figure bench binaries.
 */

#ifndef RAB_BENCH_BENCH_COMMON_HH
#define RAB_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "core/experiment.hh"

namespace rab::bench
{

/** Percent formatting. */
inline std::string
pct(double fraction)
{
    return strprintf("%.1f%%", fraction * 100.0);
}

/** Signed percent-difference formatting. */
inline std::string
pctDiff(double ratio)
{
    return strprintf("%+.1f%%", (ratio - 1.0) * 100.0);
}

inline std::string
num(double v, const char *fmt = "%.2f")
{
    return strprintf(fmt, v);
}

// CellRunner (the cached grid executor, now sweep-engine backed) lives
// in core/experiment.hh so rabsweep and the tests share it.

/** Print the standard bench banner. */
inline void
banner(const char *figure, const char *title, const BenchOptions &opts)
{
    std::printf("=== %s: %s ===\n", figure, title);
    std::printf("(%llu instructions/workload after %llu warmup on %d "
                "thread%s; override with RAB_INSTRUCTIONS / RAB_WARMUP "
                "/ RAB_WORKLOADS / RAB_THREADS)\n\n",
                (unsigned long long)opts.instructions,
                (unsigned long long)opts.warmup, opts.threads,
                opts.threads == 1 ? "" : "s");
}

} // namespace rab::bench

#endif // RAB_BENCH_BENCH_COMMON_HH
