/**
 * @file
 * Figure 1: percent of total core cycles stalled waiting for memory on
 * the no-prefetching baseline, across the suite (sorted by memory
 * intensity), with each workload's IPC. Paper shape: every medium/high
 * intensity application stalls for over half of its cycles and mostly
 * runs at IPC < 1.
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Figure 1", "cycles stalled waiting for memory (baseline)",
           options);

    CellRunner runner(options);
    TextTable table({"workload", "class", "stall %", "IPC", "MPKI"});
    double high_stall_min = 1.0;
    for (const WorkloadSpec &spec :
         selectWorkloads(spec06Suite(), options.workloadFilter)) {
        const SimResult &r =
            runner.get(spec, RunaheadConfig::kBaseline, false);
        if (spec.intensity == MemIntensity::kHigh)
            high_stall_min = std::min(high_stall_min, r.memStallFraction);
        table.addRow({spec.params.name, intensityName(spec.intensity),
                      pct(r.memStallFraction), num(r.ipc), num(r.mpki)});
    }
    table.print();
    std::printf("\npaper: all high-intensity workloads stall > 50%% of "
                "cycles.\nmeasured minimum high-intensity stall: %s\n",
                pct(high_stall_min).c_str());
    return 0;
}
