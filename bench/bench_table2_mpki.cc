/**
 * @file
 * Table 2: SPEC06 workload classification by memory intensity.
 * High: MPKI >= 10; Medium: MPKI > 2; Low: MPKI <= 2 — measured on the
 * no-prefetching baseline.
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Table 2", "workload classification by memory intensity",
           options);

    CellRunner runner(options);
    TextTable table({"workload", "MPKI", "measured class",
                     "paper class", "match"});
    int matches = 0;
    int total = 0;
    for (const WorkloadSpec &spec :
         selectWorkloads(spec06Suite(), options.workloadFilter)) {
        const SimResult &r =
            runner.get(spec, RunaheadConfig::kBaseline, false);
        MemIntensity measured = MemIntensity::kLow;
        if (r.mpki >= 10.0)
            measured = MemIntensity::kHigh;
        else if (r.mpki > 2.0)
            measured = MemIntensity::kMedium;
        const bool match = measured == spec.intensity;
        ++total;
        matches += match ? 1 : 0;
        table.addRow({spec.params.name, num(r.mpki),
                      intensityName(measured),
                      intensityName(spec.intensity),
                      match ? "yes" : "NO"});
    }
    table.print();
    std::printf("\nclassification agreement: %d/%d\n", matches, total);
    return 0;
}
