/**
 * @file
 * Figure 17: normalised system (chip + DRAM) energy without
 * prefetching. Paper GMeans vs the no-PF baseline: Runahead +44.0%
 * (the front-end never rests), Runahead-Enhanced +9.0%, RA-Buffer
 * -4.4%, RAB+CC -6.7%, Hybrid -2.3%.
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Figure 17", "energy vs no-PF baseline", options);

    static const RunaheadConfig kConfigs[] = {
        RunaheadConfig::kRunahead,
        RunaheadConfig::kRunaheadEnhanced,
        RunaheadConfig::kRunaheadBuffer,
        RunaheadConfig::kRunaheadBufferCC,
        RunaheadConfig::kHybrid,
    };
    static const double kPaper[] = {44.0, 9.0, -4.4, -6.7, -2.3};

    CellRunner runner(options);
    const std::vector<WorkloadSpec> workloads =
        selectWorkloads(mediumHighSuite(), options.workloadFilter);
    std::vector<CellVariant> grid{{RunaheadConfig::kBaseline, false}};
    for (const RunaheadConfig config : kConfigs)
        grid.emplace_back(config, false);
    runner.prefill(workloads, grid);
    TextTable table({"workload", "Runahead", "RA-Enhanced", "RA-Buffer",
                     "RAB+CC", "Hybrid"});
    std::map<int, std::vector<double>> ratios;
    for (const WorkloadSpec &spec : workloads) {
        const SimResult &base =
            runner.get(spec, RunaheadConfig::kBaseline, false);
        std::vector<std::string> row{spec.params.name};
        for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
            const SimResult &r = runner.get(spec, kConfigs[i], false);
            const double ratio = r.energy.totalJ / base.energy.totalJ;
            row.push_back(pctDiff(ratio));
            ratios[static_cast<int>(i)].push_back(ratio - 1.0);
        }
        table.addRow(row);
    }
    table.print();

    std::printf("\nGMean energy difference (medium+high):\n");
    for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
        std::printf("  %-18s measured %+6.1f%%   (paper %+.1f%%)\n",
                    runaheadConfigName(kConfigs[i]),
                    100.0 * geomeanSpeedup(ratios[static_cast<int>(i)]),
                    kPaper[i]);
    }
    return 0;
}
