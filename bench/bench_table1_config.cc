/**
 * @file
 * Table 1: print the simulated system configuration.
 */

#include <cstdio>

#include "core/sim_config.hh"

int
main()
{
    std::puts("=== Table 1: System Configuration ===");
    const rab::SimConfig config =
        rab::makeConfig(rab::RunaheadConfig::kHybrid, true);
    std::fputs(config.table1String().c_str(), stdout);
    return 0;
}
