/**
 * @file
 * Figure 18: normalised system energy with the stream prefetcher,
 * against the *no-prefetching* baseline. Paper GMeans: PF -19.5%,
 * Runahead+PF -1.7%, RA-Enhanced+PF -15.4%, RA-Buffer+PF -20.8%,
 * RAB+CC+PF -22.5%, Hybrid+PF -19.9%.
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Figure 18", "energy with prefetching vs no-PF baseline",
           options);

    static const RunaheadConfig kConfigs[] = {
        RunaheadConfig::kBaseline,
        RunaheadConfig::kRunahead,
        RunaheadConfig::kRunaheadEnhanced,
        RunaheadConfig::kRunaheadBuffer,
        RunaheadConfig::kRunaheadBufferCC,
        RunaheadConfig::kHybrid,
    };
    static const char *kNames[] = {"PF", "Runahead+PF",
                                   "RA-Enhanced+PF", "RA-Buffer+PF",
                                   "RAB+CC+PF", "Hybrid+PF"};
    static const double kPaper[] = {-19.5, -1.7, -15.4, -20.8, -22.5,
                                    -19.9};

    CellRunner runner(options);
    const std::vector<WorkloadSpec> workloads =
        selectWorkloads(mediumHighSuite(), options.workloadFilter);
    std::vector<CellVariant> grid{{RunaheadConfig::kBaseline, false}};
    for (const RunaheadConfig config : kConfigs)
        grid.emplace_back(config, true);
    runner.prefill(workloads, grid);
    TextTable table({"workload", "PF", "Runahead+PF", "RA-Enhanced+PF",
                     "RA-Buffer+PF", "RAB+CC+PF", "Hybrid+PF"});
    std::map<int, std::vector<double>> ratios;
    for (const WorkloadSpec &spec : workloads) {
        const SimResult &base =
            runner.get(spec, RunaheadConfig::kBaseline, false);
        std::vector<std::string> row{spec.params.name};
        for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
            const SimResult &r = runner.get(spec, kConfigs[i], true);
            const double ratio = r.energy.totalJ / base.energy.totalJ;
            row.push_back(pctDiff(ratio));
            ratios[static_cast<int>(i)].push_back(ratio - 1.0);
        }
        table.addRow(row);
    }
    table.print();

    std::printf("\nGMean energy difference (medium+high, vs no-PF "
                "baseline):\n");
    for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
        std::printf("  %-16s measured %+6.1f%%   (paper %+.1f%%)\n",
                    kNames[i],
                    100.0 * geomeanSpeedup(ratios[static_cast<int>(i)]),
                    kPaper[i]);
    }
    return 0;
}
