/**
 * @file
 * Figure 11: percent of total execution cycles spent in runahead buffer
 * mode (cycles during which the front-end is clock-gated) on the
 * Runahead Buffer + Chain Cache system. Paper average: 47%.
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Figure 11", "cycles in runahead buffer mode", options);

    CellRunner runner(options);
    TextTable table({"workload", "buffer-mode cycles"});
    double sum = 0;
    int count = 0;
    for (const WorkloadSpec &spec :
         selectWorkloads(mediumHighSuite(), options.workloadFilter)) {
        const SimResult &r =
            runner.get(spec, RunaheadConfig::kRunaheadBufferCC, false);
        table.addRow({spec.params.name, pct(r.bufferCycleFraction)});
        sum += r.bufferCycleFraction;
        ++count;
    }
    table.print();
    std::printf("\naverage: %s (paper: 47%% of cycles, front-end "
                "clock-gated throughout)\n",
                pct(count ? sum / count : 0).c_str());
    return 0;
}
