/**
 * @file
 * Figure 5: average length (in uops) of the dependence chains leading
 * to cache misses during traditional runahead. Paper shape: with the
 * exception of omnetpp, every memory-intensive workload averages under
 * 32 uops — which sizes the runahead buffer (32 uops).
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Figure 5", "average miss dependence chain length (uops)",
           options);

    CellRunner runner(options);
    TextTable table({"workload", "class", "avg chain length",
                     "< 32 uops"});
    std::vector<double> lengths;
    for (const WorkloadSpec &spec :
         selectWorkloads(spec06Suite(), options.workloadFilter)) {
        const SimResult &r =
            runner.get(spec, RunaheadConfig::kRunahead, false);
        table.addRow({spec.params.name, intensityName(spec.intensity),
                      num(r.avgChainLength, "%.1f"),
                      r.avgChainLength > 0 && r.avgChainLength < 32
                          ? "yes"
                          : (r.avgChainLength == 0 ? "-" : "NO")});
        if (spec.intensity != MemIntensity::kLow && r.avgChainLength > 0)
            lengths.push_back(r.avgChainLength);
    }
    table.print();
    double sum = 0;
    for (const double l : lengths)
        sum += l;
    std::printf("\nmean chain length (medium+high): %.1f uops (paper: "
                "short, < 32 except omnetpp)\n",
                lengths.empty() ? 0 : sum / lengths.size());
    return 0;
}
