/**
 * @file
 * Figure 12: chain cache hit rate on the Runahead Buffer + Chain Cache
 * system. Paper shape: generally high; the workloads that benefit most
 * from the chain cache hit well above 95%.
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Figure 12", "chain cache hit rate", options);

    CellRunner runner(options);
    TextTable table({"workload", "hit rate"});
    double sum = 0;
    int count = 0;
    for (const WorkloadSpec &spec :
         selectWorkloads(mediumHighSuite(), options.workloadFilter)) {
        const SimResult &r =
            runner.get(spec, RunaheadConfig::kRunaheadBufferCC, false);
        table.addRow({spec.params.name, pct(r.chainCacheHitRate)});
        sum += r.chainCacheHitRate;
        ++count;
    }
    table.print();
    std::printf("\naverage hit rate: %s (paper: high, mostly > 90%%)\n",
                pct(count ? sum / count : 0).c_str());
    return 0;
}
