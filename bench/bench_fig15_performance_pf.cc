/**
 * @file
 * Figure 15: performance with the Table 1 stream prefetcher enabled,
 * normalised to the *no-prefetching* baseline, over the medium+high
 * intensity workloads. Paper GMeans: PF +37.5%, Runahead+PF +48.3%,
 * RA-Buffer+PF +47.1%, RAB+CC+PF +48.2%, Hybrid+PF +51.5%.
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Figure 15", "IPC with stream prefetching vs no-PF baseline",
           options);

    static const RunaheadConfig kConfigs[] = {
        RunaheadConfig::kBaseline,
        RunaheadConfig::kRunahead,
        RunaheadConfig::kRunaheadBuffer,
        RunaheadConfig::kRunaheadBufferCC,
        RunaheadConfig::kHybrid,
    };
    static const char *kNames[] = {"PF", "Runahead+PF", "RA-Buffer+PF",
                                   "RAB+CC+PF", "Hybrid+PF"};
    static const double kPaper[] = {37.5, 48.3, 47.1, 48.2, 51.5};

    CellRunner runner(options);
    const std::vector<WorkloadSpec> workloads =
        selectWorkloads(mediumHighSuite(), options.workloadFilter);
    std::vector<CellVariant> grid{{RunaheadConfig::kBaseline, false}};
    for (const RunaheadConfig config : kConfigs)
        grid.emplace_back(config, true);
    runner.prefill(workloads, grid);
    TextTable table({"workload", "PF", "Runahead+PF", "RA-Buffer+PF",
                     "RAB+CC+PF", "Hybrid+PF"});
    std::map<int, std::vector<double>> speedups;
    for (const WorkloadSpec &spec : workloads) {
        const SimResult &base =
            runner.get(spec, RunaheadConfig::kBaseline, false);
        std::vector<std::string> row{spec.params.name};
        for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
            const SimResult &r = runner.get(spec, kConfigs[i], true);
            const double ratio = r.ipc / base.ipc;
            row.push_back(pctDiff(ratio));
            speedups[static_cast<int>(i)].push_back(ratio - 1.0);
        }
        table.addRow(row);
    }
    table.print();

    std::printf("\nGMean speedup over medium+high intensity (vs no-PF "
                "baseline):\n");
    for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
        std::printf("  %-14s measured %+6.1f%%   (paper %+.1f%%)\n",
                    kNames[i],
                    100.0 * geomeanSpeedup(speedups[static_cast<int>(i)]),
                    kPaper[i]);
    }
    return 0;
}
