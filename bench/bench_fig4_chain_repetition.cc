/**
 * @file
 * Figure 4: of the dependence chains leading to cache misses within a
 * runahead interval, the fraction that repeats a chain already seen in
 * the same interval. Paper shape: chains are overwhelmingly repeated
 * for the memory-intensive workloads, which is what makes caching and
 * looping a single filtered chain (the runahead buffer) work.
 */

#include "bench_common.hh"

using namespace rab;
using namespace rab::bench;

int
main()
{
    setVerbose(false);
    const BenchOptions options = BenchOptions::fromEnv(40'000, 10'000);
    banner("Figure 4", "repeated vs unique miss dependence chains",
           options);

    CellRunner runner(options);
    TextTable table({"workload", "class", "repeated", "unique"});
    std::vector<double> repeated;
    for (const WorkloadSpec &spec :
         selectWorkloads(spec06Suite(), options.workloadFilter)) {
        const SimResult &r =
            runner.get(spec, RunaheadConfig::kRunahead, false);
        table.addRow({spec.params.name, intensityName(spec.intensity),
                      pct(r.repeatedFraction),
                      pct(std::max(0.0, 1.0 - r.repeatedFraction))});
        if (spec.intensity != MemIntensity::kLow)
            repeated.push_back(r.repeatedFraction);
    }
    table.print();
    double sum = 0;
    for (const double f : repeated)
        sum += f;
    std::printf("\nmean repeated fraction (medium+high): %s "
                "(paper: most chains repeat within an interval)\n",
                pct(repeated.empty() ? 0 : sum / repeated.size()).c_str());
    return 0;
}
