/**
 * @file
 * The five rablint checks (see rablint.hh for the contract each one
 * enforces and DESIGN.md §12 for scope notes and the annotation
 * grammar).
 *
 * All checks are token-sequence analyses over LexedFile. They are
 * deliberately conservative: every rule keys on declared *names*
 * (unordered container variables, cycle-flavoured identifiers, stat
 * registration calls) rather than inferred types, so a finding is
 * always explainable by pointing at the tokens on the flagged line.
 */

#include "rablint.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace rab::lint
{

namespace
{

const std::vector<std::string> kCheckNames = {
    "rab-unordered-iteration",
    "rab-banned-nondeterminism",
    "rab-cycle-arithmetic",
    "rab-stat-registration",
    "rab-raw-serialization",
};

/** Annotation keyword that silences each check at a site. */
const char *
suppressKeyword(const std::string &check)
{
    if (check == "rab-unordered-iteration")
        return "order-independent";
    if (check == "rab-banned-nondeterminism")
        return "nondeterminism-ok";
    if (check == "rab-cycle-arithmetic")
        return "cycle-ok";
    if (check == "rab-raw-serialization")
        return "raw-serialization-ok";
    return "stat-ok";
}

/** Is @p c part of a suppression category word? */
bool
isCategoryChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
}

/**
 * A site is suppressed when a comment on its line — or in the
 * contiguous comment block ending on the line above — reads
 * `rablint: <keyword>` (reason text after the keyword is free form
 * and encouraged; multi-line reasons work because the whole block is
 * searched).
 *
 * Scoped form: `rablint: <keyword>=<category>` suppresses only
 * findings of that category (e.g. `nondeterminism-ok=wall-clock`
 * passes a wall-clock read but still flags a rand() two lines
 * later). The bare keyword remains the suppress-everything escape;
 * prefer the scoped form — it documents exactly which hazard was
 * reviewed and keeps the others armed.
 */
bool
suppressed(const LexedFile &lexed, int line, const std::string &check,
           const std::string &category = std::string())
{
    const std::string keyword = suppressKeyword(check);
    const auto matches = [&](int at) {
        const auto it = lexed.comments.find(at);
        if (it == lexed.comments.end())
            return false;
        const std::string &text = it->second;
        std::size_t pos = text.find("rablint:");
        if (pos == std::string::npos)
            return false;
        pos = text.find(keyword, pos);
        while (pos != std::string::npos) {
            const std::size_t after = pos + keyword.size();
            if (after >= text.size() || text[after] != '=')
                return true; // Bare keyword: any category.
            std::size_t end = after + 1;
            while (end < text.size() && isCategoryChar(text[end]))
                ++end;
            if (!category.empty()
                && text.compare(after + 1, end - after - 1, category)
                    == 0)
                return true;
            pos = text.find(keyword, end);
        }
        return false;
    };
    if (matches(line))
        return true;
    for (int at = line - 1; at > 0 && lexed.comments.count(at); --at) {
        if (matches(at))
            return true;
    }
    return false;
}

/** Split camelBack / snake_case identifiers into lowercased words. */
std::vector<std::string>
identWords(const std::string &name)
{
    std::vector<std::string> words;
    std::string word;
    for (std::size_t i = 0; i < name.size(); ++i) {
        const char c = name[i];
        if (c == '_') {
            if (!word.empty())
                words.push_back(word);
            word.clear();
            continue;
        }
        if (std::isupper(static_cast<unsigned char>(c)) && !word.empty()
            && !std::isupper(
                static_cast<unsigned char>(word.back()))) {
            words.push_back(word);
            word.clear();
        }
        word += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    }
    if (!word.empty())
        words.push_back(word);
    return words;
}

/** Does the identifier carry a cycle-counter word? */
bool
isCycleName(const std::string &name)
{
    static const std::set<std::string> kWords = {
        "cycle", "cycles", "tick", "ticks", "deadline", "horizon",
    };
    for (const std::string &w : identWords(name)) {
        if (kWords.count(w))
            return true;
    }
    return false;
}

/**
 * Advance past a balanced template argument list. @p i indexes the
 * `<` token; returns the index one past the matching `>`. Treats `>>`
 * as two closers (C++11 rule). Bails out (returns @p i + 1) if no
 * close is found within the statement.
 */
std::size_t
skipTemplateArgs(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i; j < toks.size(); ++j) {
        const std::string &t = toks[j].text;
        if (t == "<") {
            ++depth;
        } else if (t == ">") {
            if (--depth == 0)
                return j + 1;
        } else if (t == ">>") {
            depth -= 2;
            if (depth <= 0)
                return j + 1;
        } else if (t == ";") {
            break; // Not a template argument list after all.
        }
    }
    return i + 1;
}

bool
isKeyword(const std::string &t)
{
    static const std::set<std::string> kKeywords = {
        "if",     "else",    "for",      "while",  "return", "const",
        "static", "auto",    "struct",   "class",  "public", "private",
        "new",    "delete",  "sizeof",   "switch", "case",   "break",
        "using",  "typedef", "template", "typename",
    };
    return kKeywords.count(t) != 0;
}

using FindingSink = std::vector<Finding>;

void
report(FindingSink &out, const LexedFile &lexed, const std::string &path,
       const std::string &check, int line, const std::string &message,
       const std::string &category = std::string())
{
    if (suppressed(lexed, line, check, category))
        return;
    for (const Finding &f : out) {
        if (f.check == check && f.line == line && f.message == message)
            return; // Dedupe repeated hits on one line.
    }
    out.push_back({check, path, line, message});
}

// ---------------------------------------------------------------------
// rab-unordered-iteration
// ---------------------------------------------------------------------

bool
isUnorderedType(const std::string &t)
{
    return t == "unordered_map" || t == "unordered_set"
        || t == "unordered_multimap" || t == "unordered_multiset";
}

void
checkUnorderedIteration(const std::string &path, const LexedFile &lexed,
                        const UnorderedNames *global, FindingSink &out)
{
    static const std::string kCheck = "rab-unordered-iteration";
    const std::vector<Token> &toks = lexed.tokens;

    UnorderedNames names;
    if (global)
        names = *global;
    collectUnorderedNames(lexed, names);
    const std::set<std::string> &aliases = names.aliases;
    const std::set<std::string> &vars = names.vars;

    const auto is_unordered_name = [&](const Token &t) {
        return isUnorderedType(t.text) || aliases.count(t.text) != 0
            || vars.count(t.text) != 0;
    };

    // Pass 2a: range-for whose range expression names an unordered
    // container.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].text != "for" || toks[i + 1].text != "(")
            continue;
        int depth = 0;
        std::size_t colon = 0;
        std::size_t close = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
            const std::string &t = toks[j].text;
            if (t == "(" || t == "[" || t == "{") {
                ++depth;
            } else if (t == ")" || t == "]" || t == "}") {
                if (--depth == 0) {
                    close = j;
                    break;
                }
            } else if (t == ":" && depth == 1 && colon == 0) {
                colon = j;
            } else if (t == ";" && depth == 1) {
                colon = 0; // Classic for loop, not range-for.
                break;
            }
        }
        if (colon == 0 || close == 0)
            continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
            if (is_unordered_name(toks[j])) {
                report(out, lexed, path, kCheck, toks[i].line,
                       "range-for over unordered container '"
                           + toks[j].text
                           + "' — iteration order is not "
                             "deterministic; use an ordered "
                             "container or a sorted snapshot, or "
                             "annotate `// rablint: "
                             "order-independent (<why>)`");
                break;
            }
        }
    }

    // Pass 2b: explicit iterator traversal (`x.begin()` / `x.cbegin()`)
    // of a known unordered variable.
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!vars.count(toks[i].text))
            continue;
        if (toks[i + 1].text != "." && toks[i + 1].text != "->")
            continue;
        if (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin") {
            report(out, lexed, path, kCheck, toks[i].line,
                   "iterator traversal of unordered container '"
                       + toks[i].text
                       + "' — iteration order is not deterministic; "
                         "annotate `// rablint: order-independent "
                         "(<why>)` if no output depends on the "
                         "order");
        }
    }
}

// ---------------------------------------------------------------------
// rab-banned-nondeterminism
// ---------------------------------------------------------------------

/**
 * Finding categories for rab-banned-nondeterminism, usable in scoped
 * suppressions (`nondeterminism-ok=<category>`) and scoped allowlist
 * entries (`path=<category>`): "entropy" (host randomness),
 * "wall-clock" (host time), "pointer-key" (address-ordered
 * containers), "socket-io" (network syscalls).
 */
const char *kCatEntropy = "entropy";
const char *kCatWallClock = "wall-clock";
const char *kCatPointerKey = "pointer-key";
const char *kCatSocketIo = "socket-io";

void
checkBannedNondeterminism(const std::string &path, const LexedFile &lexed,
                          const Options &options, FindingSink &out)
{
    static const std::string kCheck = "rab-banned-nondeterminism";
    // Allowlist entries are path substrings, optionally scoped to one
    // category with `=<category>` (e.g. `src/foo/bar.cc=wall-clock`
    // exempts wall-clock findings there but keeps entropy, socket-io
    // and pointer-key armed).
    std::set<std::string> exempt_categories;
    for (const std::string &allowed : options.nondeterminismAllowlist) {
        const std::size_t eq = allowed.find('=');
        const std::string pattern = allowed.substr(0, eq);
        if (path.find(pattern) == std::string::npos)
            continue;
        if (eq == std::string::npos)
            return; // Bare entry: the whole file is sanctioned.
        exempt_categories.insert(allowed.substr(eq + 1));
    }
    const auto exempt = [&](const char *category) {
        return exempt_categories.count(category) != 0;
    };

    const std::vector<Token> &toks = lexed.tokens;
    static const std::set<std::string> kEntropyAlways = {
        "random_device",
    };
    static const std::set<std::string> kWallClockAlways = {
        "gettimeofday", "clock_gettime", "timespec_get",
        "rdtsc",        "__rdtsc",
    };
    static const std::set<std::string> kEntropyCalls = {
        "rand", "srand", "drand48", "lrand48",
    };
    static const std::set<std::string> kWallClockCalls = {
        "time", "clock",
    };
    static const std::set<std::string> kWallClocks = {
        "steady_clock", "system_clock", "high_resolution_clock",
    };
    static const std::set<std::string> kSocketCalls = {
        "socket",   "accept", "connect",    "recv",   "send",
        "recvfrom", "sendto", "epoll_wait", "select", "poll",
    };
    static const std::set<std::string> kOrderedStd = {
        "map", "set", "multimap", "multiset", "less", "greater",
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::kIdentifier)
            continue;

        const bool entropy_always = kEntropyAlways.count(t.text) != 0;
        if (entropy_always || kWallClockAlways.count(t.text)) {
            const char *category =
                entropy_always ? kCatEntropy : kCatWallClock;
            if (!exempt(category)) {
                report(out, lexed, path, kCheck, t.line,
                       "'" + t.text
                           + "' is nondeterministic across runs; route "
                             "randomness through rab::Rng and timing "
                             "through the profiler, or annotate "
                             "`// rablint: nondeterminism-ok="
                           + category + " (<why>)`",
                       category);
            }
            continue;
        }

        if (kWallClocks.count(t.text)) {
            if (!exempt(kCatWallClock)) {
                report(out, lexed, path, kCheck, t.line,
                       "wall-clock '" + t.text
                           + "' feeds host time into the simulation; "
                             "only sanctioned wall-time reporting may "
                             "use it (annotate `// rablint: "
                             "nondeterminism-ok=wall-clock (<why>)`)",
                       kCatWallClock);
            }
            continue;
        }

        // A banned libc call: `time(`, `rand(`, ... Skip member
        // accesses (`t.time()`), declarations of same-named methods
        // (`uint64_t time()`, return type right before the name), and
        // non-std qualification (`Timer::time(`).
        const bool entropy_call = kEntropyCalls.count(t.text) != 0;
        bool banned_call =
            (entropy_call || kWallClockCalls.count(t.text) != 0)
            && i + 1 < toks.size() && toks[i + 1].text == "(" && i > 0;
        if (banned_call) {
            const Token &prev = toks[i - 1];
            if (prev.text == "." || prev.text == "->" || prev.text == ">"
                || prev.text == "&" || prev.text == "*"
                || (prev.kind == TokKind::kIdentifier
                    && !isKeyword(prev.text)))
                banned_call = false;
            if (prev.text == "::"
                && !(i >= 2 && toks[i - 2].text == "std"))
                banned_call = false;
        }
        if (banned_call) {
            const char *category =
                entropy_call ? kCatEntropy : kCatWallClock;
            if (!exempt(category)) {
                report(out, lexed, path, kCheck, t.line,
                       "call to '" + t.text
                           + "()' is nondeterministic; use rab::Rng / "
                             "simulated cycles instead, or annotate "
                             "`// rablint: nondeterminism-ok="
                           + category + " (<why>)`",
                       category);
            }
            continue;
        }

        // Socket/select I/O: anything read off a socket is ordered by
        // the host scheduler and the network, never by the
        // simulation. Service plumbing (daemon mode) annotates each
        // call site with `nondeterminism-ok=socket-io` and a reason;
        // simulation code gets flagged. Unlike the libc-call rule,
        // `::`-qualified *global* calls (`::poll(`) are still flagged
        // — that is exactly how socket syscalls are written.
        bool socket_call = kSocketCalls.count(t.text) != 0
            && i + 1 < toks.size() && toks[i + 1].text == "(" && i > 0;
        if (socket_call) {
            const Token &prev = toks[i - 1];
            if (prev.text == "." || prev.text == "->" || prev.text == ">"
                || prev.text == "&" || prev.text == "*"
                || (prev.kind == TokKind::kIdentifier
                    && !isKeyword(prev.text)))
                socket_call = false;
            if (prev.text == "::" && i >= 2
                && toks[i - 2].kind == TokKind::kIdentifier)
                socket_call = false; // Foo::poll(: a member, not libc.
        }
        if (socket_call) {
            if (!exempt(kCatSocketIo)) {
                report(out, lexed, path, kCheck, t.line,
                       "socket I/O call '" + t.text
                           + "()' in simulation code — host "
                             "scheduling order leaks in; only service "
                             "plumbing may use it (annotate "
                             "`// rablint: nondeterminism-ok="
                             "socket-io (<why>)`)",
                       kCatSocketIo);
            }
            continue;
        }

        // Pointer-keyed associative containers and comparators:
        // iteration order (ordered) or bucket order (unordered)
        // becomes address-space-layout dependent.
        const bool unordered_assoc = t.text == "unordered_map"
            || t.text == "unordered_set" || t.text == "unordered_multimap"
            || t.text == "unordered_multiset";
        const bool ordered_std = kOrderedStd.count(t.text) != 0 && i >= 2
            && toks[i - 1].text == "::" && toks[i - 2].text == "std";
        if ((unordered_assoc || ordered_std) && i + 1 < toks.size()
            && toks[i + 1].text == "<") {
            int depth = 0;
            std::string last;
            for (std::size_t j = i + 1; j < toks.size(); ++j) {
                const std::string &tj = toks[j].text;
                if (tj == "<") {
                    ++depth;
                } else if (tj == ">" || tj == ">>") {
                    depth -= (tj == ">") ? 1 : 2;
                    if (depth <= 0)
                        break;
                } else if (tj == "," && depth == 1) {
                    break;
                } else if (tj == ";") {
                    break;
                } else if (depth >= 1) {
                    last = tj;
                }
            }
            if (last == "*" && !exempt(kCatPointerKey)) {
                report(out, lexed, path, kCheck, t.line,
                       "pointer-keyed '" + t.text
                           + "' orders/hashes by address — "
                             "nondeterministic across runs; key by a "
                             "stable id instead, or annotate "
                             "`// rablint: nondeterminism-ok="
                             "pointer-key (<why>)`",
                       kCatPointerKey);
            }
        }
    }
}

// ---------------------------------------------------------------------
// rab-cycle-arithmetic
// ---------------------------------------------------------------------

void
checkCycleArithmetic(const std::string &path, const LexedFile &lexed,
                     FindingSink &out)
{
    static const std::string kCheck = "rab-cycle-arithmetic";
    const std::vector<Token> &toks = lexed.tokens;

    static const std::set<std::string> kBuiltin = {
        "unsigned", "signed", "long", "int", "short", "char",
    };
    static const std::set<std::string> kNarrowTypedefs = {
        "int8_t",  "uint8_t",  "int16_t", "uint16_t",
        "int32_t", "uint32_t", "float",
    };
    static const std::set<std::string> kSignedWideTypedefs = {
        "int64_t", "ptrdiff_t", "ssize_t",
    };
    static const std::set<std::string> kQualifiers = {
        "const", "constexpr", "static", "volatile", "mutable",
    };

    // Classify the builtin/typedef token run ending at index `end`
    // (exclusive). Returns 0 = fine / not a type run, 1 = narrower
    // than 64 bits, 2 = 64-bit but signed.
    const auto classify = [&](std::size_t end) -> int {
        std::set<std::string> words;
        std::size_t j = end;
        int longs = 0;
        while (j > 0) {
            const std::string &t = toks[j - 1].text;
            if (kQualifiers.count(t)) {
                --j;
                continue;
            }
            if (kBuiltin.count(t) || kNarrowTypedefs.count(t)
                || kSignedWideTypedefs.count(t)) {
                if (t == "long")
                    ++longs;
                words.insert(t);
                --j;
                continue;
            }
            break;
        }
        if (words.empty())
            return 0;
        const bool has_unsigned = words.count("unsigned") != 0;
        bool is64 = longs >= 1 || words.count("int64_t") != 0
            || words.count("ptrdiff_t") != 0
            || words.count("ssize_t") != 0;
        // Narrow typedefs win over no-info builtins.
        for (const std::string &w : words) {
            if (kNarrowTypedefs.count(w))
                is64 = false;
        }
        if (!is64)
            return 1;
        return has_unsigned ? 0 : 2;
    };

    const auto flag = [&](int line, int klass, const std::string &what) {
        report(out, lexed, path, kCheck, line,
               what
                   + (klass == 1
                          ? " narrows the 64-bit cycle domain — use "
                            "rab::Cycle (std::uint64_t)"
                          : " mixes signed arithmetic into the "
                            "unsigned 64-bit cycle domain — use "
                            "rab::Cycle (std::uint64_t)")
                   + ", or annotate `// rablint: cycle-ok (<why>)`");
    };

    // Rule A: cycle-named variables must be declared 64-bit unsigned.
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::kIdentifier || !isCycleName(t.text))
            continue;
        static const std::set<std::string> kDeclFollow = {
            "=", ";", ",", ")", "{", ":", "[",
        };
        if (!kDeclFollow.count(toks[i + 1].text))
            continue;
        const int klass = classify(i);
        if (klass != 0)
            flag(t.line, klass,
                 "declaring cycle counter '" + t.text + "' as a type that");
    }

    // Rule B: static_cast of a cycle expression to a narrow or signed
    // type.
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (toks[i].text != "static_cast" || toks[i + 1].text != "<")
            continue;
        const std::size_t after_args = skipTemplateArgs(toks, i + 1);
        // Classify the run of type tokens just before the closing '>'.
        const int klass = classify(after_args - 1);
        if (klass == 0)
            continue;
        if (after_args >= toks.size() || toks[after_args].text != "(")
            continue;
        int depth = 0;
        for (std::size_t j = after_args; j < toks.size(); ++j) {
            const std::string &tj = toks[j].text;
            if (tj == "(") {
                ++depth;
            } else if (tj == ")") {
                if (--depth == 0)
                    break;
            } else if (toks[j].kind == TokKind::kIdentifier
                       && (isCycleName(tj) || tj == "Cycle")) {
                flag(toks[i].line, klass,
                     "static_cast of cycle expression '" + tj
                         + "' to a type that");
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// rab-stat-registration
// ---------------------------------------------------------------------

void
checkStatRegistration(const std::string &path, const LexedFile &lexed,
                      FindingSink &out)
{
    static const std::string kCheck = "rab-stat-registration";
    const std::vector<Token> &toks = lexed.tokens;

    // (receiver, name) pairs seen so far, with first-seen line.
    std::map<std::string, int> seen;

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].text != "addCounter" && toks[i].text != "addScalar")
            continue;
        if (toks[i + 1].text != "(")
            continue;

        // Skip declarations/definitions of the registration methods
        // themselves (`void addCounter(...)`, `StatGroup::addCounter`):
        // a call site is preceded by `.`, `->`, or statement
        // punctuation, never by a type name or `::`.
        if (i >= 1
            && (toks[i - 1].kind == TokKind::kIdentifier
                || toks[i - 1].text == "::" || toks[i - 1].text == "&"
                || toks[i - 1].text == "*" || toks[i - 1].text == ">"))
            continue;

        // Receiver: identifier before a `.`/`->`, else unqualified
        // (registration from inside the group's own scope).
        std::string receiver = "(unqualified)";
        if (i >= 2
            && (toks[i - 1].text == "." || toks[i - 1].text == "->")
            && toks[i - 2].kind == TokKind::kIdentifier)
            receiver = toks[i - 2].text;

        // First argument: tokens up to the first depth-1 comma.
        std::vector<const Token *> arg;
        int depth = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
            const std::string &tj = toks[j].text;
            if (tj == "(") {
                ++depth;
                if (depth == 1)
                    continue;
            } else if (tj == ")") {
                if (--depth == 0)
                    break;
            } else if (tj == "," && depth == 1) {
                break;
            }
            arg.push_back(&toks[j]);
        }

        const bool all_strings = !arg.empty()
            && std::all_of(arg.begin(), arg.end(), [](const Token *t) {
                   return t->kind == TokKind::kString;
               });

        // Per-core indexed names: perCoreStatName(core, "name")
        // expands to "core<N>.name". The helper supplies the per-core
        // prefix and the embedded literal still carries a statically
        // diffable identity, so registration loops over cores need no
        // suppression. Uniqueness is keyed on the whole call spelling
        // (index expression included): the same spelling twice is a
        // real duplicate, while distinct constant indices are not.
        std::string name;
        bool per_core = false;
        if (!all_strings && !arg.empty()
            && arg[0]->text == "perCoreStatName") {
            for (const Token *t : arg) {
                if (t->kind == TokKind::kString)
                    per_core = true;
                name += t->text;
            }
            if (!per_core)
                name.clear();
        }

        if (!all_strings && !per_core) {
            report(out, lexed, path, kCheck, toks[i].line,
                   "stat name passed to " + toks[i].text
                       + "() must be a string literal so manifest "
                         "schemas stay statically diffable "
                         "(annotate `// rablint: stat-ok (<why>)` "
                         "for sanctioned dynamic names)");
            continue;
        }

        if (!per_core) {
            for (const Token *t : arg)
                name += t->text;
        }
        const std::string key = receiver + "\x1f" + name;
        const auto [it, inserted] = seen.emplace(key, toks[i].line);
        if (!inserted) {
            std::ostringstream msg;
            msg << "duplicate stat name \"" << name << "\" on group '"
                << receiver << "' (first registered at line "
                << it->second
                << ") — stat names must be unique within their group";
            report(out, lexed, path, kCheck, toks[i].line, msg.str());
        }
    }
}

// ---------------------------------------------------------------------
// rab-raw-serialization
// ---------------------------------------------------------------------

/**
 * std types that own heap memory or otherwise have no stable byte
 * layout — fwrite/fread of these (or of aggregates containing them)
 * persists pointers and capacity fields, not data.
 */
bool
isNonTrivialStd(const std::string &t)
{
    return t == "string" || t == "basic_string" || t == "vector"
        || t == "deque" || t == "list" || t == "forward_list"
        || t == "map" || t == "set" || t == "multimap"
        || t == "multiset" || isUnorderedType(t) || t == "unique_ptr"
        || t == "shared_ptr" || t == "weak_ptr" || t == "function"
        || t == "optional" || t == "variant" || t == "any";
}

void
checkRawSerialization(const std::string &path, const LexedFile &lexed,
                      const Options &options, FindingSink &out)
{
    static const std::string kCheck = "rab-raw-serialization";
    for (const std::string &allowed : options.rawSerializationAllowlist) {
        if (path.find(allowed) != std::string::npos)
            return; // A sanctioned byte-format module.
    }

    const std::vector<Token> &toks = lexed.tokens;

    // Pass 1a: struct/class definitions whose body carries a pointer
    // member, a vtable (`virtual`), or a non-trivially-copyable std
    // member. Conservative by design: any `*` in the body taints the
    // type — a pointer-returning method is strong evidence the type
    // manages indirection.
    std::set<std::string> hazard_types;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].text != "struct" && toks[i].text != "class")
            continue;
        if (toks[i + 1].kind != TokKind::kIdentifier)
            continue;
        std::size_t open = i + 2;
        while (open < toks.size() && toks[open].text != "{"
               && toks[open].text != ";")
            ++open;
        if (open >= toks.size() || toks[open].text == ";")
            continue; // Forward declaration.
        int depth = 0;
        bool hazardous = false;
        for (std::size_t j = open; j < toks.size(); ++j) {
            const std::string &tj = toks[j].text;
            if (tj == "{") {
                ++depth;
            } else if (tj == "}") {
                if (--depth == 0)
                    break;
            } else if (tj == "*" || tj == "virtual"
                       || isNonTrivialStd(tj)
                       || hazard_types.count(tj) != 0) {
                hazardous = true;
            }
        }
        if (hazardous)
            hazard_types.insert(toks[i + 1].text);
    }

    // Pass 1b: variables/members/parameters declared with a hazardous
    // type (mirrors collectUnorderedNames' declaration shape).
    std::set<std::string> hazard_vars;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isNonTrivialStd(toks[i].text)
            && !hazard_types.count(toks[i].text))
            continue;
        std::size_t k = i + 1;
        if (k < toks.size() && toks[k].text == "<")
            k = skipTemplateArgs(toks, k);
        while (k < toks.size()
               && (toks[k].text == "&" || toks[k].text == "*"
                   || toks[k].text == "const"))
            ++k;
        if (k + 1 >= toks.size() || toks[k].kind != TokKind::kIdentifier
            || isKeyword(toks[k].text))
            continue;
        const std::string &next = toks[k + 1].text;
        if (next == ";" || next == "=" || next == "{" || next == ","
            || next == ")" || next == ":" || next == "[")
            hazard_vars.insert(toks[k].text);
    }

    // Pass 2: fwrite/fread call sites whose argument list names a
    // hazardous type or variable.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.text != "fwrite" && t.text != "fread")
            continue;
        if (toks[i + 1].text != "(" || i == 0)
            continue;
        const Token &prev = toks[i - 1];
        if (prev.text == "." || prev.text == "->" || prev.text == ">"
            || prev.text == "&" || prev.text == "*"
            || (prev.kind == TokKind::kIdentifier
                && !isKeyword(prev.text)))
            continue; // Member call or declaration, not libc.
        if (prev.text == "::" && !(i >= 2 && toks[i - 2].text == "std"))
            continue;

        int depth = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
            const std::string &tj = toks[j].text;
            if (tj == "(") {
                ++depth;
                continue;
            }
            if (tj == ")") {
                if (--depth == 0)
                    break;
                continue;
            }
            if (toks[j].kind != TokKind::kIdentifier)
                continue;
            if (isNonTrivialStd(tj) || hazard_types.count(tj)
                || hazard_vars.count(tj)) {
                report(out, lexed, path, kCheck, t.line,
                       "raw " + t.text
                           + "() of pointer-bearing or "
                             "non-trivially-copyable '"
                           + tj
                           + "' — byte images of such types persist "
                             "addresses and heap capacity, not data; "
                             "route persistent state through the "
                             "versioned snapshot archive "
                             "(src/snapshot) or the trace writer, or "
                             "annotate `// rablint: "
                             "raw-serialization-ok (<why>)`");
                break;
            }
        }
    }
}

} // namespace

const std::vector<std::string> &
allCheckNames()
{
    return kCheckNames;
}

void
collectUnorderedNames(const LexedFile &lexed, UnorderedNames &names)
{
    const std::vector<Token> &toks = lexed.tokens;

    // Type aliases whose definition mentions an unordered container
    // (`using PendingMap = std::unordered_map<...>;`).
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].text != "using" && toks[i].text != "typedef")
            continue;
        if (toks[i].text == "using") {
            if (toks[i + 1].kind != TokKind::kIdentifier
                || toks[i + 2].text != "=")
                continue;
            const std::string name = toks[i + 1].text;
            for (std::size_t j = i + 3;
                 j < toks.size() && toks[j].text != ";"; ++j) {
                if (isUnorderedType(toks[j].text)
                    || names.aliases.count(toks[j].text)) {
                    names.aliases.insert(name);
                    break;
                }
            }
        } else { // typedef ... name;
            bool unordered = false;
            std::size_t j = i + 1;
            for (; j < toks.size() && toks[j].text != ";"; ++j) {
                if (isUnorderedType(toks[j].text)
                    || names.aliases.count(toks[j].text))
                    unordered = true;
            }
            if (unordered && j > i + 1
                && toks[j - 1].kind == TokKind::kIdentifier)
                names.aliases.insert(toks[j - 1].text);
        }
    }

    // Variables/members/parameters declared with an unordered
    // container type, directly or via an alias.
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const bool direct = isUnorderedType(toks[i].text);
        const bool via_alias = names.aliases.count(toks[i].text) != 0;
        if (!direct && !via_alias)
            continue;
        std::size_t k = i + 1;
        if (k < toks.size() && toks[k].text == "<")
            k = skipTemplateArgs(toks, k);
        while (k < toks.size()
               && (toks[k].text == "&" || toks[k].text == "*"
                   || toks[k].text == "const"))
            ++k;
        if (k + 1 >= toks.size() || toks[k].kind != TokKind::kIdentifier
            || isKeyword(toks[k].text))
            continue;
        const std::string &next = toks[k + 1].text;
        if (next == ";" || next == "=" || next == "{" || next == ","
            || next == ")" || next == ":")
            names.vars.insert(toks[k].text);
    }
}

std::vector<Finding>
analyze(const std::string &path, const LexedFile &lexed,
        const Options &options, const UnorderedNames *global)
{
    const auto enabled = [&](const std::string &check) {
        return options.checks.empty()
            || std::find(options.checks.begin(), options.checks.end(),
                         check)
            != options.checks.end();
    };

    std::vector<Finding> out;
    if (enabled("rab-unordered-iteration"))
        checkUnorderedIteration(path, lexed, global, out);
    if (enabled("rab-banned-nondeterminism"))
        checkBannedNondeterminism(path, lexed, options, out);
    if (enabled("rab-cycle-arithmetic"))
        checkCycleArithmetic(path, lexed, out);
    if (enabled("rab-stat-registration"))
        checkStatRegistration(path, lexed, out);
    if (enabled("rab-raw-serialization"))
        checkRawSerialization(path, lexed, options, out);

    std::stable_sort(out.begin(), out.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });
    return out;
}

std::vector<Finding>
analyzeFile(const std::string &path, const Options &options)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("rablint: cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return analyze(path, lex(buf.str()), options);
}

} // namespace rab::lint
