/**
 * @file
 * rablint CLI.
 *
 * Usage:
 *   rablint [--checks=a,b] [--list-checks] <file-or-dir>...
 *
 * Directories are recursed for .cc/.hh/.cpp/.h sources in sorted
 * order (the lint itself is deterministic, of course). Exit codes:
 * 0 clean, 1 findings, 2 usage or IO error.
 */

#include "rablint.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace
{

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".h";
}

void
collectSources(const fs::path &root, std::vector<std::string> &out)
{
    if (fs::is_directory(root)) {
        for (const auto &entry : fs::recursive_directory_iterator(root)) {
            if (entry.is_regular_file() && isSourceFile(entry.path()))
                out.push_back(entry.path().string());
        }
    } else {
        out.push_back(root.string());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    rab::lint::Options options;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-checks") {
            for (const std::string &name : rab::lint::allCheckNames())
                std::printf("%s\n", name.c_str());
            return 0;
        }
        if (arg.rfind("--checks=", 0) == 0) {
            std::string list = arg.substr(9);
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = list.find(',', pos);
                const std::string name = list.substr(
                    pos, comma == std::string::npos ? comma
                                                    : comma - pos);
                if (!name.empty())
                    options.checks.push_back(name);
                pos = comma == std::string::npos ? comma : comma + 1;
            }
            continue;
        }
        if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
            std::fprintf(stderr,
                         "usage: rablint [--checks=a,b] [--list-checks] "
                         "<file-or-dir>...\n");
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
        files.push_back(arg);
    }

    if (files.empty()) {
        std::fprintf(stderr, "rablint: no inputs (try --help)\n");
        return 2;
    }

    std::vector<std::string> sources;
    for (const std::string &f : files) {
        if (!fs::exists(f)) {
            std::fprintf(stderr, "rablint: no such path: %s\n",
                         f.c_str());
            return 2;
        }
        collectSources(f, sources);
    }
    std::sort(sources.begin(), sources.end());
    sources.erase(std::unique(sources.begin(), sources.end()),
                  sources.end());

    // Two passes: lex everything and union unordered-container names
    // project-wide (so an alias declared in a header is recognized in
    // its sibling .cc), then flag per file.
    std::vector<rab::lint::LexedFile> lexed;
    rab::lint::UnorderedNames global;
    lexed.reserve(sources.size());
    for (const std::string &path : sources) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "rablint: cannot open %s\n",
                         path.c_str());
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        lexed.push_back(rab::lint::lex(buf.str()));
        rab::lint::collectUnorderedNames(lexed.back(), global);
    }

    std::size_t findings = 0;
    for (std::size_t i = 0; i < sources.size(); ++i) {
        for (const rab::lint::Finding &f : rab::lint::analyze(
                 sources[i], lexed[i], options, &global)) {
            std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                        f.check.c_str(), f.message.c_str());
            ++findings;
        }
    }

    std::fprintf(stderr, "rablint: %zu file%s checked, %zu finding%s\n",
                 sources.size(), sources.size() == 1 ? "" : "s",
                 findings, findings == 1 ? "" : "s");
    return findings == 0 ? 0 : 1;
}
