/**
 * @file
 * Minimal C++ lexer for rablint.
 *
 * Understands exactly as much of the grammar as the checks need:
 * comments (captured per line for annotation lookup), string and
 * character literals including raw strings, preprocessor directives
 * (skipped, continuations honoured), identifiers, numbers, and
 * multi-character punctuators that matter for token-sequence matching
 * (`::`, `->`, `<=`, `>=`, `<<`, `>>`).
 */

#include "rablint.hh"

#include <cctype>

namespace rab::lint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

LexedFile
lex(const std::string &source)
{
    LexedFile out;
    const std::size_t n = source.size();
    std::size_t i = 0;
    int line = 1;

    const auto append_comment = [&out](int at, const std::string &text) {
        std::string &slot = out.comments[at];
        if (!slot.empty())
            slot += ' ';
        slot += text;
    };

    while (i < n) {
        const char c = source[i];

        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Preprocessor directive: skip to end of line, honouring
        // backslash continuations, so `#include <map>` and macro
        // bodies never reach the checks.
        if (c == '#') {
            while (i < n && source[i] != '\n') {
                if (source[i] == '\\' && i + 1 < n
                    && source[i + 1] == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                ++i;
            }
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            std::size_t j = i + 2;
            while (j < n && source[j] != '\n')
                ++j;
            append_comment(line, source.substr(i + 2, j - i - 2));
            i = j;
            continue;
        }

        // Block comment: text is attributed to every line it covers,
        // so `/* rablint: ... */` works wherever `//` would.
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            std::size_t j = i + 2;
            int comment_line = line;
            std::string text;
            while (j + 1 < n
                   && !(source[j] == '*' && source[j + 1] == '/')) {
                if (source[j] == '\n') {
                    append_comment(comment_line, text);
                    text.clear();
                    ++comment_line;
                } else {
                    text += source[j];
                }
                ++j;
            }
            append_comment(comment_line, text);
            line = comment_line;
            i = (j + 1 < n) ? j + 2 : n;
            continue;
        }

        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && source[j] != '(')
                delim += source[j++];
            const std::string close = ")" + delim + "\"";
            std::size_t end = source.find(close, j);
            if (end == std::string::npos)
                end = n;
            else
                end += close.size();
            for (std::size_t k = i; k < end && k < n; ++k) {
                if (source[k] == '\n')
                    ++line;
            }
            out.tokens.push_back({TokKind::kString, "<raw>", line});
            i = end;
            continue;
        }

        // String / char literal.
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::size_t j = i + 1;
            std::string text;
            while (j < n && source[j] != quote) {
                if (source[j] == '\\' && j + 1 < n) {
                    text += source[j];
                    text += source[j + 1];
                    j += 2;
                    continue;
                }
                if (source[j] == '\n')
                    ++line; // Unterminated; keep line numbers sane.
                text += source[j++];
            }
            out.tokens.push_back({quote == '"' ? TokKind::kString
                                               : TokKind::kChar,
                                  text, line});
            i = (j < n) ? j + 1 : n;
            // Skip literal suffixes (s, sv, ...).
            while (i < n && isIdentChar(source[i]))
                ++i;
            continue;
        }

        // Identifier / keyword.
        if (isIdentStart(c)) {
            std::size_t j = i;
            while (j < n && isIdentChar(source[j]))
                ++j;
            out.tokens.push_back(
                {TokKind::kIdentifier, source.substr(i, j - i), line});
            i = j;
            continue;
        }

        // Number (good enough: digits plus ident chars, '.', and
        // exponent signs).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < n
                   && (isIdentChar(source[j]) || source[j] == '.'
                       || source[j] == '\''
                       || ((source[j] == '+' || source[j] == '-')
                           && (source[j - 1] == 'e'
                               || source[j - 1] == 'E'
                               || source[j - 1] == 'p'
                               || source[j - 1] == 'P'))))
                ++j;
            out.tokens.push_back(
                {TokKind::kNumber, source.substr(i, j - i), line});
            i = j;
            continue;
        }

        // Multi-char punctuators the checks match on.
        static const char *const kDigraphs[] = {"::", "->", "<=", ">=",
                                                "<<", ">>", "=="};
        bool matched = false;
        for (const char *dg : kDigraphs) {
            if (i + 1 < n && source[i] == dg[0] && source[i + 1] == dg[1]) {
                out.tokens.push_back({TokKind::kPunct, dg, line});
                i += 2;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;

        out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
        ++i;
    }

    return out;
}

} // namespace rab::lint
