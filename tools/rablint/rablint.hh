/**
 * @file
 * rablint — project-specific determinism & invariant lint pass.
 *
 * The simulator's correctness story (differential tests, canonical
 * rab-sweep-manifest-v1 byte-diffing, parallel==serial certification)
 * rests on bit-determinism. rablint statically enforces the rules that
 * previously lived only in reviewers' heads:
 *
 *   rab-unordered-iteration   traversal of std::unordered_map/set is
 *                             order-unstable across libraries and runs;
 *                             any traversal must be annotated
 *                             `// rablint: order-independent (<why>)`.
 *   rab-banned-nondeterminism wall clocks, libc randomness, socket
 *                             I/O, and pointer-keyed containers
 *                             inject address-space/time/scheduler
 *                             dependence. Sanctioned wrappers
 *                             (src/common/rng.*,
 *                             src/common/profiler.*) are allowlisted;
 *                             other sites need
 *                             `// rablint: nondeterminism-ok (<why>)`
 *                             or, preferred, the scoped form
 *                             `nondeterminism-ok=<category>` with
 *                             category one of entropy | wall-clock |
 *                             pointer-key | socket-io, which passes
 *                             only that hazard and keeps the rest
 *                             armed.
 *   rab-cycle-arithmetic      cycle counters are 64-bit unsigned
 *                             (rab::Cycle); declaring cycle-named
 *                             variables with narrow or signed types
 *                             truncates or wraps at simulation scale.
 *                             Escape hatch: `// rablint: cycle-ok`.
 *   rab-stat-registration     StatGroup names must be string literals,
 *                             unique per group, so manifest schemas
 *                             stay diffable. Escape: `// rablint:
 *                             stat-ok (<why>)`.
 *   rab-raw-serialization     fwrite/fread of pointer-bearing or
 *                             non-trivially-copyable types persists
 *                             addresses and heap capacity fields, not
 *                             data. The snapshot archive
 *                             (src/snapshot/, versioned + CRC-framed)
 *                             and the trace writer (src/trace/,
 *                             fixed 32-byte static_assert'd records)
 *                             are the sanctioned byte-format modules;
 *                             other sites need `// rablint:
 *                             raw-serialization-ok (<why>)`.
 *
 * Implementation note: the pass is a token-level analysis over a real
 * C++ lexer (comments, raw strings, preprocessor lines handled), not a
 * clang AST plugin — the build image ships no clang dev headers, and a
 * g++-buildable tool lets the lint run inside the normal ctest suite
 * on every developer machine, not just CI. The checks are written
 * against declared-name and token-sequence evidence; DESIGN.md §12
 * documents each check's exact scope and the libTooling upgrade path.
 */

#ifndef RAB_TOOLS_RABLINT_RABLINT_HH
#define RAB_TOOLS_RABLINT_RABLINT_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace rab::lint
{

/** Lexical token classes rablint distinguishes. */
enum class TokKind
{
    kIdentifier,
    kNumber,
    kString,
    kChar,
    kPunct,
};

struct Token
{
    TokKind kind = TokKind::kPunct;
    std::string text;
    int line = 0;
};

/**
 * One lexed translation unit: significant tokens plus per-line comment
 * text (the channel annotations arrive on).
 */
struct LexedFile
{
    std::vector<Token> tokens;
    /** line -> concatenated comment text ending on that line. */
    std::map<int, std::string> comments;
};

/**
 * Lex @p source. Line and block comments land in `comments`;
 * preprocessor directives (with continuations) are skipped entirely so
 * header names and macro bodies cannot produce findings.
 */
LexedFile lex(const std::string &source);

/** One diagnostic. */
struct Finding
{
    std::string check;   ///< e.g. "rab-unordered-iteration".
    std::string file;
    int line = 0;
    std::string message;
};

struct Options
{
    /** Empty = all checks. Otherwise check names to run. */
    std::vector<std::string> checks;
    /**
     * Path substrings exempt from rab-banned-nondeterminism: the
     * sanctioned wrappers every other module must route through. An
     * entry may be scoped to a single finding category with
     * `=<category>` (entropy | wall-clock | pointer-key | socket-io):
     * `src/foo/net.cc=socket-io` exempts only socket findings there,
     * keeping entropy/wall-clock/pointer-key enforcement armed. Bare
     * entries exempt the whole file. Prefer per-site
     * `// rablint: nondeterminism-ok=<category> (<why>)` comments —
     * they carry the reason next to the code; allowlisting is for
     * wrapper modules whose entire purpose is the hazard.
     */
    std::vector<std::string> nondeterminismAllowlist{
        "src/common/rng.",
        "src/common/profiler.",
    };
    /**
     * Path substrings exempt from rab-raw-serialization: the modules
     * whose whole purpose is a byte-level file format. The snapshot
     * archive frames every record with a version and CRC; the trace
     * writer static_asserts its 32-byte record layout. Everything
     * else must route through them or annotate
     * `// rablint: raw-serialization-ok (<why>)` per site.
     */
    std::vector<std::string> rawSerializationAllowlist{
        "src/snapshot/",
        "src/trace/",
    };
};

/** All check names, in reporting order. */
const std::vector<std::string> &allCheckNames();

/**
 * Names known to denote unordered containers: type aliases whose
 * definition mentions unordered_map/set, and variables/members/
 * parameters declared with such a type. Collected project-wide before
 * flagging so an alias declared in a header (e.g. PendingMap in
 * memory_system.hh) is recognized in the sibling .cc.
 */
struct UnorderedNames
{
    std::set<std::string> aliases;
    std::set<std::string> vars;
};

/** Accumulate unordered-container names declared in @p lexed. */
void collectUnorderedNames(const LexedFile &lexed, UnorderedNames &names);

/**
 * Run every enabled check over one lexed file. @p global, when given,
 * seeds rab-unordered-iteration with names collected across the whole
 * corpus (single-file callers may pass nullptr).
 */
std::vector<Finding> analyze(const std::string &path,
                             const LexedFile &lexed,
                             const Options &options,
                             const UnorderedNames *global = nullptr);

/** Convenience: read + lex + analyze one file. Throws on IO error. */
std::vector<Finding> analyzeFile(const std::string &path,
                                 const Options &options);

} // namespace rab::lint

#endif // RAB_TOOLS_RABLINT_RABLINT_HH
