// rablint fixture: every line marked EXPECT must be flagged by the
// named check.
#include <string>

struct Counter
{
};

struct StatGroup
{
    void addCounter(const std::string &name, Counter *counter,
                    const std::string &desc = "");
    void addScalar(const std::string &name, const double *value,
                   const std::string &desc = "");
};

void
registerStats(StatGroup &stats, Counter &a, Counter &b,
              const std::string &dynamic_name, const double *value)
{
    stats.addCounter("hits", &a, "cache hits");
    stats.addCounter("hits", &b, "duplicate!");   // EXPECT: rab-stat-registration
    stats.addCounter(dynamic_name, &a, "oops");   // EXPECT: rab-stat-registration
    stats.addScalar("ipc", value, "committed IPC");
    stats.addScalar("ipc" + dynamic_name, value); // EXPECT: rab-stat-registration
}
