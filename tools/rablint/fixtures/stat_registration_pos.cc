// rablint fixture: every line marked EXPECT must be flagged by the
// named check.
#include <string>

struct Counter
{
};

struct StatGroup
{
    void addCounter(const std::string &name, Counter *counter,
                    const std::string &desc = "");
    void addScalar(const std::string &name, const double *value,
                   const std::string &desc = "");
};

std::string perCoreStatName(int core, const std::string &name);

void
registerStats(StatGroup &stats, Counter &a, Counter &b,
              const std::string &dynamic_name, const double *value)
{
    stats.addCounter("hits", &a, "cache hits");
    stats.addCounter("hits", &b, "duplicate!");   // EXPECT: rab-stat-registration
    stats.addCounter(dynamic_name, &a, "oops");   // EXPECT: rab-stat-registration
    stats.addScalar("ipc", value, "committed IPC");
    stats.addScalar("ipc" + dynamic_name, value); // EXPECT: rab-stat-registration

    // Per-core indexed names: the same perCoreStatName spelling twice
    // on one group registers the same name twice — a duplicate...
    stats.addCounter(perCoreStatName(0, "mshr_peak"), &a, "peak");
    stats.addCounter(perCoreStatName(0, "mshr_peak"), &b, "dup"); // EXPECT: rab-stat-registration
    // ...and a per-core name with no literal inside is still dynamic.
    stats.addCounter(perCoreStatName(2, dynamic_name), &a); // EXPECT: rab-stat-registration
}
