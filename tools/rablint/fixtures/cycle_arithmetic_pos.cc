// rablint fixture: every line marked EXPECT must be flagged by the
// named check.
#include <cstdint>

using Cycle = std::uint64_t;

struct Sim
{
    int stallCycles = 0;              // EXPECT: rab-cycle-arithmetic
    unsigned tickCount = 0;           // EXPECT: rab-cycle-arithmetic
    std::int64_t signedDeadline = 0;  // EXPECT: rab-cycle-arithmetic
};

void
run(Cycle cycle, Cycle now)
{
    int cycles_left = 4;              // EXPECT: rab-cycle-arithmetic
    short tick = 0;                   // EXPECT: rab-cycle-arithmetic
    long deadline = 0;                // EXPECT: rab-cycle-arithmetic
    const auto low = static_cast<std::uint32_t>(cycle);  // EXPECT: rab-cycle-arithmetic
    const auto bad = static_cast<int>(now - cycle);      // EXPECT: rab-cycle-arithmetic
    (void)cycles_left;
    (void)tick;
    (void)deadline;
    (void)low;
    (void)bad;
}
