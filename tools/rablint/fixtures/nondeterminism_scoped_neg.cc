// rablint fixture: nothing in this file may be flagged. Every hazard
// carries a correctly *scoped* suppression
// (`nondeterminism-ok=<category>`), the grammar the daemon and the
// result store use so that sanctioning socket plumbing or a record
// timestamp does not also sanction rand() in the same file.
#include <chrono>
#include <cstdlib>

int poll(void *fds, unsigned long n, int timeout_ms);
long recv(int fd, void *buf, unsigned long len, int flags);

int
boundedWait(void *fds)
{
    // rablint: nondeterminism-ok=socket-io (wire plumbing; nothing
    // read here reaches simulated state)
    return poll(fds, 1, 100);
}

long
readWire(int fd, void *buf, unsigned long len)
{
    return ::recv(fd, buf, len, 0); // rablint: nondeterminism-ok=socket-io (ditto)
}

double
sanctionedWallTime()
{
    // rablint: nondeterminism-ok=wall-clock (write-once provenance
    // timestamp; never read back into results)
    const auto t0 = std::chrono::system_clock::now();
    return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

int
sanctionedEntropy()
{
    // The bare keyword still works and suppresses every category.
    // rablint: nondeterminism-ok (legacy bare suppression)
    return rand();
}

struct Conn
{
    // Members *named* like syscalls are not socket I/O.
    int poll() const { return fd_; }
    int send(int) const { return fd_; }
    static int select(int n) { return n; }
    int fd_ = 0;
};

int
memberCalls(const Conn &c)
{
    // Member and class-qualified calls are not the syscalls.
    return c.poll() + c.send(1) + Conn::select(2);
}
