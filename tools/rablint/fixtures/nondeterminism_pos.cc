// rablint fixture: every line marked EXPECT must be flagged by the
// named check.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <set>

struct Node;

double
wallNow()
{
    const auto t0 = std::chrono::steady_clock::now(); // EXPECT: rab-banned-nondeterminism
    return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

long
hostStamp()
{
    return time(nullptr); // EXPECT: rab-banned-nondeterminism
}

int
roll()
{
    std::random_device rd; // EXPECT: rab-banned-nondeterminism
    return static_cast<int>(rd() % 6) + rand() % 6; // EXPECT: rab-banned-nondeterminism
}

std::map<Node *, int> byAddress;      // EXPECT: rab-banned-nondeterminism
std::set<const Node *> visitedPtrs;   // EXPECT: rab-banned-nondeterminism
