// rablint fixture: every line marked EXPECT must be flagged by the
// named check. Exercises the scoped suppression grammar
// (`nondeterminism-ok=<category>`): a suppression scoped to one
// category must NOT silence findings of a different category, and
// socket I/O is a category of its own.
#include <chrono>
#include <cstdlib>

int poll(void *fds, unsigned long n, int timeout_ms);
int socket(int domain, int type, int protocol);
long recv(int fd, void *buf, unsigned long len, int flags);

int
acceptLoop(void *fds)
{
    // A bare syscall spelling and the ::-qualified global spelling
    // are both socket-io findings.
    const int a = poll(fds, 1, 100);      // EXPECT: rab-banned-nondeterminism
    const int b = ::socket(1, 1, 0);      // EXPECT: rab-banned-nondeterminism
    char buf[16];
    return a + b
        + static_cast<int>(::recv(0, buf, sizeof(buf), 0)); // EXPECT: rab-banned-nondeterminism
}

double
wrongScope()
{
    // Scoped to socket-io, but the hazard here is a wall clock: the
    // suppression must not apply.
    // rablint: nondeterminism-ok=socket-io (mis-scoped on purpose)
    const auto t0 = std::chrono::steady_clock::now(); // EXPECT: rab-banned-nondeterminism
    return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

int
wrongScopeEntropy()
{
    // rablint: nondeterminism-ok=wall-clock (mis-scoped on purpose)
    return rand(); // EXPECT: rab-banned-nondeterminism
}
