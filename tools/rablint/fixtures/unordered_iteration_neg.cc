// rablint fixture: nothing in this file may be flagged.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using OrderedMap = std::map<std::uint64_t, std::uint64_t>;

struct Tracker
{
    std::unordered_set<int> seen;
    std::unordered_map<std::uint64_t, std::uint64_t> pending;
    OrderedMap ordered;
    std::vector<int> list;

    // Point lookups and mutation never depend on bucket order.
    bool lookupOnly(std::uint64_t addr) const
    {
        return pending.count(addr) != 0 && seen.count(1) != 0;
    }

    void mutate(std::uint64_t addr)
    {
        pending[addr] = 1;
        pending.erase(addr + 1);
        seen.insert(static_cast<int>(addr));
    }

    std::uint64_t sumOrdered() const
    {
        std::uint64_t total = 0;
        for (const auto &[addr, value] : ordered)
            total += value;
        for (int id : list)
            total += static_cast<std::uint64_t>(id);
        return total;
    }

    std::uint64_t annotated() const
    {
        std::uint64_t total = 0;
        // rablint: order-independent (sum is commutative; no output
        // depends on visit order)
        for (const auto &[addr, value] : pending)
            total += value;
        return total;
    }
};
