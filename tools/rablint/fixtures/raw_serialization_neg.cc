// rablint fixture: nothing in this file may be flagged.
#include <cstdio>
#include <string>
#include <type_traits>

struct Frame
{
    unsigned long magic;
    unsigned long crc;
    unsigned long length;
};

static_assert(std::is_trivially_copyable<Frame>::value,
              "raw frame I/O requires a trivially copyable layout");

struct Codec
{
    unsigned long fread(void *buffer, unsigned long size);
    unsigned long fwrite(const void *buffer, unsigned long size);
};

void
roundTrip(std::FILE *f, Codec &codec, Frame &frame, char *scratch)
{
    // Trivially copyable aggregates may be framed raw.
    std::fwrite(&frame, sizeof(frame), 1, f);
    std::fread(&frame, sizeof(frame), 1, f);

    // Member functions that happen to be named like libc I/O are not
    // the libc calls.
    codec.fread(scratch, sizeof(Frame));
    codec.fwrite(scratch, sizeof(Frame));
}

struct Header
{
    std::string tool; // Heap-owning, but the site below is reviewed.
};

void
legacyDump(std::FILE *f, const Header &header)
{
    // rablint: raw-serialization-ok (fixture: reviewed legacy dump)
    std::fwrite(&header, sizeof(header), 1, f);
}
