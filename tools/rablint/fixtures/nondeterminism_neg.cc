// rablint fixture: nothing in this file may be flagged.
#include <chrono>
#include <cstdint>
#include <map>
#include <set>

struct Timer
{
    // A member *named* time/clock is not the libc call.
    std::uint64_t time() const { return ticks_; }
    std::uint64_t clock() const { return ticks_; }
    std::uint64_t ticks_ = 0;
};

std::uint64_t
readTimer(const Timer &t)
{
    // Member calls through ./-> are fine.
    return t.time() + t.clock();
}

// Durations without a wall clock are pure arithmetic.
constexpr std::chrono::nanoseconds kBudget{100};

// Keying by stable ids, not addresses.
std::map<std::uint64_t, int> byId;
std::set<std::uint64_t> seenIds;

double
sanctionedWallTime()
{
    // rablint: nondeterminism-ok (wall-time reporting only; value is
    // printed, never fed into simulated state)
    const auto t0 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
