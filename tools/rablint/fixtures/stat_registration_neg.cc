// rablint fixture: nothing in this file may be flagged.
#include <string>

struct Counter
{
};

struct StatGroup
{
    void addCounter(const std::string &name, Counter *counter,
                    const std::string &desc = "");
    void addScalar(const std::string &name, const double *value,
                   const std::string &desc = "");
};

void
registerStats(StatGroup &core, StatGroup &memory, Counter &a, Counter &b,
              const double *value)
{
    core.addCounter("hits", &a, "cache hits");
    core.addCounter("misses", &b, "cache misses");
    core.addScalar("ipc", value, "committed IPC");

    // The same name on a *different* group is fine.
    memory.addCounter("hits", &a, "llc hits");

    // Adjacent string literals still form one literal name.
    memory.addCounter("dram_"
                      "reads",
                      &b, "split literal");
}
