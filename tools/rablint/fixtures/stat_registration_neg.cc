// rablint fixture: nothing in this file may be flagged.
#include <string>

struct Counter
{
};

struct StatGroup
{
    void addCounter(const std::string &name, Counter *counter,
                    const std::string &desc = "");
    void addScalar(const std::string &name, const double *value,
                   const std::string &desc = "");
};

std::string perCoreStatName(int core, const std::string &name);

void
registerStats(StatGroup &core, StatGroup &memory, Counter &a, Counter &b,
              const double *value)
{
    core.addCounter("hits", &a, "cache hits");
    core.addCounter("misses", &b, "cache misses");
    core.addScalar("ipc", value, "committed IPC");

    // The same name on a *different* group is fine.
    memory.addCounter("hits", &a, "llc hits");

    // Adjacent string literals still form one literal name.
    memory.addCounter("dram_"
                      "reads",
                      &b, "split literal");

    // Per-core indexed registration loops: perCoreStatName() names
    // are "core<N>.<literal>" — per-core unique by construction, so
    // the literal-name rule accepts them without suppression.
    for (int i = 0; i < 4; ++i)
        memory.addCounter(perCoreStatName(i, "mshr_peak"), &a, "peak");
    // Distinct constant indices are distinct names, not duplicates.
    memory.addCounter(perCoreStatName(0, "held_now"), &a);
    memory.addCounter(perCoreStatName(1, "held_now"), &b);
}
