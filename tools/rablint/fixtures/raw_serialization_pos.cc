// rablint fixture: every line marked EXPECT must be flagged by the
// named check.
#include <cstdio>
#include <string>
#include <vector>

struct Node
{
    Node *next; // Pointer member: a raw byte image dumps an address.
    int value;
};

struct Manifest
{
    std::string name; // Heap-owning members: capacity fields, not data.
    std::vector<int> rows;
};

struct PlainRecord
{
    unsigned long pc;
    unsigned long addr;
};

void
save(std::FILE *f, const Node &node, const Manifest &manifest,
     std::string &text, const PlainRecord &record)
{
    std::fwrite(&node, sizeof(node), 1, f);         // EXPECT: rab-raw-serialization
    std::fwrite(&manifest, sizeof(manifest), 1, f); // EXPECT: rab-raw-serialization
    std::fwrite(&text, sizeof(text), 1, f);         // EXPECT: rab-raw-serialization
    // Trivially copyable aggregates are not this check's business.
    std::fwrite(&record, sizeof(record), 1, f);
}

void
load(std::FILE *f, Node &node, std::vector<Manifest> &table)
{
    std::fread(&node, sizeof(node), 1, f); // EXPECT: rab-raw-serialization
    std::fread(table.data(), sizeof(Manifest), table.size(), f); // EXPECT: rab-raw-serialization
}
