// rablint fixture: every line marked EXPECT must be flagged by the
// named check. These files are lint fodder, never compiled or
// formatted.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

using PendingMap = std::unordered_map<std::uint64_t, std::uint64_t>;

struct Tracker
{
    std::unordered_set<int> seen;
    PendingMap pending;

    std::uint64_t sum() const
    {
        std::uint64_t total = 0;
        for (const auto &[addr, value] : pending) // EXPECT: rab-unordered-iteration
            total += value;
        for (int id : seen) // EXPECT: rab-unordered-iteration
            total += static_cast<std::uint64_t>(id);
        return total;
    }

    void prune()
    {
        for (auto it = pending.begin(); it != pending.end();) // EXPECT: rab-unordered-iteration
            it = pending.erase(it);
    }
};

std::uint64_t
inlineTraversal(const std::unordered_map<int, std::uint64_t> &direct)
{
    std::uint64_t total = 0;
    for (const auto &[k, v] : direct) // EXPECT: rab-unordered-iteration
        total += v;
    return total;
}
