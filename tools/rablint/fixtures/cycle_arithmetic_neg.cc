// rablint fixture: nothing in this file may be flagged.
#include <cstddef>
#include <cstdint>

using Cycle = std::uint64_t;

struct Sim
{
    Cycle stallCycles = 0;
    std::uint64_t tickCount = 0;
    unsigned long long deadline = 0;
    std::size_t cyclesSeen = 0;

    // Not cycle quantities: plain small integers with unrelated names.
    int width = 4;
    int robEntries = 192;
    unsigned ports = 2;
};

double
utilization(Cycle cycle, Cycle busy)
{
    // Widening / floating-point conversions of cycles are fine.
    const auto as_double = static_cast<double>(busy);
    const auto as_wide = static_cast<std::uint64_t>(cycle);

    // rablint: cycle-ok (a per-cycle port count, not a cycle count)
    int searchesPerCycle = 2;
    (void)searchesPerCycle;
    return as_double / static_cast<double>(as_wide + 1);
}
