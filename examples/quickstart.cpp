/**
 * @file
 * Quickstart: simulate one memory-intensive workload on the baseline
 * system and on the runahead-buffer system, and compare.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/simulation.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "mcf";
    const std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50'000;

    if (!rab::findWorkload(workload)) {
        std::fprintf(stderr, "unknown workload '%s'; available:\n",
                     workload.c_str());
        for (const auto &spec : rab::spec06Suite())
            std::fprintf(stderr, "  %s\n", spec.params.name.c_str());
        return 1;
    }

    std::printf("workload: %s, %llu instructions\n\n", workload.c_str(),
                (unsigned long long)instructions);

    const rab::SimResult base = rab::simulateWorkload(
        workload, rab::RunaheadConfig::kBaseline, false, instructions,
        instructions / 5);
    std::printf("baseline        : %s\n", base.toString().c_str());

    const rab::SimResult ra = rab::simulateWorkload(
        workload, rab::RunaheadConfig::kRunahead, false, instructions,
        instructions / 5);
    std::printf("runahead        : %s\n", ra.toString().c_str());

    const rab::SimResult rab_cc = rab::simulateWorkload(
        workload, rab::RunaheadConfig::kRunaheadBufferCC, false,
        instructions, instructions / 5);
    std::printf("runahead buffer : %s\n", rab_cc.toString().c_str());

    std::printf("\nspeedup: runahead %+.1f%%, runahead buffer+cc "
                "%+.1f%%\n",
                100.0 * (ra.ipc / base.ipc - 1.0),
                100.0 * (rab_cc.ipc / base.ipc - 1.0));
    return 0;
}
