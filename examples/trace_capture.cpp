/**
 * @file
 * Capture a retirement trace from a simulated workload to a binary
 * .rabt file, then read it back and summarise it — the trace tooling a
 * downstream user would employ to ship workload behaviour to other
 * tools.
 *
 *   ./build/examples/trace_capture [workload] [instructions] [file]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "core/simulation.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

using namespace rab;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const std::string workload = argc > 1 ? argv[1] : "soplex";
    const std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20'000;
    const std::string path =
        argc > 3 ? argv[3] : "/tmp/" + workload + ".rabt";
    if (!findWorkload(workload)) {
        std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
        return 1;
    }

    SimConfig config = makeConfig(RunaheadConfig::kBaseline, false);
    config.instructions = instructions;
    config.warmupInstructions = instructions / 4;
    Simulation sim(config, buildSuiteWorkload(workload));
    {
        TraceWriter writer(path);
        sim.core().setCommitHook(
            [&](const DynUop &uop) { writer.record(uop); });
        const SimResult r = sim.run();
        std::printf("simulated: %s\n", r.toString().c_str());
        std::printf("captured %llu records to %s\n",
                    (unsigned long long)writer.recordCount(),
                    path.c_str());
    }

    const TraceSummary summary = summarizeTrace(path);
    std::printf("summary:  %s\n", summary.toString().c_str());

    // Peek at the first few records.
    TraceReader reader(path);
    TraceRecord rec;
    std::puts("first records:");
    for (int i = 0; i < 8 && reader.next(rec); ++i) {
        std::printf("  seq %llu pc %llu op %u addr 0x%llx flags %u\n",
                    (unsigned long long)rec.seq,
                    (unsigned long long)rec.pc, rec.opcode,
                    (unsigned long long)rec.addr, rec.flags);
    }
    return 0;
}
