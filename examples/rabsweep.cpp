/**
 * @file
 * rabsweep — parallel sweep-campaign driver.
 *
 * Declares a workloads x configs x seeds grid (explicitly or via a
 * named preset), executes it on the src/sweep thread-pool engine, and
 * emits the machine-readable rab-sweep-manifest-v1 JSON report
 * (BENCH_sweep.json) that CI archives and the perf-regression gate
 * consumes.
 *
 *   rabsweep --preset fig9 --threads 8 --out BENCH_sweep.json
 *   rabsweep --workloads mcf,libq --configs baseline,hybrid+pf \
 *            --seeds 1,2,3 --instructions 50000
 *   rabsweep --preset smoke --gate bench/baseline.json
 *   rabsweep --preset smoke --threads 2 --write-baseline \
 *            bench/baseline.json
 *   rabsweep --preset fig9 --store .rabstore      # resumable
 *   rabsweep --serve /tmp/rabsweep.sock --store .rabstore
 *
 * With --store, completed points are persisted in a crash-safe result
 * store and a re-run of the same campaign (same code, same configs)
 * simulates only the missing points — kill it at any moment, run the
 * same command again, and it resumes. Ctrl-C is graceful: in-flight
 * points finish and are flushed, the partial manifest is written with
 * "interrupted": true, and the process exits 7.
 *
 * Exit codes: 0 success, 2 usage error, 5 some points failed (the
 * campaign itself still completed and the manifest was written),
 * 6 perf gate failed, 7 interrupted (partial manifest written).
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/experiment.hh"
#include "runahead/chain_microbench.hh"
#include "sweep/campaign.hh"
#include "sweep/report.hh"
#include "sweep/serve/daemon.hh"
#include "sweep/store/result_store.hh"
#include "workloads/suite.hh"

using namespace rab;

namespace
{

struct Options
{
    std::string preset;
    std::vector<std::string> workloads;
    std::vector<std::string> mixSpecs;
    std::vector<std::string> configs;
    std::vector<std::uint64_t> seeds;
    std::uint64_t instructions = 0; ///< 0: preset/default sizing.
    std::uint64_t warmup = 0;
    int threads = 0; ///< 0: RAB_THREADS or hardware.
    std::string outPath = "BENCH_sweep.json";
    bool toStdout = false;
    bool canonical = false;
    std::string gatePath;
    double gateThreshold = 0.15;
    std::string baselineOutPath;
    bool listPresets = false;
    bool fastForward = true;
    bool snapshotWarmup = false; ///< Shared checkpointed warmup.
    bool snapshotNoShare = false; ///< Bench control arm: no sharing.
    std::string storeDir;   ///< Result-store root ("" = no store).
    std::string servePath;  ///< Daemon socket ("" = batch mode).
    std::size_t maxJobs = 4;
    int ioTimeoutMs = 5000;
    int idleTimeoutMs = 60000;
    int retryLimit = 2;
    int retryBackoffMs = 20;
};

/** Batch-mode SIGINT latch: workers stop claiming new points. */
std::atomic<bool> g_interrupted{false};

void
onInterrupt(int)
{
    g_interrupted = true;
    // A second Ctrl-C kills the process the old-fashioned way.
    std::signal(SIGINT, SIG_DFL);
}

[[noreturn]] void
usage(int code)
{
    std::fputs(
        "rabsweep - parallel sweep campaigns with JSON manifests\n"
        "\n"
        "  --preset NAME       fig9 | fig10 | fig17 | smoke | active |\n"
        "                      cre | mix4 | interference\n"
        "  --workloads A,B     explicit workload axis (suite names)\n"
        "  --configs A,B       config axis: baseline | runahead |\n"
        "                      runahead-enhanced | buffer | buffer-cc |\n"
        "                      hybrid | cre | cre-hybrid, each\n"
        "                      optionally with a +pf\n"
        "                      suffix (e.g. hybrid+pf); '|'-joined\n"
        "                      labels (hybrid|baseline) set one policy\n"
        "                      per core of a --mix point\n"
        "  --mix [LABEL=]A,B   multi-core mix axis entry: one shared-\n"
        "                      memory MultiSimulation point per variant\n"
        "                      with one core per workload (repeatable)\n"
        "  --seeds N,M         seed axis (0 = workload default)\n"
        "  --instructions N    measured instructions per point\n"
        "  --warmup N          warmup instructions per point\n"
        "  --threads N         worker threads (default: RAB_THREADS or\n"
        "                      all hardware threads; 1 = serial)\n"
        "  --out FILE          manifest path (default BENCH_sweep.json)\n"
        "  --stdout            print the manifest instead of writing\n"
        "  --canonical         omit volatile fields (host, git, wall\n"
        "                      times) so output is byte-stable\n"
        "  --gate FILE         perf-regression gate against a baseline\n"
        "  --gate-threshold F  max relative throughput drop (def 0.15)\n"
        "  --write-baseline F  write a new baseline and exit\n"
        "  --no-fast-forward   disable the cycle-loop fast-forward\n"
        "                      engine in every point (debugging)\n"
        "  --snapshot-warmup   warm each (workload, seed, prefetch)\n"
        "                      group once under the baseline policy,\n"
        "                      snapshot it, and fork every variant\n"
        "                      from the shared image (with --store the\n"
        "                      image itself is cached across runs)\n"
        "  --snapshot-no-share (with --snapshot-warmup) build a\n"
        "                      private image per point — benchmark\n"
        "                      control arm isolating what sharing buys\n"
        "  --list-presets      describe the presets and exit\n"
        "  --store DIR         crash-safe result store: cached points\n"
        "                      are reused, fresh ones persisted, so a\n"
        "                      killed campaign resumes on re-run\n"
        "  --retry-limit N     per-point fault retries (default 2)\n"
        "  --retry-backoff MS  base retry backoff, doubling (def 20)\n"
        "  --serve SOCKET      daemon mode: serve campaign specs over\n"
        "                      a unix socket until SIGTERM/SIGINT,\n"
        "                      then drain gracefully\n"
        "  --max-jobs N        (serve) admission-control campaign\n"
        "                      limit; excess submits are shed (def 4)\n"
        "  --io-timeout MS     (serve) per-frame read/write deadline\n"
        "                      before a client is reaped (def 5000)\n"
        "  --idle-timeout MS   (serve) reap idle connections (def\n"
        "                      60000)\n",
        code == 0 ? stdout : stderr);
    std::exit(code);
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> items;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string item =
            list.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (!item.empty())
            items.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return items;
}

ConfigVariant
parseVariant(const std::string &name)
{
    // Shared with the daemon's submit-frame parser (campaign.cc);
    // here an unknown label is a usage error, there a bad-spec frame.
    try {
        return parseVariantLabel(name);
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
}

void
describePresets()
{
    std::fputs(
        "fig9   full 29-workload suite x {baseline, runahead, buffer,\n"
        "       buffer-cc, hybrid, cre, cre-hybrid}, no prefetching;\n"
        "       40k/10k sizing\n"
        "fig10  medium+high suite x {runahead, buffer-cc} x {no-PF,\n"
        "       PF}; 40k/10k sizing\n"
        "fig17  medium+high suite x {baseline, runahead,\n"
        "       runahead-enhanced, buffer, buffer-cc, hybrid, cre,\n"
        "       cre-hybrid}; 40k/10k\n"
        "smoke  pinned CI campaign: {mcf, libq, omnetpp} x {baseline,\n"
        "       hybrid}; 150k/25k sizing — do not change without\n"
        "       regenerating bench/baseline.json\n"
        "active pinned CI campaign over low-MPKI workloads where the\n"
        "       fast-forward engine rarely fires, so throughput tracks\n"
        "       the active-window hot path: {calculix, hmmer, h264} x\n"
        "       {baseline, hybrid}; 150k/25k sizing — do not change\n"
        "       without regenerating bench/baseline-active.json\n"
        "cre    pinned CI campaign for the Continuous Runahead engine\n"
        "       gate: {mcf, libq, omnetpp} x {buffer-cc, cre,\n"
        "       cre-hybrid}; 150k/25k sizing — do not change without\n"
        "       regenerating bench/baseline-cre.json\n"
        "mix4   pinned CI multi-core campaign: the mcf+libq+omnetpp+\n"
        "       h264 shared-LLC/DRAM mix x {baseline, hybrid}; 60k/15k\n"
        "       per-core sizing — do not change without regenerating\n"
        "       bench/baseline-mix4.json\n"
        "interference\n"
        "       runahead-interference headline: the mix4 workloads\n"
        "       with per-core policies — all-baseline, all-hybrid,\n"
        "       all-buffer-cc, and hybrid/buffer-cc on the mcf core\n"
        "       only (neighbours baseline) — measuring what one\n"
        "       runahead core's extra MSHR/DRAM/LLC pressure does to\n"
        "       the chip; 60k/15k per-core sizing\n",
        stdout);
}

CampaignSpec
buildPreset(const std::string &preset)
{
    CampaignSpec spec;
    spec.name = preset;
    const auto add_suite = [&spec](const std::vector<WorkloadSpec> &s) {
        for (const WorkloadSpec &w : s)
            spec.workloads.push_back(w.params.name);
    };
    if (preset == "fig9") {
        add_suite(spec06Suite());
        for (const RunaheadConfig config :
             {RunaheadConfig::kBaseline, RunaheadConfig::kRunahead,
              RunaheadConfig::kRunaheadBuffer,
              RunaheadConfig::kRunaheadBufferCC,
              RunaheadConfig::kHybrid, RunaheadConfig::kCRE,
              RunaheadConfig::kCREHybrid})
            spec.variants.push_back(makeVariant(config, false));
        spec.instructions = 40'000;
        spec.warmup = 10'000;
    } else if (preset == "fig10") {
        add_suite(mediumHighSuite());
        for (const bool prefetch : {false, true}) {
            spec.variants.push_back(
                makeVariant(RunaheadConfig::kRunahead, prefetch));
            spec.variants.push_back(makeVariant(
                RunaheadConfig::kRunaheadBufferCC, prefetch));
        }
        spec.instructions = 40'000;
        spec.warmup = 10'000;
    } else if (preset == "fig17") {
        add_suite(mediumHighSuite());
        for (const RunaheadConfig config :
             {RunaheadConfig::kBaseline, RunaheadConfig::kRunahead,
              RunaheadConfig::kRunaheadEnhanced,
              RunaheadConfig::kRunaheadBuffer,
              RunaheadConfig::kRunaheadBufferCC,
              RunaheadConfig::kHybrid, RunaheadConfig::kCRE,
              RunaheadConfig::kCREHybrid})
            spec.variants.push_back(makeVariant(config, false));
        spec.instructions = 40'000;
        spec.warmup = 10'000;
    } else if (preset == "smoke") {
        // Pinned: the CI perf gate's throughput baseline
        // (bench/baseline.json) is measured on exactly this grid.
        spec.workloads = {"mcf", "libq", "omnetpp"};
        spec.variants = {makeVariant(RunaheadConfig::kBaseline, false),
                         makeVariant(RunaheadConfig::kHybrid, false)};
        // Sized so the campaign takes O(seconds): long enough that
        // throughput is not timing noise, short enough for every CI
        // run.
        spec.instructions = 150'000;
        spec.warmup = 25'000;
    } else if (preset == "active") {
        // Pinned: the active-window gate baseline
        // (bench/baseline-active.json) is measured on exactly this
        // grid. All three workloads are MemIntensity::kLow, so the
        // cores commit nearly every cycle and the quiescent-window
        // fast-forward engine almost never engages — throughput here
        // is dominated by the per-cycle active path (rename, issue,
        // ROB/cache queries) that the hot-path indexes accelerate.
        spec.workloads = {"calculix", "hmmer", "h264"};
        spec.variants = {makeVariant(RunaheadConfig::kBaseline, false),
                         makeVariant(RunaheadConfig::kHybrid, false)};
        spec.instructions = 150'000;
        spec.warmup = 25'000;
    } else if (preset == "mix4") {
        // Pinned: the multi-core smoke gate's throughput baseline
        // (bench/baseline-mix4.json) is measured on exactly this
        // grid. One 4-core shared-memory point per variant; sized so
        // the slowest core (mcf) finishes in O(seconds).
        spec.mixes = {makeMix4()};
        spec.variants = {makeVariant(RunaheadConfig::kBaseline, false),
                         makeVariant(RunaheadConfig::kHybrid, false)};
        spec.instructions = 60'000;
        spec.warmup = 15'000;
    } else if (preset == "cre") {
        // Pinned: the Continuous Runahead gate's throughput baseline
        // (bench/baseline-cre.json) is measured on exactly this grid.
        // buffer-cc is the closest non-engine config, so the gate
        // catches regressions in the engine's advanceTo/prefetch hot
        // path specifically, not in shared runahead machinery.
        spec.workloads = {"mcf", "libq", "omnetpp"};
        spec.variants = {
            makeVariant(RunaheadConfig::kRunaheadBufferCC, false),
            makeVariant(RunaheadConfig::kCRE, false),
            makeVariant(RunaheadConfig::kCREHybrid, false)};
        spec.instructions = 150'000;
        spec.warmup = 25'000;
    } else if (preset == "interference") {
        // The headline multi-core experiment: hold the mix4 workload
        // assignment fixed and vary only which cores run ahead.
        // Comparing "hybrid on the mcf core, baseline neighbours"
        // against all-baseline isolates the interference a single
        // runahead core inflicts through the shared MSHR pool, DRAM
        // banks and LLC; the homogeneous rows bound both ends.
        spec.mixes = {makeMix4()};
        for (const char *label :
             {"baseline", "hybrid", "buffer-cc",
              "hybrid|baseline|baseline|baseline",
              "buffer-cc|baseline|baseline|baseline"})
            spec.variants.push_back(parseVariantLabel(label));
        spec.instructions = 60'000;
        spec.warmup = 15'000;
    } else {
        fatal("unknown preset '%s' (try --list-presets)",
              preset.c_str());
    }
    return spec;
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    const auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(2);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--preset")
            opts.preset = next(i);
        else if (arg == "--workloads")
            opts.workloads = splitList(next(i));
        else if (arg == "--mix")
            opts.mixSpecs.push_back(next(i));
        else if (arg == "--configs")
            opts.configs = splitList(next(i));
        else if (arg == "--seeds") {
            for (const std::string &s : splitList(next(i)))
                opts.seeds.push_back(
                    std::strtoull(s.c_str(), nullptr, 10));
        } else if (arg == "--instructions")
            opts.instructions = std::strtoull(next(i), nullptr, 10);
        else if (arg == "--warmup")
            opts.warmup = std::strtoull(next(i), nullptr, 10);
        else if (arg == "--threads")
            opts.threads = std::atoi(next(i));
        else if (arg == "--out")
            opts.outPath = next(i);
        else if (arg == "--stdout")
            opts.toStdout = true;
        else if (arg == "--canonical")
            opts.canonical = true;
        else if (arg == "--gate")
            opts.gatePath = next(i);
        else if (arg == "--gate-threshold")
            opts.gateThreshold = std::atof(next(i));
        else if (arg == "--write-baseline")
            opts.baselineOutPath = next(i);
        else if (arg == "--snapshot-warmup")
            opts.snapshotWarmup = true;
        else if (arg == "--snapshot-no-share")
            opts.snapshotNoShare = true;
        else if (arg == "--no-fast-forward")
            opts.fastForward = false;
        else if (arg == "--list-presets")
            opts.listPresets = true;
        else if (arg == "--store")
            opts.storeDir = next(i);
        else if (arg == "--serve")
            opts.servePath = next(i);
        else if (arg == "--max-jobs")
            opts.maxJobs =
                static_cast<std::size_t>(std::atoi(next(i)));
        else if (arg == "--io-timeout")
            opts.ioTimeoutMs = std::atoi(next(i));
        else if (arg == "--idle-timeout")
            opts.idleTimeoutMs = std::atoi(next(i));
        else if (arg == "--retry-limit")
            opts.retryLimit = std::atoi(next(i));
        else if (arg == "--retry-backoff")
            opts.retryBackoffMs = std::atoi(next(i));
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else
            usage(2);
    }
    return opts;
}

CampaignSpec
buildSpec(const Options &opts)
{
    CampaignSpec spec;
    if (!opts.preset.empty())
        spec = buildPreset(opts.preset);
    else
        spec.name = "custom";
    if (!opts.workloads.empty()) {
        spec.workloads = opts.workloads;
        for (const std::string &name : spec.workloads) {
            if (!findWorkload(name))
                fatal("unknown workload '%s'", name.c_str());
        }
    }
    if (!opts.configs.empty()) {
        spec.variants.clear();
        for (const std::string &name : opts.configs)
            spec.variants.push_back(parseVariant(name));
    }
    if (!opts.mixSpecs.empty()) {
        spec.mixes.clear();
        for (const std::string &text : opts.mixSpecs) {
            try {
                spec.mixes.push_back(parseMixSpec(text));
            } catch (const std::exception &e) {
                fatal("%s", e.what());
            }
            for (const std::string &name :
                 spec.mixes.back().workloads) {
                if (!findWorkload(name))
                    fatal("unknown workload '%s' in --mix",
                          name.c_str());
            }
        }
    }
    if (!opts.seeds.empty())
        spec.seeds = opts.seeds;
    if (opts.instructions > 0)
        spec.instructions = opts.instructions;
    if (opts.warmup > 0)
        spec.warmup = opts.warmup;
    spec.fastForward = opts.fastForward;
    spec.snapshotWarmup = opts.snapshotWarmup;
    spec.retryLimit = opts.retryLimit;
    spec.retryBackoffMs = opts.retryBackoffMs;
    if ((spec.workloads.empty() && spec.mixes.empty())
        || spec.variants.empty())
        fatal("empty grid: give --preset, --workloads or --mix (plus "
              "--configs)");
    return spec;
}

void
printSummary(const CampaignResult &campaign)
{
    TextTable table(
        {"#", "workload", "variant", "seed", "status", "IPC", "wall s"});
    for (const PointResult &p : campaign.points) {
        const char *status = "FAILED";
        if (p.ok)
            status = p.cached ? "cached" : "ok";
        else if (!p.ran)
            status = "skipped";
        else if (p.quarantined)
            status = "QUARANTINED";
        table.addRow({std::to_string(p.point.index), p.point.workload,
                      p.point.variant, std::to_string(p.point.seed),
                      status,
                      p.ok ? strprintf("%.3f", p.result.ipc) : "-",
                      strprintf("%.2f", p.wallSeconds)});
    }
    table.print();
    std::printf("\n%zu point(s), %zu failed, %zu skipped; "
                "%d thread(s); wall %.2f s; %.3g simulated cycles/s\n",
                campaign.points.size(),
                campaign.failedCount() - campaign.skippedCount(),
                campaign.skippedCount(), campaign.threads,
                campaign.wallSeconds,
                campaignCyclesPerSecond(campaign));
    if (campaign.storeHits + campaign.storeMisses > 0) {
        std::printf("store: %llu hit(s), %llu miss(es), %llu corrupt "
                    "record(s) discarded\n",
                    (unsigned long long)campaign.storeHits,
                    (unsigned long long)campaign.storeMisses,
                    (unsigned long long)campaign.storeCorrupt);
    }
    if (campaign.storeSnapshotHits + campaign.storeSnapshotMisses > 0) {
        std::printf("warmup snapshots: %llu hit(s), %llu miss(es)\n",
                    (unsigned long long)campaign.storeSnapshotHits,
                    (unsigned long long)campaign.storeSnapshotMisses);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const Options opts = parseArgs(argc, argv);
    if (opts.listPresets) {
        describePresets();
        return 0;
    }

    if (!opts.servePath.empty()) {
        DaemonConfig config;
        config.socketPath = opts.servePath;
        config.storeDir = opts.storeDir;
        config.threads = resolveThreads(opts.threads);
        config.maxActiveJobs = opts.maxJobs;
        config.ioTimeoutMs = opts.ioTimeoutMs;
        config.idleTimeoutMs = opts.idleTimeoutMs;
        config.retryLimit = opts.retryLimit;
        config.retryBackoffMs = opts.retryBackoffMs;
        return serveDaemon(config);
    }

    const CampaignSpec spec = buildSpec(opts);
    // Same precedence as BenchOptions::fromEnv: explicit --threads,
    // then RAB_THREADS, then all hardware threads.
    const int threads = resolveThreads(opts.threads);

    std::unique_ptr<ResultStore> store;
    if (!opts.storeDir.empty()) {
        store = std::make_unique<ResultStore>(opts.storeDir);
        if (!store->ok())
            fatal("--store: %s", store->error().c_str());
    }

    std::fprintf(stderr,
                 "rabsweep: campaign '%s', %zu points on %d "
                 "thread(s)%s\n",
                 spec.name.c_str(), spec.pointCount(), threads,
                 store ? ", resumable (Ctrl-C is graceful)" : "");
    CampaignRunOptions run_options;
    run_options.store = store.get();
    run_options.stop = &g_interrupted;
    run_options.snapshotNoShare = opts.snapshotNoShare;
    std::signal(SIGINT, onInterrupt);
    const CampaignResult campaign =
        runCampaign(spec, threads, run_options);
    std::signal(SIGINT, SIG_DFL);
    if (campaign.interrupted) {
        std::fprintf(stderr,
                     "rabsweep: interrupted — %zu of %zu point(s) "
                     "skipped; partial manifest follows%s\n",
                     campaign.skippedCount(), campaign.points.size(),
                     store ? " (re-run the same command to resume)"
                           : "");
    }

    if (!opts.baselineOutPath.empty()) {
        // Interruption takes precedence over every other verdict: a
        // partial campaign must never become a baseline (it would
        // silently lower the bar for every future gate).
        if (campaign.interrupted) {
            std::fprintf(stderr,
                         "rabsweep: refusing to write a baseline from "
                         "an interrupted (partial) campaign\n");
            return resolveSweepExitCode(true, false, false);
        }
        if (campaign.failedCount() > 0) {
            std::fprintf(stderr,
                         "rabsweep: refusing to write a baseline from "
                         "a campaign with failed points\n");
            return resolveSweepExitCode(false, true, false);
        }
        if (!writeJsonFile(opts.baselineOutPath,
                           makeBaseline(campaign))) {
            fatal("cannot write '%s'", opts.baselineOutPath.c_str());
        }
        std::printf("baseline (%.3g simulated cycles/s) -> %s\n",
                    campaignCyclesPerSecond(campaign),
                    opts.baselineOutPath.c_str());
        return 0;
    }

    Json manifest = campaignManifest(campaign, opts.canonical);
    if (!opts.canonical) {
        // Record the chain-generation indexing speedup this binary
        // achieves on this host (timing data, so omitted from
        // --canonical manifests like wall times are).
        manifest["chain_gen_microbench"] =
            chainGenMicrobenchJson(runChainGenMicrobench(192, 2000));
    }
    if (opts.toStdout) {
        std::fputs(manifest.dump().c_str(), stdout);
    } else {
        if (!writeJsonFile(opts.outPath, manifest))
            fatal("cannot write '%s'", opts.outPath.c_str());
        printSummary(campaign);
        std::printf("manifest -> %s\n", opts.outPath.c_str());
    }

    // Exit-code precedence lives in resolveSweepExitCode (and its
    // unit test): interruption means the grid was cut short, not
    // refuted — a gate verdict over partial data would be meaningless,
    // so the gate is not even evaluated.
    bool gate_failed = false;
    if (!campaign.interrupted && !opts.gatePath.empty()) {
        GateResult gate;
        try {
            gate = perfGate(campaign, readJsonFile(opts.gatePath),
                            opts.gateThreshold);
        } catch (const JsonError &e) {
            std::fprintf(stderr, "rabsweep: gate error: %s\n",
                         e.what());
            return resolveSweepExitCode(false, false, true);
        }
        std::printf("perf gate: %s — %s\n",
                    gate.pass ? "PASS" : "FAIL",
                    gate.message.c_str());
        gate_failed = !gate.pass;
    }
    return resolveSweepExitCode(campaign.interrupted,
                                campaign.failedCount() > 0,
                                gate_failed);
}
