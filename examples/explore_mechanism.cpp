/**
 * @file
 * Look inside the runahead buffer mechanism on one workload: runs every
 * configuration and prints the microarchitectural story — stall
 * breakdown, runahead intervals, generated MLP, chain cache behaviour,
 * front-end gating, DRAM traffic and energy.
 *
 *   ./build/examples/explore_mechanism [workload] [instructions]
 *
 * Tip: set RAB_DUMP_CHAIN=1 to print the first few dependence chains
 * loaded into the runahead buffer.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "core/simulation.hh"
#include "workloads/suite.hh"

using namespace rab;

namespace
{

void
report(const char *label, Simulation &sim, const SimResult &r,
       const SimResult &base)
{
    Core &core = sim.core();
    std::printf("--- %s ---\n", label);
    std::printf("  IPC %.3f (%+.1f%% vs baseline), %llu cycles\n", r.ipc,
                100.0 * (r.ipc / base.ipc - 1.0),
                (unsigned long long)r.cycles);
    std::printf("  memory stall %.1f%% of cycles, MPKI %.1f\n",
                r.memStallFraction * 100.0, r.mpki);
    if (r.runaheadIntervals > 0) {
        RunaheadController &ra = core.runahead();
        std::printf("  runahead: %llu intervals, %.2f new misses each, "
                    "%.1f%% of cycles in buffer mode\n",
                    (unsigned long long)r.runaheadIntervals,
                    r.missesPerInterval, r.bufferCycleFraction * 100.0);
        std::printf("  chains: %llu generated (%llu ops), %llu cache "
                    "hits (%.0f%% exact), %llu no-PC-match\n",
                    (unsigned long long)
                        ra.chainGenerator().generatedChains.value(),
                    (unsigned long long)
                        ra.chainGenerator().generatedOps.value(),
                    (unsigned long long)ra.chainCache().hits.value(),
                    r.chainCacheExactRate * 100.0,
                    (unsigned long long)
                        ra.chainGenerator().noPcMatch.value());
        std::printf("  front-end: %llu uops fetched, %llu cycles "
                    "clock-gated\n",
                    (unsigned long long)
                        core.frontend().fetchedUops.value(),
                    (unsigned long long)
                        core.frontend().gatedCycles.value());
    }
    std::printf("  DRAM requests %llu (%+.1f%% vs baseline)\n",
                (unsigned long long)r.dramRequests,
                100.0 * (static_cast<double>(r.dramRequests)
                             / static_cast<double>(base.dramRequests)
                         - 1.0));
    std::printf("  energy %.2f uJ (%+.1f%% vs baseline): %s\n\n",
                r.energy.totalJ * 1e6,
                100.0 * (r.energy.totalJ / base.energy.totalJ - 1.0),
                r.energy.toString().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const std::string workload = argc > 1 ? argv[1] : "milc";
    const std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 60'000;
    if (!findWorkload(workload)) {
        std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
        return 1;
    }

    std::printf("workload %s, %llu instructions\n\n", workload.c_str(),
                (unsigned long long)instructions);

    SimResult base;
    {
        SimConfig config = makeConfig(RunaheadConfig::kBaseline, false);
        config.instructions = instructions;
        config.warmupInstructions = instructions / 4;
        Simulation sim(config, buildSuiteWorkload(workload));
        base = sim.run();
        report("Baseline (no prefetching)", sim, base, base);
    }
    for (const RunaheadConfig rc :
         {RunaheadConfig::kRunahead, RunaheadConfig::kRunaheadEnhanced,
          RunaheadConfig::kRunaheadBuffer,
          RunaheadConfig::kRunaheadBufferCC, RunaheadConfig::kHybrid}) {
        SimConfig config = makeConfig(rc, false);
        config.instructions = instructions;
        config.warmupInstructions = instructions / 4;
        Simulation sim(config, buildSuiteWorkload(workload));
        const SimResult r = sim.run();
        report(runaheadConfigName(rc), sim, r, base);
    }
    return 0;
}
