/**
 * @file
 * rabsim — the full-featured command-line simulator driver.
 *
 * Runs any suite workload (or all of them) under any runahead
 * configuration, with Table 1 parameters overridable from the command
 * line, and dumps results as a summary line, a full statistics table,
 * or JSON.
 *
 *   rabsim --workload mcf --config hybrid --prefetch \
 *          --instructions 200000 --warmup 50000 --stats
 *   rabsim --list
 *   rabsim --workload libq --config buffer-cc --json > libq.json
 *   rabsim --workload mcf --rob 256 --buffer 64 --mem-queue 128
 *   rabsim --workload mcf --config hybrid --fault-rate 0.01 \
 *          --check cheap --check-policy degrade
 *   rabsim --workload mcf --warmup 50000 --snapshot-out warm.rabsnap
 *   rabsim --workload mcf --warmup 50000 --snapshot-in warm.rabsnap
 *
 * Exit codes: 0 success, 3 watchdog gave up (forward progress lost),
 * 4 invariant violation escaped (checker in throw policy), 8 snapshot
 * load failed under --snapshot-strict.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "checker/invariant_checker.hh"
#include "common/logging.hh"
#include "common/profiler.hh"
#include "core/multi_sim.hh"
#include "core/simulation.hh"
#include "fault/watchdog.hh"
#include "snapshot/snapshot.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

using namespace rab;

namespace
{

struct Options
{
    std::string workload = "mcf";
    bool allWorkloads = false;
    RunaheadConfig config = RunaheadConfig::kBaseline;
    bool configSet = false;
    bool prefetch = false;

    /** @{ Multi-core mode (--cores / --mix / --policies). With no
     *  explicit --config, a multi-core run sweeps all six variants. */
    int cores = 1;
    std::vector<std::string> mixWorkloads;
    std::vector<RunaheadConfig> corePolicies;
    /** @} */
    std::uint64_t instructions = 100'000;
    std::uint64_t warmup = 25'000;
    bool dumpStats = false;
    bool dumpJson = false;
    bool listWorkloads = false;
    bool printConfig = false;
    std::string tracePath;
    std::string snapshotOut;
    std::string snapshotIn;
    bool snapshotStrict = false;
    CheckLevel checkLevel = CheckLevel::kOff;
    CheckPolicy checkPolicy = CheckPolicy::kThrow;
    FaultConfig fault{};
    std::uint64_t watchdogCycles = 0;
    bool fastForward = true;

    // Table 1 overrides.
    int robEntries = 0;
    int rsEntries = 0;
    int bufferEntries = 0;
    int chainCacheEntries = 0;
    int memQueueEntries = 0;
    std::uint64_t llcBytes = 0;
};

[[noreturn]] void
usage(int code)
{
    std::fputs(
        "rabsim - runahead buffer simulator\n"
        "\n"
        "  --workload NAME     suite workload (default mcf)\n"
        "  --all               run the whole suite\n"
        "  --config NAME       baseline | runahead | runahead-enhanced |\n"
        "                      buffer | buffer-cc | hybrid | cre |\n"
        "                      cre-hybrid\n"
        "                      (multi-core default: sweep the six\n"
        "                      paper configs)\n"
        "  --cores N           simulate N cores sharing the LLC, MSHR\n"
        "                      pool and DRAM (default 1)\n"
        "  --mix A,B,...       one workload per core (implies --cores\n"
        "                      when unset; --workload replicated\n"
        "                      otherwise)\n"
        "  --policies A,B,...  per-core runahead policy (core i runs\n"
        "                      entry i mod size; overrides --config)\n"
        "  --prefetch          enable the Table 1 stream prefetcher\n"
        "  --instructions N    measured instructions (default 100000)\n"
        "  --warmup N          warmup instructions (default 25000)\n"
        "  --stats             dump the full statistics table\n"
        "  --json              dump statistics as JSON\n"
        "  --trace-out FILE    capture a retirement trace of the\n"
        "                      measured region (.rabt; --trace is an\n"
        "                      alias)\n"
        "  --snapshot-out FILE write a whole-simulator snapshot at the\n"
        "                      warmup boundary, then run as usual\n"
        "  --snapshot-in FILE  restore the warmup snapshot instead of\n"
        "                      re-running warmup (same --workload,\n"
        "                      --warmup and config flags required)\n"
        "  --snapshot-strict   exit 8 when the snapshot cannot be\n"
        "                      loaded, instead of falling back to a\n"
        "                      straight-line warmup\n"
        "  --check LEVEL       invariant checking: off | cheap | full\n"
        "                      (RAB_CHECK_LEVEL overrides)\n"
        "  --check-policy P    violation handling: throw | degrade\n"
        "                      (RAB_CHECK_POLICY overrides)\n"
        "  --fault-seed N      fault-injection RNG seed (default 1)\n"
        "  --fault-rate P      enable injection, set every rate to P\n"
        "  --fault-chain-rate P       chain-cache corruption rate\n"
        "  --fault-buffer-rate P      runahead-buffer uop flip rate\n"
        "  --fault-dram-drop-rate P   DRAM response drop rate\n"
        "  --fault-dram-delay-rate P  DRAM response delay rate\n"
        "  --fault-stall-rate P       memory-queue stall-window rate\n"
        "  --watchdog N        forward-progress watchdog bound in\n"
        "                      cycles (default: auto when faults on)\n"
        "  --no-fast-forward   tick every cycle instead of skipping\n"
        "                      quiescent stall windows (debugging)\n"
        "  --profile           per-stage wall-time profile at exit\n"
        "                      (RAB_PROFILE=1 equivalent)\n"
        "  --rob N | --rs N | --buffer N | --chain-cache N |\n"
        "  --mem-queue N | --llc BYTES     Table 1 overrides\n"
        "  --print-config      show the simulated system and exit\n"
        "  --list              list suite workloads and exit\n",
        code == 0 ? stdout : stderr);
    std::exit(code);
}

RunaheadConfig
parseConfig(const std::string &name)
{
    if (name == "baseline")
        return RunaheadConfig::kBaseline;
    if (name == "runahead")
        return RunaheadConfig::kRunahead;
    if (name == "runahead-enhanced")
        return RunaheadConfig::kRunaheadEnhanced;
    if (name == "buffer")
        return RunaheadConfig::kRunaheadBuffer;
    if (name == "buffer-cc")
        return RunaheadConfig::kRunaheadBufferCC;
    if (name == "hybrid")
        return RunaheadConfig::kHybrid;
    if (name == "cre")
        return RunaheadConfig::kCRE;
    if (name == "cre-hybrid")
        return RunaheadConfig::kCREHybrid;
    fatal("unknown --config '%s'", name.c_str());
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    const auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(2);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workload")
            opts.workload = next(i);
        else if (arg == "--all")
            opts.allWorkloads = true;
        else if (arg == "--config") {
            opts.config = parseConfig(next(i));
            opts.configSet = true;
        } else if (arg == "--cores")
            opts.cores = std::atoi(next(i));
        else if (arg == "--mix") {
            std::stringstream ss(next(i));
            std::string item;
            while (std::getline(ss, item, ',')) {
                if (!item.empty())
                    opts.mixWorkloads.push_back(item);
            }
        } else if (arg == "--policies") {
            std::stringstream ss(next(i));
            std::string item;
            while (std::getline(ss, item, ',')) {
                if (!item.empty())
                    opts.corePolicies.push_back(parseConfig(item));
            }
        } else if (arg == "--prefetch")
            opts.prefetch = true;
        else if (arg == "--instructions")
            opts.instructions = std::strtoull(next(i), nullptr, 10);
        else if (arg == "--warmup")
            opts.warmup = std::strtoull(next(i), nullptr, 10);
        else if (arg == "--stats")
            opts.dumpStats = true;
        else if (arg == "--json")
            opts.dumpJson = true;
        else if (arg == "--trace" || arg == "--trace-out")
            opts.tracePath = next(i);
        else if (arg == "--snapshot-out")
            opts.snapshotOut = next(i);
        else if (arg == "--snapshot-in")
            opts.snapshotIn = next(i);
        else if (arg == "--snapshot-strict")
            opts.snapshotStrict = true;
        else if (arg == "--check")
            opts.checkLevel = parseCheckLevel(next(i));
        else if (arg == "--check-policy")
            opts.checkPolicy = parseCheckPolicy(next(i));
        else if (arg == "--fault-seed") {
            opts.fault.enabled = true;
            opts.fault.seed = std::strtoull(next(i), nullptr, 10);
        } else if (arg == "--fault-rate") {
            opts.fault.enabled = true;
            opts.fault.setAllRates(std::atof(next(i)));
        } else if (arg == "--fault-chain-rate") {
            opts.fault.enabled = true;
            opts.fault.chainCacheRate = std::atof(next(i));
        } else if (arg == "--fault-buffer-rate") {
            opts.fault.enabled = true;
            opts.fault.bufferUopRate = std::atof(next(i));
        } else if (arg == "--fault-dram-drop-rate") {
            opts.fault.enabled = true;
            opts.fault.dramDropRate = std::atof(next(i));
        } else if (arg == "--fault-dram-delay-rate") {
            opts.fault.enabled = true;
            opts.fault.dramDelayRate = std::atof(next(i));
        } else if (arg == "--fault-stall-rate") {
            opts.fault.enabled = true;
            opts.fault.memStallRate = std::atof(next(i));
        } else if (arg == "--watchdog")
            opts.watchdogCycles = std::strtoull(next(i), nullptr, 10);
        else if (arg == "--no-fast-forward")
            opts.fastForward = false;
        else if (arg == "--profile")
            Profiler::setEnabled(true);
        else if (arg == "--rob")
            opts.robEntries = std::atoi(next(i));
        else if (arg == "--rs")
            opts.rsEntries = std::atoi(next(i));
        else if (arg == "--buffer")
            opts.bufferEntries = std::atoi(next(i));
        else if (arg == "--chain-cache")
            opts.chainCacheEntries = std::atoi(next(i));
        else if (arg == "--mem-queue")
            opts.memQueueEntries = std::atoi(next(i));
        else if (arg == "--llc")
            opts.llcBytes = std::strtoull(next(i), nullptr, 10);
        else if (arg == "--print-config")
            opts.printConfig = true;
        else if (arg == "--list")
            opts.listWorkloads = true;
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else
            usage(2);
    }
    return opts;
}

SimConfig
makeSimConfig(const Options &opts)
{
    SimConfig config = makeConfig(opts.config, opts.prefetch);
    config.instructions = opts.instructions;
    config.warmupInstructions = opts.warmup;
    config.checkLevel = opts.checkLevel;
    config.core.checkLevel = opts.checkLevel;
    config.checkPolicy = opts.checkPolicy;
    config.fault = opts.fault;
    config.fastForward = opts.fastForward;
    if (opts.watchdogCycles > 0)
        config.core.watchdog.cycles = opts.watchdogCycles;
    config.finalize();
    if (opts.robEntries > 0)
        config.core.robEntries = opts.robEntries;
    if (opts.rsEntries > 0)
        config.core.rsEntries = opts.rsEntries;
    if (opts.bufferEntries > 0) {
        config.core.runahead.bufferEntries = opts.bufferEntries;
        config.core.runahead.chainGen.maxChainLength = opts.bufferEntries;
    }
    if (opts.chainCacheEntries > 0)
        config.core.runahead.chainCacheEntries = opts.chainCacheEntries;
    if (opts.memQueueEntries > 0)
        config.mem.memQueueEntries = opts.memQueueEntries;
    if (opts.llcBytes > 0)
        config.mem.llc.sizeBytes = opts.llcBytes;
    config.energy.robEntries = config.core.robEntries;
    return config;
}

int
runOne(const Options &opts, const std::string &workload)
{
    const SimConfig config = makeSimConfig(opts);
    const auto make_sim = [&] {
        return std::make_unique<Simulation>(
            config, buildSuiteWorkload(workload));
    };
    std::unique_ptr<Simulation> sim = make_sim();

    // Warmup: restored from a snapshot, or run straight-line (and
    // optionally captured). Snapshot diagnostics go to stderr so
    // stdout stays byte-comparable between snapshot and cold runs.
    bool restored = false;
    if (!opts.snapshotIn.empty()) {
        try {
            const std::string payload =
                readSnapshotFile(opts.snapshotIn);
            restoreSnapshot(*sim, payload,
                            SnapshotRestoreMode::kExact);
            restored = true;
        } catch (const SnapshotError &e) {
            if (opts.snapshotStrict) {
                std::fprintf(stderr, "rabsim: %s\n", e.what());
                return 8;
            }
            std::fprintf(stderr,
                         "rabsim: %s; falling back to straight-line "
                         "warmup\n",
                         e.what());
            sim = make_sim(); // A failed restore taints the state.
        }
    }
    if (!restored) {
        sim->runWarmup();
        if (!opts.snapshotOut.empty()) {
            const std::string payload = captureSnapshot(*sim);
            writeSnapshotFile(opts.snapshotOut, payload);
            std::fprintf(
                stderr, "rabsim: snapshot %s (%zu bytes) -> %s\n",
                snapshotHashHex(snapshotContentHash(payload)).c_str(),
                payload.size(), opts.snapshotOut.c_str());
        }
    }

    if (!opts.tracePath.empty())
        sim->enableTrace(opts.tracePath);

    const SimResult result = sim->runMeasured();
    std::printf("%s\n", result.toString().c_str());

    if (!opts.tracePath.empty()) {
        std::fprintf(
            stderr, "rabsim: trace %llu records -> %s\n",
            (unsigned long long)summarizeTrace(opts.tracePath).totalUops,
            opts.tracePath.c_str());
    }
    if (opts.dumpStats) {
        sim->core().stats().dump(std::cout);
        sim->memory().stats().dump(std::cout);
        if (sim->faults())
            sim->faults()->stats().dump(std::cout);
    }
    if (opts.dumpJson) {
        sim->core().stats().dumpJson(std::cout);
        sim->memory().stats().dumpJson(std::cout);
        if (sim->faults())
            sim->faults()->stats().dumpJson(std::cout);
    }
    return 0;
}

/** One multi-core run under one (chip-wide or per-core) policy. */
void
runMultiOnce(const Options &opts,
             const std::vector<std::string> &workloads,
             RunaheadConfig variant)
{
    Options one = opts;
    one.config = variant;
    SimConfig config = makeSimConfig(one);
    config.numCores = static_cast<int>(workloads.size());
    config.corePolicies = opts.corePolicies;

    if (opts.corePolicies.empty()) {
        std::printf("== %s x%d ==\n", runaheadConfigName(variant),
                    config.numCores);
    } else {
        std::string names;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            if (i)
                names += '|';
            names += runaheadConfigName(
                config.corePolicy(static_cast<int>(i)));
        }
        std::printf("== %s ==\n", names.c_str());
    }

    const MultiSimResult result = simulateMix(config, workloads);
    std::printf("%s\n", result.toString().c_str());

    if (config.numCores > 1) {
        const auto stat = [&](const std::string &name) {
            const auto it = result.stats.find(name);
            return it == result.stats.end() ? 0.0 : it->second;
        };
        std::printf("  shared: cross_core_evictions=%.0f\n",
                    stat("shared.cross_core_evictions"));
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            const std::string p =
                "core" + std::to_string(i) + ".mem.";
            std::printf("  core%zu contention: bank_conflicts=%.0f "
                        "wait_cycles=%.0f evicted_by_others=%.0f "
                        "mshr_peers_held=%.0f rejects_contended=%.0f\n",
                        i, stat(p + "bank_conflicts"),
                        stat(p + "bank_conflict_wait_cycles"),
                        stat(p + "llc_evicted_by_others"),
                        stat(p + "shared_mshr_peers_held"),
                        stat(p + "queue_rejects_contended"));
        }
    }

    if (opts.dumpStats) {
        for (const auto &[name, value] : result.stats)
            std::printf("%-48s %.0f\n", name.c_str(), value);
    }
    if (opts.dumpJson) {
        std::printf("{\n");
        bool first = true;
        for (const auto &[name, value] : result.stats) {
            std::printf("%s  \"%s\": %.17g", first ? "" : ",\n",
                        name.c_str(), value);
            first = false;
        }
        std::printf("\n}\n");
    }
}

int
runMulti(const Options &opts)
{
    std::vector<std::string> workloads = opts.mixWorkloads;
    if (workloads.empty())
        workloads.assign(static_cast<std::size_t>(opts.cores),
                         opts.workload);
    else if (opts.cores > static_cast<int>(workloads.size())) {
        // --cores larger than the mix: cycle the mix entries.
        std::vector<std::string> cycled;
        for (int i = 0; i < opts.cores; ++i)
            cycled.push_back(
                workloads[static_cast<std::size_t>(i)
                          % workloads.size()]);
        workloads = std::move(cycled);
    }
    for (const std::string &name : workloads) {
        if (!findWorkload(name))
            fatal("unknown workload '%s' (try --list)", name.c_str());
    }

    // Explicit --config (or --policies) pins the run; otherwise a
    // multi-core invocation sweeps all six variants chip-wide.
    std::vector<RunaheadConfig> variants;
    if (opts.configSet || !opts.corePolicies.empty()) {
        variants = {opts.config};
    } else {
        variants = {RunaheadConfig::kBaseline,
                    RunaheadConfig::kRunahead,
                    RunaheadConfig::kRunaheadEnhanced,
                    RunaheadConfig::kRunaheadBuffer,
                    RunaheadConfig::kRunaheadBufferCC,
                    RunaheadConfig::kHybrid};
    }
    for (const RunaheadConfig variant : variants)
        runMultiOnce(opts, workloads, variant);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const Options opts = parseArgs(argc, argv);

    if (opts.listWorkloads) {
        for (const WorkloadSpec &spec : spec06Suite()) {
            std::printf("%-12s %s\n", spec.params.name.c_str(),
                        intensityName(spec.intensity));
        }
        return 0;
    }
    if (opts.printConfig) {
        std::fputs(makeSimConfig(opts).table1String().c_str(), stdout);
        return 0;
    }

    try {
        if (opts.cores > 1 || !opts.mixWorkloads.empty())
            return runMulti(opts);
        if (opts.allWorkloads) {
            for (const WorkloadSpec &spec : spec06Suite())
                runOne(opts, spec.params.name);
            return 0;
        }
        if (!findWorkload(opts.workload)) {
            fatal("unknown workload '%s' (try --list)",
                  opts.workload.c_str());
        }
        return runOne(opts, opts.workload);
    } catch (const WatchdogTimeout &e) {
        // Forward progress could not be restored within the recovery
        // budget: one-line diagnosis, distinct exit code.
        std::fprintf(stderr,
                     "rabsim: watchdog gave up at cycle %llu after %d "
                     "recoveries: forward progress lost (likely an "
                     "unrecoverable injected fault)\n",
                     (unsigned long long)e.cycle(), e.recoveries());
        return 3;
    } catch (const InvariantViolation &e) {
        std::fprintf(stderr,
                     "rabsim: invariant violation in module '%s': %s\n",
                     e.module().c_str(), e.what());
        return 4;
    }
}
