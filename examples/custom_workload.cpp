/**
 * @file
 * Bring-your-own-kernel: build a custom program with ProgramBuilder,
 * or parameterise one of the synthetic families, and measure how much
 * the runahead buffer helps it.
 *
 *   ./build/examples/custom_workload
 */

#include <cstdio>

#include "common/logging.hh"
#include "core/simulation.hh"
#include "isa/program.hh"
#include "workloads/builders.hh"

using namespace rab;

namespace
{

/** A hand-written kernel: sparse matrix-vector-ish gather/accumulate.
 *  for (;;) { i++; col = hash(i) % N; acc += A[col] * x[col & mask]; }
 */
Program
spmvKernel()
{
    ProgramBuilder b("spmv");
    constexpr ArchReg i = 1, col = 2, addr_a = 3, a_val = 4;
    constexpr ArchReg addr_x = 5, x_val = 6, prod = 7, acc = 8;
    b.initReg(10, 0x10000000);                    // A[] (256 MiB)
    b.initReg(11, 0x30000000);                    // x[] (64 KiB, hot)

    auto loop = b.label();
    b.addi(i, i, 1);
    b.mix(col, i, i, 0xabc);
    b.alu(AluFunc::kAnd, col, col, kNoArchReg, (256ull << 20) - 8);
    b.add(addr_a, 10, col);
    b.load(a_val, addr_a, 0);                     // cold gather: misses
    b.alu(AluFunc::kAnd, addr_x, col, kNoArchReg, (64 << 10) - 8);
    b.add(addr_x, 11, addr_x);
    b.load(x_val, addr_x, 0);                     // hot vector: hits
    b.mul(prod, a_val, x_val);
    b.add(acc, acc, prod);
    b.jump(loop);
    return b.build();
}

double
measure(const Program &program, RunaheadConfig rc)
{
    SimConfig config = makeConfig(rc, false);
    config.instructions = 40'000;
    config.warmupInstructions = 10'000;
    Simulation sim(config, program);
    return sim.run().ipc;
}

} // namespace

int
main()
{
    setVerbose(false);

    std::puts("1) hand-written SpMV-style kernel");
    const Program spmv = spmvKernel();
    const double base = measure(spmv, RunaheadConfig::kBaseline);
    std::printf("   baseline IPC %.3f\n", base);
    std::printf("   runahead          %+6.1f%%\n",
                100.0 * (measure(spmv, RunaheadConfig::kRunahead) / base
                         - 1.0));
    std::printf("   runahead buffer   %+6.1f%%\n",
                100.0
                    * (measure(spmv, RunaheadConfig::kRunaheadBufferCC)
                           / base
                       - 1.0));
    std::printf("   hybrid            %+6.1f%%\n\n",
                100.0 * (measure(spmv, RunaheadConfig::kHybrid) / base
                         - 1.0));

    std::puts("2) parameterised synthetic family (gather, sweep the "
              "dependence chain length)");
    for (const int chain : {2, 8, 16, 28, 40}) {
        WorkloadParams p;
        p.name = "sweep";
        p.family = WorkloadFamily::kGather;
        p.workingSetBytes = 64ull << 20;
        p.aluPerIter = 6;
        p.chainAlu = chain;
        const Program prog = buildWorkload(p);
        const double b0 = measure(prog, RunaheadConfig::kBaseline);
        const double rb =
            measure(prog, RunaheadConfig::kRunaheadBufferCC);
        const double hy = measure(prog, RunaheadConfig::kHybrid);
        std::printf("   chain ~%2d uops: buffer %+6.1f%%  hybrid "
                    "%+6.1f%%%s\n",
                    chain + 5, 100.0 * (rb / b0 - 1.0),
                    100.0 * (hy / b0 - 1.0),
                    chain + 5 > 32 ? "   (chain exceeds the 32-uop "
                                     "buffer: hybrid falls back to "
                                     "traditional runahead)"
                                   : "");
    }
    return 0;
}
