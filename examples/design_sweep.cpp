/**
 * @file
 * Design-space ablations for the mechanism's two sizing decisions:
 *  - runahead buffer capacity (the paper chose 32 uops "through
 *    sensitivity analysis", based on Figure 5's chain lengths), and
 *  - chain cache entries (the paper argues it must stay *small* so
 *    stale chains age out).
 *
 *   ./build/examples/design_sweep [workload]
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "core/simulation.hh"
#include "workloads/suite.hh"

using namespace rab;

namespace
{

double
run(const std::string &workload, int buffer_entries, int cc_entries)
{
    SimConfig config = makeConfig(RunaheadConfig::kRunaheadBufferCC,
                                  false);
    config.core.runahead.bufferEntries = buffer_entries;
    config.core.runahead.chainGen.maxChainLength = buffer_entries;
    config.core.runahead.chainCacheEntries = cc_entries;
    config.instructions = 40'000;
    config.warmupInstructions = 10'000;
    Simulation sim(config, buildSuiteWorkload(workload));
    return sim.run().ipc;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const std::string workload = argc > 1 ? argv[1] : "mcf";
    if (!findWorkload(workload)) {
        std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
        return 1;
    }

    SimConfig base_cfg = makeConfig(RunaheadConfig::kBaseline, false);
    base_cfg.instructions = 40'000;
    base_cfg.warmupInstructions = 10'000;
    Simulation base_sim(base_cfg, buildSuiteWorkload(workload));
    const double base = base_sim.run().ipc;
    std::printf("workload %s, baseline IPC %.3f\n\n", workload.c_str(),
                base);

    std::puts("runahead buffer capacity sweep (chain cache = 2):");
    for (const int entries : {8, 16, 24, 32, 48, 64}) {
        std::printf("  %2d uops: %+6.1f%%%s\n", entries,
                    100.0 * (run(workload, entries, 2) / base - 1.0),
                    entries == 32 ? "   <- Table 1" : "");
    }

    std::puts("\nchain cache entries sweep (buffer = 32):");
    for (const int entries : {1, 2, 4, 8, 16}) {
        std::printf("  %2d entries: %+6.1f%%%s\n", entries,
                    100.0 * (run(workload, 32, entries) / base - 1.0),
                    entries == 2 ? "   <- Table 1" : "");
    }
    return 0;
}
