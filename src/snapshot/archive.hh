/**
 * @file
 * Serialization archive for whole-simulator snapshots.
 *
 * One `field()` template serializes and deserializes every value
 * through the same statement list: SnapshotWriter appends bytes to a
 * growable buffer, SnapshotReader consumes them with bounds checks,
 * and `if constexpr (Ar::kIsLoad)` picks the direction. Because each
 * component's state is described exactly once, the save and load paths
 * can never disagree about layout — the property the bit-identical
 * resume guarantee rests on.
 *
 * Encoding rules (all integers little-endian, fixed width):
 *   - bool            1 byte, normalised to 0/1;
 *   - integral/enum   sizeof(T) bytes;
 *   - float/double    IEEE bit pattern, sizeof(T) bytes;
 *   - string/vector/deque  u64 count + elements;
 *   - array/pair      elements only (extent is part of the type);
 *   - map             u64 count + (key, value) in key order;
 *   - unordered_map/unordered_set  u64 count + entries sorted by key,
 *     so the byte stream never depends on hash-table iteration order;
 *   - class types     SnapshotAccess::io(ar, v) — the per-component
 *     serializers defined in snapshot.cc.
 *
 * Element counts read from a payload are validated against the bytes
 * remaining before any container is resized, so a corrupted length
 * field raises SnapshotError instead of a giant allocation.
 */

#ifndef RAB_SNAPSHOT_ARCHIVE_HH
#define RAB_SNAPSHOT_ARCHIVE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace rab
{

/** Why a snapshot was rejected. */
enum class SnapshotErrorKind
{
    kIo,        ///< File could not be opened/read/written.
    kMagic,     ///< Not a snapshot file.
    kVersion,   ///< Unsupported format version.
    kCrc,       ///< Payload checksum mismatch (bit rot / truncation).
    kTruncated, ///< Payload ended mid-field.
    kMismatch,  ///< Snapshot does not match the restoring simulation.
    kFormat,    ///< Structurally malformed payload.
};

const char *snapshotErrorKindName(SnapshotErrorKind kind);

/** Structured snapshot failure: every reject path throws this, so
 *  callers can always fall back to a straight-line warmup. */
class SnapshotError : public std::runtime_error
{
  public:
    SnapshotError(SnapshotErrorKind kind, const std::string &detail);

    SnapshotErrorKind kind() const { return kind_; }

  private:
    SnapshotErrorKind kind_;
};

/** Save-direction archive: appends to an in-memory byte buffer. */
class SnapshotWriter
{
  public:
    static constexpr bool kIsLoad = false;

    void bytes(const void *data, std::size_t n)
    {
        buf_.append(static_cast<const char *>(data), n);
    }

    std::size_t size() const { return buf_.size(); }

    /** Buffer access for section-length back-patching. */
    std::string &buffer() { return buf_; }

    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/** Load-direction archive: bounds-checked cursor over a payload. */
class SnapshotReader
{
  public:
    static constexpr bool kIsLoad = true;

    SnapshotReader(const void *data, std::size_t size)
        : cur_(static_cast<const std::uint8_t *>(data)),
          end_(cur_ + size), begin_(cur_)
    {
    }

    explicit SnapshotReader(const std::string &payload)
        : SnapshotReader(payload.data(), payload.size())
    {
    }

    void bytes(void *out, std::size_t n)
    {
        if (remaining() < n) {
            throw SnapshotError(SnapshotErrorKind::kTruncated,
                                "payload ended mid-field");
        }
        std::memcpy(out, cur_, n);
        cur_ += n;
    }

    void skip(std::size_t n)
    {
        if (remaining() < n) {
            throw SnapshotError(SnapshotErrorKind::kTruncated,
                                "payload ended mid-section");
        }
        cur_ += n;
    }

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end_ - cur_);
    }

    std::size_t offset() const
    {
        return static_cast<std::size_t>(cur_ - begin_);
    }

  private:
    const std::uint8_t *cur_;
    const std::uint8_t *end_;
    const std::uint8_t *begin_;
};

/** @{ Container-shape detection for field()'s dispatch. */
template <class T> struct SnapIsVector : std::false_type
{
};
template <class T> struct SnapIsVector<std::vector<T>> : std::true_type
{
};
template <class T> struct SnapIsDeque : std::false_type
{
};
template <class T> struct SnapIsDeque<std::deque<T>> : std::true_type
{
};
template <class T> struct SnapIsArray : std::false_type
{
};
template <class T, std::size_t N>
struct SnapIsArray<std::array<T, N>> : std::true_type
{
};
template <class T> struct SnapIsPair : std::false_type
{
};
template <class A, class B>
struct SnapIsPair<std::pair<A, B>> : std::true_type
{
};
template <class T> struct SnapIsMap : std::false_type
{
};
template <class K, class V, class C, class A>
struct SnapIsMap<std::map<K, V, C, A>> : std::true_type
{
};
template <class T> struct SnapIsUnorderedMap : std::false_type
{
};
template <class K, class V, class H, class E, class A>
struct SnapIsUnorderedMap<std::unordered_map<K, V, H, E, A>>
    : std::true_type
{
};
template <class T> struct SnapIsUnorderedSet : std::false_type
{
};
template <class K, class H, class E, class A>
struct SnapIsUnorderedSet<std::unordered_set<K, H, E, A>>
    : std::true_type
{
};
/** @} */

/**
 * Private-state access hub. Every serialized component declares
 * `friend struct SnapshotAccess;`, and the matching io() definition
 * (all of them live in snapshot.cc, one translation unit) walks the
 * member list. Nested private structs are serialized inline inside the
 * owning class's io() — friendship covers them.
 */
class BranchPredictor;
class Cache;
class ChainAnalysis;
class ChainCache;
class ChainEngine;
class ChainGenerator;
class Core;
class Counter;
class DegradationLadder;
class Distribution;
class Dram;
class FaultInjector;
class ForwardProgressWatchdog;
class Frontend;
class FunctionalMemory;
class GhbPrefetcher;
class InvariantChecker;
class IssuePorts;
class MemorySystem;
class PhysRegFile;
class Rat;
class ReservationStation;
class Rng;
class Rob;
class RunaheadBuffer;
class RunaheadCache;
class RunaheadController;
class SharedMemory;
class StoreQueue;
class StreamPrefetcher;
class StridePrefetcher;
class WritebackQueue;
struct ArchCheckpoint;
struct ChainOp;
struct DynUop;
struct FetchedUop;
struct Uop;
struct WbEvent;

struct SnapshotAccess
{
    /** @{ Per-component serializers (definitions in snapshot.cc). */
    template <class Ar> static void io(Ar &ar, Counter &v);
    template <class Ar> static void io(Ar &ar, Distribution &v);
    template <class Ar> static void io(Ar &ar, Rng &v);
    template <class Ar> static void io(Ar &ar, Uop &v);
    template <class Ar> static void io(Ar &ar, DynUop &v);
    template <class Ar> static void io(Ar &ar, ChainOp &v);
    template <class Ar> static void io(Ar &ar, FetchedUop &v);
    template <class Ar> static void io(Ar &ar, WbEvent &v);
    template <class Ar> static void io(Ar &ar, ArchCheckpoint &v);
    template <class Ar> static void io(Ar &ar, BranchPredictor &v);
    template <class Ar> static void io(Ar &ar, Frontend &v);
    template <class Ar> static void io(Ar &ar, PhysRegFile &v);
    template <class Ar> static void io(Ar &ar, Rat &v);
    template <class Ar> static void io(Ar &ar, Rob &v);
    template <class Ar> static void io(Ar &ar, ReservationStation &v);
    template <class Ar> static void io(Ar &ar, StoreQueue &v);
    template <class Ar> static void io(Ar &ar, WritebackQueue &v);
    template <class Ar> static void io(Ar &ar, IssuePorts &v);
    template <class Ar> static void io(Ar &ar, FunctionalMemory &v);
    template <class Ar> static void io(Ar &ar, Cache &v);
    template <class Ar> static void io(Ar &ar, Dram &v);
    template <class Ar> static void io(Ar &ar, StreamPrefetcher &v);
    template <class Ar> static void io(Ar &ar, StridePrefetcher &v);
    template <class Ar> static void io(Ar &ar, GhbPrefetcher &v);
    template <class Ar> static void io(Ar &ar, MemorySystem &v);
    template <class Ar> static void io(Ar &ar, SharedMemory &v);
    template <class Ar> static void io(Ar &ar, RunaheadCache &v);
    template <class Ar> static void io(Ar &ar, RunaheadBuffer &v);
    template <class Ar> static void io(Ar &ar, ChainCache &v);
    template <class Ar> static void io(Ar &ar, ChainGenerator &v);
    template <class Ar> static void io(Ar &ar, ChainAnalysis &v);
    template <class Ar> static void io(Ar &ar, DegradationLadder &v);
    template <class Ar> static void io(Ar &ar, ChainEngine &v);
    template <class Ar> static void io(Ar &ar, RunaheadController &v);
    template <class Ar> static void io(Ar &ar, FaultInjector &v);
    template <class Ar>
    static void io(Ar &ar, ForwardProgressWatchdog &v);
    template <class Ar> static void io(Ar &ar, InvariantChecker &v);
    template <class Ar> static void io(Ar &ar, Core &v);
    /** @} */
};

/** Fixed-width little-endian scalar (integral, enum or float). */
template <class Ar, class T>
void
fieldScalar(Ar &ar, T &v)
{
    static_assert(sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4
                  || sizeof(T) == 8);
    using U = std::conditional_t<
        sizeof(T) == 1, std::uint8_t,
        std::conditional_t<
            sizeof(T) == 2, std::uint16_t,
            std::conditional_t<sizeof(T) == 4, std::uint32_t,
                               std::uint64_t>>>;
    std::uint8_t raw[sizeof(T)];
    if constexpr (!Ar::kIsLoad) {
        U u;
        std::memcpy(&u, &v, sizeof(T));
        for (std::size_t i = 0; i < sizeof(T); ++i)
            raw[i] = static_cast<std::uint8_t>(u >> (8 * i));
        ar.bytes(raw, sizeof(T));
    } else {
        ar.bytes(raw, sizeof(T));
        U u = 0;
        for (std::size_t i = 0; i < sizeof(T); ++i)
            u |= static_cast<U>(raw[i]) << (8 * i);
        std::memcpy(&v, &u, sizeof(T));
    }
}

/**
 * Element-count token: written on save; on load it is read and
 * validated against the bytes remaining (each element needs at least
 * @p min_elem_bytes), so corrupt counts fail fast instead of resizing
 * a container to garbage.
 */
template <class Ar>
std::uint64_t
fieldCount(Ar &ar, std::uint64_t n, std::size_t min_elem_bytes = 1)
{
    fieldScalar(ar, n);
    if constexpr (Ar::kIsLoad) {
        if (min_elem_bytes == 0)
            min_elem_bytes = 1;
        if (n > ar.remaining() / min_elem_bytes) {
            throw SnapshotError(SnapshotErrorKind::kTruncated,
                                "element count exceeds payload size");
        }
    }
    return n;
}

template <class Ar, class T> void field(Ar &ar, T &v);

/**
 * Size-prefixed sequence with a caller-supplied element serializer —
 * the idiom for containers of classes' private nested structs, which
 * the generic field() cannot name.
 */
template <class Ar, class C, class Fn>
void
fieldSeq(Ar &ar, C &c, Fn fn)
{
    std::uint64_t n = fieldCount(ar, c.size());
    if constexpr (Ar::kIsLoad)
        c.resize(static_cast<std::size_t>(n));
    for (auto &elem : c)
        fn(ar, elem);
}

template <class Ar, class T>
void
field(Ar &ar, T &v)
{
    if constexpr (std::is_same_v<T, bool>) {
        std::uint8_t b = v ? 1 : 0;
        fieldScalar(ar, b);
        if constexpr (Ar::kIsLoad)
            v = b != 0;
    } else if constexpr (std::is_integral_v<T> || std::is_enum_v<T>
                         || std::is_floating_point_v<T>) {
        fieldScalar(ar, v);
    } else if constexpr (std::is_same_v<T, std::string>) {
        std::uint64_t n = fieldCount(ar, v.size());
        if constexpr (Ar::kIsLoad)
            v.resize(static_cast<std::size_t>(n));
        if (n > 0)
            ar.bytes(v.data(), static_cast<std::size_t>(n));
    } else if constexpr (std::is_same_v<T, std::vector<bool>>) {
        std::uint64_t n = fieldCount(ar, v.size());
        if constexpr (Ar::kIsLoad)
            v.assign(static_cast<std::size_t>(n), false);
        for (std::size_t i = 0; i < n; ++i) {
            std::uint8_t b = 0;
            if constexpr (!Ar::kIsLoad)
                b = v[i] ? 1 : 0;
            fieldScalar(ar, b);
            if constexpr (Ar::kIsLoad)
                v[i] = b != 0;
        }
    } else if constexpr (SnapIsVector<T>::value
                         || SnapIsDeque<T>::value) {
        fieldSeq(ar, v,
                 [](Ar &a, auto &elem) { field(a, elem); });
    } else if constexpr (SnapIsArray<T>::value) {
        for (auto &elem : v)
            field(ar, elem);
    } else if constexpr (SnapIsPair<T>::value) {
        field(ar, v.first);
        field(ar, v.second);
    } else if constexpr (SnapIsMap<T>::value) {
        std::uint64_t n = fieldCount(ar, v.size());
        if constexpr (!Ar::kIsLoad) {
            for (auto &kv : v) {
                auto key = kv.first;
                field(ar, key);
                field(ar, kv.second);
            }
        } else {
            v.clear();
            auto hint = v.end();
            for (std::uint64_t i = 0; i < n; ++i) {
                typename T::key_type key{};
                typename T::mapped_type val{};
                field(ar, key);
                field(ar, val);
                hint = v.emplace_hint(hint, std::move(key),
                                      std::move(val));
            }
        }
    } else if constexpr (SnapIsUnorderedMap<T>::value) {
        std::uint64_t n = fieldCount(ar, v.size());
        if constexpr (!Ar::kIsLoad) {
            using Item = std::pair<typename T::key_type,
                                   typename T::mapped_type>;
            std::vector<Item> items(v.begin(), v.end());
            std::sort(items.begin(), items.end(),
                      [](const Item &a, const Item &b) {
                          return a.first < b.first;
                      });
            for (auto &kv : items) {
                field(ar, kv.first);
                field(ar, kv.second);
            }
        } else {
            v.clear();
            v.reserve(static_cast<std::size_t>(n));
            for (std::uint64_t i = 0; i < n; ++i) {
                typename T::key_type key{};
                typename T::mapped_type val{};
                field(ar, key);
                field(ar, val);
                v.emplace(std::move(key), std::move(val));
            }
        }
    } else if constexpr (SnapIsUnorderedSet<T>::value) {
        std::uint64_t n = fieldCount(ar, v.size());
        if constexpr (!Ar::kIsLoad) {
            std::vector<typename T::key_type> keys(v.begin(), v.end());
            std::sort(keys.begin(), keys.end());
            for (auto &key : keys)
                field(ar, key);
        } else {
            v.clear();
            v.reserve(static_cast<std::size_t>(n));
            for (std::uint64_t i = 0; i < n; ++i) {
                typename T::key_type key{};
                field(ar, key);
                v.emplace(std::move(key));
            }
        }
    } else {
        SnapshotAccess::io(ar, v);
    }
}

} // namespace rab

#endif // RAB_SNAPSHOT_ARCHIVE_HH
