/**
 * @file
 * Whole-simulator snapshot capture/restore.
 *
 * This translation unit holds every per-component serializer
 * (SnapshotAccess::io definitions — the single save/load description
 * of each class's state), the section framing, the config digests and
 * the CRC-framed file I/O. Keeping all of it in one TU means the
 * component headers stay free of serialization code beyond their one
 * `friend struct SnapshotAccess;` line.
 *
 * Payload layout (DESIGN.md §16):
 *   "RABSNAP1" + u32 formatVersion + sections, each u32 tag + u64
 *   length + body:
 *     META  digests, identity, fork-safety, presence flags
 *     CORE  the full core pipeline (+ checker, watchdog, RNG-free)
 *     VRNT  variant-specific: runahead controller + chain analysis
 *     MEM   the memory hierarchy incl. the owned SharedMemory
 *     ENGN  Continuous Runahead engine (presence flag + state)
 *     FALT  fault injector (presence flag + RNG cursor + counters)
 *
 * Fork-mode restore length-skips VRNT and ENGN: a config variant keeps
 * its freshly constructed runahead structures and re-derives everything
 * variant-specific, which is only sound when the image was captured
 * outside any runahead interval (META.forkSafe).
 *
 * Not serialized, by design: config structs and config-derived fields
 * (the restoring simulation is constructed from its own config, which
 * the digests gate), wiring pointers, std::function members (the
 * functional-memory background and commit hooks are reinstalled by
 * construction), StatGroup registrations, and pure scratch buffers
 * that are overwritten before every use (RS selection buffer, WBQ
 * ready buffer, prefetch candidate list, chain-generator SRSL,
 * checker reference marks).
 */

#include "snapshot/snapshot.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <queue>

#include "backend/core.hh"
#include "common/logging.hh"
#include "core/simulation.hh"
#include "snapshot/archive.hh"

namespace rab
{

/* ------------------------------------------------------------------ */
/* Per-component serializers.                                          */
/* ------------------------------------------------------------------ */

template <class Ar>
void
SnapshotAccess::io(Ar &ar, Counter &v)
{
    field(ar, v.value_);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, Distribution &v)
{
    field(ar, v.low_);
    field(ar, v.high_);
    field(ar, v.bucketSize_);
    field(ar, v.buckets_);
    field(ar, v.underflow_);
    field(ar, v.overflow_);
    field(ar, v.samples_);
    field(ar, v.sum_);
    field(ar, v.min_);
    field(ar, v.max_);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, Rng &v)
{
    field(ar, v.state_);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, Uop &v)
{
    field(ar, v.op);
    field(ar, v.func);
    field(ar, v.cond);
    field(ar, v.dest);
    field(ar, v.src1);
    field(ar, v.src2);
    field(ar, v.imm);
    field(ar, v.target);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, DynUop &v)
{
    field(ar, v.seq);
    field(ar, v.pc);
    field(ar, v.sop);
    field(ar, v.pdst);
    field(ar, v.psrc1);
    field(ar, v.psrc2);
    field(ar, v.prevPdst);
    field(ar, v.inRs);
    field(ar, v.issued);
    field(ar, v.executed);
    field(ar, v.completed);
    field(ar, v.poisoned);
    field(ar, v.memIssued);
    field(ar, v.llcMiss);
    field(ar, v.offChipWait);
    field(ar, v.readyAt);
    field(ar, v.v1);
    field(ar, v.v2);
    field(ar, v.result);
    field(ar, v.effAddr);
    field(ar, v.missIssueInstrNum);
    field(ar, v.sqIndex);
    field(ar, v.forwarded);
    field(ar, v.isRunahead);
    field(ar, v.fromRunaheadBuffer);
    field(ar, v.srcFromOffChip);
    field(ar, v.predTaken);
    field(ar, v.actualTaken);
    field(ar, v.mispredicted);
    field(ar, v.predTarget);
    field(ar, v.nextPc);
    field(ar, v.historySnapshot);
    field(ar, v.instrNum);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, ChainOp &v)
{
    field(ar, v.pc);
    field(ar, v.sop);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, FetchedUop &v)
{
    field(ar, v.pc);
    field(ar, v.sop);
    field(ar, v.predTaken);
    field(ar, v.predTarget);
    field(ar, v.historySnapshot);
    field(ar, v.readyCycle);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, WbEvent &v)
{
    field(ar, v.when);
    field(ar, v.robSlot);
    field(ar, v.seq);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, ArchCheckpoint &v)
{
    field(ar, v.values);
    field(ar, v.branchHistory);
    field(ar, v.ras);
    field(ar, v.resumePc);
    field(ar, v.valid);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, BranchPredictor &v)
{
    field(ar, v.history_);
    field(ar, v.bimodal_);
    field(ar, v.gshare_);
    field(ar, v.chooser_);
    fieldSeq(ar, v.btb_, [](Ar &a, auto &e) {
        field(a, e.valid);
        field(a, e.pc);
        field(a, e.target);
    });
    field(ar, v.ras_);
    io(ar, v.lookups);
    io(ar, v.mispredicts);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, Frontend &v)
{
    field(ar, v.fetchPc_);
    field(ar, v.gated_);
    field(ar, v.stalledUntil_);
    field(ar, v.queue_);
    field(ar, v.queueHead_);
    field(ar, v.queueCount_);
    io(ar, v.fetchedUops);
    io(ar, v.activeCycles);
    io(ar, v.gatedCycles);
    io(ar, v.idleCycles);
    io(ar, v.icacheStallCycles);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, PhysRegFile &v)
{
    fieldSeq(ar, v.regs_, [](Ar &a, auto &r) {
        field(a, r.value);
        field(a, r.ready);
        field(a, r.poisoned);
        field(a, r.offChip);
        field(a, r.allocated);
    });
    field(ar, v.freeList_);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, Rat &v)
{
    field(ar, v.map_);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, Rob &v)
{
    const auto io_ends = [](Ar &a, auto &ends) {
        field(a, ends.front);
        field(a, ends.back);
    };
    const auto io_links = [](Ar &a, auto &l) {
        field(a, l.prev);
        field(a, l.next);
    };
    field(ar, v.head_);
    field(ar, v.size_);
    field(ar, v.entries_); // Whole ring, dead slots included: exact.
    field(ar, v.live_);
    fieldSeq(ar, v.pcCells_, [&](Ar &a, auto &c) {
        field(a, c.pc);
        io_ends(a, c.ends);
        field(a, c.used);
    });
    field(ar, v.pcMask_);
    field(ar, v.pcUsed_);
    field(ar, v.pcCellOf_);
    fieldSeq(ar, v.pcLinks_, io_links);
    fieldSeq(ar, v.regIndex_, io_ends);
    fieldSeq(ar, v.regLinks_, io_links);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, ReservationStation &v)
{
    field(ar, v.size_);
    fieldSeq(ar, v.entries_, [](Ar &a, auto &e) {
        field(a, e.valid);
        field(a, e.wait1);
        field(a, e.wait2);
        field(a, e.robSlot);
        field(a, e.seq);
        field(a, e.src1);
        field(a, e.src2);
    });
    field(ar, v.freeSlots_);
    field(ar, v.readyList_);
    field(ar, v.waiters_); // Exact, stale entries included: the drain
                           // order of a wakeup list is visible.
    io(ar, v.inserts);
    io(ar, v.wakeups);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, StoreQueue &v)
{
    fieldSeq(ar, v.entries_, [](Ar &a, auto &e) {
        field(a, e.seq);
        field(a, e.robSlot);
        field(a, e.wordAddr);
        field(a, e.data);
        field(a, e.dataReady);
        field(a, e.addrPoisoned);
        field(a, e.dataPoisoned);
    });
    io(ar, v.forwards);
    io(ar, v.unknownAddrStalls);
    io(ar, v.searches);
}

namespace
{

/** Expose a priority_queue's underlying container (protected member
 *  `c`). Round-tripping the raw heap vector is exact: std heap
 *  operations are deterministic functions of the container contents. */
template <class T, class C, class Cmp>
C &
pqContainer(std::priority_queue<T, C, Cmp> &q)
{
    struct Hack : std::priority_queue<T, C, Cmp>
    {
        static C &get(std::priority_queue<T, C, Cmp> &pq)
        {
            return pq.*&Hack::c;
        }
    };
    return Hack::get(q);
}

} // namespace

template <class Ar>
void
SnapshotAccess::io(Ar &ar, WritebackQueue &v)
{
    field(ar, pqContainer(v.heap_));
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, IssuePorts &v)
{
    field(ar, v.usedWidth_);
    field(ar, v.usedMem_);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, FunctionalMemory &v)
{
    field(ar, v.mem_); // Sorted by address on save (see archive.hh).
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, Cache &v)
{
    fieldSeq(ar, v.lines_, [](Ar &a, auto &l) {
        field(a, l.valid);
        field(a, l.dirty);
        field(a, l.prefetched);
        field(a, l.tag);
        field(a, l.lruStamp);
    });
    field(ar, v.lruCounter_);
    field(ar, v.mruWay_);
    field(ar, v.validMask_);
    io(ar, v.hits);
    io(ar, v.misses);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, Dram &v)
{
    fieldSeq(ar, v.banks_, [](Ar &a, auto &b) {
        field(a, b.rowOpen);
        field(a, b.openRow);
        field(a, b.freeAt);
    });
    field(ar, v.busFreeAt_);
    io(ar, v.reads);
    io(ar, v.writes);
    io(ar, v.rowHits);
    io(ar, v.rowConflicts);
    io(ar, v.latencySum);
    io(ar, v.queueWaitSum);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, StreamPrefetcher &v)
{
    field(ar, v.distance_); // FDP-mutable aggressiveness.
    field(ar, v.degree_);
    fieldSeq(ar, v.streams_, [](Ar &a, auto &s) {
        field(a, s.valid);
        field(a, s.confirmations);
        field(a, s.direction);
        field(a, s.lastDemand);
        field(a, s.head);
        field(a, s.lruStamp);
    });
    field(ar, v.lruCounter_);
    field(ar, v.intervalIssued_);
    field(ar, v.intervalUseful_);
    io(ar, v.issued);
    io(ar, v.useful);
    io(ar, v.unused);
    io(ar, v.streamsAllocated);
    io(ar, v.fdpDowngrades);
    io(ar, v.fdpUpgrades);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, StridePrefetcher &v)
{
    fieldSeq(ar, v.table_, [](Ar &a, auto &e) {
        field(a, e.valid);
        field(a, e.pc);
        field(a, e.lastLine);
        field(a, e.stride);
        field(a, e.confidence);
        field(a, e.prefetched);
    });
    io(ar, v.issued);
    io(ar, v.useful);
    io(ar, v.unused);
    io(ar, v.confirmations);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, GhbPrefetcher &v)
{
    fieldSeq(ar, v.ghb_, [](Ar &a, auto &e) {
        field(a, e.line);
        field(a, e.pc);
        field(a, e.prev);
        field(a, e.gen);
    });
    fieldSeq(ar, v.index_, [](Ar &a, auto &e) {
        field(a, e.valid);
        field(a, e.pc);
        field(a, e.head);
        field(a, e.gen);
    });
    field(ar, v.nextGen_);
    field(ar, v.nextSlot_);
    io(ar, v.issued);
    io(ar, v.useful);
    io(ar, v.unused);
    io(ar, v.correlations);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, SharedMemory &v)
{
    io(ar, v.llc_);
    io(ar, v.dram_);
    io(ar, v.prefetcher_);
    io(ar, v.stridePf_);
    io(ar, v.ghbPf_);
    field(ar, v.llcPending_);
    field(ar, v.llcPendingMax_);
    fieldSeq(ar, pqContainer(v.outstanding_), [](Ar &a, auto &m) {
        field(a, m.ready);
        field(a, m.core);
    });
    field(ar, v.heldNow_);
    field(ar, v.mshrPeak_);
    io(ar, v.crossCoreEvictions);
    io(ar, v.ownerClamps);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, MemorySystem &v)
{
    io(ar, v.l1i_);
    io(ar, v.l1d_);
    field(ar, v.l1iPending_);
    field(ar, v.l1dPending_);
    field(ar, v.l1iPendingMax_);
    field(ar, v.l1dPendingMax_);
    io(ar, v.demandLoads);
    io(ar, v.demandStores);
    io(ar, v.llcDemandMisses);
    io(ar, v.llcLoadMisses);
    io(ar, v.queueRejects);
    io(ar, v.prefetchesIssued);
    io(ar, v.mshrMerges);
    io(ar, v.memRetries);
    io(ar, v.memTimeouts);
    io(ar, v.memRetryFailures);
    io(ar, v.queueFaultStalls);
    io(ar, v.llcEvictedByOthers);
    io(ar, v.bankConflicts);
    io(ar, v.bankConflictWaitCycles);
    io(ar, v.sharedMshrPeersHeld);
    io(ar, v.queueRejectsContended);
    io(ar, v.addrHighMasked);
    io(ar, *v.shared_); // Single-core: the privately owned hierarchy.
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, RunaheadCache &v)
{
    fieldSeq(ar, v.lines_, [](Ar &a, auto &l) {
        field(a, l.valid);
        field(a, l.tag);
        field(a, l.data);
        field(a, l.lruStamp);
    });
    field(ar, v.lruCounter_);
    io(ar, v.writes);
    io(ar, v.readHits);
    io(ar, v.readMisses);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, RunaheadBuffer &v)
{
    field(ar, v.active_);
    field(ar, v.chain_);
    field(ar, v.index_);
    field(ar, v.iterations_);
    io(ar, v.fills);
    io(ar, v.opsIssued);
    io(ar, v.loops);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, ChainCache &v)
{
    fieldSeq(ar, v.slots_, [](Ar &a, auto &s) {
        field(a, s.valid);
        field(a, s.pc);
        field(a, s.chain);
        field(a, s.lruStamp);
    });
    field(ar, v.lruCounter_);
    io(ar, v.hits);
    io(ar, v.misses);
    io(ar, v.inserts);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, ChainGenerator &v)
{
    // The SRSL / included-set working buffers are per-call scratch.
    io(ar, v.attempts);
    io(ar, v.noPcMatch);
    io(ar, v.overflows);
    io(ar, v.generatedChains);
    io(ar, v.generatedOps);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, ChainAnalysis &v)
{
    field(ar, v.inInterval_);
    // history_ maps SeqNum -> private Rec: serialized inline, in key
    // order (std::map iteration).
    std::uint64_t n = fieldCount(ar, v.history_.size());
    if constexpr (!Ar::kIsLoad) {
        for (auto &kv : v.history_) {
            SeqNum seq = kv.first;
            field(ar, seq);
            field(ar, kv.second.pc);
            field(ar, kv.second.dest);
            field(ar, kv.second.src1);
            field(ar, kv.second.src2);
        }
    } else {
        v.history_.clear();
        auto hint = v.history_.end();
        for (std::uint64_t i = 0; i < n; ++i) {
            SeqNum seq = 0;
            field(ar, seq);
            typename std::decay_t<decltype(v.history_)>::mapped_type
                rec{};
            field(ar, rec.pc);
            field(ar, rec.dest);
            field(ar, rec.src1);
            field(ar, rec.src2);
            hint = v.history_.emplace_hint(hint, seq, rec);
        }
    }
    field(ar, v.intervalSignatures_);
    field(ar, v.intervalNecessary_);
    field(ar, v.intervalExecuted_);
    io(ar, v.opsExecuted);
    io(ar, v.opsNecessary);
    io(ar, v.chainsTotal);
    io(ar, v.chainsRepeated);
    io(ar, v.chainLengthSum);
    io(ar, v.chainsMeasured);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, DegradationLadder &v)
{
    field(ar, v.level_);
    field(ar, v.faultsAtLevel_);
    field(ar, v.cycle_);
    field(ar, v.lastFaultCycle_);
    field(ar, v.levelValue_);
    io(ar, v.faultsObserved);
    io(ar, v.degradeSteps);
    io(ar, v.reenableSteps);
    io(ar, v.toNoChainCache);
    io(ar, v.toNoBuffer);
    io(ar, v.toNoRunahead);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, ChainEngine &v)
{
    fieldSeq(ar, v.slots_, [](Ar &a, auto &s) {
        field(a, s.valid);
        field(a, s.running);
        field(a, s.chainPc);
        field(a, s.chain);
        field(a, s.regs);
        field(a, s.regReady);
        fieldSeq(a, s.storeBuf, [](Ar &aa, auto &st) {
            field(aa, st.addr);
            field(aa, st.value);
        });
        field(a, s.index);
        field(a, s.utility);
        field(a, s.stallUntil);
        field(a, s.fillsThisIteration);
        field(a, s.idleIterations);
    });
    field(ar, v.nextSlotRr_);
    fieldSeq(ar, v.recent_, [](Ar &a, auto &f) {
        field(a, f.line);
        field(a, f.readyCycle);
        field(a, f.issuedCycle);
        field(a, f.slot);
    });
    field(ar, v.cycle_);
    io(ar, v.chainsShipped);
    io(ar, v.chainReplacements);
    io(ar, v.uopsExecuted);
    io(ar, v.loadsExecuted);
    io(ar, v.storeUopsSeen);
    io(ar, v.storesContained);
    io(ar, v.prefetchesIssued);
    io(ar, v.prefetchesTimely);
    io(ar, v.prefetchesLate);
    io(ar, v.prefetchesUnused);
    io(ar, v.iterations);
    io(ar, v.deschedules);
    io(ar, v.queueStalls);
    io(ar, v.pacingStalls);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, RunaheadController &v)
{
    field(ar, v.mode_);
    field(ar, v.blockingReady_);
    field(ar, v.bufferIssueStart_);
    field(ar, v.enteredAt_);
    field(ar, v.missesAtEntry_);
    field(ar, v.farthestInstr_);
    io(ar, v.intervalLengths_);
    io(ar, v.intervalMlp_);
    io(ar, v.runaheadCache_);
    io(ar, v.chainGen_);
    io(ar, v.chainCache_);
    io(ar, v.buffer_);
    io(ar, v.ladder_);
    io(ar, v.intervals);
    io(ar, v.traditionalIntervals);
    io(ar, v.bufferIntervals);
    io(ar, v.cyclesTraditional);
    io(ar, v.cyclesBuffer);
    io(ar, v.chainGenCycles);
    io(ar, v.runaheadMisses);
    io(ar, v.suppressedShort);
    io(ar, v.suppressedOverlap);
    io(ar, v.noChainNoEntry);
    io(ar, v.chainCacheExactHits);
    io(ar, v.chainCacheCheckedHits);
    io(ar, v.checkpoints);
    io(ar, v.pcCamSearches);
    io(ar, v.regCamSearches);
    io(ar, v.sqCamSearches);
    io(ar, v.robChainReads);
    io(ar, v.speculativeFaults);
    io(ar, v.cachedChainsRejected);
    io(ar, v.degradedNoEntry);
    io(ar, v.degradedTraditional);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, FaultInjector &v)
{
    io(ar, v.rng_);
    field(ar, v.stallUntil_);
    io(ar, v.chainCorruptions);
    io(ar, v.uopFlips);
    io(ar, v.dramDrops);
    io(ar, v.dramDelays);
    io(ar, v.memStallWindows);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, ForwardProgressWatchdog &v)
{
    field(ar, v.lastFireRetired_);
    field(ar, v.firedBefore_);
    field(ar, v.consecutive_);
    io(ar, v.fires);
    io(ar, v.recoveries);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, InvariantChecker &v)
{
    field(ar, v.now_);
    field(ar, v.inRunahead_);
    field(ar, v.entrySnapshot_);
    io(ar, v.checksRun);
    io(ar, v.violations);
    io(ar, v.violationsRouted);
}

template <class Ar>
void
SnapshotAccess::io(Ar &ar, Core &v)
{
    io(ar, v.funcMem_);
    io(ar, v.bp_);
    io(ar, *v.frontend_);
    io(ar, v.prf_);
    io(ar, v.rat_);
    field(ar, v.archValues_);
    io(ar, v.rob_);
    io(ar, v.rs_);
    io(ar, v.sq_);
    io(ar, v.wbq_);
    io(ar, v.ports_);
    io(ar, v.watchdog_);
    io(ar, v.checkpoint_);
    io(ar, *v.checker_);
    field(ar, v.cycle_);
    field(ar, v.seqCounter_);
    field(ar, v.retired_);
    field(ar, v.fetchedInstrNum_);
    field(ar, v.retiredAtEntry_);
    field(ar, v.pseudoRetiredInterval_);
    field(ar, v.lastCommitCycle_);
    field(ar, v.stallCyclesSinceCommit_);
    field(ar, v.renameProgress_);
    field(ar, v.entryDenied_);
    field(ar, v.entryDeniedSeq_);
    field(ar, v.entryDeniedLadderSteps_);
    field(ar, v.pipelineActivity_);
    field(ar, v.resumePc_);
    io(ar, v.committedUops);
    io(ar, v.pseudoRetiredUops);
    io(ar, v.renamedUops);
    io(ar, v.issuedUops);
    io(ar, v.issuedMemUops);
    io(ar, v.prfReads);
    io(ar, v.prfWrites);
    io(ar, v.robWrites);
    io(ar, v.robReads);
    io(ar, v.memStallCycles);
    io(ar, v.stallLoadOther);
    io(ar, v.stallExec);
    io(ar, v.stallEmptyRob);
    io(ar, v.robFullCycles);
    io(ar, v.squashedUops);
    io(ar, v.fig2MissTotal);
    io(ar, v.fig2MissSrcOnChip);
    io(ar, v.loadsForwarded);
    io(ar, v.runaheadCacheForwards);
    io(ar, v.loadQueueRetries);
    io(ar, v.storeQueueRetries);
    io(ar, v.memFaultRetries);
    io(ar, v.watchdogFlushes);
    io(ar, v.ffWindows);
    io(ar, v.ffSkippedCycles);
}

/* ------------------------------------------------------------------ */
/* Hashes, digests, framing.                                           */
/* ------------------------------------------------------------------ */

namespace
{

std::uint64_t
fnv1a64(const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint32_t
crc32(const void *data, std::size_t n)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

/** Section tags (little-endian fourcc). */
constexpr std::uint32_t kSecMeta = 0x4154454du;    // "META"
constexpr std::uint32_t kSecCore = 0x45524f43u;    // "CORE"
constexpr std::uint32_t kSecVariant = 0x544e5256u; // "VRNT"
constexpr std::uint32_t kSecMem = 0x204d454du;     // "MEM "
constexpr std::uint32_t kSecEngine = 0x4e474e45u;  // "ENGN"
constexpr std::uint32_t kSecFault = 0x544c4146u;   // "FALT"

constexpr char kPayloadMagic[8] = {'R', 'A', 'B', 'S',
                                   'N', 'A', 'P', '1'};
constexpr char kFileMagic[8] = {'R', 'A', 'B', 'S', 'N', 'A', 'P', 'F'};

template <class Ar>
void
ioMeta(Ar &ar, SnapshotMeta &m)
{
    field(ar, m.formatVersion);
    field(ar, m.configDigest);
    field(ar, m.warmupDigest);
    field(ar, m.forkSafe);
    field(ar, m.workload);
    field(ar, m.programSize);
    field(ar, m.programHash);
    field(ar, m.warmupInstructions);
    field(ar, m.cycle);
    field(ar, m.retired);
    field(ar, m.faultPresent);
    field(ar, m.enginePresent);
}

/** Begin a tagged section; returns the body-start offset for the
 *  later length back-patch. */
std::size_t
beginSection(SnapshotWriter &w, std::uint32_t tag)
{
    field(w, tag);
    std::uint64_t len_placeholder = 0;
    field(w, len_placeholder);
    return w.size();
}

void
endSection(SnapshotWriter &w, std::size_t body_start)
{
    const std::uint64_t len = w.size() - body_start;
    for (std::size_t i = 0; i < 8; ++i) {
        w.buffer()[body_start - 8 + i] =
            static_cast<char>(len >> (8 * i));
    }
}

/** Read one section header and bounds-check its length. */
void
readSectionHeader(SnapshotReader &r, std::uint32_t expected_tag,
                  std::uint64_t &len)
{
    std::uint32_t tag = 0;
    field(r, tag);
    if (tag != expected_tag) {
        throw SnapshotError(SnapshotErrorKind::kFormat,
                            strprintf("unexpected section tag %08x "
                                      "(expected %08x)",
                                      tag, expected_tag));
    }
    field(r, len);
    if (len > r.remaining()) {
        throw SnapshotError(SnapshotErrorKind::kTruncated,
                            "section length exceeds payload");
    }
}

/** Run @p body and verify it consumed exactly the section length. */
template <class Fn>
void
readSection(SnapshotReader &r, std::uint32_t tag, Fn body)
{
    std::uint64_t len = 0;
    readSectionHeader(r, tag, len);
    const std::size_t start = r.offset();
    body();
    if (r.offset() - start != len) {
        throw SnapshotError(SnapshotErrorKind::kFormat,
                            strprintf("section %08x body size mismatch "
                                      "(%zu consumed, %llu framed)",
                                      tag, r.offset() - start,
                                      (unsigned long long)len));
    }
}

void
appendKv(std::string &s, const char *key, std::uint64_t value)
{
    s += strprintf("%s=%llu\n", key, (unsigned long long)value);
}

void
appendKvS(std::string &s, const char *key, const std::string &value)
{
    s += key;
    s += '=';
    s += value;
    s += '\n';
}

void
appendKvD(std::string &s, const char *key, double value)
{
    s += strprintf("%s=%.17g\n", key, value);
}

/** Canonical string of every config field that shapes warmup state:
 *  memory hierarchy, prefetchers, core structure, workload budget and
 *  fault schedule — nothing variant-specific. Shared by both digests
 *  (the exact digest appends the variant fields). */
std::string
warmupCanonical(const SimConfig &c)
{
    std::string s = "schema=rab-snapshot-warmup-v1\n";
    appendKv(s, "prefetch", c.prefetch ? 1 : 0);
    appendKv(s, "warmup_instructions", c.warmupInstructions);
    appendKv(s, "num_cores", static_cast<std::uint64_t>(c.numCores));
    appendKv(s, "check_level", static_cast<std::uint64_t>(c.checkLevel));
    appendKv(s, "check_policy",
             static_cast<std::uint64_t>(c.checkPolicy));

    const MemSysConfig &m = c.mem;
    const auto cache = [&](const char *pfx, const CacheConfig &cc) {
        s += strprintf("%s=%llu/%d/%d/%d\n", pfx,
                       (unsigned long long)cc.sizeBytes,
                       cc.associativity, cc.lineBytes, cc.latency);
    };
    cache("l1i", m.l1i);
    cache("l1d", m.l1d);
    cache("llc", m.llc);
    appendKvD(s, "dram_core_ghz", m.dram.coreClockGhz);
    appendKvD(s, "dram_bus_mhz", m.dram.busClockMhz);
    appendKv(s, "dram_channels",
             static_cast<std::uint64_t>(m.dram.channels));
    appendKv(s, "dram_banks",
             static_cast<std::uint64_t>(m.dram.banksPerChannel));
    appendKv(s, "dram_row_bytes", m.dram.rowBytes);
    appendKvD(s, "dram_cas_ns", m.dram.casNs);
    appendKv(s, "mem_queue_entries",
             static_cast<std::uint64_t>(m.memQueueEntries));
    appendKv(s, "runahead_queue_reserve",
             static_cast<std::uint64_t>(m.runaheadQueueReserve));
    appendKv(s, "mem_retry_limit",
             static_cast<std::uint64_t>(m.memRetryLimit));
    appendKv(s, "mem_timeout_cycles", m.memTimeoutCycles);
    appendKv(s, "mem_retry_backoff_cycles", m.memRetryBackoffCycles);
    appendKv(s, "prefetcher_kind",
             static_cast<std::uint64_t>(m.prefetcherKind));
    appendKv(s, "pf_enabled", m.prefetcher.enabled ? 1 : 0);
    appendKv(s, "pf_streams",
             static_cast<std::uint64_t>(m.prefetcher.streams));
    appendKv(s, "pf_distance",
             static_cast<std::uint64_t>(m.prefetcher.distance));
    appendKv(s, "pf_degree",
             static_cast<std::uint64_t>(m.prefetcher.degree));
    appendKv(s, "pf_fdp", m.prefetcher.fdpThrottle ? 1 : 0);
    appendKv(s, "pf_fdp_interval",
             static_cast<std::uint64_t>(m.prefetcher.fdpInterval));
    appendKv(s, "stride_entries",
             static_cast<std::uint64_t>(m.stridePrefetcher.entries));
    appendKv(s, "stride_degree",
             static_cast<std::uint64_t>(m.stridePrefetcher.degree));
    appendKv(s, "ghb_history",
             static_cast<std::uint64_t>(m.ghbPrefetcher.historyEntries));
    appendKv(s, "ghb_index",
             static_cast<std::uint64_t>(m.ghbPrefetcher.indexEntries));

    const CoreConfig &k = c.core;
    appendKv(s, "fetch_width", static_cast<std::uint64_t>(k.fetchWidth));
    appendKv(s, "rename_width",
             static_cast<std::uint64_t>(k.renameWidth));
    appendKv(s, "issue_width", static_cast<std::uint64_t>(k.issueWidth));
    appendKv(s, "commit_width",
             static_cast<std::uint64_t>(k.commitWidth));
    appendKv(s, "rob_entries", static_cast<std::uint64_t>(k.robEntries));
    appendKv(s, "rs_entries", static_cast<std::uint64_t>(k.rsEntries));
    appendKv(s, "sq_entries", static_cast<std::uint64_t>(k.sqEntries));
    appendKv(s, "num_phys_regs",
             static_cast<std::uint64_t>(k.numPhysRegs));
    appendKv(s, "mem_ports", static_cast<std::uint64_t>(k.memPorts));
    appendKv(s, "redirect_penalty",
             static_cast<std::uint64_t>(k.redirectPenalty));
    appendKv(s, "exit_penalty",
             static_cast<std::uint64_t>(k.exitPenalty));
    appendKv(s, "stall_entry_cycles", k.stallEntryCycles);
    appendKv(s, "min_runahead_distance",
             static_cast<std::uint64_t>(k.minRunaheadDistance));
    appendKv(s, "deadlock_cycles", k.deadlockCycles);
    appendKv(s, "watchdog_cycles", k.watchdog.cycles);
    appendKv(s, "watchdog_give_up",
             static_cast<std::uint64_t>(k.watchdog.giveUpAfter));
    appendKv(s, "watchdog_max_recoveries",
             static_cast<std::uint64_t>(k.watchdog.maxRecoveries));
    appendKv(s, "fe_decode_depth",
             static_cast<std::uint64_t>(k.frontend.decodeDepth));
    appendKv(s, "fe_queue_entries",
             static_cast<std::uint64_t>(k.frontend.fetchQueueEntries));
    appendKv(s, "fe_uop_bytes",
             static_cast<std::uint64_t>(k.frontend.uopBytes));
    appendKv(s, "fe_inst_base", k.frontend.instBase);
    appendKv(s, "bp_history_bits",
             static_cast<std::uint64_t>(k.bp.historyBits));
    appendKv(s, "bp_bimodal",
             static_cast<std::uint64_t>(k.bp.bimodalEntries));
    appendKv(s, "bp_gshare",
             static_cast<std::uint64_t>(k.bp.gshareEntries));
    appendKv(s, "bp_chooser",
             static_cast<std::uint64_t>(k.bp.chooserEntries));
    appendKv(s, "bp_btb", static_cast<std::uint64_t>(k.bp.btbEntries));
    appendKv(s, "bp_ras", static_cast<std::uint64_t>(k.bp.rasEntries));

    const FaultConfig &f = c.fault;
    appendKv(s, "fault_enabled", f.enabled ? 1 : 0);
    appendKv(s, "fault_seed", f.seed);
    appendKvD(s, "fault_chain_cache_rate", f.chainCacheRate);
    appendKvD(s, "fault_buffer_uop_rate", f.bufferUopRate);
    appendKvD(s, "fault_dram_drop_rate", f.dramDropRate);
    appendKvD(s, "fault_dram_delay_rate", f.dramDelayRate);
    appendKv(s, "fault_dram_delay_max",
             static_cast<std::uint64_t>(f.dramDelayMaxCycles));
    appendKvD(s, "fault_mem_stall_rate", f.memStallRate);
    appendKv(s, "fault_mem_stall_cycles",
             static_cast<std::uint64_t>(f.memStallCycles));
    return s;
}

/** The exact digest's extra, variant-specific fields. Deliberately
 *  excluded from both digests: `instructions` / `maxCycles` (resuming
 *  with a different measured budget is the point of a snapshot) and
 *  `fastForward` (certified behaviour-preserving). */
std::string
exactCanonical(const SimConfig &c)
{
    std::string s = warmupCanonical(c);
    s += "schema2=rab-snapshot-exact-v1\n";
    appendKvS(s, "runahead", runaheadConfigName(c.runahead));
    appendKv(s, "reference_scans", c.referenceScans ? 1 : 0);
    appendKv(s, "collect_chain_analysis",
             c.core.collectChainAnalysis ? 1 : 0);

    const RunaheadPolicy &p = c.core.runahead;
    appendKv(s, "ra_traditional", p.traditionalEnabled ? 1 : 0);
    appendKv(s, "ra_buffer", p.bufferEnabled ? 1 : 0);
    appendKv(s, "ra_chain_cache", p.chainCacheEnabled ? 1 : 0);
    appendKv(s, "ra_hybrid", p.hybrid ? 1 : 0);
    appendKv(s, "ra_enhancements", p.enhancements ? 1 : 0);
    appendKv(s, "ra_distance_threshold", p.distanceThreshold);
    appendKv(s, "ra_buffer_entries",
             static_cast<std::uint64_t>(p.bufferEntries));
    appendKv(s, "ra_chain_cache_entries",
             static_cast<std::uint64_t>(p.chainCacheEntries));
    appendKv(s, "ra_max_chain",
             static_cast<std::uint64_t>(p.chainGen.maxChainLength));
    appendKv(s, "ra_srsl",
             static_cast<std::uint64_t>(p.chainGen.srslEntries));
    appendKv(s, "ra_rc_bytes", p.runaheadCache.sizeBytes);
    appendKv(s, "ra_degrade_enabled", p.degrade.enabled ? 1 : 0);
    appendKv(s, "ra_degrade_threshold",
             static_cast<std::uint64_t>(p.degrade.faultThreshold));
    appendKv(s, "ra_degrade_probation", p.degrade.probationCycles);
    appendKv(s, "engine_enabled", p.engine.enabled ? 1 : 0);
    appendKv(s, "engine_inert", p.engine.instantiateInert ? 1 : 0);
    appendKv(s, "engine_slots",
             static_cast<std::uint64_t>(p.engine.slots));
    appendKv(s, "engine_store_buf",
             static_cast<std::uint64_t>(p.engine.storeBufEntries));
    appendKv(s, "engine_uops_per_cycle",
             static_cast<std::uint64_t>(p.engine.uopsPerCycle));
    appendKv(s, "engine_idle_limit", p.engine.idleIterationLimit);
    return s;
}

std::uint64_t
hashProgram(const Program &program)
{
    SnapshotWriter w;
    for (std::size_t i = 0; i < program.size(); ++i) {
        Uop u = program.at(static_cast<Pc>(i));
        field(w, u);
    }
    const std::string bytes = w.take();
    return fnv1a64(bytes.data(), bytes.size());
}

/** A fork-grade image must be captured outside any runahead interval,
 *  with no speculative runahead structure holding live state. The
 *  canonical warmup policy (baseline, no runahead) guarantees this;
 *  capture under a runahead config is forkSafe only when the warmup
 *  happens to end in normal mode with no engine instantiated. */
bool
computeForkSafe(Simulation &sim)
{
    const RunaheadController &ra = sim.core().runahead();
    return !ra.policy().anyRunahead() && !ra.inRunahead()
        && sim.memory().chainEngine() == nullptr;
}

SnapshotMeta
buildMeta(Simulation &sim)
{
    SnapshotMeta m;
    m.formatVersion = kSnapshotFormatVersion;
    m.configDigest = snapshotConfigDigest(sim.config());
    m.warmupDigest = snapshotWarmupDigest(sim.config());
    m.forkSafe = computeForkSafe(sim);
    m.workload = sim.program().name();
    m.programSize = sim.program().size();
    m.programHash = hashProgram(sim.program());
    m.warmupInstructions = sim.config().warmupInstructions;
    m.cycle = sim.core().cycle();
    m.retired = sim.core().retired();
    m.faultPresent = sim.faults() != nullptr;
    m.enginePresent = sim.memory().chainEngine() != nullptr;
    return m;
}

void
checkPayloadHeader(SnapshotReader &r)
{
    char magic[8];
    r.bytes(magic, sizeof(magic));
    if (std::memcmp(magic, kPayloadMagic, sizeof(magic)) != 0) {
        throw SnapshotError(SnapshotErrorKind::kMagic,
                            "not a snapshot payload");
    }
    std::uint32_t version = 0;
    field(r, version);
    if (version != kSnapshotFormatVersion) {
        throw SnapshotError(
            SnapshotErrorKind::kVersion,
            strprintf("unsupported snapshot format version %u "
                      "(this build reads version %u)",
                      version, kSnapshotFormatVersion));
    }
}

} // namespace

/* ------------------------------------------------------------------ */
/* Public API.                                                         */
/* ------------------------------------------------------------------ */

const char *
snapshotErrorKindName(SnapshotErrorKind kind)
{
    switch (kind) {
    case SnapshotErrorKind::kIo:
        return "io";
    case SnapshotErrorKind::kMagic:
        return "magic";
    case SnapshotErrorKind::kVersion:
        return "version";
    case SnapshotErrorKind::kCrc:
        return "crc";
    case SnapshotErrorKind::kTruncated:
        return "truncated";
    case SnapshotErrorKind::kMismatch:
        return "mismatch";
    case SnapshotErrorKind::kFormat:
        return "format";
    }
    return "unknown";
}

SnapshotError::SnapshotError(SnapshotErrorKind kind,
                             const std::string &detail)
    : std::runtime_error(strprintf("snapshot %s error: %s",
                                   snapshotErrorKindName(kind),
                                   detail.c_str())),
      kind_(kind)
{
}

std::uint64_t
snapshotConfigDigest(const SimConfig &config)
{
    const std::string s = exactCanonical(config);
    return fnv1a64(s.data(), s.size());
}

std::uint64_t
snapshotWarmupDigest(const SimConfig &config)
{
    const std::string s = warmupCanonical(config);
    return fnv1a64(s.data(), s.size());
}

std::uint64_t
snapshotContentHash(const std::string &payload)
{
    return fnv1a64(payload.data(), payload.size());
}

std::string
snapshotHashHex(std::uint64_t hash)
{
    return strprintf("%016llx", (unsigned long long)hash);
}

std::string
captureSnapshot(Simulation &sim)
{
    SnapshotWriter w;
    w.bytes(kPayloadMagic, sizeof(kPayloadMagic));
    std::uint32_t version = kSnapshotFormatVersion;
    field(w, version);

    SnapshotMeta meta = buildMeta(sim);
    std::size_t at = beginSection(w, kSecMeta);
    ioMeta(w, meta);
    endSection(w, at);

    at = beginSection(w, kSecCore);
    SnapshotAccess::io(w, sim.core());
    endSection(w, at);

    at = beginSection(w, kSecVariant);
    SnapshotAccess::io(w, sim.core().runahead());
    SnapshotAccess::io(w, sim.core().chainAnalysis());
    endSection(w, at);

    at = beginSection(w, kSecMem);
    SnapshotAccess::io(w, sim.memory());
    endSection(w, at);

    at = beginSection(w, kSecEngine);
    bool engine_present = meta.enginePresent;
    field(w, engine_present);
    if (engine_present)
        SnapshotAccess::io(w, *sim.memory().chainEngine());
    endSection(w, at);

    at = beginSection(w, kSecFault);
    bool fault_present = meta.faultPresent;
    field(w, fault_present);
    if (fault_present)
        SnapshotAccess::io(w, *sim.faults());
    endSection(w, at);

    return w.take();
}

SnapshotMeta
peekSnapshotMeta(const std::string &payload)
{
    SnapshotReader r(payload);
    checkPayloadHeader(r);
    SnapshotMeta meta;
    readSection(r, kSecMeta, [&] { ioMeta(r, meta); });
    return meta;
}

void
restoreSnapshot(Simulation &sim, const std::string &payload,
                SnapshotRestoreMode mode)
{
    SnapshotReader r(payload);
    checkPayloadHeader(r);

    SnapshotMeta meta;
    readSection(r, kSecMeta, [&] { ioMeta(r, meta); });
    if (meta.formatVersion != kSnapshotFormatVersion) {
        throw SnapshotError(SnapshotErrorKind::kVersion,
                            strprintf("meta format version %u unknown",
                                      meta.formatVersion));
    }

    // Identity gates: the restoring simulation must run the same
    // program, and a config digest appropriate to the restore mode.
    if (meta.workload != sim.program().name()
        || meta.programSize != sim.program().size()
        || meta.programHash != hashProgram(sim.program())) {
        throw SnapshotError(
            SnapshotErrorKind::kMismatch,
            strprintf("snapshot is of workload '%s' (%llu uops), "
                      "simulation runs '%s' (%llu uops)",
                      meta.workload.c_str(),
                      (unsigned long long)meta.programSize,
                      sim.program().name().c_str(),
                      (unsigned long long)sim.program().size()));
    }
    if (mode == SnapshotRestoreMode::kExact) {
        if (meta.configDigest != snapshotConfigDigest(sim.config())) {
            throw SnapshotError(SnapshotErrorKind::kMismatch,
                                "config digest mismatch (exact restore "
                                "needs an identical configuration)");
        }
    } else {
        if (meta.warmupDigest != snapshotWarmupDigest(sim.config())) {
            throw SnapshotError(SnapshotErrorKind::kMismatch,
                                "warmup digest mismatch (fork restore "
                                "needs identical warmup-relevant "
                                "configuration)");
        }
        if (!meta.forkSafe) {
            throw SnapshotError(SnapshotErrorKind::kMismatch,
                                "image is not fork-safe (captured "
                                "under a runahead policy or inside a "
                                "runahead interval)");
        }
    }

    readSection(r, kSecCore, [&] { SnapshotAccess::io(r, sim.core()); });

    {
        std::uint64_t len = 0;
        readSectionHeader(r, kSecVariant, len);
        if (mode == SnapshotRestoreMode::kFork) {
            r.skip(static_cast<std::size_t>(len));
        } else {
            const std::size_t start = r.offset();
            SnapshotAccess::io(r, sim.core().runahead());
            SnapshotAccess::io(r, sim.core().chainAnalysis());
            if (r.offset() - start != len) {
                throw SnapshotError(SnapshotErrorKind::kFormat,
                                    "variant section size mismatch");
            }
        }
    }

    readSection(r, kSecMem,
                [&] { SnapshotAccess::io(r, sim.memory()); });

    {
        std::uint64_t len = 0;
        readSectionHeader(r, kSecEngine, len);
        if (mode == SnapshotRestoreMode::kFork) {
            r.skip(static_cast<std::size_t>(len));
        } else {
            const std::size_t start = r.offset();
            bool engine_present = false;
            field(r, engine_present);
            ChainEngine *engine = sim.memory().chainEngine();
            if (engine_present != (engine != nullptr)) {
                throw SnapshotError(
                    SnapshotErrorKind::kMismatch,
                    "chain-engine presence differs between snapshot "
                    "and simulation");
            }
            if (engine_present)
                SnapshotAccess::io(r, *engine);
            if (r.offset() - start != len) {
                throw SnapshotError(SnapshotErrorKind::kFormat,
                                    "engine section size mismatch");
            }
        }
    }

    readSection(r, kSecFault, [&] {
        bool fault_present = false;
        field(r, fault_present);
        if (fault_present != (sim.faults() != nullptr)) {
            throw SnapshotError(SnapshotErrorKind::kMismatch,
                                "fault-injector presence differs "
                                "between snapshot and simulation");
        }
        if (fault_present)
            SnapshotAccess::io(r, *sim.faults());
    });

    if (r.remaining() != 0) {
        throw SnapshotError(SnapshotErrorKind::kFormat,
                            "trailing bytes after final section");
    }
}

void
writeSnapshotFile(const std::string &path, const std::string &payload)
{
    SnapshotWriter w;
    w.bytes(kFileMagic, sizeof(kFileMagic));
    std::uint32_t version = kSnapshotFormatVersion;
    field(w, version);
    std::uint32_t crc = crc32(payload.data(), payload.size());
    field(w, crc);
    std::uint64_t len = payload.size();
    field(w, len);
    std::string framed = w.take();
    framed += payload;

    const std::string tmp =
        strprintf("%s.%d.tmp", path.c_str(), (int)::getpid());
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) {
        throw SnapshotError(SnapshotErrorKind::kIo,
                            strprintf("open %s: %s", tmp.c_str(),
                                      std::strerror(errno)));
    }
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n =
            ::write(fd, framed.data() + off, framed.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            throw SnapshotError(SnapshotErrorKind::kIo,
                                strprintf("write %s: %s", tmp.c_str(),
                                          std::strerror(err)));
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        ::unlink(tmp.c_str());
        throw SnapshotError(SnapshotErrorKind::kIo,
                            strprintf("fsync %s: %s", tmp.c_str(),
                                      std::strerror(errno)));
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        throw SnapshotError(SnapshotErrorKind::kIo,
                            strprintf("rename %s -> %s: %s",
                                      tmp.c_str(), path.c_str(),
                                      std::strerror(err)));
    }
}

std::string
readSnapshotFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw SnapshotError(SnapshotErrorKind::kIo,
                            strprintf("cannot open %s", path.c_str()));
    }
    std::string framed((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
    if (in.bad()) {
        throw SnapshotError(SnapshotErrorKind::kIo,
                            strprintf("read error on %s", path.c_str()));
    }

    SnapshotReader r(framed);
    char magic[8];
    r.bytes(magic, sizeof(magic));
    if (std::memcmp(magic, kFileMagic, sizeof(magic)) != 0) {
        throw SnapshotError(SnapshotErrorKind::kMagic,
                            strprintf("%s is not a snapshot file",
                                      path.c_str()));
    }
    std::uint32_t version = 0;
    field(r, version);
    if (version != kSnapshotFormatVersion) {
        throw SnapshotError(
            SnapshotErrorKind::kVersion,
            strprintf("%s: unsupported snapshot version %u",
                      path.c_str(), version));
    }
    std::uint32_t crc = 0;
    field(r, crc);
    std::uint64_t len = 0;
    field(r, len);
    if (len != r.remaining()) {
        throw SnapshotError(
            SnapshotErrorKind::kTruncated,
            strprintf("%s: framed length %llu, %zu bytes present",
                      path.c_str(), (unsigned long long)len,
                      r.remaining()));
    }
    std::string payload = framed.substr(framed.size() - r.remaining());
    const std::uint32_t actual = crc32(payload.data(), payload.size());
    if (actual != crc) {
        throw SnapshotError(
            SnapshotErrorKind::kCrc,
            strprintf("%s: payload CRC %08x does not match framed %08x",
                      path.c_str(), actual, crc));
    }
    return payload;
}

} // namespace rab
