/**
 * @file
 * Whole-simulator snapshots: capture a `Simulation` at the warmup
 * boundary and restore it later — in the same process, from disk, or
 * from the content-addressed result store — so one warmup run can be
 * amortized across every config variant of a sweep group.
 *
 * Two restore modes:
 *   - kExact: the restoring simulation must have the same full config
 *     digest as the capturing one. Every section is applied; the
 *     resumed run is bit-identical to the straight-line run (commit
 *     stream, cycles, canonical stat payload), clean or faulted.
 *   - kFork: config variants fork from a shared warmup image. Only
 *     warmup-relevant state (core pipeline, caches, DRAM, predictors,
 *     stats) must match, so the image's *warmup* digest is checked and
 *     the variant-specific sections (runahead controller, chain
 *     engine) are skipped: each variant re-derives them from its own
 *     fresh construction. Fork restore requires a fork-safe image —
 *     captured outside any runahead interval (guaranteed when the
 *     warmup ran under the baseline policy).
 *
 * File frame: magic "RABSNAPF" + u32 format version + u32 CRC32 of
 * the payload + u64 payload length + payload. The payload itself is
 * self-describing (see DESIGN.md §16) and can be embedded in other
 * containers (the result store's RABSNAPR records).
 */

#ifndef RAB_SNAPSHOT_SNAPSHOT_HH
#define RAB_SNAPSHOT_SNAPSHOT_HH

#include <cstdint>
#include <string>

#include "snapshot/archive.hh" // SnapshotError / SnapshotErrorKind.

namespace rab
{

class Simulation;
struct SimConfig;

/** Snapshot payload format version (bump on any layout change). */
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/** How a snapshot is applied to a simulation. */
enum class SnapshotRestoreMode
{
    kExact, ///< Same config: full state, bit-identical resume.
    kFork,  ///< Config variant: shared warmup state only.
};

/** Parsed snapshot META section (cheap peek, no full restore). */
struct SnapshotMeta
{
    std::uint32_t formatVersion = 0;
    std::uint64_t configDigest = 0; ///< Full-config digest (kExact).
    std::uint64_t warmupDigest = 0; ///< Warmup-relevant digest (kFork).
    bool forkSafe = false; ///< Captured outside any runahead interval.
    std::string workload;
    std::uint64_t programSize = 0;
    std::uint64_t programHash = 0;
    std::uint64_t warmupInstructions = 0;
    std::uint64_t cycle = 0;   ///< Core cycle at capture.
    std::uint64_t retired = 0; ///< Retired uops at capture.
    bool faultPresent = false; ///< Fault-injector section present.
    bool enginePresent = false; ///< Chain-engine section present.
};

/** Serialize the complete simulation state to a payload string. */
std::string captureSnapshot(Simulation &sim);

/** Apply @p payload to @p sim. Throws SnapshotError on any mismatch,
 *  corruption or format problem; @p sim must then be discarded (it may
 *  be partially overwritten). */
void restoreSnapshot(Simulation &sim, const std::string &payload,
                     SnapshotRestoreMode mode);

/** Parse the META section without touching a simulation. */
SnapshotMeta peekSnapshotMeta(const std::string &payload);

/** Digest of every behaviour-relevant config field (kExact gate). */
std::uint64_t snapshotConfigDigest(const SimConfig &config);

/** Digest of the warmup-relevant config subset (kFork gate): memory
 *  hierarchy, prefetcher, core structure, workload/fault knobs —
 *  everything that shapes warmup state, nothing variant-specific. */
std::uint64_t snapshotWarmupDigest(const SimConfig &config);

/** FNV-1a 64 content hash of a snapshot payload (store keys). */
std::uint64_t snapshotContentHash(const std::string &payload);

/** @p hash as 16 lowercase hex digits. */
std::string snapshotHashHex(std::uint64_t hash);

/** Write `payload` to @p path inside the CRC file frame, atomically
 *  (tmp + fsync + rename). Throws SnapshotError(kIo) on failure. */
void writeSnapshotFile(const std::string &path,
                       const std::string &payload);

/** Read and unframe a snapshot file: validates magic, version and
 *  CRC, returns the payload. Throws SnapshotError on any problem. */
std::string readSnapshotFile(const std::string &path);

} // namespace rab

#endif // RAB_SNAPSHOT_SNAPSHOT_HH
