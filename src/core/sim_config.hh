/**
 * @file
 * Top-level simulation configuration: the Table 1 system plus the named
 * runahead configurations the paper evaluates.
 */

#ifndef RAB_CORE_SIM_CONFIG_HH
#define RAB_CORE_SIM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "backend/core.hh"
#include "checker/check_level.hh"
#include "energy/energy_model.hh"
#include "fault/fault_injector.hh"
#include "memory/memory_system.hh"

namespace rab
{

/** The runahead systems evaluated in Section 6. */
enum class RunaheadConfig
{
    kBaseline,         ///< No runahead.
    kRunahead,         ///< Traditional runahead (performance-optimised).
    kRunaheadEnhanced, ///< Traditional + Section 4.6 enhancements.
    kRunaheadBuffer,   ///< Runahead buffer only.
    kRunaheadBufferCC, ///< Runahead buffer + chain cache.
    kHybrid,           ///< Fig. 8 hybrid policy.
    kCRE,              ///< Continuous Runahead engine (dissertation).
    kCREHybrid,        ///< Hybrid policy + continuous engine.
};

const char *runaheadConfigName(RunaheadConfig config);

/** Complete simulation configuration. */
struct SimConfig
{
    CoreConfig core{};
    MemSysConfig mem{};
    EnergyCoefficients energy{};

    RunaheadConfig runahead = RunaheadConfig::kBaseline;
    bool prefetch = false; ///< Enable the Table 1 stream prefetcher.

    /** Cycle-loop fast-forward engine (behaviour-preserving; see
     *  Core::fastForwardHorizon). --no-fast-forward disables it for
     *  differential debugging. */
    bool fastForward = true;

    /** Use the ROB's scan-based reference CAM searches instead of the
     *  incremental indexes (behaviour-preserving; see Rob::setIndexed).
     *  For differential certification and debugging. */
    bool referenceScans = false;

    /** Invariant-checking effort (see src/checker). RAB_CHECK_LEVEL in
     *  the environment overrides it. */
    CheckLevel checkLevel = CheckLevel::kOff;

    /** Violation handling: throw, or degrade speculative structures.
     *  RAB_CHECK_POLICY in the environment overrides it. */
    CheckPolicy checkPolicy = CheckPolicy::kThrow;

    /** Fault injection (see src/fault). Inert unless enabled. */
    FaultConfig fault{};

    std::uint64_t warmupInstructions = 20'000;
    std::uint64_t instructions = 100'000;
    std::uint64_t maxCycles = 400'000'000;

    /** @{ Multi-core simulation (MultiSimulation). numCores == 1
     *  drives one core exactly like Simulation does — certified
     *  byte-identical by tests/test_multicore.cc. */
    int numCores = 1;

    /** Per-core runahead policy override, indexed by core id; empty
     *  means every core runs `runahead` (homogeneous). This is the
     *  interference experiment's axis: heterogeneous mixes put e.g.
     *  one runahead-buffer core next to baseline neighbours. */
    std::vector<RunaheadConfig> corePolicies;

    /** Test knob: give every core its own private LLC/DRAM instead of
     *  the shared hierarchy, keeping the lockstep driver. With
     *  contention gone, each core must replay its solo run exactly
     *  (the N-core vs N×solo differential). */
    bool isolateMemory = false;
    /** @} */

    /** Effective policy for @p core_id under corePolicies. */
    RunaheadConfig corePolicy(int core_id) const
    {
        if (corePolicies.empty())
            return runahead;
        return corePolicies[static_cast<std::size_t>(core_id)
                            % corePolicies.size()];
    }

    /** Propagate the runahead/prefetch selections into the component
     *  configs. Call before constructing a Simulation. */
    void finalize();

    /** Human-readable Table 1-style configuration summary. */
    std::string table1String() const;
};

/** The paper's Table 1 system with a given runahead config. */
SimConfig makeConfig(RunaheadConfig runahead, bool prefetch);

} // namespace rab

#endif // RAB_CORE_SIM_CONFIG_HH
