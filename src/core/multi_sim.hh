/**
 * @file
 * MultiSimulation: N cores with private L1s, frontends, ROBs and
 * runahead controllers sharing one LLC, MSHR pool and DRAM channel
 * (SharedMemory). The driver ticks every core each cycle in a rotating
 * round-robin order and only fast-forwards when every core is provably
 * quiescent, jumping all of them to the minimum horizon so lockstep is
 * never broken.
 *
 * numCores == 1 constructs the exact single-core stack (an owned
 * MemorySystem, no contention counters) and reproduces Simulation
 * byte-for-byte: same commit stream, same cycle count, same stat
 * payload. tests/test_multicore.cc certifies this differentially,
 * clean and under fault injection.
 *
 * The headline experiment this enables is runahead interference:
 * per-core independently settable runahead policies
 * (SimConfig::corePolicies) competing for the shared MSHR pool, DRAM
 * banks and LLC capacity, with per-core contention accounting
 * (core<i>.mem.bank_conflicts, core<i>.mem.llc_evicted_by_others, ...)
 * and a shared.* subtree for chip-wide counters.
 */

#ifndef RAB_CORE_MULTI_SIM_HH
#define RAB_CORE_MULTI_SIM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "memory/shared_memory.hh"

namespace rab
{

/** Everything a finished multi-core simulation reports. */
struct MultiSimResult
{
    /** Per-core results, indexed by core id. Each is extracted by the
     *  same collectSimResult() path a single-core Simulation uses, at
     *  the cycle the core crossed its instruction budget. */
    std::vector<SimResult> cores;

    std::uint64_t cycles = 0;       ///< Measured cycles (last finisher).
    std::uint64_t instructions = 0; ///< Sum over cores.
    double throughputIpc = 0;       ///< Sum(instructions) / cycles.

    /**
     * Chip-level energy. Per-core breakdowns (each computed by the
     * same EnergyModel path a single-core run uses) are summed, but
     * the shared LLC + DRAM static power — which every core's own
     * breakdown charges over its own measured window — is replaced by
     * a single charge over the chip's measured window: a 4-core chip
     * has one LLC and one DRAM channel, not four. In isolated/owned
     * modes the plain sum stands, since there the hierarchies really
     * are private. Published under shared.energy.* for N > 1.
     */
    EnergyBreakdown energy;

    /** Flattened stat payload: core<i>.core.*, core<i>.mem.* and
     *  shared.* for N > 1; plain core.* / mem.* for N == 1 (matching
     *  the single-core sweep payload exactly). */
    std::map<std::string, double> stats;

    std::string toString() const;
};

/** One multi-core simulation run. */
class MultiSimulation
{
  public:
    /**
     * @p config must be finalize()d and have numCores >= 1; @p programs
     * supplies one workload per core (programs.size() == numCores).
     *
     * Each core gets a private SimConfig copy with its own runahead
     * policy (SimConfig::corePolicy) and, under fault injection, a
     * decorrelated seed (seed + core id) so faults do not land in
     * lockstep across cores. Core 0 keeps the base seed, so its fault
     * stream matches the equivalent single-core run.
     */
    MultiSimulation(const SimConfig &config,
                    std::vector<Program> programs);
    ~MultiSimulation();

    MultiSimulation(const MultiSimulation &) = delete;
    MultiSimulation &operator=(const MultiSimulation &) = delete;

    /** Run warmup + measured region on all cores and collect. */
    MultiSimResult run();

    int numCores() const { return numCores_; }
    Core &core(int i) { return *cores_[static_cast<std::size_t>(i)]; }
    MemorySystem &memory(int i)
    {
        return *mems_[static_cast<std::size_t>(i)];
    }
    const Program &program(int i) const
    {
        return programs_[static_cast<std::size_t>(i)];
    }

    /** The shared chip half, or nullptr in owned/isolated modes. */
    SharedMemory *shared() { return shared_.get(); }

    /** Core @p i's fault injector, or nullptr when disabled. */
    FaultInjector *faults(int i)
    {
        return faults_[static_cast<std::size_t>(i)].get();
    }

  private:
    /** Lockstep-tick all cores until each has retired @p instructions
     *  more uops (or the relative cycle limit expires). Finished cores
     *  keep ticking — they still generate contention — until the last
     *  one crosses. When @p collect, each core's SimResult and stat
     *  payload are snapshotted at its own crossing cycle. */
    void runPhase(std::uint64_t instructions, bool collect);

    /** Snapshot core @p i at its budget-crossing cycle @p now. */
    void snapshotCore(int i, Cycle now);

    /** Shared-mode inclusion invariant: every valid L1I/L1D line must
     *  be present in (or in flight towards) the shared LLC. Runs at
     *  CheckLevel::kFull every kContainmentPeriod cycles and at phase
     *  end; throws InvariantViolation("shared-llc", ...). */
    void checkSharedContainment(Cycle now);

    static constexpr Cycle kContainmentPeriod = 4096;

    SimConfig config_;
    std::vector<SimConfig> coreConfigs_;
    std::vector<Program> programs_;
    int numCores_ = 1;
    CheckLevel checkLevel_ = CheckLevel::kOff;

    std::unique_ptr<SharedMemory> shared_; ///< null in owned modes.
    std::vector<std::unique_ptr<FaultInjector>> faults_;
    std::vector<std::unique_ptr<MemorySystem>> mems_;
    std::vector<std::unique_ptr<Core>> cores_;

    /** N > 1: per-core "core<i>" wrapper over the core + mem (+ fault)
     *  groups, and the chip-wide "shared" group. Unused for N == 1,
     *  where the raw groups are collected directly so the payload
     *  matches a single-core run key-for-key. */
    std::vector<std::unique_ptr<StatGroup>> coreGroups_;
    StatGroup sharedGroup_;

    Cycle measureStart_ = 0;
    std::vector<Cycle> doneCycles_;
    std::vector<SimResult> results_;
    std::vector<std::map<std::string, double>> statsSnapshots_;
};

/** Convenience: build per-core suite workloads + run in one call. */
MultiSimResult simulateMix(const SimConfig &config,
                           const std::vector<std::string> &workloads);

} // namespace rab

#endif // RAB_CORE_MULTI_SIM_HH
