#include "core/simulation.hh"

#include "common/logging.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

namespace rab
{

std::string
SimResult::toString() const
{
    std::string s = strprintf(
        "%s/%s%s: %llu instrs, %llu cycles, IPC %.3f, MPKI %.2f, "
        "stall %.1f%%, RA intervals %llu, MLP/interval %.2f, "
        "energy %.6f J",
        workload.c_str(), runaheadConfigName(config),
        prefetch ? "+PF" : "", (unsigned long long)instructions,
        (unsigned long long)cycles, ipc, mpki, memStallFraction * 100.0,
        (unsigned long long)runaheadIntervals, missesPerInterval,
        energy.totalJ);
    if (faultsInjected > 0 || watchdogRecoveries > 0
        || degradeSteps > 0) {
        s += strprintf(
            ", faults %llu, watchdog recoveries %llu, degrade steps "
            "%llu (final level %d)",
            (unsigned long long)faultsInjected,
            (unsigned long long)watchdogRecoveries,
            (unsigned long long)degradeSteps, degradeLevel);
    }
    return s;
}

Simulation::Simulation(const SimConfig &config, Program program)
    : config_(config), program_(std::move(program))
{
    mem_ = std::make_unique<MemorySystem>(config_.mem);
    core_ = std::make_unique<Core>(config_.core, &program_, mem_.get());
    if (config_.fault.enabled) {
        faults_ = std::make_unique<FaultInjector>(config_.fault);
        mem_->setFaultInjector(faults_.get());
        core_->setFaultInjector(faults_.get());
    }
    // Fresh-group assertion: this run owns its stat trees outright.
    core_->stats().claimExclusive(this);
    mem_->stats().claimExclusive(this);
    if (faults_)
        faults_->stats().claimExclusive(this);
}

Simulation::~Simulation()
{
    core_->stats().releaseExclusive(this);
    mem_->stats().releaseExclusive(this);
    if (faults_)
        faults_->stats().releaseExclusive(this);
}

SimResult
Simulation::run()
{
    runWarmup();
    return runMeasured();
}

void
Simulation::runWarmup()
{
    // Warmup: fills caches, trains the branch predictor and the
    // prefetcher; then reset every counter so the measured region is
    // clean.
    if (config_.warmupInstructions > 0) {
        core_->run(config_.warmupInstructions, config_.maxCycles);
        core_->stats().resetCounters();
        mem_->stats().resetCounters();
    }
}

void
Simulation::enableTrace(const std::string &path)
{
    tracePath_ = path;
}

SimResult
Simulation::runMeasured()
{
    std::unique_ptr<TraceWriter> trace;
    if (!tracePath_.empty()) {
        trace = std::make_unique<TraceWriter>(tracePath_);
        core_->setCommitHook(
            [&trace](const DynUop &uop) { trace->record(uop); });
    }

    const Cycle start_cycle = core_->cycle();
    core_->run(config_.instructions, config_.maxCycles);
    const Cycle cycles = core_->cycle() - start_cycle;

    if (trace) {
        core_->setCommitHook(nullptr);
        trace->close();
    }

    return collectSimResult(config_, program_.name(), config_.runahead,
                            *core_, *mem_, faults_.get(), cycles);
}

SimResult
collectSimResult(const SimConfig &config,
                 const std::string &workload_name,
                 RunaheadConfig runahead, Core &core, MemorySystem &mem,
                 FaultInjector *faults, Cycle cycles)
{
    Core *core_ = &core;
    MemorySystem *mem_ = &mem;
    FaultInjector *faults_ = faults;

    SimResult r;
    r.workload = workload_name;
    r.config = runahead;
    r.prefetch = config.prefetch;
    r.instructions = core_->committedUops.value();
    r.cycles = cycles;
    r.ipc = cycles == 0 ? 0.0
        : static_cast<double>(r.instructions)
            / static_cast<double>(cycles);
    r.mpki = r.instructions == 0 ? 0.0
        : 1000.0 * static_cast<double>(mem_->llcDemandMisses.value())
            / static_cast<double>(r.instructions);
    r.memStallFraction = cycles == 0 ? 0.0
        : static_cast<double>(core_->memStallCycles.value())
            / static_cast<double>(cycles);
    r.fig2OnChipFraction = core_->fig2MissTotal.value() == 0 ? 0.0
        : static_cast<double>(core_->fig2MissSrcOnChip.value())
            / static_cast<double>(core_->fig2MissTotal.value());

    const ChainAnalysis &ca = core_->chainAnalysis();
    r.necessaryFraction = ca.necessaryFraction();
    r.repeatedFraction = ca.repeatedFraction();
    r.avgChainLength = ca.averageChainLength();

    RunaheadController &ra = core_->runahead();
    r.missesPerInterval = ra.missesPerInterval();
    r.bufferCycleFraction = cycles == 0 ? 0.0
        : static_cast<double>(ra.cyclesBuffer.value())
            / static_cast<double>(cycles);
    const std::uint64_t cc_lookups =
        ra.chainCache().hits.value() + ra.chainCache().misses.value();
    r.chainCacheHitRate = cc_lookups == 0 ? 0.0
        : static_cast<double>(ra.chainCache().hits.value())
            / static_cast<double>(cc_lookups);
    r.chainCacheExactRate = ra.chainCacheCheckedHits.value() == 0 ? 0.0
        : static_cast<double>(ra.chainCacheExactHits.value())
            / static_cast<double>(ra.chainCacheCheckedHits.value());
    r.hybridBufferFraction = ra.bufferCycleFraction();
    r.runaheadIntervals = ra.intervals.value();
    r.dramRequests = mem_->dramRequests();

    if (faults_)
        r.faultsInjected = faults_->totalInjected();
    r.watchdogRecoveries = core_->watchdog().recoveries.value();
    r.degradeSteps = ra.ladder().degradeSteps.value();
    r.degradeLevel = static_cast<int>(ra.ladder().level());

    const EnergyModel energy_model(config.energy);
    r.energy = energy_model.compute(*core_, cycles);
    return r;
}

SimResult
simulateWorkload(const std::string &workload_name,
                 RunaheadConfig runahead, bool prefetch,
                 std::uint64_t instructions,
                 std::uint64_t warmup_instructions)
{
    SimConfig config = makeConfig(runahead, prefetch);
    config.instructions = instructions;
    config.warmupInstructions = warmup_instructions;
    Simulation sim(config, buildSuiteWorkload(workload_name));
    return sim.run();
}

} // namespace rab
