/**
 * @file
 * Simulation: owns one program + memory system + core, runs warmup and
 * a measured region, and extracts the metrics every figure in the
 * paper's evaluation needs.
 *
 * This is the library's primary entry point:
 * @code
 *   SimConfig config = makeConfig(RunaheadConfig::kHybrid, true);
 *   Simulation sim(config, buildSuiteWorkload("mcf"));
 *   SimResult result = sim.run();
 * @endcode
 */

#ifndef RAB_CORE_SIMULATION_HH
#define RAB_CORE_SIMULATION_HH

#include <cstdint>
#include <memory>
#include <string>

#include "backend/core.hh"
#include "core/sim_config.hh"
#include "energy/energy_model.hh"
#include "isa/program.hh"
#include "memory/memory_system.hh"

namespace rab
{

/** Everything a finished simulation reports. */
struct SimResult
{
    std::string workload;
    RunaheadConfig config = RunaheadConfig::kBaseline;
    bool prefetch = false;

    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double ipc = 0;

    double mpki = 0;              ///< Demand LLC misses / kilo-uop.
    double memStallFraction = 0;  ///< Fig. 1.
    double fig2OnChipFraction = 0;///< Fig. 2.

    double necessaryFraction = 0; ///< Fig. 3.
    double repeatedFraction = 0;  ///< Fig. 4.
    double avgChainLength = 0;    ///< Fig. 5.

    double missesPerInterval = 0; ///< Fig. 10.
    double bufferCycleFraction = 0; ///< Fig. 11 (of total cycles).
    double chainCacheHitRate = 0; ///< Fig. 12.
    double chainCacheExactRate = 0; ///< Fig. 13.
    double hybridBufferFraction = 0; ///< Fig. 14 (of runahead cycles).

    std::uint64_t dramRequests = 0; ///< Fig. 16.
    std::uint64_t runaheadIntervals = 0;

    /** @{ Fault campaign summary (zero when injection is disabled). */
    std::uint64_t faultsInjected = 0;
    std::uint64_t watchdogRecoveries = 0;
    std::uint64_t degradeSteps = 0;
    int degradeLevel = 0; ///< Final DegradeLevel as an int.
    /** @} */

    EnergyBreakdown energy; ///< Figs. 17/18.

    std::string toString() const;
};

/** One simulation run. */
class Simulation
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    /**
     * @p config must be finalize()d.
     *
     * The constructor claims exclusive ownership of every component
     * stat tree (StatGroup::claimExclusive): components are built
     * fresh per Simulation, and this assertion guarantees it, so
     * concurrent sweep points can never alias counters.
     */
    Simulation(const SimConfig &config, Program program);
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Run warmup + measured region and collect the result. */
    SimResult run();

    /** Run only the warmup region and reset every stat counter (the
     *  snapshot capture point). No-op when warmupInstructions == 0. */
    void runWarmup();

    /** Run only the measured region and collect the result. Call after
     *  runWarmup(), or after restoring a warmup snapshot. */
    SimResult runMeasured();

    /** Stream the measured region's retired uops to a binary trace
     *  file (src/trace format). Installs the core's commit hook for
     *  the measured region only, so the trace record count equals the
     *  committed-uop counter. Call before run()/runMeasured(). */
    void enableTrace(const std::string &path);

    Core &core() { return *core_; }
    MemorySystem &memory() { return *mem_; }
    const Program &program() const { return program_; }
    const SimConfig &config() const { return config_; }

    /** The fault injector, or nullptr when injection is disabled. */
    FaultInjector *faults() { return faults_.get(); }

  private:
    SimConfig config_;
    Program program_;
    std::unique_ptr<FaultInjector> faults_;
    std::unique_ptr<MemorySystem> mem_;
    std::unique_ptr<Core> core_;
    std::string tracePath_; ///< Empty when tracing is disabled.
};

/**
 * Extract every SimResult metric from a finished (or budget-crossing)
 * core and its memory view. This is the single extraction path shared
 * by Simulation and MultiSimulation, so a multi-core per-core result
 * matches a single-core run field-for-field by construction.
 *
 * @p runahead names the core's own policy (per-core in a
 * heterogeneous mix); @p cycles is the core's measured cycle count.
 */
SimResult collectSimResult(const SimConfig &config,
                           const std::string &workload_name,
                           RunaheadConfig runahead, Core &core,
                           MemorySystem &mem, FaultInjector *faults,
                           Cycle cycles);

/** Convenience: build + finalize + run in one call. */
SimResult simulateWorkload(const std::string &workload_name,
                           RunaheadConfig runahead, bool prefetch,
                           std::uint64_t instructions,
                           std::uint64_t warmup_instructions);

} // namespace rab

#endif // RAB_CORE_SIMULATION_HH
