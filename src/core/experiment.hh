/**
 * @file
 * Experiment harness helpers shared by the bench binaries: environment
 * driven run sizing (RAB_INSTRUCTIONS / RAB_WARMUP / RAB_WORKLOADS /
 * RAB_THREADS), workload selection, geometric means, aligned text
 * tables that print each figure's rows, and the CellRunner cache that
 * executes figure grids through the parallel sweep engine.
 */

#ifndef RAB_CORE_EXPERIMENT_HH
#define RAB_CORE_EXPERIMENT_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/simulation.hh"
#include "workloads/suite.hh"

namespace rab
{

/** Resolve sweep parallelism with one precedence rule shared by every
 *  driver: an explicit CLI value (> 0) wins, then a positive
 *  RAB_THREADS, then all hardware threads. Always >= 1. */
int resolveThreads(int cli_threads);

/** Default bench parallelism: resolveThreads(0) — RAB_THREADS, else
 *  every hardware thread. Always >= 1. */
int defaultBenchThreads();

/** Run sizing, overridable from the environment. */
struct BenchOptions
{
    std::uint64_t instructions = 60'000;
    std::uint64_t warmup = 15'000;
    int threads = 1; ///< Sweep parallelism (fromEnv: RAB_THREADS).
    std::vector<std::string> workloadFilter; ///< Empty: keep all.

    /**
     * Read RAB_INSTRUCTIONS, RAB_WARMUP, RAB_WORKLOADS (comma list)
     * and RAB_THREADS from the environment, falling back to the given
     * defaults (threads: all hardware threads).
     */
    static BenchOptions fromEnv(std::uint64_t default_instructions = 60'000,
                                std::uint64_t default_warmup = 15'000);
};

/** Apply the name filter (empty filter keeps everything). */
std::vector<WorkloadSpec>
selectWorkloads(const std::vector<WorkloadSpec> &base,
                const std::vector<std::string> &filter);

/** Geometric mean of (1 + x) ratios, returned as a ratio - 1.
 *  Matches the paper's "GMean" of percentage speedups. */
double geomeanSpeedup(const std::vector<double> &speedups);

/** Plain geometric mean of the positive values; non-positive entries
 *  (failed/empty points) are skipped with a warning rather than being
 *  clamped. Returns 0 when no positive value remains. */
double geomean(const std::vector<double> &values);

/** Aligned monospace table printer. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    std::string toString() const;
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Run one (workload, config, prefetch) cell with bench sizing. */
SimResult runCell(const WorkloadSpec &spec, RunaheadConfig config,
                  bool prefetch, const BenchOptions &options);

/** A (config, prefetch) column of a figure grid. */
using CellVariant = std::pair<RunaheadConfig, bool>;

/**
 * Runs (workload x config) cells once each and caches the results, so
 * several figures computed by one binary don't re-simulate.
 *
 * prefill() is the fast path: it hands the whole workload x variant
 * grid to the sweep engine (src/sweep), which executes the cells on
 * options.threads worker threads; the figure loops below then hit the
 * cache. get() on a missing cell still simulates serially, so callers
 * never have to prefill exactly.
 */
class CellRunner
{
  public:
    explicit CellRunner(const BenchOptions &options)
        : options_(options)
    {
    }

    /** Cached result for one cell; simulates on a miss. */
    const SimResult &get(const WorkloadSpec &spec, RunaheadConfig config,
                         bool prefetch);

    /** Simulate the whole grid in parallel and fill the cache. */
    void prefill(const std::vector<WorkloadSpec> &specs,
                 const std::vector<CellVariant> &variants);

    const BenchOptions &options() const { return options_; }

  private:
    static std::string cellKey(const std::string &workload,
                               RunaheadConfig config, bool prefetch);

    BenchOptions options_;
    std::map<std::string, SimResult> cache_;
};

} // namespace rab

#endif // RAB_CORE_EXPERIMENT_HH
