/**
 * @file
 * Experiment harness helpers shared by the bench binaries: environment
 * driven run sizing (RAB_INSTRUCTIONS / RAB_WARMUP / RAB_WORKLOADS),
 * workload selection, geometric means, and aligned text tables that
 * print each figure's rows.
 */

#ifndef RAB_CORE_EXPERIMENT_HH
#define RAB_CORE_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "workloads/suite.hh"

namespace rab
{

/** Run sizing, overridable from the environment. */
struct BenchOptions
{
    std::uint64_t instructions = 60'000;
    std::uint64_t warmup = 15'000;
    std::vector<std::string> workloadFilter; ///< Empty: keep all.

    /**
     * Read RAB_INSTRUCTIONS, RAB_WARMUP and RAB_WORKLOADS (comma list)
     * from the environment, falling back to the given defaults.
     */
    static BenchOptions fromEnv(std::uint64_t default_instructions = 60'000,
                                std::uint64_t default_warmup = 15'000);
};

/** Apply the name filter (empty filter keeps everything). */
std::vector<WorkloadSpec>
selectWorkloads(const std::vector<WorkloadSpec> &base,
                const std::vector<std::string> &filter);

/** Geometric mean of (1 + x) ratios, returned as a ratio - 1.
 *  Matches the paper's "GMean" of percentage speedups. */
double geomeanSpeedup(const std::vector<double> &speedups);

/** Plain geometric mean of positive values. */
double geomean(const std::vector<double> &values);

/** Aligned monospace table printer. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    std::string toString() const;
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Run one (workload, config, prefetch) cell with bench sizing. */
SimResult runCell(const WorkloadSpec &spec, RunaheadConfig config,
                  bool prefetch, const BenchOptions &options);

} // namespace rab

#endif // RAB_CORE_EXPERIMENT_HH
