#include "core/sim_config.hh"

#include <sstream>

#include "common/logging.hh"

namespace rab
{

const char *
runaheadConfigName(RunaheadConfig config)
{
    switch (config) {
      case RunaheadConfig::kBaseline: return "Baseline";
      case RunaheadConfig::kRunahead: return "Runahead";
      case RunaheadConfig::kRunaheadEnhanced: return "Runahead-Enhanced";
      case RunaheadConfig::kRunaheadBuffer: return "Runahead-Buffer";
      case RunaheadConfig::kRunaheadBufferCC: return "RA-Buffer+CC";
      case RunaheadConfig::kHybrid: return "Hybrid";
      case RunaheadConfig::kCRE: return "CRE";
      case RunaheadConfig::kCREHybrid: return "CRE+Hybrid";
    }
    return "?";
}

void
SimConfig::finalize()
{
    switch (runahead) {
      case RunaheadConfig::kBaseline:
        core.runahead = policyNone();
        break;
      case RunaheadConfig::kRunahead:
        core.runahead = policyTraditional();
        break;
      case RunaheadConfig::kRunaheadEnhanced:
        core.runahead = policyTraditionalEnhanced();
        break;
      case RunaheadConfig::kRunaheadBuffer:
        core.runahead = policyBuffer();
        break;
      case RunaheadConfig::kRunaheadBufferCC:
        core.runahead = policyBufferChainCache();
        break;
      case RunaheadConfig::kHybrid:
        core.runahead = policyHybrid();
        break;
      case RunaheadConfig::kCRE:
        core.runahead = policyCre();
        break;
      case RunaheadConfig::kCREHybrid:
        core.runahead = policyCreHybrid();
        break;
    }
    mem.prefetcher.enabled = prefetch;
    core.fastForward = fastForward;
    core.referenceScans = referenceScans;
    core.checkLevel = checkLevel;
    core.checkPolicy = checkPolicy;
    // Fault campaigns need the recovery layer armed: default the
    // forward-progress watchdog on (well below the deadlock panic)
    // unless the user configured a bound explicitly.
    if (fault.enabled && core.watchdog.cycles == 0)
        core.watchdog.cycles = 100'000;
    // Figures 3-5 instrument traditional runahead intervals.
    core.collectChainAnalysis = core.runahead.traditionalEnabled;
    energy.robEntries = core.robEntries;
    energy.clockGhz = mem.dram.coreClockGhz;
}

std::string
SimConfig::table1String() const
{
    std::ostringstream os;
    os << "Core            " << core.issueWidth << "-wide issue, "
       << core.robEntries << " entry ROB, " << core.rsEntries
       << " entry reservation station, hybrid branch predictor, "
       << mem.dram.coreClockGhz << " GHz\n";
    os << "Runahead Buffer " << core.runahead.bufferEntries
       << "-entry, uop size 8 bytes\n";
    os << "Runahead Cache  "
       << core.runahead.runaheadCache.sizeBytes << " B, "
       << core.runahead.runaheadCache.associativity
       << "-way, " << core.runahead.runaheadCache.lineBytes
       << " B lines\n";
    os << "Chain Cache     " << core.runahead.chainCacheEntries
       << " entries x " << core.runahead.chainGen.maxChainLength
       << " uops\n";
    os << "L1 Caches       " << mem.l1i.sizeBytes / 1024 << " KB I, "
       << mem.l1d.sizeBytes / 1024 << " KB D, "
       << mem.l1d.lineBytes << " B lines, " << core.memPorts
       << " ports, " << mem.l1d.latency << " cycle, "
       << mem.l1d.associativity << "-way, write-back\n";
    os << "LLC             " << mem.llc.sizeBytes / (1024 * 1024)
       << " MB, " << mem.llc.associativity << "-way, "
       << mem.llc.latency
       << " cycle, write-back, inclusive, "
       << mem.memQueueEntries << " entry memory queue\n";
    os << "Prefetcher      "
       << (prefetch ? "stream: " : "disabled (stream: ")
       << mem.prefetcher.streams << " streams, distance "
       << mem.prefetcher.distance << ", degree "
       << mem.prefetcher.degree << ", into LLC, FDP throttling"
       << (prefetch ? "" : ")") << "\n";
    os << "DRAM            DDR3, " << mem.dram.channels
       << " channels, " << mem.dram.banksPerChannel
       << " banks/channel, " << mem.dram.rowBytes / 1024
       << " KB rows, CAS " << mem.dram.casNs << " ns, "
       << mem.dram.busClockMhz
       << " MHz bus, bank conflicts & queueing modelled\n";
    return os.str();
}

SimConfig
makeConfig(RunaheadConfig runahead, bool prefetch)
{
    SimConfig config;
    config.runahead = runahead;
    config.prefetch = prefetch;
    config.finalize();
    return config;
}

} // namespace rab
