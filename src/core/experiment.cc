#include "core/experiment.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "sweep/campaign.hh"

namespace rab
{

namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value) {
        warn("ignoring unparsable %s='%s'", name, value);
        return fallback;
    }
    return parsed;
}

} // namespace

int
resolveThreads(int cli_threads)
{
    if (cli_threads > 0)
        return cli_threads;
    const std::uint64_t env = envU64("RAB_THREADS", 0);
    if (env > 0)
        return static_cast<int>(env);
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware > 0 ? static_cast<int>(hardware) : 1;
}

int
defaultBenchThreads()
{
    return resolveThreads(0);
}

BenchOptions
BenchOptions::fromEnv(std::uint64_t default_instructions,
                      std::uint64_t default_warmup)
{
    BenchOptions options;
    options.instructions = envU64("RAB_INSTRUCTIONS",
                                  default_instructions);
    options.warmup = envU64("RAB_WARMUP", default_warmup);
    options.threads = defaultBenchThreads();
    if (const char *list = std::getenv("RAB_WORKLOADS")) {
        std::stringstream ss(list);
        std::string item;
        while (std::getline(ss, item, ',')) {
            if (!item.empty())
                options.workloadFilter.push_back(item);
        }
    }
    return options;
}

std::vector<WorkloadSpec>
selectWorkloads(const std::vector<WorkloadSpec> &base,
                const std::vector<std::string> &filter)
{
    if (filter.empty())
        return base;
    std::vector<WorkloadSpec> selected;
    for (const WorkloadSpec &spec : base) {
        if (std::find(filter.begin(), filter.end(), spec.params.name)
                != filter.end()) {
            selected.push_back(spec);
        }
    }
    return selected;
}

double
geomean(const std::vector<double> &values)
{
    // A geometric mean is only defined over positive values. Zeros or
    // negatives (failed points, empty cells) used to be silently
    // clamped to 1e-12, dragging the mean to ~0 and masking the bad
    // point; skip them with a warning instead so the mean reflects the
    // points that actually ran.
    double log_sum = 0.0;
    std::size_t used = 0;
    for (const double v : values) {
        if (v > 0.0) {
            log_sum += std::log(v);
            ++used;
        }
    }
    if (used < values.size()) {
        warn("geomean: skipped %zu non-positive value(s) of %zu",
             values.size() - used, values.size());
    }
    if (used == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(used));
}

double
geomeanSpeedup(const std::vector<double> &speedups)
{
    if (speedups.empty())
        return 0.0;
    std::vector<double> ratios;
    ratios.reserve(speedups.size());
    for (const double s : speedups)
        ratios.push_back(1.0 + s);
    return geomean(ratios) - 1.0;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("TextTable: row has %zu cells, expected %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::toString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    std::ostringstream os;
    const auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size()) {
                os << std::string(widths[i] - row[i].size() + 2, ' ');
            }
        }
        os << "\n";
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (const std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(toString().c_str(), stdout);
}

SimResult
runCell(const WorkloadSpec &spec, RunaheadConfig config, bool prefetch,
        const BenchOptions &options)
{
    SimConfig sim_config = makeConfig(config, prefetch);
    sim_config.instructions = options.instructions;
    sim_config.warmupInstructions = options.warmup;
    Simulation sim(sim_config, buildWorkload(spec.params));
    return sim.run();
}

std::string
CellRunner::cellKey(const std::string &workload, RunaheadConfig config,
                    bool prefetch)
{
    return workload + "/" + runaheadConfigName(config)
        + (prefetch ? "+PF" : "");
}

const SimResult &
CellRunner::get(const WorkloadSpec &spec, RunaheadConfig config,
                bool prefetch)
{
    const std::string key = cellKey(spec.params.name, config, prefetch);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
        it = cache_.emplace(key,
                            runCell(spec, config, prefetch, options_))
                 .first;
    }
    return it->second;
}

void
CellRunner::prefill(const std::vector<WorkloadSpec> &specs,
                    const std::vector<CellVariant> &variants)
{
    CampaignSpec spec;
    spec.name = "bench-prefill";
    spec.instructions = options_.instructions;
    spec.warmup = options_.warmup;
    for (const WorkloadSpec &w : specs) {
        // Keep a workload only if some requested cell is still
        // missing; repeat prefills (multi-figure binaries) stay cheap.
        const bool missing = std::any_of(
            variants.begin(), variants.end(),
            [&](const CellVariant &v) {
                return cache_.count(cellKey(w.params.name, v.first,
                                            v.second))
                    == 0;
            });
        if (missing)
            spec.workloads.push_back(w.params.name);
    }
    for (const CellVariant &v : variants)
        spec.variants.push_back(makeVariant(v.first, v.second));
    if (spec.workloads.empty() || spec.variants.empty())
        return;

    const CampaignResult campaign =
        runCampaign(spec, options_.threads);
    for (const PointResult &p : campaign.points) {
        if (!p.ok) {
            warn("prefill: point %s/%s failed (%s); figures will "
                 "re-run it serially",
                 p.point.workload.c_str(), p.point.variant.c_str(),
                 p.error.c_str());
            continue;
        }
        cache_.emplace(cellKey(p.point.workload, p.point.runahead,
                               p.point.prefetch),
                       p.result);
    }
}

} // namespace rab
