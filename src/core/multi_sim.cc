#include "core/multi_sim.hh"

#include "common/logging.hh"
#include "workloads/suite.hh"

namespace rab
{

std::string
MultiSimResult::toString() const
{
    std::string s;
    for (std::size_t i = 0; i < cores.size(); ++i)
        s += strprintf("core%zu %s\n", i, cores[i].toString().c_str());
    s += strprintf("total: %llu instrs, %llu cycles, throughput %.3f "
                   "uops/cycle",
                   (unsigned long long)instructions,
                   (unsigned long long)cycles, throughputIpc);
    return s;
}

MultiSimulation::MultiSimulation(const SimConfig &config,
                                 std::vector<Program> programs)
    : config_(config), programs_(std::move(programs)),
      numCores_(config.numCores),
      checkLevel_(checkLevelFromEnv(config.checkLevel)),
      sharedGroup_("shared")
{
    if (numCores_ < 1)
        panic("MultiSimulation: numCores %d < 1", numCores_);
    if (static_cast<int>(programs_.size()) != numCores_) {
        panic("MultiSimulation: %zu programs for %d cores",
              programs_.size(), numCores_);
    }

    // Per-core configs: the base config with the core's own runahead
    // policy and a decorrelated fault seed. finalize() is idempotent,
    // so re-finalizing after the policy swap is safe.
    coreConfigs_.resize(static_cast<std::size_t>(numCores_));
    for (int i = 0; i < numCores_; ++i) {
        SimConfig &cc = coreConfigs_[static_cast<std::size_t>(i)];
        cc = config_;
        cc.runahead = config_.corePolicy(i);
        if (cc.fault.enabled && i > 0)
            cc.fault.seed += static_cast<std::uint64_t>(i);
        cc.finalize();
    }

    // Memory: one shared chip half for a real multi-core run; private
    // owned hierarchies for N == 1 (exact single-core stack — attached
    // mode would add contention counters to the stat payload) and for
    // the isolateMemory differential mode.
    const bool share = numCores_ > 1 && !config_.isolateMemory;
    if (share)
        shared_ = std::make_unique<SharedMemory>(config_.mem, numCores_);

    faults_.resize(static_cast<std::size_t>(numCores_));
    for (int i = 0; i < numCores_; ++i) {
        const std::size_t s = static_cast<std::size_t>(i);
        const SimConfig &cc = coreConfigs_[s];
        if (share) {
            mems_.push_back(
                std::make_unique<MemorySystem>(cc.mem, *shared_, i));
        } else {
            mems_.push_back(std::make_unique<MemorySystem>(cc.mem));
        }
        cores_.push_back(std::make_unique<Core>(cc.core, &programs_[s],
                                                mems_[s].get()));
        if (cc.fault.enabled) {
            faults_[s] = std::make_unique<FaultInjector>(cc.fault);
            mems_[s]->setFaultInjector(faults_[s].get());
            cores_[s]->setFaultInjector(faults_[s].get());
        }
    }

    // Stat trees. N == 1 leaves the raw "core"/"mem" groups unwrapped
    // so the collected payload is key-identical to Simulation's; N > 1
    // nests each core's groups under "core<i>" and publishes the
    // chip-wide counters under "shared".
    if (numCores_ > 1) {
        for (int i = 0; i < numCores_; ++i) {
            const std::size_t s = static_cast<std::size_t>(i);
            auto group = std::make_unique<StatGroup>(
                "core" + std::to_string(i));
            group->addChild(&cores_[s]->stats());
            group->addChild(&mems_[s]->stats());
            if (faults_[s])
                group->addChild(&faults_[s]->stats());
            group->claimExclusive(this);
            coreGroups_.push_back(std::move(group));
        }
        if (shared_) {
            shared_->regSharedStats(&sharedGroup_);
            sharedGroup_.claimExclusive(this);
        }
    } else {
        cores_[0]->stats().claimExclusive(this);
        mems_[0]->stats().claimExclusive(this);
        if (faults_[0])
            faults_[0]->stats().claimExclusive(this);
    }

    doneCycles_.resize(static_cast<std::size_t>(numCores_), 0);
    results_.resize(static_cast<std::size_t>(numCores_));
    statsSnapshots_.resize(static_cast<std::size_t>(numCores_));
}

MultiSimulation::~MultiSimulation()
{
    if (numCores_ > 1) {
        for (auto &group : coreGroups_)
            group->releaseExclusive(this);
        sharedGroup_.releaseExclusive(this);
    } else {
        cores_[0]->stats().releaseExclusive(this);
        mems_[0]->stats().releaseExclusive(this);
        if (faults_[0])
            faults_[0]->stats().releaseExclusive(this);
    }
}

void
MultiSimulation::runPhase(std::uint64_t instructions, bool collect)
{
    const int n = numCores_;
    std::vector<std::uint64_t> targets(static_cast<std::size_t>(n));
    std::vector<bool> done(static_cast<std::size_t>(n), false);
    int remaining = n;
    for (int i = 0; i < n; ++i) {
        targets[static_cast<std::size_t>(i)] =
            cores_[static_cast<std::size_t>(i)]->retired() + instructions;
    }

    // All cores advance in lockstep, so every core's cycle() agrees;
    // the limit is relative per phase, exactly like Core::run's.
    Cycle cycle = cores_[0]->cycle();
    const Cycle cycle_limit = cycle + config_.maxCycles;
    const bool check_containment =
        shared_ && checkLevel_ == CheckLevel::kFull;

    while (remaining > 0 && cycle < cycle_limit) {
        // Rotating round-robin tick order: the core that touches the
        // shared memory system first alternates every cycle, so no
        // core gets a standing arbitration advantage.
        // rablint: cycle-ok (modulo numCores first: the cast narrows a
        // value already bounded by the core count, not a cycle)
        const int start = static_cast<int>(cycle % static_cast<Cycle>(n));
        for (int k = 0; k < n; ++k) {
            const std::size_t i =
                static_cast<std::size_t>((start + k) % n);
            cores_[i]->tick();
            if (!done[i] && cores_[i]->retired() >= targets[i]) {
                done[i] = true;
                --remaining;
                doneCycles_[i] = cores_[i]->cycle();
                if (collect)
                    snapshotCore(static_cast<int>(i), cores_[i]->cycle());
            }
        }
        cycle = cores_[0]->cycle();

        if (check_containment
            && cycle % kContainmentPeriod == 0)
            checkSharedContainment(cycle);

        if (remaining == 0)
            break;

        // Fast-forward: only when every core is fully stalled AND
        // every core proves quiescence. All cores jump to the minimum
        // horizon together, preserving lockstep; a core may always be
        // moved to a target at or below its own proven horizon.
        bool eligible = true;
        for (int i = 0; i < n && eligible; ++i)
            eligible = cores_[static_cast<std::size_t>(i)]
                           ->fastForwardEligible();
        if (!eligible)
            continue;
        Cycle horizon = 0;
        for (int i = 0; i < n; ++i) {
            const Cycle h = cores_[static_cast<std::size_t>(i)]
                                ->proposeFastForward();
            if (h == 0) {
                horizon = 0;
                break;
            }
            if (horizon == 0 || h < horizon)
                horizon = h;
        }
        if (horizon > cycle_limit)
            horizon = cycle_limit;
        if (horizon > cycle + 1) {
            for (int i = 0; i < n; ++i)
                cores_[static_cast<std::size_t>(i)]
                    ->applyFastForward(horizon);
            cycle = horizon;
        }
    }

    if (check_containment)
        checkSharedContainment(cycle);
}

void
MultiSimulation::snapshotCore(int i, Cycle now)
{
    const std::size_t s = static_cast<std::size_t>(i);
    results_[s] = collectSimResult(
        coreConfigs_[s], programs_[s].name(), coreConfigs_[s].runahead,
        *cores_[s], *mems_[s], faults_[s].get(), now - measureStart_);
    if (numCores_ > 1) {
        statsSnapshots_[s] = coreGroups_[s]->collect();
    } else {
        statsSnapshots_[s] = cores_[s]->stats().collect();
        for (const auto &[name, value] : mems_[s]->stats().collect())
            statsSnapshots_[s].emplace(name, value);
    }
}

void
MultiSimulation::checkSharedContainment(Cycle now)
{
    if (!shared_)
        return;
    for (int i = 0; i < numCores_; ++i) {
        const std::size_t s = static_cast<std::size_t>(i);
        MemorySystem &mem = *mems_[s];
        const Cache *l1s[] = {&mem.l1i(), &mem.l1d()};
        const char *names[] = {"l1i", "l1d"};
        for (int c = 0; c < 2; ++c) {
            for (const Addr line : l1s[c]->validLines()) {
                // L1 lines are stored namespaced, so they probe the
                // shared LLC directly. A line may legitimately be
                // absent while its refill is still in flight.
                if (shared_->llc().probe(line))
                    continue;
                if (mem.missInFlight(line, now))
                    continue;
                throw InvariantViolation(
                    now, "shared-llc", "l1-contained-in-llc",
                    strprintf("core %d %s line 0x%llx not in shared "
                              "LLC and no miss in flight",
                              i, names[c], (unsigned long long)line));
            }
        }
    }
}

MultiSimResult
MultiSimulation::run()
{
    if (config_.warmupInstructions > 0) {
        runPhase(config_.warmupInstructions, /*collect=*/false);
        for (int i = 0; i < numCores_; ++i) {
            const std::size_t s = static_cast<std::size_t>(i);
            cores_[s]->stats().resetCounters();
            mems_[s]->stats().resetCounters();
        }
        if (shared_)
            sharedGroup_.resetCounters();
    }

    measureStart_ = cores_[0]->cycle();
    runPhase(config_.instructions, /*collect=*/true);
    const Cycle end = cores_[0]->cycle();

    MultiSimResult r;
    r.cores = results_;
    r.cycles = end - measureStart_;
    for (const SimResult &cr : r.cores)
        r.instructions += cr.instructions;
    r.throughputIpc = r.cycles == 0 ? 0.0
        : static_cast<double>(r.instructions)
            / static_cast<double>(r.cycles);
    for (const auto &snapshot : statsSnapshots_)
        for (const auto &[name, value] : snapshot)
            r.stats.emplace(name, value);
    if (shared_)
        for (const auto &[name, value] : sharedGroup_.collect())
            r.stats.emplace(name, value);

    // Chip-level energy: sum the per-core breakdowns component-wise.
    const EnergyCoefficients &ec = config_.energy;
    const double chip_seconds =
        static_cast<double>(r.cycles) / (ec.clockGhz * 1e9);
    for (const SimResult &cr : r.cores) {
        r.energy.frontendJ += cr.energy.frontendJ;
        r.energy.renameJ += cr.energy.renameJ;
        r.energy.windowJ += cr.energy.windowJ;
        r.energy.regfileJ += cr.energy.regfileJ;
        r.energy.executeJ += cr.energy.executeJ;
        r.energy.cacheJ += cr.energy.cacheJ;
        r.energy.dramJ += cr.energy.dramJ;
        r.energy.runaheadJ += cr.energy.runaheadJ;
        r.energy.engineJ += cr.energy.engineJ;
        r.energy.leakageJ += cr.energy.leakageJ;
        r.energy.totalJ += cr.energy.totalJ;
    }
    r.energy.seconds = chip_seconds;
    if (shared_) {
        // Each core's own breakdown charged the LLC + DRAM static
        // power over that core's measured window, but in shared mode
        // there is one LLC and one DRAM channel on the chip: back out
        // the N per-core charges and charge it once, over the chip's
        // window (the last finisher's).
        const double shared_static_w = ec.llcLeakageW + ec.dramStaticW;
        double percore_static_j = 0;
        for (const SimResult &cr : r.cores)
            percore_static_j += shared_static_w * cr.energy.seconds;
        const double chip_static_j = shared_static_w * chip_seconds;
        r.energy.leakageJ += chip_static_j - percore_static_j;
        r.energy.totalJ += chip_static_j - percore_static_j;

        r.stats.emplace("shared.energy.frontend_j", r.energy.frontendJ);
        r.stats.emplace("shared.energy.rename_j", r.energy.renameJ);
        r.stats.emplace("shared.energy.window_j", r.energy.windowJ);
        r.stats.emplace("shared.energy.regfile_j", r.energy.regfileJ);
        r.stats.emplace("shared.energy.execute_j", r.energy.executeJ);
        r.stats.emplace("shared.energy.cache_j", r.energy.cacheJ);
        r.stats.emplace("shared.energy.dram_j", r.energy.dramJ);
        r.stats.emplace("shared.energy.runahead_j", r.energy.runaheadJ);
        r.stats.emplace("shared.energy.engine_j", r.energy.engineJ);
        r.stats.emplace("shared.energy.leakage_j", r.energy.leakageJ);
        r.stats.emplace("shared.energy.total_j", r.energy.totalJ);
        r.stats.emplace("shared.energy.seconds", r.energy.seconds);
    }
    return r;
}

MultiSimResult
simulateMix(const SimConfig &config,
            const std::vector<std::string> &workloads)
{
    std::vector<Program> programs;
    programs.reserve(workloads.size());
    for (const std::string &name : workloads)
        programs.push_back(buildSuiteWorkload(name));
    MultiSimulation sim(config, std::move(programs));
    return sim.run();
}

} // namespace rab
