#include "trace/trace.hh"

#include <cstring>
#include <unordered_set>

#include "common/logging.hh"

namespace rab
{

TraceWriter::TraceWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fatal("trace: cannot open '%s' for writing", path.c_str());
    TraceHeader header;
    if (std::fwrite(&header, sizeof(header), 1, file_) != 1)
        fatal("trace: header write failed");
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::record(const DynUop &uop)
{
    if (!file_)
        panic("trace: record after close");
    TraceRecord rec;
    rec.seq = uop.seq;
    rec.pc = uop.pc;
    rec.addr = uop.sop.isMem() ? uop.effAddr : kNoAddr;
    rec.opcode = static_cast<std::uint8_t>(uop.sop.op);
    rec.flags = 0;
    if (uop.llcMiss)
        rec.flags |= TraceRecord::kFlagLlcMiss;
    if (uop.isControl() && uop.actualTaken)
        rec.flags |= TraceRecord::kFlagTaken;
    if (std::fwrite(&rec, sizeof(rec), 1, file_) != 1)
        fatal("trace: record write failed");
    ++count_;
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    TraceHeader header;
    header.records = count_;
    std::fseek(file_, 0, SEEK_SET);
    if (std::fwrite(&header, sizeof(header), 1, file_) != 1)
        fatal("trace: header rewrite failed");
    std::fclose(file_);
    file_ = nullptr;
}

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        fatal("trace: cannot open '%s' for reading", path.c_str());
    if (std::fread(&header_, sizeof(header_), 1, file_) != 1)
        fatal("trace: truncated header in '%s'", path.c_str());
    if (std::memcmp(header_.magic, "RABT", 4) != 0)
        fatal("trace: '%s' is not a rab trace", path.c_str());
    if (header_.version != 1)
        fatal("trace: unsupported version %u", header_.version);
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::next(TraceRecord &record)
{
    if (!file_ || read_ >= header_.records)
        return false;
    if (std::fread(&record, sizeof(record), 1, file_) != 1)
        fatal("trace: truncated record %llu",
              (unsigned long long)read_);
    ++read_;
    return true;
}

std::vector<TraceRecord>
TraceReader::readAll()
{
    std::vector<TraceRecord> records;
    records.reserve(header_.records);
    TraceRecord rec;
    while (next(rec))
        records.push_back(rec);
    return records;
}

std::string
TraceSummary::toString() const
{
    return strprintf(
        "%llu uops: %llu loads, %llu stores, %llu branches, "
        "%llu LLC misses (MPKI %.2f), %llu distinct lines",
        (unsigned long long)totalUops, (unsigned long long)loads,
        (unsigned long long)stores, (unsigned long long)branches,
        (unsigned long long)llcMisses, mpki,
        (unsigned long long)distinctLines);
}

TraceSummary
summarizeTrace(const std::string &path)
{
    TraceReader reader(path);
    TraceSummary summary;
    std::unordered_set<Addr> lines;
    TraceRecord rec;
    while (reader.next(rec)) {
        ++summary.totalUops;
        const auto op = static_cast<Opcode>(rec.opcode);
        if (op == Opcode::kLoad)
            ++summary.loads;
        else if (op == Opcode::kStore)
            ++summary.stores;
        else if (op == Opcode::kBranch || op == Opcode::kJump)
            ++summary.branches;
        if (rec.flags & TraceRecord::kFlagLlcMiss)
            ++summary.llcMisses;
        if (rec.addr != kNoAddr)
            lines.insert(rec.addr / 64);
    }
    summary.distinctLines = lines.size();
    summary.mpki = summary.totalUops == 0 ? 0.0
        : 1000.0 * static_cast<double>(summary.llcMisses)
            / static_cast<double>(summary.totalUops);
    return summary;
}

} // namespace rab
