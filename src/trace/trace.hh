/**
 * @file
 * Binary retirement-trace capture and replay-analysis tooling.
 *
 * TraceWriter hooks a Core's commit stream and records one fixed-size
 * record per retired uop (sequence number, PC, opcode, effective
 * address, LLC-miss flag). TraceReader iterates a captured file;
 * TraceSummary computes aggregate statistics (uop mix, memory
 * footprint, MPKI) so captured runs can be compared across
 * configurations or shipped to other tools.
 */

#ifndef RAB_TRACE_TRACE_HH
#define RAB_TRACE_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "backend/dyn_uop.hh"
#include "common/types.hh"

namespace rab
{

/** One trace record (32 bytes on disk, little-endian host order). */
struct TraceRecord
{
    std::uint64_t seq = 0;
    std::uint64_t pc = 0;
    std::uint64_t addr = 0; ///< kNoAddr for non-memory uops.
    std::uint8_t opcode = 0;
    std::uint8_t flags = 0; ///< Bit 0: LLC miss; bit 1: taken branch.
    std::uint8_t pad[6] = {};

    static constexpr std::uint8_t kFlagLlcMiss = 1;
    static constexpr std::uint8_t kFlagTaken = 2;
};

static_assert(sizeof(TraceRecord) == 32, "trace record must be packed");

/** File magic + version header. */
struct TraceHeader
{
    char magic[4] = {'R', 'A', 'B', 'T'};
    std::uint32_t version = 1;
    std::uint64_t records = 0;
};

/** Streams retired uops to a file. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one retired uop. */
    void record(const DynUop &uop);

    /** Flush and finalise the header. Called by the destructor too. */
    void close();

    std::uint64_t recordCount() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
};

/** Reads a captured trace. */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    std::uint64_t recordCount() const { return header_.records; }
    std::uint32_t version() const { return header_.version; }

    /** Read the next record; false at end of file. */
    bool next(TraceRecord &record);

    /** Read everything (for small traces / tests). */
    std::vector<TraceRecord> readAll();

  private:
    std::FILE *file_ = nullptr;
    TraceHeader header_;
    std::uint64_t read_ = 0;
};

/** Aggregate statistics over a trace. */
struct TraceSummary
{
    std::uint64_t totalUops = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t distinctLines = 0; ///< 64 B-line footprint.
    double mpki = 0;

    std::string toString() const;
};

/** Summarise a captured trace file. */
TraceSummary summarizeTrace(const std::string &path);

} // namespace rab

#endif // RAB_TRACE_TRACE_HH
