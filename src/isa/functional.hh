/**
 * @file
 * Functional (value-level) semantics: ALU evaluation, branch condition
 * evaluation, and the sparse functional memory image.
 */

#ifndef RAB_ISA_FUNCTIONAL_HH
#define RAB_ISA_FUNCTIONAL_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/types.hh"
#include "isa/uop.hh"

namespace rab
{

/**
 * Sparse 64-bit word-granular memory image.
 *
 * Reads of never-written locations fall through to a background
 * function, which lets workloads define gigabyte-scale structured data
 * (e.g. pointer-chase permutations) without materialising it. The
 * default background returns a deterministic hash of the address.
 */
class FunctionalMemory
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    using BackgroundFn = std::function<std::uint64_t(Addr)>;

    FunctionalMemory();

    /** Read the aligned 8-byte word containing @p addr. */
    std::uint64_t read(Addr addr) const;

    /** Write the aligned 8-byte word containing @p addr. */
    void write(Addr addr, std::uint64_t value);

    /** Install the generator used for never-written locations. */
    void setBackground(BackgroundFn fn);

    /** Number of explicitly written words. */
    std::size_t dirtyWords() const { return mem_.size(); }

    /** Drop all explicit writes (background remains installed). */
    void clear() { mem_.clear(); }

  private:
    static Addr align(Addr addr) { return addr & ~Addr{7}; }

    std::unordered_map<Addr, std::uint64_t> mem_;
    BackgroundFn background_;
};

/** Deterministic 64-bit mixing hash (splitmix64 finaliser). */
std::uint64_t mix64(std::uint64_t x);

/** Evaluate a non-memory, non-control uop's result. */
std::uint64_t evalAlu(const Uop &uop, std::uint64_t s1, std::uint64_t s2);

/** Evaluate a branch condition given source values. */
bool evalBranch(const Uop &uop, std::uint64_t s1, std::uint64_t s2);

/** Effective address of a memory uop. */
inline Addr
effectiveAddr(const Uop &uop, std::uint64_t base)
{
    return static_cast<Addr>(base + static_cast<std::uint64_t>(uop.imm));
}

} // namespace rab

#endif // RAB_ISA_FUNCTIONAL_HH
