/**
 * @file
 * Workload program representation and a small assembler-style builder.
 *
 * A Program is a static array of uops indexed by PC (each uop is one PC
 * step), a set of initial architectural register values, and a
 * background function defining the initial memory image. Programs are
 * infinite loops; the simulation runs them for a configured number of
 * retired instructions.
 */

#ifndef RAB_ISA_PROGRAM_HH
#define RAB_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/functional.hh"
#include "isa/uop.hh"

namespace rab
{

/** Number of architectural registers visible to programs. */
inline constexpr int kNumArchRegs = 32;

/** A complete workload program. */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** The static uop at @p pc. PCs wrap modulo program size. */
    const Uop &fetch(Pc pc) const;

    std::size_t size() const { return code_.size(); }
    bool empty() const { return code_.empty(); }

    void append(const Uop &uop) { code_.push_back(uop); }
    Uop &at(Pc pc) { return code_.at(pc); }
    const Uop &at(Pc pc) const { return code_.at(pc); }

    /** Initial value of architectural register @p reg. */
    std::uint64_t initialReg(ArchReg reg) const;
    void setInitialReg(ArchReg reg, std::uint64_t value);

    /** Background memory image generator (see FunctionalMemory). */
    const FunctionalMemory::BackgroundFn &memoryImage() const
    {
        return memoryImage_;
    }
    void setMemoryImage(FunctionalMemory::BackgroundFn fn)
    {
        memoryImage_ = std::move(fn);
    }

    /** Validate targets and register indices; panics on corruption. */
    void validate() const;

    /** Disassembly listing of the whole program. */
    std::string disassemble() const;

  private:
    std::string name_;
    std::vector<Uop> code_;
    std::map<ArchReg, std::uint64_t> initialRegs_;
    FunctionalMemory::BackgroundFn memoryImage_;
};

/**
 * Assembler-style builder with forward-referencable labels.
 *
 * Usage:
 * @code
 *   ProgramBuilder b("chase");
 *   auto loop = b.label();
 *   b.load(2, 1, 0);          // r2 = mem[r1]
 *   b.mov(1, 2);              // r1 = r2
 *   b.jump(loop);
 *   Program p = b.build();
 * @endcode
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    /** Opaque label handle. */
    struct Label { int id; };

    /** Create a label bound to the current position. */
    Label label();

    /** Create an unbound label for forward references. */
    Label futureLabel();

    /** Bind a future label to the current position. */
    void bind(Label label);

    /** Current PC (index of the next emitted uop). */
    Pc here() const { return code_.size(); }

    // --- Emitters (each returns the PC of the emitted uop) ---
    Pc nop();
    Pc li(ArchReg dest, std::int64_t imm);
    Pc mov(ArchReg dest, ArchReg src, std::int64_t imm = 0);
    Pc alu(AluFunc func, ArchReg dest, ArchReg src1, ArchReg src2,
           std::int64_t imm = 0);
    Pc add(ArchReg dest, ArchReg src1, ArchReg src2, std::int64_t imm = 0);
    Pc addi(ArchReg dest, ArchReg src, std::int64_t imm);
    Pc mix(ArchReg dest, ArchReg src1, ArchReg src2, std::int64_t imm = 0);
    Pc mul(ArchReg dest, ArchReg src1, ArchReg src2);
    Pc fpAlu(ArchReg dest, ArchReg src1, ArchReg src2);
    Pc fpMul(ArchReg dest, ArchReg src1, ArchReg src2);
    Pc load(ArchReg dest, ArchReg base, std::int64_t offset = 0);
    Pc store(ArchReg base, ArchReg data, std::int64_t offset = 0);
    Pc branch(BranchCond cond, ArchReg src1, ArchReg src2, Label target);
    Pc jump(Label target);

    /** Set an initial register value. */
    void initReg(ArchReg reg, std::uint64_t value);

    /** Install the background memory image. */
    void memoryImage(FunctionalMemory::BackgroundFn fn);

    /** Resolve labels and return the finished program. */
    Program build();

  private:
    Pc emit(Uop uop);

    std::string name_;
    std::vector<Uop> code_;
    std::vector<Pc> labelPcs_;       // id -> bound pc (kNoAddr if unbound)
    std::vector<std::pair<Pc, int>> fixups_; // (uop pc, label id)
    std::map<ArchReg, std::uint64_t> initialRegs_;
    FunctionalMemory::BackgroundFn memoryImage_;
};

} // namespace rab

#endif // RAB_ISA_PROGRAM_HH
