#include "isa/program.hh"

#include <sstream>

#include "common/logging.hh"

namespace rab
{

const Uop &
Program::fetch(Pc pc) const
{
    if (code_.empty())
        panic("Program::fetch on empty program '%s'", name_.c_str());
    return code_[pc % code_.size()];
}

std::uint64_t
Program::initialReg(ArchReg reg) const
{
    const auto it = initialRegs_.find(reg);
    return it == initialRegs_.end() ? 0 : it->second;
}

void
Program::setInitialReg(ArchReg reg, std::uint64_t value)
{
    initialRegs_[reg] = value;
}

void
Program::validate() const
{
    for (Pc pc = 0; pc < code_.size(); ++pc) {
        const Uop &uop = code_[pc];
        if (uop.isControl() && uop.target >= code_.size()) {
            panic("program '%s': uop %llu targets out-of-range pc %llu",
                  name_.c_str(), (unsigned long long)pc,
                  (unsigned long long)uop.target);
        }
        const auto check_reg = [&](ArchReg r) {
            if (r != kNoArchReg && r >= kNumArchRegs) {
                panic("program '%s': uop %llu uses bad register %d",
                      name_.c_str(), (unsigned long long)pc, (int)r);
            }
        };
        check_reg(uop.dest);
        check_reg(uop.src1);
        check_reg(uop.src2);
    }
}

std::string
Program::disassemble() const
{
    std::ostringstream os;
    for (Pc pc = 0; pc < code_.size(); ++pc)
        os << pc << ":\t" << code_[pc].toString() << "\n";
    return os.str();
}

ProgramBuilder::ProgramBuilder(std::string name)
    : name_(std::move(name))
{
}

ProgramBuilder::Label
ProgramBuilder::label()
{
    labelPcs_.push_back(here());
    return Label{static_cast<int>(labelPcs_.size()) - 1};
}

ProgramBuilder::Label
ProgramBuilder::futureLabel()
{
    labelPcs_.push_back(static_cast<Pc>(kNoAddr));
    return Label{static_cast<int>(labelPcs_.size()) - 1};
}

void
ProgramBuilder::bind(Label label)
{
    labelPcs_.at(label.id) = here();
}

Pc
ProgramBuilder::emit(Uop uop)
{
    code_.push_back(uop);
    return code_.size() - 1;
}

Pc
ProgramBuilder::nop()
{
    return emit(Uop{});
}

Pc
ProgramBuilder::li(ArchReg dest, std::int64_t imm)
{
    Uop u;
    u.op = Opcode::kIntAlu;
    u.func = AluFunc::kLi;
    u.dest = dest;
    u.imm = imm;
    return emit(u);
}

Pc
ProgramBuilder::mov(ArchReg dest, ArchReg src, std::int64_t imm)
{
    Uop u;
    u.op = Opcode::kIntAlu;
    u.func = AluFunc::kMov;
    u.dest = dest;
    u.src1 = src;
    u.imm = imm;
    return emit(u);
}

Pc
ProgramBuilder::alu(AluFunc func, ArchReg dest, ArchReg src1, ArchReg src2,
                    std::int64_t imm)
{
    Uop u;
    u.op = Opcode::kIntAlu;
    u.func = func;
    u.dest = dest;
    u.src1 = src1;
    u.src2 = src2;
    u.imm = imm;
    return emit(u);
}

Pc
ProgramBuilder::add(ArchReg dest, ArchReg src1, ArchReg src2,
                    std::int64_t imm)
{
    return alu(AluFunc::kAdd, dest, src1, src2, imm);
}

Pc
ProgramBuilder::addi(ArchReg dest, ArchReg src, std::int64_t imm)
{
    Uop u;
    u.op = Opcode::kIntAlu;
    u.func = AluFunc::kMov;
    u.dest = dest;
    u.src1 = src;
    u.imm = imm;
    return emit(u);
}

Pc
ProgramBuilder::mix(ArchReg dest, ArchReg src1, ArchReg src2,
                    std::int64_t imm)
{
    return alu(AluFunc::kMix, dest, src1, src2, imm);
}

Pc
ProgramBuilder::mul(ArchReg dest, ArchReg src1, ArchReg src2)
{
    Uop u;
    u.op = Opcode::kIntMul;
    u.func = AluFunc::kMix;
    u.dest = dest;
    u.src1 = src1;
    u.src2 = src2;
    return emit(u);
}

Pc
ProgramBuilder::fpAlu(ArchReg dest, ArchReg src1, ArchReg src2)
{
    Uop u;
    u.op = Opcode::kFpAlu;
    u.func = AluFunc::kMix;
    u.dest = dest;
    u.src1 = src1;
    u.src2 = src2;
    return emit(u);
}

Pc
ProgramBuilder::fpMul(ArchReg dest, ArchReg src1, ArchReg src2)
{
    Uop u;
    u.op = Opcode::kFpMul;
    u.func = AluFunc::kMix;
    u.dest = dest;
    u.src1 = src1;
    u.src2 = src2;
    return emit(u);
}

Pc
ProgramBuilder::load(ArchReg dest, ArchReg base, std::int64_t offset)
{
    Uop u;
    u.op = Opcode::kLoad;
    u.dest = dest;
    u.src1 = base;
    u.imm = offset;
    return emit(u);
}

Pc
ProgramBuilder::store(ArchReg base, ArchReg data, std::int64_t offset)
{
    Uop u;
    u.op = Opcode::kStore;
    u.src1 = base;
    u.src2 = data;
    u.imm = offset;
    return emit(u);
}

Pc
ProgramBuilder::branch(BranchCond cond, ArchReg src1, ArchReg src2,
                       Label target)
{
    Uop u;
    u.op = Opcode::kBranch;
    u.cond = cond;
    u.src1 = src1;
    u.src2 = src2;
    const Pc pc = emit(u);
    fixups_.emplace_back(pc, target.id);
    return pc;
}

Pc
ProgramBuilder::jump(Label target)
{
    Uop u;
    u.op = Opcode::kJump;
    u.cond = BranchCond::kAlways;
    const Pc pc = emit(u);
    fixups_.emplace_back(pc, target.id);
    return pc;
}

void
ProgramBuilder::initReg(ArchReg reg, std::uint64_t value)
{
    initialRegs_[reg] = value;
}

void
ProgramBuilder::memoryImage(FunctionalMemory::BackgroundFn fn)
{
    memoryImage_ = std::move(fn);
}

Program
ProgramBuilder::build()
{
    Program prog(name_);
    for (const auto &[pc, label_id] : fixups_) {
        const Pc target = labelPcs_.at(label_id);
        if (target == static_cast<Pc>(kNoAddr))
            fatal("program '%s': unbound label %d", name_.c_str(), label_id);
        code_[pc].target = target;
    }
    for (const Uop &u : code_)
        prog.append(u);
    for (const auto &[reg, value] : initialRegs_)
        prog.setInitialReg(reg, value);
    if (memoryImage_)
        prog.setMemoryImage(memoryImage_);
    prog.validate();
    return prog;
}

} // namespace rab
