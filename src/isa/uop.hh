/**
 * @file
 * Static micro-operation (uop) definition.
 *
 * The simulator executes programs expressed directly as decoded uops for
 * a small RISC-flavoured register machine: up to two source registers,
 * one destination register, a sign-extended immediate, and a branch
 * target. Memory uops compute the effective address as r[src1] + imm.
 * This mirrors the post-decode representation the paper's runahead
 * buffer stores (decoded x86 uops), without modelling x86 decode itself.
 */

#ifndef RAB_ISA_UOP_HH
#define RAB_ISA_UOP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace rab
{

/** Functional class of a uop; determines execution latency and port. */
enum class Opcode : std::uint8_t
{
    kNop,    ///< No operation (still occupies pipeline slots).
    kIntAlu, ///< Single-cycle integer ALU op (see AluFunc).
    kIntMul, ///< Integer multiply.
    kIntDiv, ///< Integer divide.
    kFpAlu,  ///< FP add/sub class latency.
    kFpMul,  ///< FP multiply class latency.
    kFpDiv,  ///< FP divide class latency.
    kLoad,   ///< dest = mem[r[src1] + imm]
    kStore,  ///< mem[r[src1] + imm] = r[src2]
    kBranch, ///< Conditional branch on r[src1] (vs r[src2] for kLtS).
    kJump,   ///< Unconditional direct jump.
};

/** Arithmetic function for ALU-class uops. */
enum class AluFunc : std::uint8_t
{
    kAdd, ///< dest = src1 + src2 + imm
    kSub, ///< dest = src1 - src2 + imm
    kAnd, ///< dest = src1 & (src2 | imm); with no src2 this is
          ///< mask-with-immediate.
    kOr,  ///< dest = (src1 | src2) + imm
    kXor, ///< dest = src1 ^ src2 ^ imm
    kShl, ///< dest = src1 << (imm & 63)
    kShr, ///< dest = src1 >> (imm & 63)
    kMix, ///< dest = hash(src1, src2, imm); data-diffusing op
    kMov, ///< dest = src1 + imm
    kLi,  ///< dest = imm
};

/** Branch condition, evaluated on register values. */
enum class BranchCond : std::uint8_t
{
    kAlways, ///< Taken unconditionally.
    kEqZ,    ///< Taken if r[src1] == 0.
    kNeZ,    ///< Taken if r[src1] != 0.
    kLtS,    ///< Taken if (signed)r[src1] < (signed)r[src2].
    kGeU,    ///< Taken if r[src1] >= r[src2] (unsigned).
};

/** One static micro-operation in a program. */
struct Uop
{
    Opcode op = Opcode::kNop;
    AluFunc func = AluFunc::kAdd;
    BranchCond cond = BranchCond::kAlways;

    ArchReg dest = kNoArchReg;
    ArchReg src1 = kNoArchReg;
    ArchReg src2 = kNoArchReg;

    std::int64_t imm = 0;

    /** Taken-path target for kBranch/kJump (fall-through is pc + 1). */
    Pc target = 0;

    bool isLoad() const { return op == Opcode::kLoad; }
    bool isStore() const { return op == Opcode::kStore; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isControl() const
    {
        return op == Opcode::kBranch || op == Opcode::kJump;
    }
    bool hasDest() const { return dest != kNoArchReg; }

    /** Number of source registers actually read. */
    int numSrcs() const;

    /** Human-readable disassembly, e.g. "load r3 <- [r1 + 16]". */
    std::string toString() const;
};

/** Execution latency in cycles for each opcode class. */
int execLatency(Opcode op);

/** Name string for an opcode. */
const char *opcodeName(Opcode op);

} // namespace rab

#endif // RAB_ISA_UOP_HH
