#include "isa/uop.hh"

#include "common/logging.hh"

namespace rab
{

int
Uop::numSrcs() const
{
    int n = 0;
    if (src1 != kNoArchReg)
        ++n;
    if (src2 != kNoArchReg)
        ++n;
    return n;
}

int
execLatency(Opcode op)
{
    switch (op) {
      case Opcode::kNop:
      case Opcode::kIntAlu:
      case Opcode::kBranch:
      case Opcode::kJump:
        return 1;
      case Opcode::kIntMul:
        return 3;
      case Opcode::kIntDiv:
        return 18;
      case Opcode::kFpAlu:
        return 4;
      case Opcode::kFpMul:
        return 6;
      case Opcode::kFpDiv:
        return 24;
      case Opcode::kLoad:
      case Opcode::kStore:
        return 1; // Address generation; memory latency is added on top.
    }
    panic("execLatency: bad opcode %d", static_cast<int>(op));
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::kNop: return "nop";
      case Opcode::kIntAlu: return "alu";
      case Opcode::kIntMul: return "mul";
      case Opcode::kIntDiv: return "div";
      case Opcode::kFpAlu: return "fadd";
      case Opcode::kFpMul: return "fmul";
      case Opcode::kFpDiv: return "fdiv";
      case Opcode::kLoad: return "load";
      case Opcode::kStore: return "store";
      case Opcode::kBranch: return "br";
      case Opcode::kJump: return "jmp";
    }
    return "?";
}

std::string
Uop::toString() const
{
    switch (op) {
      case Opcode::kLoad:
        return strprintf("load r%d <- [r%d + %lld]", (int)dest, (int)src1,
                         (long long)imm);
      case Opcode::kStore:
        return strprintf("store [r%d + %lld] <- r%d", (int)src1,
                         (long long)imm, (int)src2);
      case Opcode::kBranch:
        return strprintf("br(c%d r%d,r%d) -> %llu", (int)cond, (int)src1,
                         (int)src2, (unsigned long long)target);
      case Opcode::kJump:
        return strprintf("jmp -> %llu", (unsigned long long)target);
      default:
        return strprintf("%s r%d <- r%d, r%d, %lld", opcodeName(op),
                         (int)dest, (int)src1, (int)src2, (long long)imm);
    }
}

} // namespace rab
