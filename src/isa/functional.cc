#include "isa/functional.hh"

#include "common/logging.hh"

namespace rab
{

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

FunctionalMemory::FunctionalMemory()
    : background_([](Addr addr) { return mix64(addr); })
{
}

std::uint64_t
FunctionalMemory::read(Addr addr) const
{
    const Addr a = align(addr);
    const auto it = mem_.find(a);
    if (it != mem_.end())
        return it->second;
    return background_(a);
}

void
FunctionalMemory::write(Addr addr, std::uint64_t value)
{
    mem_[align(addr)] = value;
}

void
FunctionalMemory::setBackground(BackgroundFn fn)
{
    background_ = std::move(fn);
}

std::uint64_t
evalAlu(const Uop &uop, std::uint64_t s1, std::uint64_t s2)
{
    const auto imm = static_cast<std::uint64_t>(uop.imm);
    switch (uop.func) {
      case AluFunc::kAdd: return s1 + s2 + imm;
      case AluFunc::kSub: return s1 - s2 + imm;
      case AluFunc::kAnd: return s1 & (s2 | imm);
      case AluFunc::kOr:  return (s1 | s2) + imm;
      case AluFunc::kXor: return s1 ^ s2 ^ imm;
      case AluFunc::kShl: return s1 << (imm & 63);
      case AluFunc::kShr: return s1 >> (imm & 63);
      case AluFunc::kMix: return mix64(s1 ^ (s2 * 0x9e3779b97f4a7c15ull)
                                       ^ imm);
      case AluFunc::kMov: return s1 + imm;
      case AluFunc::kLi:  return imm;
    }
    panic("evalAlu: bad func %d", static_cast<int>(uop.func));
}

bool
evalBranch(const Uop &uop, std::uint64_t s1, std::uint64_t s2)
{
    switch (uop.cond) {
      case BranchCond::kAlways: return true;
      case BranchCond::kEqZ: return s1 == 0;
      case BranchCond::kNeZ: return s1 != 0;
      case BranchCond::kLtS:
        return static_cast<std::int64_t>(s1) < static_cast<std::int64_t>(s2);
      case BranchCond::kGeU: return s1 >= s2;
    }
    panic("evalBranch: bad cond %d", static_cast<int>(uop.cond));
}

} // namespace rab
