#include "workloads/suite.hh"

#include "common/logging.hh"
#include "isa/functional.hh"

namespace rab
{

namespace
{

/** Deterministic per-name seed. */
std::uint64_t
mixSeed(const char *name)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char *c = name; *c; ++c)
        h = mix64(h ^ static_cast<std::uint64_t>(*c));
    return h | 1;
}

} // namespace

const char *
intensityName(MemIntensity intensity)
{
    switch (intensity) {
      case MemIntensity::kLow: return "low";
      case MemIntensity::kMedium: return "medium";
      case MemIntensity::kHigh: return "high";
    }
    return "?";
}

namespace
{

WorkloadParams
compute(const char *name, std::uint64_t ws, int alu, int fp,
        bool noisy = false)
{
    WorkloadParams p;
    p.name = name;
    p.family = WorkloadFamily::kCompute;
    p.workingSetBytes = ws;
    p.aluPerIter = alu;
    p.fpPerIter = fp;
    p.noisyBranch = noisy;
    p.seed = mixSeed(name);
    return p;
}

WorkloadParams
gather(const char *name, std::uint64_t ws, int alu, int dep,
       bool alt = false, bool noisy = false, int fp = 0,
       std::uint64_t dep_region = 16 * 1024, int chain_alu = 0,
       int mem_phase = 0, int compute_phase = 0)
{
    WorkloadParams p;
    p.name = name;
    p.family = WorkloadFamily::kGather;
    p.workingSetBytes = ws;
    p.aluPerIter = alu;
    p.fpPerIter = fp;
    p.depLoads = dep;
    p.depRegionBytes = dep_region;
    p.chainAlu = chain_alu;
    p.altChains = alt;
    p.noisyBranch = noisy;
    p.memPhaseIters = mem_phase;
    p.computePhaseIters = compute_phase;
    p.seed = mixSeed(name);
    return p;
}

WorkloadParams
withChainNoise(WorkloadParams p, int diamonds)
{
    p.chainNoiseBranches = diamonds;
    return p;
}

WorkloadParams
stream(const char *name, std::uint64_t ws, int stride, int alu, int fp,
       bool stores, int chain_alu = 0, std::uint64_t segment = 0)
{
    WorkloadParams p;
    p.name = name;
    p.family = WorkloadFamily::kStream;
    p.workingSetBytes = ws;
    p.strideBytes = stride;
    p.aluPerIter = alu;
    p.fpPerIter = fp;
    p.stores = stores;
    p.chainAlu = chain_alu;
    p.segmentBytes = segment;
    p.seed = mixSeed(name);
    return p;
}

WorkloadParams
stride(const char *name, std::uint64_t ws, int stride_bytes, int arrays,
       int alu, int fp, int chain_alu = 0)
{
    WorkloadParams p;
    p.name = name;
    p.family = WorkloadFamily::kStride;
    p.workingSetBytes = ws;
    p.strideBytes = stride_bytes;
    p.numArrays = arrays;
    p.aluPerIter = alu;
    p.fpPerIter = fp;
    p.chainAlu = chain_alu;
    p.seed = mixSeed(name);
    return p;
}

WorkloadParams
chase(const char *name, std::uint64_t ws, int chain_alu, int alu,
      bool noisy, int side_gathers = 0, bool seq = false,
      int node_bytes = 64, int fp = 0)
{
    WorkloadParams p;
    p.name = name;
    p.family = WorkloadFamily::kChase;
    p.workingSetBytes = ws;
    p.chainAlu = chain_alu;
    p.aluPerIter = alu;
    p.noisyBranch = noisy;
    p.depLoads = side_gathers;
    p.seqChase = seq;
    p.strideBytes = node_bytes;
    p.fpPerIter = fp;
    p.seed = mixSeed(name);
    return p;
}

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;

std::vector<WorkloadSpec>
makeSuite()
{
    using MI = MemIntensity;
    std::vector<WorkloadSpec> suite;
    const auto add = [&](WorkloadParams p, MI mi) {
        suite.push_back(WorkloadSpec{std::move(p), mi});
    };

    // --- Low intensity (MPKI <= 2), Figure 1 left-to-right order.
    // Working sets are L1-resident (these applications are not memory
    // limited; a short simulation must not read cold-miss noise as
    // memory intensity). The ALU/FP mixes differentiate them.
    add(compute("calculix", 2 * kKiB, 6, 8), MI::kLow);
    add(compute("povray", 2 * kKiB, 10, 4), MI::kLow);
    add(compute("namd", 2 * kKiB, 6, 10), MI::kLow);
    add(compute("gamess", 2 * kKiB, 12, 4), MI::kLow);
    add(compute("perlbench", 4 * kKiB, 14, 0, /*noisy=*/true),
        MI::kLow);
    add(compute("tonto", 2 * kKiB, 8, 8), MI::kLow);
    add(compute("gromacs", 4 * kKiB, 8, 8), MI::kLow);
    add(compute("gobmk", 4 * kKiB, 14, 0, /*noisy=*/true), MI::kLow);
    add(compute("dealII", 4 * kKiB, 8, 6), MI::kLow);
    add(compute("sjeng", 4 * kKiB, 12, 0, /*noisy=*/true), MI::kLow);
    add(compute("gcc", 4 * kKiB, 16, 0, /*noisy=*/true), MI::kLow);
    add(compute("hmmer", 2 * kKiB, 16, 0), MI::kLow);
    add(compute("h264", 4 * kKiB, 12, 2), MI::kLow);
    add(compute("bzip2", 4 * kKiB, 12, 0, /*noisy=*/true), MI::kLow);
    add(compute("astar", 4 * kKiB, 12, 0, /*noisy=*/true), MI::kLow);
    add(compute("xalanc", 4 * kKiB, 14, 0), MI::kLow);

    // --- Medium intensity (2 < MPKI < 10). ---
    add(gather("zeusmp", 16 * kMiB, 4, 0, false, false, 0, 16 * kKiB,
               25, /*mem_phase=*/6, /*compute_phase=*/80),
        MI::kMedium);
    add(gather("cactus", 16 * kMiB, 4, 0, false, false, 0, 16 * kKiB,
               18, /*mem_phase=*/6, /*compute_phase=*/60),
        MI::kMedium);
    add(chase("wrf", 32 * kMiB, 0, 26, false, 0, /*seq=*/true,
              /*node_bytes=*/8, /*fp=*/10),
        MI::kMedium);

    // --- High intensity (MPKI >= 10). ---
    add(stride("GemsFDTD", 256 * kMiB, 8640, 1, 12, 16, 23),
        MI::kHigh);
    add(stride("leslie", 256 * kMiB, 8704, 1, 16, 12, 12), MI::kHigh);
    add(withChainNoise(gather("omnetpp", 64 * kMiB, 4, 0, false,
                              /*noisy=*/true, 0, 16 * kKiB, 60),
                       /*diamonds=*/3),
        MI::kHigh);
    add(gather("milc", 64 * kMiB, 4, 0, false, false, 0, 16 * kKiB,
               17, /*mem_phase=*/8, /*compute_phase=*/24),
        MI::kHigh);
    add(gather("soplex", 16 * kMiB, 14, 0, false, false, 0,
               16 * kKiB, 10),
        MI::kHigh);
    add(gather("sphinx", 8 * kMiB, 12, 0, /*alt=*/true, false, 0,
               16 * kKiB, 24),
        MI::kHigh);
    add(stride("bwaves", 256 * kMiB, 8704, 1, 20, 8, 13), MI::kHigh);
    add(stream("libq", 32 * kMiB, 8, 5, 0, /*stores=*/true, 8,
               /*segment=*/8 * kKiB),
        MI::kHigh);
    add(stream("lbm", 32 * kMiB, 16, 22, 6, /*stores=*/true, 9,
               /*segment=*/8 * kKiB),
        MI::kHigh);
    add(gather("mcf", 64 * kMiB, 6, 1, false, false, 0, 16 * kKiB,
               8),
        MI::kHigh);

    return suite;
}

} // namespace

const std::vector<WorkloadSpec> &
spec06Suite()
{
    static const std::vector<WorkloadSpec> suite = makeSuite();
    return suite;
}

std::vector<WorkloadSpec>
mediumHighSuite()
{
    std::vector<WorkloadSpec> subset;
    for (const WorkloadSpec &spec : spec06Suite()) {
        if (spec.intensity != MemIntensity::kLow)
            subset.push_back(spec);
    }
    return subset;
}

const WorkloadSpec *
findWorkload(const std::string &name)
{
    for (const WorkloadSpec &spec : spec06Suite()) {
        if (spec.params.name == name)
            return &spec;
    }
    // The suite abbreviates a few SPEC names; accept the full
    // benchmark names too so CLI mix specs read naturally.
    if (name == "libquantum")
        return findWorkload("libq");
    if (name == "xalancbmk")
        return findWorkload("xalanc");
    if (name == "cactusADM")
        return findWorkload("cactus");
    return nullptr;
}

Program
buildSuiteWorkload(const std::string &name)
{
    const WorkloadSpec *spec = findWorkload(name);
    if (!spec)
        fatal("unknown workload '%s'", name.c_str());
    return buildWorkload(spec->params);
}

} // namespace rab
