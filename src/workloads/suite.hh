/**
 * @file
 * The synthetic SPEC CPU2006 workload suite: 29 named workloads in the
 * paper's Figure 1 order (lowest to highest memory intensity), with the
 * Table 2 intensity classification.
 */

#ifndef RAB_WORKLOADS_SUITE_HH
#define RAB_WORKLOADS_SUITE_HH

#include <string>
#include <vector>

#include "workloads/builders.hh"

namespace rab
{

/** Table 2 memory intensity classes. */
enum class MemIntensity
{
    kLow,    ///< MPKI <= 2
    kMedium, ///< 2 < MPKI < 10
    kHigh,   ///< MPKI >= 10
};

const char *intensityName(MemIntensity intensity);

/** One suite entry. */
struct WorkloadSpec
{
    WorkloadParams params;
    MemIntensity intensity;
};

/** The full 29-workload suite in Figure 1 order. */
const std::vector<WorkloadSpec> &spec06Suite();

/** The medium + high intensity subset (the paper's evaluation focus). */
std::vector<WorkloadSpec> mediumHighSuite();

/** Find a workload spec by name; nullptr if unknown. */
const WorkloadSpec *findWorkload(const std::string &name);

/** Build a named workload's program. */
Program buildSuiteWorkload(const std::string &name);

} // namespace rab

#endif // RAB_WORKLOADS_SUITE_HH
