/**
 * @file
 * Parameterised synthetic-workload program builders.
 *
 * SPEC CPU2006 binaries and SimPoint traces are not redistributable, so
 * the suite is reproduced with synthetic kernels whose *memory access
 * structure* matches what the paper's per-benchmark discussion
 * attributes to each application (see DESIGN.md §2):
 *
 *  - kGather:  independent random gathers with a short address chain
 *              (mcf, soplex, sphinx-like; also the medium/low-intensity
 *              mixes when the working set partially fits the LLC).
 *  - kStream:  sequential sweeps, optionally storing to an output
 *              stream (libquantum, lbm, bwaves-like). Stream-prefetcher
 *              friendly.
 *  - kStride:  multi-array large-stride sweeps (milc, leslie3d,
 *              GemsFDTD, zeusmp, cactusADM, wrf-like). Prefetcher
 *              hostile, runahead friendly.
 *  - kChase:   a dependent pointer chase with a long computation chain
 *              feeding each next address (omnetpp-like): long, often
 *              unique dependence chains; dependent misses.
 *  - kCompute: L1-resident compute loops (the low-MPKI group).
 */

#ifndef RAB_WORKLOADS_BUILDERS_HH
#define RAB_WORKLOADS_BUILDERS_HH

#include <cstdint>
#include <string>

#include "isa/program.hh"

namespace rab
{

/** Synthetic workload families. */
enum class WorkloadFamily
{
    kGather,
    kStream,
    kStride,
    kChase,
    kCompute,
};

/** Knobs shared by all families (not all are used by each). */
struct WorkloadParams
{
    std::string name = "workload";
    WorkloadFamily family = WorkloadFamily::kGather;

    /** Primary data working set; must be a power of two. */
    std::uint64_t workingSetBytes = 64ull << 20;

    /** Access stride for stream/stride families (bytes). */
    int strideBytes = 8;

    /** Parallel arrays swept by the stride family. */
    int numArrays = 1;

    /** Filler ALU ops per iteration (outside address chains). */
    int aluPerIter = 4;

    /** Filler FP ops per iteration. */
    int fpPerIter = 0;

    /** Dependent loads after the primary gather load. */
    int depLoads = 0;

    /** Working set of the dependent loads; power of two. */
    std::uint64_t depRegionBytes = 16 * 1024;

    /** Extra ALU ops *inside* the address-generation chain
     *  (lengthens dependence chains; > 28 forces hybrid fallback). */
    int chainAlu = 0;

    /** Emit one store per iteration (to an output stream). */
    bool stores = false;

    /** Stream family: > 0 breaks the sweep into segments of this many
     *  bytes (power of two): after each segment the stream jumps ahead,
     *  like finishing one row of an array. Stream prefetchers overshoot
     *  by their prefetch distance at every boundary, which is where
     *  their bandwidth overhead comes from. */
    std::uint64_t segmentBytes = 0;

    /** Alternate between two differently-shaped gather chains on a
     *  data-dependent condition (defeats the 2-entry chain cache,
     *  sphinx-like). */
    bool altChains = false;

    /** Insert a data-dependent (hard-to-predict) branch skipping a few
     *  filler ops. */
    bool noisyBranch = false;

    /** Chase family: follow a *sequential* pointer chain (next node =
     *  this node + strideBytes) instead of a pseudo-random permutation.
     *  Serial like any chase — runahead cannot mine it — but perfectly
     *  stream-prefetchable (wrf-like). */
    bool seqChase = false;

    /** Gather family: number of data-dependent skip-diamonds embedded
     *  *inside* the address chain. Each diamond conditionally skips two
     *  chain ops, so the dynamic dependence chain of the gather load
     *  varies between instances (omnetpp-like unique chains). */
    int chainNoiseBranches = 0;

    /** Gather family: > 0 switches to a *phased* program — an inner
     *  memory loop of this many gather iterations followed by an inner
     *  compute loop (computePhaseIters iterations of an 8-uop FP/ALU
     *  body). Misses cluster inside the memory phase, which keeps
     *  several dynamic instances of the gather PC in the ROB (so chain
     *  generation finds a match) while the compute phase controls
     *  MPKI — the structure of stencil/physics codes like zeusmp,
     *  cactusADM and milc. */
    int memPhaseIters = 0;

    /** Gather family: compute-phase loop iterations (see above). */
    int computePhaseIters = 0;

    /** Seed mixed into the address hash. */
    std::uint64_t seed = 1;
};

/** Build a program for @p params (dispatches on family). */
Program buildWorkload(const WorkloadParams &params);

/** @{ Family builders (exposed for tests). */
Program buildGather(const WorkloadParams &params);
Program buildStream(const WorkloadParams &params);
Program buildStride(const WorkloadParams &params);
Program buildChase(const WorkloadParams &params);
Program buildCompute(const WorkloadParams &params);
/** @} */

/** Base heap address used by every builder. */
inline constexpr Addr kHeapBase = 0x10000000ull;

} // namespace rab

#endif // RAB_WORKLOADS_BUILDERS_HH
