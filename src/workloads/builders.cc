#include "workloads/builders.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/functional.hh"

namespace rab
{

namespace
{

/** Register conventions shared by the builders. */
constexpr ArchReg kRegIdx = 1;    ///< Induction / offset / pointer.
constexpr ArchReg kRegHash = 2;   ///< Hashed index.
constexpr ArchReg kRegAddr = 3;   ///< Effective address.
constexpr ArchReg kRegVal = 4;    ///< Loaded value.
constexpr ArchReg kRegDep = 5;    ///< Dependent-load scratch.
constexpr ArchReg kRegCond = 8;   ///< Branch condition scratch.
constexpr ArchReg kRegChain = 9;  ///< Address-chain scratch.
constexpr ArchReg kRegBase = 10;  ///< Primary array base.
constexpr ArchReg kRegBase2 = 11; ///< Dep-region / output base.
constexpr ArchReg kRegArray0 = 12;///< Stride-family array bases 12..17.
constexpr ArchReg kRegAcc = 20;   ///< Filler accumulators 20..27.
constexpr ArchReg kRegMemCtr = 28;///< Phased gather: memory-phase ctr.
constexpr ArchReg kRegCmpCtr = 29;///< Phased gather: compute-phase ctr.

std::uint64_t
wordMask(std::uint64_t bytes)
{
    if (bytes < 8 || (bytes & (bytes - 1)) != 0)
        fatal("workload: working set %llu must be a power of two >= 8",
              (unsigned long long)bytes);
    return (bytes - 1) & ~std::uint64_t{7};
}


/** Emit a serial @p n-op mix chain seeded by @p seed_reg whose result
 *  is folded to zero (so it can lengthen an address dependence chain
 *  without changing the address). Leaves the zero in kRegChain. */
void
emitZeroChain(ProgramBuilder &b, ArchReg seed_reg, int n)
{
    if (n <= 0) {
        b.li(kRegChain, 0);
        return;
    }
    b.mix(kRegChain, seed_reg, seed_reg, 0x2001);
    for (int i = 1; i < n; ++i)
        b.mix(kRegChain, kRegChain, seed_reg, 0x2001 + i);
    b.alu(AluFunc::kAnd, kRegChain, kRegChain, kNoArchReg, 0);
}

/** Emit filler ALU/FP ops consuming the loaded value. */
void
emitFiller(ProgramBuilder &b, const WorkloadParams &p)
{
    for (int i = 0; i < p.aluPerIter; ++i) {
        const ArchReg acc = static_cast<ArchReg>(kRegAcc + (i % 4));
        b.mix(acc, acc, kRegVal, p.seed + i);
    }
    for (int i = 0; i < p.fpPerIter; ++i) {
        const ArchReg acc = static_cast<ArchReg>(kRegAcc + 4 + (i % 3));
        if (i % 3 == 2)
            b.fpMul(acc, acc, static_cast<ArchReg>(kRegAcc + 4));
        else
            b.fpAlu(acc, acc, kRegVal);
    }
}

/** Emit a data-dependent branch that skips two filler ops ~50% of the
 *  time (hard to predict: the condition is a loaded-value bit). */
void
emitNoisyBranch(ProgramBuilder &b)
{
    b.alu(AluFunc::kAnd, kRegCond, kRegVal, kNoArchReg, 1);
    auto skip = b.futureLabel();
    b.branch(BranchCond::kNeZ, kRegCond, kNoArchReg, skip);
    b.mix(kRegAcc, kRegAcc, kRegCond, 0x51);
    b.mix(static_cast<ArchReg>(kRegAcc + 1),
          static_cast<ArchReg>(kRegAcc + 1), kRegCond, 0x52);
    b.bind(skip);
}

} // namespace

Program
buildGather(const WorkloadParams &p)
{
    ProgramBuilder b(p.name);
    const std::uint64_t mask = wordMask(p.workingSetBytes);
    const std::uint64_t dep_mask = wordMask(p.depRegionBytes);
    const Addr dep_base = kHeapBase + p.workingSetBytes + (64ull << 10);
    const bool phased = p.memPhaseIters > 0;

    b.initReg(kRegIdx, 0);
    b.initReg(kRegBase, kHeapBase);
    b.initReg(kRegBase2, dep_base);

    auto loop = b.label();
    ProgramBuilder::Label mem_loop{};
    if (phased) {
        b.li(kRegMemCtr, p.memPhaseIters);
        mem_loop = b.label();
    }
    b.addi(kRegIdx, kRegIdx, 1);
    b.mix(kRegHash, kRegIdx, kRegIdx, static_cast<std::int64_t>(p.seed));

    if (p.altChains) {
        // Diamond: the address register is produced on one of two paths
        // (75% / 25%) whose *structure* differs, so the dynamic
        // dependence chain of the shared gather load varies between
        // instances (sphinx-like). The minority path computes a
        // slightly shifted address and is one op longer, so a chain
        // cached from one path issues inaccurate (but valid, flowing)
        // requests when the other path runs, and the hybrid policy sees
        // occasional over-length chains.
        b.alu(AluFunc::kAnd, kRegCond, kRegHash, kNoArchReg, 7);
        auto alt = b.futureLabel();
        auto join = b.futureLabel();
        b.branch(BranchCond::kEqZ, kRegCond, kNoArchReg, alt);
        b.mix(kRegChain, kRegHash, kRegIdx, 0x1111);
        for (int i = 0; i < p.chainAlu; ++i)
            b.mix(kRegChain, kRegChain, kRegIdx, 0x4001 + i);
        b.jump(join);
        b.bind(alt);
        // Minority path: the address depends on the previous loaded
        // value, so a chain cached from this path poisons after one
        // buffer loop (bounded inaccuracy).
        b.mix(kRegChain, kRegHash, kRegVal, 0x9999);
        for (int i = 0; i < p.chainAlu; ++i)
            b.mix(kRegChain, kRegChain, kRegIdx, 0x4001 + i);
        b.bind(join);
        b.alu(AluFunc::kAnd, kRegChain, kRegChain, kNoArchReg,
              static_cast<std::int64_t>(mask));
        b.add(kRegAddr, kRegBase, kRegChain);
    } else {
        const int noise = p.chainNoiseBranches;
        const int gap = noise > 0 ? p.chainAlu / (noise + 1) : 0;
        for (int i = 0; i < p.chainAlu; ++i) {
            b.mix(kRegHash, kRegHash, kRegIdx, 0x77 + i);
            if (noise > 0 && gap > 2 && i > 0 && i % gap == 0
                && i / gap <= noise) {
                // Diamond on an induction-counter bit: periodic (the
                // branch predictor learns it) yet the dynamic slice
                // varies between instances.
                b.alu(AluFunc::kAnd, kRegCond, kRegIdx, kNoArchReg,
                      1 << (1 + i / gap));
                auto skip = b.futureLabel();
                b.branch(BranchCond::kNeZ, kRegCond, kNoArchReg, skip);
                b.mix(kRegHash, kRegHash, kRegIdx, 0x3000 + i);
                b.mix(kRegHash, kRegHash, kRegIdx, 0x3100 + i);
                b.bind(skip);
            }
        }
        b.alu(AluFunc::kAnd, kRegHash, kRegHash, kNoArchReg,
              static_cast<std::int64_t>(mask));
        b.add(kRegAddr, kRegBase, kRegHash);
    }

    b.load(kRegVal, kRegAddr, 0);

    for (int d = 0; d < p.depLoads; ++d) {
        b.alu(AluFunc::kAnd, kRegDep, kRegVal, kNoArchReg,
              static_cast<std::int64_t>(dep_mask));
        b.add(kRegDep, kRegBase2, kRegDep);
        b.load(kRegVal, kRegDep, 0);
    }

    if (p.stores) {
        b.add(kRegDep, kRegBase2, kRegHash);
        b.store(kRegDep, kRegVal, 8);
    }

    if (p.noisyBranch)
        emitNoisyBranch(b);

    if (phased) {
        // Close the memory phase, then run the compute phase: an inner
        // loop of 4 ALU + 2 FP ops that keeps the core busy without
        // touching memory.
        b.addi(kRegMemCtr, kRegMemCtr, -1);
        b.branch(BranchCond::kNeZ, kRegMemCtr, kNoArchReg, mem_loop);
        if (p.computePhaseIters > 0) {
            b.li(kRegCmpCtr, p.computePhaseIters);
            auto cmp_loop = b.label();
            b.mix(kRegAcc, kRegAcc, kRegVal, 0xc001);
            b.mix(static_cast<ArchReg>(kRegAcc + 1),
                  static_cast<ArchReg>(kRegAcc + 1), kRegAcc, 0xc002);
            b.mix(static_cast<ArchReg>(kRegAcc + 2),
                  static_cast<ArchReg>(kRegAcc + 2), kRegAcc, 0xc003);
            b.mix(static_cast<ArchReg>(kRegAcc + 3),
                  static_cast<ArchReg>(kRegAcc + 3), kRegAcc, 0xc004);
            b.fpAlu(static_cast<ArchReg>(kRegAcc + 4),
                    static_cast<ArchReg>(kRegAcc + 4), kRegAcc);
            b.fpMul(static_cast<ArchReg>(kRegAcc + 5),
                    static_cast<ArchReg>(kRegAcc + 5),
                    static_cast<ArchReg>(kRegAcc + 4));
            b.addi(kRegCmpCtr, kRegCmpCtr, -1);
            b.branch(BranchCond::kNeZ, kRegCmpCtr, kNoArchReg, cmp_loop);
        }
    }
    emitFiller(b, p);
    b.jump(loop);
    return b.build();
}

Program
buildStream(const WorkloadParams &p)
{
    ProgramBuilder b(p.name);
    const std::uint64_t mask = wordMask(p.workingSetBytes);
    const Addr out_base = kHeapBase + p.workingSetBytes + (64ull << 10);

    b.initReg(kRegIdx, 0);
    b.initReg(kRegBase, kHeapBase);
    b.initReg(kRegBase2, out_base);

    auto loop = b.label();
    b.addi(kRegIdx, kRegIdx, p.strideBytes);
    if (p.segmentBytes > 0) {
        // Segment boundary: jump ahead by a large, non-stream step
        // (finishing a row). Taken once per segment; predictable.
        b.alu(AluFunc::kAnd, kRegCond, kRegIdx, kNoArchReg,
              static_cast<std::int64_t>(p.segmentBytes - 1));
        auto no_jump = b.futureLabel();
        b.branch(BranchCond::kNeZ, kRegCond, kNoArchReg, no_jump);
        b.addi(kRegIdx, kRegIdx,
               static_cast<std::int64_t>(p.segmentBytes * 7));
        b.bind(no_jump);
    }
    b.alu(AluFunc::kAnd, kRegIdx, kRegIdx, kNoArchReg,
          static_cast<std::int64_t>(mask));
    b.add(kRegAddr, kRegBase, kRegIdx);
    if (p.chainAlu > 0) {
        emitZeroChain(b, kRegIdx, p.chainAlu);
        b.add(kRegAddr, kRegAddr, kRegChain);
    }
    b.load(kRegVal, kRegAddr, 0);

    if (p.stores) {
        b.add(kRegDep, kRegBase2, kRegIdx);
        b.store(kRegDep, kRegVal, 0);
    }

    if (p.noisyBranch)
        emitNoisyBranch(b);
    emitFiller(b, p);
    b.jump(loop);
    return b.build();
}

Program
buildStride(const WorkloadParams &p)
{
    ProgramBuilder b(p.name);
    const std::uint64_t mask = wordMask(p.workingSetBytes);
    const int arrays = std::min(p.numArrays, 6);
    if (arrays < 1)
        fatal("workload %s: need at least one array", p.name.c_str());

    b.initReg(kRegIdx, 0);
    for (int a = 0; a < arrays; ++a) {
        // Space the arrays out so they map to different rows/banks.
        b.initReg(static_cast<ArchReg>(kRegArray0 + a),
                  kHeapBase + static_cast<Addr>(a)
                      * (p.workingSetBytes + (1ull << 20)));
    }

    auto loop = b.label();
    b.addi(kRegIdx, kRegIdx, p.strideBytes);
    b.alu(AluFunc::kAnd, kRegIdx, kRegIdx, kNoArchReg,
          static_cast<std::int64_t>(mask));
    if (p.chainAlu > 0) {
        // Lengthen every array's address chain by a shared zero-folded
        // computation (models address arithmetic in real stencils).
        // The chain re-seeds from the induction each iteration, so
        // iterations still pipeline.
        emitZeroChain(b, kRegIdx, p.chainAlu);
    } else {
        b.li(kRegChain, 0);
    }
    for (int a = 0; a < arrays; ++a) {
        b.add(kRegAddr, static_cast<ArchReg>(kRegArray0 + a), kRegIdx);
        b.add(kRegAddr, kRegAddr, kRegChain);
        b.load(kRegVal, kRegAddr, 0);
        b.mix(static_cast<ArchReg>(kRegAcc + (a % 4)),
              static_cast<ArchReg>(kRegAcc + (a % 4)), kRegVal, a);
    }

    if (p.stores) {
        b.add(kRegDep, static_cast<ArchReg>(kRegArray0), kRegIdx);
        b.store(kRegDep, kRegAcc, 8);
    }

    if (p.noisyBranch)
        emitNoisyBranch(b);
    emitFiller(b, p);
    b.jump(loop);
    return b.build();
}

Program
buildChase(const WorkloadParams &p)
{
    ProgramBuilder b(p.name);
    const std::uint64_t node_bytes =
        p.seqChase ? static_cast<std::uint64_t>(p.strideBytes) : 64;
    const std::uint64_t nodes = p.workingSetBytes / node_bytes;
    if (nodes < 4 || (nodes & (nodes - 1)) != 0)
        fatal("workload %s: chase node count must be a power of two",
              p.name.c_str());
    const Addr base = kHeapBase;
    const std::uint64_t node_mask = nodes - 1;
    // Multiplicative-LCG permutation: A = 5 (mod 8) has order 2^(k-2)
    // over the odd residues, giving a long pseudo-random pointer cycle.
    const std::uint64_t mult = 2862933555777941757ull;
    const bool seq = p.seqChase;

    b.initReg(kRegIdx, base + node_bytes); // Node 1 (odd: max orbit).
    b.initReg(kRegChain, 0);
    b.memoryImage([base, nodes, node_mask, mult, node_bytes, seq](
                      Addr addr) -> std::uint64_t {
        if (addr >= base && addr < base + nodes * node_bytes
            && ((addr - base) % node_bytes) == 0) {
            const std::uint64_t idx = (addr - base) / node_bytes;
            const std::uint64_t next =
                (seq ? idx + 1 : idx * mult) & node_mask;
            return base + next * node_bytes;
        }
        return mix64(addr);
    });

    auto loop = b.label();
    b.load(kRegVal, kRegIdx, 0); // next pointer (the dependent miss)
    // A long computation chain whose (always-zero) result feeds the
    // next pointer, stretching the load's dependence chain.
    for (int i = 0; i < p.chainAlu; ++i)
        b.mix(kRegChain, kRegChain, kRegVal, 0x1000 + i);
    b.alu(AluFunc::kAnd, kRegChain, kRegChain, kNoArchReg, 0);
    b.add(kRegIdx, kRegVal, kRegChain);

    // Independent side gathers (events touching other heap objects):
    // these give runahead some minable parallelism even though the
    // chase itself is serial.
    if (p.depLoads > 0) {
        const Addr side_base = base + p.workingSetBytes + (1ull << 20);
        const std::uint64_t side_mask = wordMask(p.workingSetBytes);
        b.initReg(kRegBase2, side_base);
        for (int d = 0; d < p.depLoads; ++d) {
            b.addi(kRegDep, kRegDep, 1);
            b.mix(kRegCond, kRegDep, kRegDep, 0x5151 + d);
            b.alu(AluFunc::kAnd, kRegCond, kRegCond, kNoArchReg,
                  static_cast<std::int64_t>(side_mask));
            b.add(kRegCond, kRegBase2, kRegCond);
            b.load(kRegHash, kRegCond, 0);
        }
    }

    if (p.noisyBranch)
        emitNoisyBranch(b);
    emitFiller(b, p);
    b.jump(loop);
    return b.build();
}

Program
buildCompute(const WorkloadParams &p)
{
    ProgramBuilder b(p.name);
    const std::uint64_t mask = wordMask(p.workingSetBytes);

    b.initReg(kRegIdx, 0);
    b.initReg(kRegBase, kHeapBase);

    auto loop = b.label();
    b.addi(kRegIdx, kRegIdx, 8);
    b.alu(AluFunc::kAnd, kRegIdx, kRegIdx, kNoArchReg,
          static_cast<std::int64_t>(mask));
    b.add(kRegAddr, kRegBase, kRegIdx);
    b.load(kRegVal, kRegAddr, 0);
    if (p.stores)
        b.store(kRegAddr, kRegVal, 8);
    if (p.noisyBranch)
        emitNoisyBranch(b);
    emitFiller(b, p);
    b.jump(loop);
    return b.build();
}

Program
buildWorkload(const WorkloadParams &params)
{
    switch (params.family) {
      case WorkloadFamily::kGather: return buildGather(params);
      case WorkloadFamily::kStream: return buildStream(params);
      case WorkloadFamily::kStride: return buildStride(params);
      case WorkloadFamily::kChase: return buildChase(params);
      case WorkloadFamily::kCompute: return buildCompute(params);
    }
    fatal("buildWorkload: bad family");
}

} // namespace rab
