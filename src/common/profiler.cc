#include "common/profiler.hh"

#include <cstdlib>

namespace rab
{

std::atomic<bool> Profiler::enabled_{false};

namespace
{

void
reportAtExit()
{
    if (Profiler::enabled())
        Profiler::instance().report(stderr);
}

bool atexitRegistered = false;

/** Honor RAB_PROFILE at static-initialization time: ProfScope only
 *  reads the enabled flag, so the env var must be applied before any
 *  simulation starts, not lazily on first instance() use. */
struct ProfilerEnvInit
{
    ProfilerEnvInit()
    {
        const char *env = std::getenv("RAB_PROFILE");
        if (env && env[0] != '\0' && env[0] != '0')
            Profiler::setEnabled(true);
    }
} profilerEnvInit;

} // namespace

const char *
profPhaseName(ProfPhase phase)
{
    switch (phase) {
      case ProfPhase::kFetch: return "fetch";
      case ProfPhase::kRename: return "rename";
      case ProfPhase::kIssue: return "issue";
      case ProfPhase::kWriteback: return "writeback";
      case ProfPhase::kCommit: return "commit";
      case ProfPhase::kRunaheadCtl: return "runahead_ctl";
      case ProfPhase::kChainGen: return "chain_gen";
      case ProfPhase::kMemAccess: return "mem_access";
      case ProfPhase::kFastForward: return "fast_forward";
      case ProfPhase::kChecker: return "checker";
      case ProfPhase::kNumPhases: break;
    }
    return "?";
}

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
    if (on && !atexitRegistered) {
        atexitRegistered = true;
        std::atexit(reportAtExit);
    }
}

void
Profiler::report(std::FILE *out) const
{
    std::uint64_t total_ns = 0;
    for (const Slot &s : slots_)
        total_ns += s.ns.load(std::memory_order_relaxed);

    std::fprintf(out, "--- phase profile (RAB_PROFILE)\n");
    std::fprintf(out, "%-14s %12s %14s %10s %7s\n", "phase", "calls",
                 "total_ms", "ns/call", "share");
    for (int i = 0; i < kNumPhases; ++i) {
        const std::uint64_t ns =
            slots_[i].ns.load(std::memory_order_relaxed);
        const std::uint64_t calls =
            slots_[i].calls.load(std::memory_order_relaxed);
        if (calls == 0)
            continue;
        std::fprintf(out, "%-14s %12llu %14.3f %10.1f %6.1f%%\n",
                     profPhaseName(static_cast<ProfPhase>(i)),
                     (unsigned long long)calls, ns / 1e6,
                     static_cast<double>(ns) / calls,
                     total_ns ? 100.0 * ns / total_ns : 0.0);
    }
    std::fprintf(out, "%-14s %12s %14.3f\n", "total", "", total_ns / 1e6);
}

void
Profiler::reset()
{
    for (Slot &s : slots_) {
        s.ns.store(0, std::memory_order_relaxed);
        s.calls.store(0, std::memory_order_relaxed);
    }
}

} // namespace rab
