/**
 * @file
 * Deterministic xorshift64* random number generator.
 *
 * All simulator randomness (workload data layouts, branch outcomes,
 * hash-walk patterns) flows through this generator so that identical
 * configurations produce bit-identical simulations.
 */

#ifndef RAB_COMMON_RNG_HH
#define RAB_COMMON_RNG_HH

#include <cstdint>

namespace rab
{

/** Seedable xorshift64* PRNG. Cheap, deterministic, decent quality. */
class Rng
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t range(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p);

    /** Reseed the generator. A zero seed is remapped to a constant. */
    void seed(std::uint64_t seed);

  private:
    std::uint64_t state_;
};

} // namespace rab

#endif // RAB_COMMON_RNG_HH
