#include "common/rng.hh"

#include "common/logging.hh"

namespace rab
{

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    state_ = seed_value ? seed_value : 0x9e3779b97f4a7c15ull;
}

std::uint64_t
Rng::next()
{
    // xorshift64* (Vigna). Full 2^64-1 period over non-zero states.
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
}

std::uint64_t
Rng::range(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::range called with zero bound");
    return next() % bound;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

} // namespace rab
