/**
 * @file
 * Built-in phase profiler.
 *
 * Accumulates wall time and call counts per simulator stage (fetch,
 * rename, issue, writeback, commit, runahead control, chain
 * generation, memory access, fast-forward, checker) and prints a table
 * at process exit. Enabled by the RAB_PROFILE=1 environment variable
 * or a driver's --profile flag; when disabled, the instrumentation is
 * a single predicted branch on a global flag — no clock reads, no
 * stores — so production runs pay effectively nothing.
 *
 * Accumulation uses relaxed atomics so the parallel sweep driver's
 * worker threads can share the singleton; the report then aggregates
 * across every simulation the process ran.
 */

#ifndef RAB_COMMON_PROFILER_HH
#define RAB_COMMON_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>

namespace rab
{

/** Instrumented simulator stages. */
enum class ProfPhase : int
{
    kFetch = 0,
    kRename,
    kIssue,
    kWriteback,
    kCommit,
    kRunaheadCtl,
    kChainGen,
    kMemAccess,
    kFastForward,
    kChecker,
    kNumPhases
};

/** Phase name for reports. */
const char *profPhaseName(ProfPhase phase);

/** Process-wide profile accumulator. */
class Profiler
{
  public:
    static constexpr int kNumPhases =
        static_cast<int>(ProfPhase::kNumPhases);

    static Profiler &instance();

    /** Fast global gate, consulted by every ProfScope. Initialized
     *  from RAB_PROFILE at first use. */
    static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

    /** Turn profiling on/off (drivers' --profile flag). Enabling
     *  registers the at-exit report once. */
    static void setEnabled(bool on);

    /** Record @p ns nanoseconds of one call in @p phase. */
    void add(ProfPhase phase, std::uint64_t ns)
    {
        Slot &s = slots_[static_cast<int>(phase)];
        s.ns.fetch_add(ns, std::memory_order_relaxed);
        s.calls.fetch_add(1, std::memory_order_relaxed);
    }

    /** Per-stage wall-time / call-count table (phases with zero calls
     *  are omitted). */
    void report(std::FILE *out) const;

    void reset();

  private:
    Profiler() = default;

    struct Slot
    {
        std::atomic<std::uint64_t> ns{0};
        std::atomic<std::uint64_t> calls{0};
    };

    static std::atomic<bool> enabled_;
    Slot slots_[kNumPhases];
};

/** RAII stage timer: no-op (one branch) when profiling is off. */
class ProfScope
{
  public:
    explicit ProfScope(ProfPhase phase)
    {
        if (Profiler::enabled()) {
            phase_ = phase;
            active_ = true;
            start_ = std::chrono::steady_clock::now();
        }
    }

    ~ProfScope()
    {
        if (active_) {
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            Profiler::instance().add(
                phase_, static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
        }
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    ProfPhase phase_ = ProfPhase::kFetch;
    bool active_ = false;
    std::chrono::steady_clock::time_point start_;
};

} // namespace rab

#endif // RAB_COMMON_PROFILER_HH
