/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef RAB_COMMON_TYPES_HH
#define RAB_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace rab
{

/** Simulated core clock cycle count. */
using Cycle = std::uint64_t;

/** Byte address in the simulated 64-bit address space. */
using Addr = std::uint64_t;

/** Program counter. PCs index uops in a workload program. */
using Pc = std::uint64_t;

/** Architectural register identifier. */
using ArchReg = std::uint16_t;

/** Physical register identifier. */
using PhysReg = std::uint16_t;

/** Sequence number assigned to each dynamic uop in fetch order. */
using SeqNum = std::uint64_t;

/** Sentinel for "no register". */
inline constexpr ArchReg kNoArchReg = std::numeric_limits<ArchReg>::max();
inline constexpr PhysReg kNoPhysReg = std::numeric_limits<PhysReg>::max();

/** Sentinel for "no sequence number / invalid". */
inline constexpr SeqNum kNoSeqNum = std::numeric_limits<SeqNum>::max();

/** Sentinel invalid address. */
inline constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

} // namespace rab

#endif // RAB_COMMON_TYPES_HH
