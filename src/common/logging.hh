/**
 * @file
 * Minimal gem5-style logging: panic() for simulator bugs, fatal() for
 * user configuration errors, warn()/inform() for status messages.
 */

#ifndef RAB_COMMON_LOGGING_HH
#define RAB_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace rab
{

/** Abort the simulation: something happened that indicates a bug. */
[[noreturn]] void panic(const char *fmt, ...);

/** Exit with an error: the user supplied an invalid configuration. */
[[noreturn]] void fatal(const char *fmt, ...);

/** Print a warning to stderr; simulation continues. */
void warn(const char *fmt, ...);

/** Print an informational message to stderr; simulation continues. */
void inform(const char *fmt, ...);

/** Toggle inform() output (benchmarks silence it). */
void setVerbose(bool verbose);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...);

} // namespace rab

#endif // RAB_COMMON_LOGGING_HH
