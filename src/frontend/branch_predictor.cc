#include "frontend/branch_predictor.hh"

#include "common/logging.hh"

namespace rab
{

namespace
{

void
checkPow2(int v, const char *what)
{
    if (v <= 0 || (v & (v - 1)) != 0)
        fatal("branch predictor: %s (%d) must be a power of two", what, v);
}

} // namespace

BranchPredictor::BranchPredictor(const BranchPredictorConfig &config)
    : config_(config), statGroup_("bp")
{
    checkPow2(config_.bimodalEntries, "bimodal entries");
    checkPow2(config_.gshareEntries, "gshare entries");
    checkPow2(config_.chooserEntries, "chooser entries");
    checkPow2(config_.btbEntries, "btb entries");
    historyMask_ = (std::uint64_t{1} << config_.historyBits) - 1;
    bimodal_.assign(config_.bimodalEntries, 1);
    gshare_.assign(config_.gshareEntries, 1);
    chooser_.assign(config_.chooserEntries, 2);
    btb_.assign(config_.btbEntries, BtbEntry{});
}

int
BranchPredictor::bimodalIndex(Pc pc) const
{
    return static_cast<int>(pc & (config_.bimodalEntries - 1));
}

int
BranchPredictor::gshareIndex(Pc pc, std::uint64_t history) const
{
    return static_cast<int>((pc ^ history) & (config_.gshareEntries - 1));
}

int
BranchPredictor::chooserIndex(Pc pc) const
{
    return static_cast<int>(pc & (config_.chooserEntries - 1));
}

int
BranchPredictor::btbIndex(Pc pc) const
{
    return static_cast<int>(pc & (config_.btbEntries - 1));
}

void
BranchPredictor::counterTrain(std::uint8_t &ctr, bool taken)
{
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

BranchPrediction
BranchPredictor::predictBranch(Pc pc)
{
    ++lookups;
    const bool bimodal_taken = counterTaken(bimodal_[bimodalIndex(pc)]);
    const bool gshare_taken =
        counterTaken(gshare_[gshareIndex(pc, history_)]);
    const bool use_gshare = counterTaken(chooser_[chooserIndex(pc)]);
    bool taken = use_gshare ? gshare_taken : bimodal_taken;

    BranchPrediction pred;
    const BtbEntry &entry = btb_[btbIndex(pc)];
    pred.btbHit = entry.valid && entry.pc == pc;
    if (taken && !pred.btbHit) {
        // No target available: fall through (classic cold mispredict).
        taken = false;
    }
    pred.taken = taken;
    pred.target = pred.btbHit ? entry.target : pc + 1;

    // Speculative history update with the predicted direction.
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
    return pred;
}

BranchPrediction
BranchPredictor::predictJump(Pc pc)
{
    BranchPrediction pred;
    const BtbEntry &entry = btb_[btbIndex(pc)];
    pred.btbHit = entry.valid && entry.pc == pc;
    pred.taken = pred.btbHit;
    pred.target = pred.btbHit ? entry.target : pc + 1;
    return pred;
}

void
BranchPredictor::update(Pc pc, bool taken, Pc target,
                        std::uint64_t history)
{
    std::uint8_t &bimodal_ctr = bimodal_[bimodalIndex(pc)];
    std::uint8_t &gshare_ctr = gshare_[gshareIndex(pc, history)];
    std::uint8_t &chooser_ctr = chooser_[chooserIndex(pc)];

    const bool bimodal_correct = counterTaken(bimodal_ctr) == taken;
    const bool gshare_correct = counterTaken(gshare_ctr) == taken;
    if (bimodal_correct != gshare_correct)
        counterTrain(chooser_ctr, gshare_correct);

    counterTrain(bimodal_ctr, taken);
    counterTrain(gshare_ctr, taken);

    if (taken) {
        BtbEntry &entry = btb_[btbIndex(pc)];
        entry.valid = true;
        entry.pc = pc;
        entry.target = target;
    }
}

void
BranchPredictor::setHistory(std::uint64_t history)
{
    history_ = history & historyMask_;
}

void
BranchPredictor::rasPush(Pc ret)
{
    if (static_cast<int>(ras_.size()) >= config_.rasEntries)
        ras_.erase(ras_.begin());
    ras_.push_back(ret);
}

Pc
BranchPredictor::rasPop()
{
    if (ras_.empty())
        return 0;
    const Pc top = ras_.back();
    ras_.pop_back();
    return top;
}

void
BranchPredictor::regStats(StatGroup *parent)
{
    statGroup_.addCounter("lookups", &lookups, "direction predictions");
    statGroup_.addCounter("mispredicts", &mispredicts,
                          "resolved mispredictions");
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
