/**
 * @file
 * Front-end: fetch through the L1 I-cache following the branch
 * predictor, plus a fixed-depth decode pipe feeding rename.
 *
 * The front-end is the structure the runahead buffer clock-gates: in
 * buffer mode the core calls setGated(true) and the front-end performs
 * no work and burns no dynamic energy, which is the paper's central
 * energy mechanism.
 */

#ifndef RAB_FRONTEND_FRONTEND_HH
#define RAB_FRONTEND_FRONTEND_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "frontend/branch_predictor.hh"
#include "isa/program.hh"
#include "memory/memory_system.hh"
#include "stats/stats.hh"

namespace rab
{

/** Front-end configuration. */
struct FrontendConfig
{
    int fetchWidth = 4;
    int decodeDepth = 2;        ///< Cycles between fetch and rename.
    int fetchQueueEntries = 32; ///< Decoded-uop queue capacity.
    int uopBytes = 8;           ///< Table 1: micro-op size 8 bytes.
    Addr instBase = 0x4000000;  ///< Base byte address of code.
};

/** A fetched, decoded uop waiting for rename. */
struct FetchedUop
{
    Pc pc = 0;
    Uop sop;
    bool predTaken = false;
    Pc predTarget = 0;
    std::uint64_t historySnapshot = 0;
    Cycle readyCycle = 0; ///< Cycle it emerges from the decode pipe.
};

/** The fetch + decode front-end. */
class Frontend
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    Frontend(const FrontendConfig &config, const Program *program,
             BranchPredictor *bp, MemorySystem *mem);

    /** Fetch up to fetchWidth uops this cycle. */
    void tick(Cycle now);

    /** True if a decoded uop is available to rename at @p now. */
    bool hasReady(Cycle now) const;

    /** Inspect the oldest decoded uop (must be hasReady()). */
    const FetchedUop &peek() const;

    /** Pop the oldest decoded uop (must be hasReady()). */
    FetchedUop pop();

    /** Squash everything fetched and restart at @p pc from @p when. */
    void redirect(Pc pc, Cycle when);

    /** Clock-gate (runahead buffer mode) or ungate the front-end. */
    void setGated(bool gated) { gated_ = gated; }
    bool gated() const { return gated_; }

    Pc fetchPc() const { return fetchPc_; }

    /** @{ Fast-forward queries: expose the conditions under which
     *  tick() performs no work, so the core can prove a cycle window
     *  is quiescent before skipping it. */
    bool queueEmpty() const { return queueCount_ == 0; }
    bool queueFull() const { return queueCount_ >= config_.fetchQueueEntries; }
    /** Cycle the current I-cache stall / redirect bubble ends. */
    Cycle stalledUntil() const { return stalledUntil_; }
    /** Decode-ready cycle of the oldest queued uop (queue nonempty). */
    Cycle frontReadyCycle() const { return peek().readyCycle; }
    /** @} */

    /** Bulk-account @p count skipped cycles starting at @p now exactly
     *  as that many no-work tick() calls would have: the caller (the
     *  core's fast-forward engine) guarantees no fetch could occur and
     *  that the whole window falls in a single idle class. */
    void accountSkippedCycles(Cycle now, std::uint64_t count);

    /** @{ Statistics / energy events. */
    Counter fetchedUops;     ///< Uops fetched+decoded (dynamic energy).
    Counter activeCycles;    ///< Cycles with fetch activity.
    Counter gatedCycles;     ///< Cycles explicitly clock-gated.
    Counter idleCycles;      ///< Cycles with no fetch work (queue full,
                             ///< I-cache stall, redirect bubble).
    Counter icacheStallCycles;
    /** @} */

    void regStats(StatGroup *parent);

  private:
    FrontendConfig config_;
    const Program *program_;
    BranchPredictor *bp_;
    MemorySystem *mem_;

    Pc fetchPc_ = 0; ///< Invariant: always in [0, program size).
    Addr lineMask_ = 0; ///< I-cache line size - 1 (power of two).
    bool gated_ = false;
    Cycle stalledUntil_ = 0; ///< I-cache miss or redirect bubble.
    /** @{ Decoded-uop queue: a fixed ring sized at construction
     *  (fetchQueueEntries), replacing a deque whose block allocation
     *  churned on the fetch/rename hot path. */
    std::vector<FetchedUop> queue_;
    int queueHead_ = 0;
    int queueCount_ = 0;
    /** @} */
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_FRONTEND_FRONTEND_HH
