/**
 * @file
 * Hybrid branch predictor: bimodal + gshare with a chooser table, a
 * branch target buffer, and a return address stack (Table 1's "Hybrid
 * Branch Predictor"). Our ISA has direct branches only, so the BTB's
 * role is detecting "never seen" branches (predicted not-taken) and the
 * RAS exists for checkpoint-interface completeness.
 */

#ifndef RAB_FRONTEND_BRANCH_PREDICTOR_HH
#define RAB_FRONTEND_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace rab
{

/** Predictor configuration. */
struct BranchPredictorConfig
{
    int historyBits = 12;
    int bimodalEntries = 4096;  ///< Power of two.
    int gshareEntries = 4096;   ///< Power of two.
    int chooserEntries = 4096;  ///< Power of two.
    int btbEntries = 1024;      ///< Power of two, direct-mapped.
    int rasEntries = 16;
};

/** Direction + target prediction. */
struct BranchPrediction
{
    bool taken = false;
    Pc target = 0;
    bool btbHit = false;
};

/** The hybrid predictor. */
class BranchPredictor
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit BranchPredictor(const BranchPredictorConfig &config);

    /**
     * Predict a conditional branch at @p pc and speculatively update
     * the global history with the prediction.
     */
    BranchPrediction predictBranch(Pc pc);

    /** Look up the BTB for an unconditional jump. */
    BranchPrediction predictJump(Pc pc);

    /**
     * Train tables with the resolved outcome and install the target in
     * the BTB when taken.
     *
     * @param history the global history value the prediction was made
     *        with (DynUop::historySnapshot).
     */
    void update(Pc pc, bool taken, Pc target, std::uint64_t history);

    /** Current speculative global history register. */
    std::uint64_t history() const { return history_; }

    /** Restore the history register (squash / runahead exit). */
    void setHistory(std::uint64_t history);

    /** @{ Return address stack (checkpointed by runahead). */
    void rasPush(Pc ret);
    Pc rasPop();
    std::vector<Pc> rasSnapshot() const { return ras_; }
    void rasRestore(const std::vector<Pc> &snapshot) { ras_ = snapshot; }
    /** @} */

    /** @{ Statistics. */
    Counter lookups;
    Counter mispredicts;
    /** @} */

    void regStats(StatGroup *parent);

  private:
    int bimodalIndex(Pc pc) const;
    int gshareIndex(Pc pc, std::uint64_t history) const;
    int chooserIndex(Pc pc) const;
    int btbIndex(Pc pc) const;

    static bool counterTaken(std::uint8_t ctr) { return ctr >= 2; }
    static void counterTrain(std::uint8_t &ctr, bool taken);

    BranchPredictorConfig config_;
    std::uint64_t historyMask_;
    std::uint64_t history_ = 0;
    std::vector<std::uint8_t> bimodal_;  ///< 2-bit saturating counters.
    std::vector<std::uint8_t> gshare_;
    std::vector<std::uint8_t> chooser_;  ///< 2+ favours gshare.
    struct BtbEntry { bool valid = false; Pc pc = 0; Pc target = 0; };
    std::vector<BtbEntry> btb_;
    std::vector<Pc> ras_;
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_FRONTEND_BRANCH_PREDICTOR_HH
