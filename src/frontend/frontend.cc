#include "frontend/frontend.hh"

#include "common/logging.hh"

namespace rab
{

Frontend::Frontend(const FrontendConfig &config, const Program *program,
                   BranchPredictor *bp, MemorySystem *mem)
    : config_(config), program_(program), bp_(bp), mem_(mem),
      statGroup_("frontend")
{
    if (!program_ || program_->empty())
        fatal("frontend: empty program");
    if (config_.fetchQueueEntries <= 0)
        fatal("frontend: bad fetch queue size %d",
              config_.fetchQueueEntries);
    queue_.resize(config_.fetchQueueEntries);
    // The cache model validates line sizes as powers of two, so the
    // per-uop line-boundary test in tick() can mask instead of divide.
    lineMask_ =
        static_cast<Addr>(mem_->config().l1i.lineBytes) - 1;
}

void
Frontend::tick(Cycle now)
{
    if (gated_) {
        ++gatedCycles;
        return;
    }
    if (now < stalledUntil_) {
        ++idleCycles;
        ++icacheStallCycles;
        return;
    }

    // fetchPc_ stays in [0, program size) (constructor, redirect() and
    // the wrap at the bottom of the loop maintain it), so the fetch
    // loop needs no per-uop modulo reduction — integer division was a
    // measurable slice of the per-cycle profile.
    const Pc prog_size = program_->size();
    int fetched = 0;
    for (int slot = 0; slot < config_.fetchWidth; ++slot) {
        if (queueFull())
            break;

        // Model the I-cache access for the line holding this uop. A
        // miss stalls fetch until the line arrives.
        const Addr inst_addr =
            config_.instBase + fetchPc_ * config_.uopBytes;
        if (slot == 0 || (inst_addr & lineMask_) == 0) {
            const AccessResult res =
                mem_->access(AccessType::kInstFetch, inst_addr, now);
            if (res.rejected) {
                stalledUntil_ = now + 1;
                break;
            }
            if (res.l1Miss) {
                stalledUntil_ = res.readyCycle;
                break;
            }
        }

        FetchedUop fu;
        fu.pc = fetchPc_;
        fu.sop = program_->at(fetchPc_);
        fu.historySnapshot = bp_->history();
        fu.readyCycle = now + 1 + config_.decodeDepth;

        Pc next_pc = fu.pc + 1;
        bool taken = false;
        if (fu.sop.op == Opcode::kBranch) {
            const BranchPrediction pred = bp_->predictBranch(fu.pc);
            fu.predTaken = pred.taken;
            fu.predTarget = pred.taken ? pred.target : fu.pc + 1;
            taken = pred.taken;
            next_pc = fu.predTarget;
        } else if (fu.sop.op == Opcode::kJump) {
            // Direct jumps resolve in decode: target comes from the uop.
            fu.predTaken = true;
            fu.predTarget = fu.sop.target;
            taken = true;
            next_pc = fu.sop.target;
        }

        int enq = queueHead_ + queueCount_;
        if (enq >= config_.fetchQueueEntries)
            enq -= config_.fetchQueueEntries;
        queue_[enq] = fu;
        ++queueCount_;
        ++fetchedUops;
        ++fetched;
        // Sequential fall-through reaches prog_size exactly; control
        // targets are validated in range, so a subtract suffices (the
        // modulo stays as a cold fallback for a corrupted predictor
        // target).
        if (next_pc >= prog_size)
            next_pc = next_pc == prog_size ? 0 : next_pc % prog_size;
        fetchPc_ = next_pc;

        if (taken)
            break; // At most one taken control transfer per fetch cycle.
    }

    if (fetched > 0)
        ++activeCycles;
    else
        ++idleCycles;
}

bool
Frontend::hasReady(Cycle now) const
{
    return queueCount_ > 0 && queue_[queueHead_].readyCycle <= now;
}

const FetchedUop &
Frontend::peek() const
{
    if (queueCount_ == 0)
        panic("frontend: peek at empty queue");
    return queue_[queueHead_];
}

FetchedUop
Frontend::pop()
{
    if (queueCount_ == 0)
        panic("frontend: pop from empty queue");
    FetchedUop fu = queue_[queueHead_];
    if (++queueHead_ >= config_.fetchQueueEntries)
        queueHead_ = 0;
    --queueCount_;
    return fu;
}

void
Frontend::accountSkippedCycles(Cycle now, std::uint64_t count)
{
    // Mirror tick()'s no-work branches, in tick()'s priority order.
    // The gating / stall / queue-full condition is frozen across the
    // window (nothing renames, redirects or changes mode during a
    // skipped window), so one classification covers every cycle.
    if (gated_) {
        gatedCycles += count;
    } else if (now < stalledUntil_) {
        idleCycles += count;
        icacheStallCycles += count;
    } else {
        // Fetch queue full: the loop breaks before any I-cache access.
        idleCycles += count;
    }
}

void
Frontend::redirect(Pc pc, Cycle when)
{
    queueHead_ = 0;
    queueCount_ = 0;
    fetchPc_ = pc % program_->size();
    stalledUntil_ = when;
}

void
Frontend::regStats(StatGroup *parent)
{
    statGroup_.addCounter("fetched_uops", &fetchedUops,
                          "uops fetched and decoded");
    statGroup_.addCounter("active_cycles", &activeCycles,
                          "cycles with fetch activity");
    statGroup_.addCounter("gated_cycles", &gatedCycles,
                          "cycles explicitly clock-gated");
    statGroup_.addCounter("idle_cycles", &idleCycles,
                          "cycles with no fetch work");
    statGroup_.addCounter("icache_stall_cycles", &icacheStallCycles,
                          "cycles stalled on the I-cache");
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
