/**
 * @file
 * Crash-safe, content-addressed campaign result store.
 *
 * Each completed SweepPoint is persisted as one record file under a
 * directory layout derived from its StoreKey hash
 * (`<root>/ab/<hash16>.rec`, `ab` = first two hash digits). Records
 * are written atomically — temp file in `<root>/tmp/`, payload CRC,
 * fsync, rename onto the final name — so a record either exists in
 * full or not at all, whatever kill -9 does to the writer. A campaign
 * re-run against the same store therefore resumes exactly where the
 * previous run died: runCampaign() consults the store per point,
 * simulates only the misses, and writes fresh results back.
 *
 * Record format (little-endian, version-gated):
 *
 *   magic   "RABSTORE"          8 bytes
 *   version u32 (= 1)
 *   crc32   u32 over the payload bytes
 *   length  u64 payload byte count
 *   payload rab-store-record-v1 JSON (key echo + PointResult)
 *
 * The store also caches warmup snapshots (`<root>/sn/<hash16>.snap`,
 * keyed by SnapshotStoreKey) in an analogous frame with magic
 * "RABSNAPR"; the payload is the snapshot key's canonical echo, a NUL
 * separator, then the raw snapshot bytes. Same atomicity and
 * self-healing rules as result records.
 *
 * Self-healing: lookup() treats any malformed record — short file,
 * bad magic/version, CRC mismatch, unparseable payload, key echo
 * mismatch — as absent, unlinks it, and counts it in
 * corruptDiscarded(), so a torn write or a flipped bit costs one
 * recomputation instead of a crash or a wrong result.
 *
 * Thread safety: lookup/put are safe to call concurrently from sweep
 * workers. Records are immutable once renamed into place; concurrent
 * writers of the same key race benignly (identical content, atomic
 * rename). Counters are atomics.
 */

#ifndef RAB_SWEEP_STORE_RESULT_STORE_HH
#define RAB_SWEEP_STORE_RESULT_STORE_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "sweep/campaign.hh"
#include "sweep/store/store_key.hh"

namespace rab
{

/** CRC-32 (IEEE 802.3) over @p data. */
std::uint32_t crc32(const void *data, std::size_t size);

/**
 * Identity of one cached warmup snapshot. A snapshot is reusable by
 * any config variant whose warmup-relevant digest matches, so the key
 * is the warmup digest (not the full config hash) plus everything
 * else that shapes warmup state: code identity, workload, seed, the
 * warmup instruction budget, and the payload format version.
 */
struct SnapshotStoreKey
{
    std::string gitSha;          ///< Code identity (currentGitSha()).
    std::string warmupDigestHex; ///< hex64(snapshotWarmupDigest()).
    std::string workload;
    std::uint64_t seed = 0;
    std::uint64_t warmupInstructions = 0;
    std::uint32_t formatVersion = 0; ///< kSnapshotFormatVersion.

    /** Line-oriented canonical form the key hash is computed over. */
    std::string canonical() const;

    /** hex64(fnv1a64(canonical())): record file stem. */
    std::string hashHex() const;
};

class ResultStore
{
  public:
    /** Open (creating directories as needed) a store rooted at
     *  @p root. Check ok() before use. */
    explicit ResultStore(std::string root);

    /** False when the root could not be created/opened; error() says
     *  why. A failed store ignores put() and misses every lookup(). */
    bool ok() const { return ok_; }
    const std::string &error() const { return error_; }
    const std::string &root() const { return root_; }

    /**
     * Fetch the cached result for @p key. Returns the stored
     * PointResult (ok == true records only — failures are never
     * cached) or nullopt on miss. Malformed records are discarded
     * (self-healing) and reported as misses.
     */
    std::optional<PointResult> lookup(const StoreKey &key);

    /**
     * Persist @p result under @p key (atomic temp+rename, fsync'd).
     * Failed points are rejected — a deterministic failure should be
     * re-attempted by the next run, not replayed from cache. Returns
     * false on I/O error (the campaign still completes; the point is
     * simply not cached).
     */
    bool put(const StoreKey &key, const PointResult &result);

    /**
     * Fetch the cached warmup-snapshot payload for @p key, or nullopt
     * on miss. Malformed snapshot records (bad magic/version/CRC,
     * truncation, key-echo mismatch) are unlinked and reported as
     * misses, exactly like result records.
     */
    std::optional<std::string> lookupSnapshot(
        const SnapshotStoreKey &key);

    /** Persist snapshot @p payload under @p key (atomic, fsync'd).
     *  Returns false on I/O error or a failed store. */
    bool putSnapshot(const SnapshotStoreKey &key,
                     const std::string &payload);

    /** @{ Monotonic counters since construction. */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t stored() const { return stored_; }
    std::uint64_t corruptDiscarded() const { return corruptDiscarded_; }
    std::uint64_t snapshotHits() const { return snapshotHits_; }
    std::uint64_t snapshotMisses() const { return snapshotMisses_; }
    std::uint64_t snapshotStored() const { return snapshotStored_; }
    /** @} */

    /** Record file path for @p key (exposed for tests that corrupt
     *  records on purpose). */
    std::string recordPath(const StoreKey &key) const;

    /** Snapshot record path for @p key (same test-visibility rule). */
    std::string snapshotPath(const SnapshotStoreKey &key) const;

  private:
    bool readRecord(const std::string &path, const StoreKey &key,
                    PointResult &out) const;
    bool readSnapshotRecord(const std::string &path,
                            const SnapshotStoreKey &key,
                            std::string &out) const;
    bool writeBlobAtomic(const std::string &final_path,
                         const std::string &stem,
                         const std::string &blob);

    std::string root_;
    bool ok_ = false;
    std::string error_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> stored_{0};
    std::atomic<std::uint64_t> corruptDiscarded_{0};
    std::atomic<std::uint64_t> snapshotHits_{0};
    std::atomic<std::uint64_t> snapshotMisses_{0};
    std::atomic<std::uint64_t> snapshotStored_{0};
    std::atomic<std::uint64_t> tempSeq_{0};
};

} // namespace rab

#endif // RAB_SWEEP_STORE_RESULT_STORE_HH
