#include "sweep/store/store_key.hh"

#include <cstdio>

#include "common/logging.hh"

namespace rab
{

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t hash = 14695981039346656037ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::string
hex64(std::uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)value);
    return buf;
}

std::string
canonicalConfigStringV1(const CampaignSpec &spec,
                        const SweepPoint &point)
{
    // Retired v1 format, kept verbatim so the golden-hash pin test
    // can prove v2 actually diverged from it (a silent non-bump would
    // serve stale single-core results to multi-core-aware code).
    std::string s;
    s += "schema=rab-config-key-v1\n";
    s += "variant=" + point.variant + "\n";
    s += std::string("runahead=") + runaheadConfigName(point.runahead)
        + "\n";
    s += strprintf("prefetch=%d\n", point.prefetch ? 1 : 0);
    s += strprintf("warmup=%llu\n", (unsigned long long)spec.warmup);
    s += strprintf("fast_forward=%d\n", spec.fastForward ? 1 : 0);
    s += strprintf("check_level=%d\n",
                   static_cast<int>(spec.checkLevel));
    s += strprintf("check_policy=%d\n",
                   static_cast<int>(spec.checkPolicy));
    return s;
}

std::string
canonicalConfigStringV2(const CampaignSpec &spec,
                        const SweepPoint &point)
{
    // Retired v2 format (multi-core fields, no engine field), kept
    // verbatim for the golden-hash pin, and as the base v3 extends.
    std::string s;
    s += "schema=rab-config-key-v2\n";
    s += "variant=" + point.variant + "\n";
    s += std::string("runahead=") + runaheadConfigName(point.runahead)
        + "\n";
    s += strprintf("prefetch=%d\n", point.prefetch ? 1 : 0);
    s += strprintf("warmup=%llu\n", (unsigned long long)spec.warmup);
    s += strprintf("fast_forward=%d\n", spec.fastForward ? 1 : 0);
    s += strprintf("check_level=%d\n",
                   static_cast<int>(spec.checkLevel));
    s += strprintf("check_policy=%d\n",
                   static_cast<int>(spec.checkPolicy));
    const std::size_t cores =
        point.isMix() ? point.mixWorkloads.size() : 1;
    s += strprintf("cores=%zu\n", cores);
    if (point.isMix()) {
        for (std::size_t i = 0; i < point.mixWorkloads.size(); ++i) {
            s += strprintf("core%zu=%s/%s\n", i,
                           point.mixWorkloads[i].c_str(),
                           runaheadConfigName(
                               point.corePolicies.empty()
                                   ? point.runahead
                                   : point.corePolicies
                                         [i % point.corePolicies
                                                  .size()]));
        }
    }
    return s;
}

std::string
canonicalConfigStringV3(const CampaignSpec &spec,
                        const SweepPoint &point)
{
    // Retired v3 format (engine field, no warmup-mode fields), kept
    // verbatim for the golden-hash pin, and as the base v4 extends.
    std::string s = canonicalConfigStringV2(spec, point);
    const std::string v2_line = "schema=rab-config-key-v2\n";
    s.replace(0, v2_line.size(), "schema=rab-config-key-v3\n");
    const auto uses_engine = [](RunaheadConfig rc) {
        return rc == RunaheadConfig::kCRE
            || rc == RunaheadConfig::kCREHybrid;
    };
    bool engine = uses_engine(point.runahead);
    for (const RunaheadConfig rc : point.corePolicies)
        engine = engine || uses_engine(rc);
    s += strprintf("engine=%d\n", engine ? 1 : 0);
    return s;
}

std::string
canonicalConfigString(const CampaignSpec &spec, const SweepPoint &point,
                      const std::string &snapshot_id)
{
    // Field order is part of the format: append-only, never reorder.
    // Bumping the schema line deliberately invalidates every cached
    // result — that is the intended way to retire a format. v4 is the
    // v3 body with a bumped schema line plus the warmup mode: a point
    // forked from a shared warmup snapshot is keyed to that exact
    // image (format version + content hash), so a snapshot-format bump
    // or a different warmup image can never serve a stale result.
    std::string s = canonicalConfigStringV3(spec, point);
    const std::string v3_line = "schema=rab-config-key-v3\n";
    s.replace(0, v3_line.size(),
              std::string("schema=") + kConfigKeySchema + "\n");
    s += strprintf("warmup_mode=%s\n",
                   snapshot_id.empty() ? "inline" : "snapshot");
    s += "snapshot="
        + (snapshot_id.empty() ? std::string("-") : snapshot_id) + "\n";
    return s;
}

std::string
configHashHex(const CampaignSpec &spec, const SweepPoint &point,
              const std::string &snapshot_id)
{
    return hex64(fnv1a64(canonicalConfigString(spec, point,
                                               snapshot_id)));
}

std::string
StoreKey::canonical() const
{
    std::string s;
    s += "git=" + gitSha + "\n";
    s += "config=" + configHash + "\n";
    s += "workload=" + workload + "\n";
    s += strprintf("seed=%llu\n", (unsigned long long)seed);
    s += strprintf("instructions=%llu\n",
                   (unsigned long long)instructions);
    return s;
}

std::string
StoreKey::hashHex() const
{
    return hex64(fnv1a64(canonical()));
}

StoreKey
makeStoreKey(const CampaignSpec &spec, const SweepPoint &point,
             const std::string &git_sha,
             const std::string &snapshot_id)
{
    StoreKey key;
    key.gitSha = git_sha;
    key.configHash = configHashHex(spec, point, snapshot_id);
    key.workload = point.workload;
    key.seed = point.seed;
    key.instructions = spec.instructions;
    return key;
}

} // namespace rab
