/**
 * @file
 * Content-addressed store keys for campaign results.
 *
 * A cached SweepPoint result is only reusable when *everything* that
 * could change the simulation's output is part of the key: the code
 * (git SHA), the full per-point configuration (config hash), the
 * workload, the seed, and the instruction budget. The key is hashed
 * into a fixed-width hex digest that doubles as the record's file
 * name, so the store never has to parse a record to know what it is.
 *
 * The config hash is derived from a canonical key=value serialisation
 * with a field order fixed by code (never by map iteration), so it is
 * byte-identical across processes, thread counts and compiler
 * versions. An accidental change to the serialisation silently
 * invalidates every cached result — tests/test_store.cc pins a golden
 * hash value so such a change fails loudly instead.
 */

#ifndef RAB_SWEEP_STORE_STORE_KEY_HH
#define RAB_SWEEP_STORE_STORE_KEY_HH

#include <cstdint>
#include <string>

#include "sweep/campaign.hh"

namespace rab
{

/** 64-bit FNV-1a over @p text (the store's only hash primitive). */
std::uint64_t fnv1a64(const std::string &text);

/** @p value as a fixed-width 16-digit lowercase hex string. */
std::string hex64(std::uint64_t value);

/** Current canonical config-key schema. Bumped v1 -> v2 when the
 *  multi-core fields (cores, per-core workload/policy) were added,
 *  v2 -> v3 with the Continuous Runahead engine: CRE runs register new
 *  stats (engine.*, owner clamps, namespacing masks) that change the
 *  replayed stat payload, so pre-engine records must never be served
 *  to v3-aware code, and v3 -> v4 with snapshotted warmup: a point
 *  whose warmup was forked from a shared baseline-policy snapshot is a
 *  different result universe than one warmed inline under its own
 *  config, so the warmup mode (and the identity of the snapshot it
 *  forked from) is part of the key. */
inline constexpr const char *kConfigKeySchema = "rab-config-key-v4";

/**
 * Canonical serialisation of every per-point configuration field that
 * affects simulated output (variant, runahead config, prefetch,
 * warmup, fast-forward, check level/policy, core count, per-core
 * workload/policy assignment, and the warmup mode). Line-oriented
 * `name=value` text in an order fixed here; versioned so a future
 * field addition is an explicit, visible invalidation.
 *
 * @p snapshot_id identifies the warmup snapshot this point forked
 * from ("<format-version>/<content-hash-hex>", built by the sweep
 * engine); empty means inline warmup.
 */
std::string canonicalConfigString(const CampaignSpec &spec,
                                  const SweepPoint &point,
                                  const std::string &snapshot_id = "");

/** @{ Retired serialisations (v1: no multi-core fields; v2: no engine
 *  field; v3: no warmup-mode fields), kept only so tests can pin every
 *  golden hash and prove each schema bump actually diverged. */
std::string canonicalConfigStringV1(const CampaignSpec &spec,
                                    const SweepPoint &point);
std::string canonicalConfigStringV2(const CampaignSpec &spec,
                                    const SweepPoint &point);
std::string canonicalConfigStringV3(const CampaignSpec &spec,
                                    const SweepPoint &point);
/** @} */

/** fnv1a64 of canonicalConfigString, as hex64. */
std::string configHashHex(const CampaignSpec &spec,
                          const SweepPoint &point,
                          const std::string &snapshot_id = "");

/** The full identity of one cached result. */
struct StoreKey
{
    std::string gitSha;     ///< Code identity (currentGitSha()).
    std::string configHash; ///< configHashHex of the point's config.
    std::string workload;
    std::uint64_t seed = 0;
    std::uint64_t instructions = 0; ///< Measured instruction budget.

    /** Line-oriented canonical form the key hash is computed over. */
    std::string canonical() const;

    /** hex64(fnv1a64(canonical())): record file stem. */
    std::string hashHex() const;
};

/** Build the key for @p point of @p spec under code identity
 *  @p git_sha. @p snapshot_id as for canonicalConfigString(). */
StoreKey makeStoreKey(const CampaignSpec &spec, const SweepPoint &point,
                      const std::string &git_sha,
                      const std::string &snapshot_id = "");

} // namespace rab

#endif // RAB_SWEEP_STORE_STORE_KEY_HH
