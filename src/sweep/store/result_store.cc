#include "sweep/store/result_store.hh"

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/logging.hh"
#include "stats/json.hh"
#include "sweep/report.hh"

namespace fs = std::filesystem;

namespace rab
{

std::uint32_t
crc32(const void *data, std::size_t size)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t n = 0; n < 256; ++n) {
            std::uint32_t c = n;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[n] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xFFFFFFFFu;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

namespace
{

constexpr char kMagic[8] = {'R', 'A', 'B', 'S', 'T', 'O', 'R', 'E'};
constexpr char kSnapMagic[8] = {'R', 'A', 'B', 'S', 'N', 'A', 'P', 'R'};
constexpr std::uint32_t kRecordVersion = 1;
constexpr std::uint32_t kSnapRecordVersion = 1;
constexpr const char *kRecordSchema = "rab-store-record-v1";
/** Sanity bound: no record payload is anywhere near this large. */
constexpr std::uint64_t kMaxPayload = 64u << 20;

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out += static_cast<char>((v >> (8 * i)) & 0xFFu);
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out += static_cast<char>((v >> (8 * i)) & 0xFFu);
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

/** Record payload: key echo + the full PointResult. */
Json
recordJson(const StoreKey &key, const PointResult &result)
{
    Json record = Json::object();
    record["schema"] = kRecordSchema;
    // Config-key schema echo: lets lookup() reject any record whose
    // key was hashed under a retired serialisation (e.g. pre-v2
    // records with no multi-core identity) even if the file name
    // somehow matches.
    record["config_schema"] = kConfigKeySchema;

    Json k = Json::object();
    k["git"] = key.gitSha;
    k["config"] = key.configHash;
    k["workload"] = key.workload;
    k["seed"] = key.seed;
    k["instructions"] = key.instructions;
    record["key"] = std::move(k);

    // Record birth time: reporting/debugging metadata only. It never
    // reaches a manifest (canonical or otherwise) — cached lookups
    // drop it — so record contents stay outside the determinism
    // boundary.
    // rablint: nondeterminism-ok=wall-clock (record timestamp is
    // write-once provenance metadata; never read back into results)
    const auto wall = std::chrono::system_clock::now();
    record["written_unix_ms"] = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            wall.time_since_epoch())
            .count());

    Json point = Json::object();
    point["workload"] = result.point.workload;
    point["variant"] = result.point.variant;
    point["runahead"] = static_cast<int>(result.point.runahead);
    point["prefetch"] = result.point.prefetch;
    point["seed"] = result.point.seed;
    point["metrics"] = simResultJson(result.result);
    Json stats = Json::object();
    for (const auto &[name, value] : result.stats)
        stats[name] = value;
    point["stats"] = std::move(stats);
    point["wall_seconds"] = result.wallSeconds;
    record["point"] = std::move(point);
    return record;
}

/** Inverse of recordJson's "point" member. Throws JsonError. */
PointResult
pointFromRecord(const Json &record)
{
    const Json &point = record.at("point");
    PointResult pr;
    pr.ok = true;
    pr.ran = true; // It ran — in the run that wrote the record.
    pr.cached = true;
    pr.point.workload = point.at("workload").asString();
    pr.point.variant = point.at("variant").asString();
    pr.point.runahead = static_cast<RunaheadConfig>(
        static_cast<int>(point.at("runahead").asDouble()));
    pr.point.prefetch = point.at("prefetch").asBool();
    pr.point.seed = point.at("seed").asU64();
    pr.result = simResultFromJson(point.at("metrics"));
    for (const auto &[name, value] : point.at("stats").members())
        pr.stats.emplace(name, value.asDouble());
    pr.wallSeconds = point.at("wall_seconds").asDouble();
    return pr;
}

/** Validate the shared 24-byte record frame (magic, version, length,
 *  CRC) of @p raw; on success @p payload receives the payload bytes. */
bool
unframeRecord(const std::string &raw, const char (&magic)[8],
              std::uint32_t version, std::string &payload)
{
    constexpr std::size_t kHeader = 8 + 4 + 4 + 8;
    if (raw.size() < kHeader)
        return false;
    if (std::memcmp(raw.data(), magic, 8) != 0)
        return false;
    const auto *p = reinterpret_cast<const unsigned char *>(raw.data());
    if (getU32(p + 8) != version)
        return false;
    const std::uint32_t crc = getU32(p + 12);
    const std::uint64_t length = getU64(p + 16);
    if (length > kMaxPayload || raw.size() != kHeader + length)
        return false;
    if (crc32(raw.data() + kHeader, length) != crc)
        return false;
    payload = raw.substr(kHeader, length);
    return true;
}

/** Frame @p payload: magic + version + CRC + length + payload. */
std::string
frameRecord(const char (&magic)[8], std::uint32_t version,
            const std::string &payload)
{
    std::string blob;
    blob.reserve(24 + payload.size());
    blob.append(magic, 8);
    putU32(blob, version);
    putU32(blob, crc32(payload.data(), payload.size()));
    putU64(blob, payload.size());
    blob += payload;
    return blob;
}

} // namespace

std::string
SnapshotStoreKey::canonical() const
{
    std::string s;
    s += "git=" + gitSha + "\n";
    s += "warmup_digest=" + warmupDigestHex + "\n";
    s += "workload=" + workload + "\n";
    s += strprintf("seed=%llu\n", (unsigned long long)seed);
    s += strprintf("warmup_instructions=%llu\n",
                   (unsigned long long)warmupInstructions);
    s += strprintf("format=%lu\n", (unsigned long)formatVersion);
    return s;
}

std::string
SnapshotStoreKey::hashHex() const
{
    return hex64(fnv1a64(canonical()));
}

ResultStore::ResultStore(std::string root) : root_(std::move(root))
{
    std::error_code ec;
    fs::create_directories(fs::path(root_) / "tmp", ec);
    if (ec) {
        error_ = "cannot create store root '" + root_
            + "': " + ec.message();
        return;
    }
    ok_ = true;
}

std::string
ResultStore::recordPath(const StoreKey &key) const
{
    const std::string hash = key.hashHex();
    return root_ + "/" + hash.substr(0, 2) + "/" + hash + ".rec";
}

std::string
ResultStore::snapshotPath(const SnapshotStoreKey &key) const
{
    return root_ + "/sn/" + key.hashHex() + ".snap";
}

bool
ResultStore::readRecord(const std::string &path, const StoreKey &key,
                        PointResult &out) const
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();

    std::string payload;
    if (!unframeRecord(buffer.str(), kMagic, kRecordVersion, payload))
        return false;

    try {
        const Json record = Json::parse(payload);
        if (record.at("schema").asString() != kRecordSchema)
            return false;
        // Records predating the config-key v2 bump lack the echo (or
        // carry a stale one); Json::at throws on the missing field,
        // landing in the catch below — either way the record reads as
        // absent and is self-healed away.
        if (record.at("config_schema").asString() != kConfigKeySchema)
            return false;
        // Key echo: a hash collision or a misplaced file must read
        // as a miss, never as someone else's result.
        const Json &k = record.at("key");
        if (k.at("git").asString() != key.gitSha
            || k.at("config").asString() != key.configHash
            || k.at("workload").asString() != key.workload
            || k.at("seed").asU64() != key.seed
            || k.at("instructions").asU64() != key.instructions)
            return false;
        out = pointFromRecord(record);
    } catch (const JsonError &) {
        return false;
    }
    return true;
}

std::optional<PointResult>
ResultStore::lookup(const StoreKey &key)
{
    if (!ok_) {
        ++misses_;
        return std::nullopt;
    }
    const std::string path = recordPath(key);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        ++misses_;
        return std::nullopt;
    }
    PointResult result;
    if (!readRecord(path, key, result)) {
        // Self-healing: a truncated or corrupted record is discarded
        // and recomputed, not crashed on.
        fs::remove(path, ec);
        ++corruptDiscarded_;
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    return result;
}

bool
ResultStore::put(const StoreKey &key, const PointResult &result)
{
    if (!ok_ || !result.ok)
        return false;
    if (!writeBlobAtomic(recordPath(key), key.hashHex(),
                         frameRecord(kMagic, kRecordVersion,
                                     recordJson(key, result).dump())))
        return false;
    ++stored_;
    return true;
}

bool
ResultStore::readSnapshotRecord(const std::string &path,
                                const SnapshotStoreKey &key,
                                std::string &out) const
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();

    std::string payload;
    if (!unframeRecord(buffer.str(), kSnapMagic, kSnapRecordVersion,
                       payload))
        return false;

    // Payload = key canonical echo + NUL + snapshot bytes. The echo
    // plays the same role as result records' JSON key echo: a hash
    // collision or misplaced file reads as a miss, never as a foreign
    // warmup image.
    const std::string echo = key.canonical();
    if (payload.size() < echo.size() + 1)
        return false;
    if (payload.compare(0, echo.size(), echo) != 0
        || payload[echo.size()] != '\0')
        return false;
    out = payload.substr(echo.size() + 1);
    return true;
}

std::optional<std::string>
ResultStore::lookupSnapshot(const SnapshotStoreKey &key)
{
    if (!ok_) {
        ++snapshotMisses_;
        return std::nullopt;
    }
    const std::string path = snapshotPath(key);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        ++snapshotMisses_;
        return std::nullopt;
    }
    std::string payload;
    if (!readSnapshotRecord(path, key, payload)) {
        fs::remove(path, ec);
        ++corruptDiscarded_;
        ++snapshotMisses_;
        return std::nullopt;
    }
    ++snapshotHits_;
    return payload;
}

bool
ResultStore::putSnapshot(const SnapshotStoreKey &key,
                         const std::string &payload)
{
    if (!ok_)
        return false;
    if (!writeBlobAtomic(snapshotPath(key), key.hashHex(),
                         frameRecord(kSnapMagic, kSnapRecordVersion,
                                     key.canonical() + '\0' + payload)))
        return false;
    ++snapshotStored_;
    return true;
}

bool
ResultStore::writeBlobAtomic(const std::string &final_path,
                             const std::string &stem,
                             const std::string &blob)
{
    std::error_code ec;
    fs::create_directories(fs::path(final_path).parent_path(), ec);
    if (ec)
        return false;

    // Unique temp name: pid + an in-process sequence number, so
    // concurrent writers (threads or processes) never collide.
    const std::string tmp_path = root_ + "/tmp/" + stem + "."
        + std::to_string(
#ifdef __unix__
            static_cast<unsigned long>(::getpid())
#else
            0ul
#endif
                )
        + "." + std::to_string(tempSeq_.fetch_add(1)) + ".tmp";

#ifdef __unix__
    const int fd =
        ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0)
        return false;
    std::size_t written = 0;
    while (written < blob.size()) {
        const ssize_t n = ::write(fd, blob.data() + written,
                                  blob.size() - written);
        if (n <= 0) {
            ::close(fd);
            ::unlink(tmp_path.c_str());
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    // fsync before rename: the record must be durable before it
    // becomes visible, else a crash could leave a valid-looking name
    // with garbage content.
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp_path.c_str());
        return false;
    }
    ::close(fd);
    if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
        ::unlink(tmp_path.c_str());
        return false;
    }
    // Durable directory entry: fsync the containing directory.
    const int dirfd = ::open(
        fs::path(final_path).parent_path().c_str(), O_RDONLY);
    if (dirfd >= 0) {
        ::fsync(dirfd);
        ::close(dirfd);
    }
#else
    {
        std::ofstream out(tmp_path, std::ios::binary);
        if (!out)
            return false;
        out.write(blob.data(),
                  static_cast<std::streamsize>(blob.size()));
        if (!out) {
            fs::remove(tmp_path, ec);
            return false;
        }
    }
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        fs::remove(tmp_path, ec);
        return false;
    }
#endif
    return true;
}

} // namespace rab
