#include "sweep/report.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#ifdef __unix__
#include <unistd.h>
#endif

#include "common/logging.hh"

namespace rab
{

std::string
currentGitSha()
{
    for (const char *var : {"RAB_GIT_SHA", "GITHUB_SHA"}) {
        const char *sha = std::getenv(var);
        if (sha && *sha)
            return sha;
    }
#ifdef __unix__
    FILE *pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
    if (pipe) {
        char buf[128] = {};
        std::string sha;
        if (std::fgets(buf, sizeof(buf), pipe))
            sha = buf;
        ::pclose(pipe);
        while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
            sha.pop_back();
        if (!sha.empty())
            return sha;
    }
#endif
    return "unknown";
}

std::string
currentHostname()
{
#ifdef __unix__
    char buf[256] = {};
    if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0])
        return buf;
#endif
    return "unknown";
}

Json
simResultJson(const SimResult &result)
{
    Json j = Json::object();
    j["instructions"] = result.instructions;
    j["cycles"] = result.cycles;
    j["ipc"] = result.ipc;
    j["mpki"] = result.mpki;
    j["mem_stall_fraction"] = result.memStallFraction;
    j["onchip_miss_fraction"] = result.fig2OnChipFraction;
    j["necessary_fraction"] = result.necessaryFraction;
    j["repeated_fraction"] = result.repeatedFraction;
    j["avg_chain_length"] = result.avgChainLength;
    j["misses_per_interval"] = result.missesPerInterval;
    j["buffer_cycle_fraction"] = result.bufferCycleFraction;
    j["chain_cache_hit_rate"] = result.chainCacheHitRate;
    j["chain_cache_exact_rate"] = result.chainCacheExactRate;
    j["hybrid_buffer_fraction"] = result.hybridBufferFraction;
    j["dram_requests"] = result.dramRequests;
    j["runahead_intervals"] = result.runaheadIntervals;
    j["faults_injected"] = result.faultsInjected;
    j["watchdog_recoveries"] = result.watchdogRecoveries;
    j["degrade_steps"] = result.degradeSteps;
    j["degrade_level"] = result.degradeLevel;
    j["energy_total_j"] = result.energy.totalJ;
    j["energy_dram_j"] = result.energy.dramJ;
    return j;
}

SimResult
simResultFromJson(const Json &json)
{
    SimResult r;
    r.instructions = json.at("instructions").asU64();
    r.cycles = json.at("cycles").asU64();
    r.ipc = json.at("ipc").asDouble();
    r.mpki = json.at("mpki").asDouble();
    r.memStallFraction = json.at("mem_stall_fraction").asDouble();
    r.fig2OnChipFraction = json.at("onchip_miss_fraction").asDouble();
    r.necessaryFraction = json.at("necessary_fraction").asDouble();
    r.repeatedFraction = json.at("repeated_fraction").asDouble();
    r.avgChainLength = json.at("avg_chain_length").asDouble();
    r.missesPerInterval = json.at("misses_per_interval").asDouble();
    r.bufferCycleFraction = json.at("buffer_cycle_fraction").asDouble();
    r.chainCacheHitRate = json.at("chain_cache_hit_rate").asDouble();
    r.chainCacheExactRate =
        json.at("chain_cache_exact_rate").asDouble();
    r.hybridBufferFraction =
        json.at("hybrid_buffer_fraction").asDouble();
    r.dramRequests = json.at("dram_requests").asU64();
    r.runaheadIntervals = json.at("runahead_intervals").asU64();
    r.faultsInjected = json.at("faults_injected").asU64();
    r.watchdogRecoveries = json.at("watchdog_recoveries").asU64();
    r.degradeSteps = json.at("degrade_steps").asU64();
    r.degradeLevel =
        static_cast<int>(json.at("degrade_level").asDouble());
    r.energy.totalJ = json.at("energy_total_j").asDouble();
    r.energy.dramJ = json.at("energy_dram_j").asDouble();
    return r;
}

double
campaignCyclesPerSecond(const CampaignResult &campaign)
{
    if (campaign.wallSeconds <= 0)
        return 0.0;
    return static_cast<double>(campaign.simulatedCycles())
        / campaign.wallSeconds;
}

Json
campaignManifest(const CampaignResult &campaign, bool canonical)
{
    const CampaignSpec &spec = campaign.spec;

    Json manifest = Json::object();
    manifest["schema"] = kSweepManifestSchema;

    Json grid = Json::object();
    grid["name"] = spec.name;
    grid["instructions"] = spec.instructions;
    grid["warmup"] = spec.warmup;
    Json workloads = Json::array();
    for (const std::string &w : spec.workloads)
        workloads.push(w);
    grid["workloads"] = std::move(workloads);
    Json variants = Json::array();
    for (const ConfigVariant &v : spec.variants)
        variants.push(v.label);
    grid["variants"] = std::move(variants);
    Json seeds = Json::array();
    for (const std::uint64_t s : spec.seeds)
        seeds.push(s);
    grid["seeds"] = std::move(seeds);
    if (!spec.mixes.empty()) {
        Json mixes = Json::array();
        for (const CoreMixSpec &mix : spec.mixes) {
            Json m = Json::object();
            m["label"] = mix.label;
            Json cores = Json::array();
            for (const std::string &w : mix.workloads)
                cores.push(w);
            m["workloads"] = std::move(cores);
            mixes.push(std::move(m));
        }
        grid["mixes"] = std::move(mixes);
    }
    grid["points"] = spec.pointCount();
    grid["failed_points"] = campaign.failedCount();
    grid["interrupted"] = campaign.interrupted;
    grid["skipped_points"] = campaign.skippedCount();
    manifest["campaign"] = std::move(grid);

    if (!canonical) {
        Json env = Json::object();
        env["git_sha"] = currentGitSha();
        env["hostname"] = currentHostname();
        env["hardware_threads"] =
            static_cast<std::uint64_t>(std::thread::hardware_concurrency());
        env["threads"] = campaign.threads;
        env["wall_seconds"] = campaign.wallSeconds;
        env["simulated_cycles"] = campaign.simulatedCycles();
        env["cycles_per_wall_second"] =
            campaignCyclesPerSecond(campaign);
        // Result-store traffic: which points were cache hits varies
        // between a straight-line run and a resumed one, so all of it
        // stays out of the canonical byte-diff surface.
        env["store_hits"] = campaign.storeHits;
        env["store_misses"] = campaign.storeMisses;
        env["store_corrupt_discarded"] = campaign.storeCorrupt;
        env["store_snapshot_hits"] = campaign.storeSnapshotHits;
        env["store_snapshot_misses"] = campaign.storeSnapshotMisses;
        manifest["environment"] = std::move(env);
    }

    Json points = Json::array();
    for (const PointResult &p : campaign.points) {
        Json entry = Json::object();
        entry["index"] = p.point.index;
        entry["workload"] = p.point.workload;
        entry["variant"] = p.point.variant;
        entry["seed"] = p.point.seed;
        if (p.point.isMix()) {
            entry["cores"] = static_cast<std::uint64_t>(
                p.point.mixWorkloads.size());
            Json mix = Json::array();
            for (const std::string &w : p.point.mixWorkloads)
                mix.push(w);
            entry["mix_workloads"] = std::move(mix);
        }
        entry["ok"] = p.ok;
        if (!p.ok) {
            entry["error"] = p.error;
            // Quarantine is a deterministic verdict (the same fault
            // fails the same retries), so it may live in the
            // canonical document.
            entry["quarantined"] = p.quarantined;
        } else {
            entry["metrics"] = simResultJson(p.result);
            Json stats = Json::object();
            for (const auto &[name, value] : p.stats)
                stats[name] = value;
            entry["stats"] = std::move(stats);
        }
        if (!canonical) {
            entry["wall_seconds"] = p.wallSeconds;
            entry["cached"] = p.cached;
            entry["retries"] = p.retries;
            // Shared-image and per-point-image arms produce the same
            // canonical document; which points actually forked is
            // execution provenance, like `cached`.
            entry["snapshot_warmed"] = p.snapshotWarmed;
        }
        points.push(std::move(entry));
    }
    manifest["points"] = std::move(points);
    return manifest;
}

Json
makeBaseline(const CampaignResult &campaign)
{
    Json baseline = Json::object();
    baseline["schema"] = kSweepBaselineSchema;
    baseline["campaign"] = campaign.spec.name;
    baseline["cycles_per_wall_second"] =
        campaignCyclesPerSecond(campaign);
    baseline["threads"] = campaign.threads;
    baseline["git_sha"] = currentGitSha();
    baseline["hostname"] = currentHostname();
    // Named after the campaign so every pinned baseline file carries
    // its own regeneration recipe (smoke predates the naming scheme).
    const std::string file = campaign.spec.name == "smoke"
        ? "bench/baseline.json"
        : "bench/baseline-" + campaign.spec.name + ".json";
    baseline["regenerate"] = "./build/examples/rabsweep --preset "
        + campaign.spec.name + " --threads 2 --write-baseline " + file;
    return baseline;
}

GateResult
perfGate(const CampaignResult &campaign, const Json &baseline,
         double max_drop)
{
    GateResult gate;
    gate.measured = campaignCyclesPerSecond(campaign);
    try {
        if (baseline.at("schema").asString() != kSweepBaselineSchema) {
            gate.message = "baseline has unknown schema '"
                + baseline.at("schema").asString() + "'";
            return gate;
        }
        gate.baseline =
            baseline.at("cycles_per_wall_second").asDouble();
    } catch (const JsonError &e) {
        gate.message = std::string("malformed baseline: ") + e.what();
        return gate;
    }
    if (gate.baseline <= 0) {
        gate.message = "baseline throughput is not positive";
        return gate;
    }
    if (campaign.failedCount() > 0) {
        gate.message = strprintf("%zu campaign point(s) failed",
                                 campaign.failedCount());
        return gate;
    }
    gate.drop = 1.0 - gate.measured / gate.baseline;
    gate.pass = gate.drop <= max_drop;
    gate.message = strprintf(
        "throughput %.3g simulated cycles/s vs baseline %.3g "
        "(%+.1f%%; gate fails below -%.0f%%)",
        gate.measured, gate.baseline, -gate.drop * 100.0,
        max_drop * 100.0);
    return gate;
}

int
resolveSweepExitCode(bool interrupted, bool failed_points,
                     bool gate_failed)
{
    if (interrupted)
        return 7;
    if (gate_failed)
        return 6;
    if (failed_points)
        return 5;
    return 0;
}

namespace
{

/** "workload|variant|seed" — the identity a manifest point entry has
 *  independent of its position in any particular grid. */
std::string
pointKeyOf(const Json &entry)
{
    return entry.at("workload").asString() + "|"
        + entry.at("variant").asString() + "|"
        + std::to_string(entry.at("seed").asU64());
}

void
requireManifestSchema(const Json &manifest, const char *which)
{
    const Json *schema = manifest.find("schema");
    if (!schema)
        throw JsonError(std::string(which)
                        + " manifest has no schema field");
    if (schema->asString() != kSweepManifestSchema) {
        throw JsonError(std::string(which)
                        + " manifest schema mismatch: expected '"
                        + kSweepManifestSchema + "', got '"
                        + schema->asString() + "'");
    }
}

/** Append @p value to array @p axis unless already present. */
void
unionAxis(Json &axis, const Json &value)
{
    for (const Json &existing : axis.elements()) {
        if (existing.dump() == value.dump())
            return;
    }
    axis.push(value);
}

} // namespace

Json
mergeManifests(const Json &a, const Json &b)
{
    requireManifestSchema(a, "left");
    requireManifestSchema(b, "right");

    Json merged = Json::object();
    merged["schema"] = kSweepManifestSchema;

    const Json &ca = a.at("campaign");
    const Json &cb = b.at("campaign");
    Json grid = Json::object();
    grid["name"] =
        ca.at("name").asString() == cb.at("name").asString()
        ? ca.at("name").asString()
        : ca.at("name").asString() + "+" + cb.at("name").asString();
    grid["instructions"] = ca.at("instructions").asU64();
    grid["warmup"] = ca.at("warmup").asU64();
    for (const char *axis : {"workloads", "variants", "seeds"}) {
        Json unioned = Json::array();
        for (const Json &v : ca.at(axis).elements())
            unionAxis(unioned, v);
        for (const Json &v : cb.at(axis).elements())
            unionAxis(unioned, v);
        grid[axis] = std::move(unioned);
    }
    // The mix axis is optional (absent from pre-multi-core manifests
    // and single-core campaigns): union whatever is present.
    Json mixes = Json::array();
    for (const Json *c : {&ca, &cb}) {
        if (const Json *m = c->find("mixes")) {
            for (const Json &v : m->elements())
                unionAxis(mixes, v);
        }
    }
    if (mixes.size() > 0)
        grid["mixes"] = std::move(mixes);

    // Points: concatenate, re-index, and reject duplicates — the
    // old silent last-writer-wins behaviour turned a double merge
    // into quietly wrong aggregate counts.
    Json points = Json::array();
    std::set<std::string> seen;
    std::uint64_t failed = 0;
    std::uint64_t skipped = 0;
    for (const Json *source : {&a, &b}) {
        for (const Json &entry : source->at("points").elements()) {
            const std::string key = pointKeyOf(entry);
            if (!seen.insert(key).second) {
                throw JsonError("duplicate point key '" + key
                                + "' while merging manifests");
            }
            Json copy = entry;
            copy["index"] = static_cast<std::uint64_t>(points.size());
            if (!copy.at("ok").asBool()) {
                ++failed;
                const Json *error = copy.find("error");
                if (error
                    && error->asString().rfind("interrupted:", 0) == 0)
                    ++skipped;
            }
            points.push(std::move(copy));
        }
    }
    grid["points"] = static_cast<std::uint64_t>(points.size());
    grid["failed_points"] = failed;
    grid["interrupted"] = ca.at("interrupted").asBool()
        || cb.at("interrupted").asBool();
    grid["skipped_points"] = skipped;
    merged["campaign"] = std::move(grid);
    merged["points"] = std::move(points);
    return merged;
}

bool
writeJsonFile(const std::string &path, const Json &document)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << document.dump();
    return static_cast<bool>(out);
}

Json
readJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw JsonError("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return Json::parse(buffer.str());
}

} // namespace rab
