#include "sweep/report.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#ifdef __unix__
#include <unistd.h>
#endif

#include "common/logging.hh"

namespace rab
{

std::string
currentGitSha()
{
    for (const char *var : {"RAB_GIT_SHA", "GITHUB_SHA"}) {
        const char *sha = std::getenv(var);
        if (sha && *sha)
            return sha;
    }
#ifdef __unix__
    FILE *pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
    if (pipe) {
        char buf[128] = {};
        std::string sha;
        if (std::fgets(buf, sizeof(buf), pipe))
            sha = buf;
        ::pclose(pipe);
        while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
            sha.pop_back();
        if (!sha.empty())
            return sha;
    }
#endif
    return "unknown";
}

std::string
currentHostname()
{
#ifdef __unix__
    char buf[256] = {};
    if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0])
        return buf;
#endif
    return "unknown";
}

Json
simResultJson(const SimResult &result)
{
    Json j = Json::object();
    j["instructions"] = result.instructions;
    j["cycles"] = result.cycles;
    j["ipc"] = result.ipc;
    j["mpki"] = result.mpki;
    j["mem_stall_fraction"] = result.memStallFraction;
    j["onchip_miss_fraction"] = result.fig2OnChipFraction;
    j["necessary_fraction"] = result.necessaryFraction;
    j["repeated_fraction"] = result.repeatedFraction;
    j["avg_chain_length"] = result.avgChainLength;
    j["misses_per_interval"] = result.missesPerInterval;
    j["buffer_cycle_fraction"] = result.bufferCycleFraction;
    j["chain_cache_hit_rate"] = result.chainCacheHitRate;
    j["chain_cache_exact_rate"] = result.chainCacheExactRate;
    j["hybrid_buffer_fraction"] = result.hybridBufferFraction;
    j["dram_requests"] = result.dramRequests;
    j["runahead_intervals"] = result.runaheadIntervals;
    j["faults_injected"] = result.faultsInjected;
    j["watchdog_recoveries"] = result.watchdogRecoveries;
    j["degrade_steps"] = result.degradeSteps;
    j["degrade_level"] = result.degradeLevel;
    j["energy_total_j"] = result.energy.totalJ;
    j["energy_dram_j"] = result.energy.dramJ;
    return j;
}

double
campaignCyclesPerSecond(const CampaignResult &campaign)
{
    if (campaign.wallSeconds <= 0)
        return 0.0;
    return static_cast<double>(campaign.simulatedCycles())
        / campaign.wallSeconds;
}

Json
campaignManifest(const CampaignResult &campaign, bool canonical)
{
    const CampaignSpec &spec = campaign.spec;

    Json manifest = Json::object();
    manifest["schema"] = kSweepManifestSchema;

    Json grid = Json::object();
    grid["name"] = spec.name;
    grid["instructions"] = spec.instructions;
    grid["warmup"] = spec.warmup;
    Json workloads = Json::array();
    for (const std::string &w : spec.workloads)
        workloads.push(w);
    grid["workloads"] = std::move(workloads);
    Json variants = Json::array();
    for (const ConfigVariant &v : spec.variants)
        variants.push(v.label);
    grid["variants"] = std::move(variants);
    Json seeds = Json::array();
    for (const std::uint64_t s : spec.seeds)
        seeds.push(s);
    grid["seeds"] = std::move(seeds);
    grid["points"] = spec.pointCount();
    grid["failed_points"] = campaign.failedCount();
    manifest["campaign"] = std::move(grid);

    if (!canonical) {
        Json env = Json::object();
        env["git_sha"] = currentGitSha();
        env["hostname"] = currentHostname();
        env["hardware_threads"] =
            static_cast<std::uint64_t>(std::thread::hardware_concurrency());
        env["threads"] = campaign.threads;
        env["wall_seconds"] = campaign.wallSeconds;
        env["simulated_cycles"] = campaign.simulatedCycles();
        env["cycles_per_wall_second"] =
            campaignCyclesPerSecond(campaign);
        manifest["environment"] = std::move(env);
    }

    Json points = Json::array();
    for (const PointResult &p : campaign.points) {
        Json entry = Json::object();
        entry["index"] = p.point.index;
        entry["workload"] = p.point.workload;
        entry["variant"] = p.point.variant;
        entry["seed"] = p.point.seed;
        entry["ok"] = p.ok;
        if (!p.ok) {
            entry["error"] = p.error;
        } else {
            entry["metrics"] = simResultJson(p.result);
            Json stats = Json::object();
            for (const auto &[name, value] : p.stats)
                stats[name] = value;
            entry["stats"] = std::move(stats);
        }
        if (!canonical)
            entry["wall_seconds"] = p.wallSeconds;
        points.push(std::move(entry));
    }
    manifest["points"] = std::move(points);
    return manifest;
}

Json
makeBaseline(const CampaignResult &campaign)
{
    Json baseline = Json::object();
    baseline["schema"] = kSweepBaselineSchema;
    baseline["campaign"] = campaign.spec.name;
    baseline["cycles_per_wall_second"] =
        campaignCyclesPerSecond(campaign);
    baseline["threads"] = campaign.threads;
    baseline["git_sha"] = currentGitSha();
    baseline["hostname"] = currentHostname();
    baseline["regenerate"] =
        "./build/examples/rabsweep --preset smoke --threads 2 "
        "--write-baseline bench/baseline.json";
    return baseline;
}

GateResult
perfGate(const CampaignResult &campaign, const Json &baseline,
         double max_drop)
{
    GateResult gate;
    gate.measured = campaignCyclesPerSecond(campaign);
    try {
        if (baseline.at("schema").asString() != kSweepBaselineSchema) {
            gate.message = "baseline has unknown schema '"
                + baseline.at("schema").asString() + "'";
            return gate;
        }
        gate.baseline =
            baseline.at("cycles_per_wall_second").asDouble();
    } catch (const JsonError &e) {
        gate.message = std::string("malformed baseline: ") + e.what();
        return gate;
    }
    if (gate.baseline <= 0) {
        gate.message = "baseline throughput is not positive";
        return gate;
    }
    if (campaign.failedCount() > 0) {
        gate.message = strprintf("%zu campaign point(s) failed",
                                 campaign.failedCount());
        return gate;
    }
    gate.drop = 1.0 - gate.measured / gate.baseline;
    gate.pass = gate.drop <= max_drop;
    gate.message = strprintf(
        "throughput %.3g simulated cycles/s vs baseline %.3g "
        "(%+.1f%%; gate fails below -%.0f%%)",
        gate.measured, gate.baseline, -gate.drop * 100.0,
        max_drop * 100.0);
    return gate;
}

bool
writeJsonFile(const std::string &path, const Json &document)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << document.dump();
    return static_cast<bool>(out);
}

Json
readJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw JsonError("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return Json::parse(buffer.str());
}

} // namespace rab
