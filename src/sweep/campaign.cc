#include "sweep/campaign.hh"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "checker/invariant_checker.hh"
#include "common/logging.hh"
#include "core/multi_sim.hh"
#include "fault/watchdog.hh"
#include "snapshot/snapshot.hh"
#include "sweep/report.hh"
#include "sweep/store/result_store.hh"
#include "workloads/suite.hh"

namespace rab
{

ConfigVariant
makeVariant(RunaheadConfig config, bool prefetch)
{
    ConfigVariant v;
    v.label = std::string(runaheadConfigName(config))
        + (prefetch ? "+PF" : "");
    v.runahead = config;
    v.prefetch = prefetch;
    return v;
}

ConfigVariant
parseVariantLabel(const std::string &label)
{
    // '|'-joined labels assign one policy per core of a mix point.
    if (label.find('|') != std::string::npos) {
        ConfigVariant v;
        v.label = label;
        std::string segment;
        std::stringstream ss(label);
        while (std::getline(ss, segment, '|')) {
            if (segment.empty())
                throw std::runtime_error("empty core policy in '"
                                         + label + "'");
            const ConfigVariant core = parseVariantLabel(segment);
            v.corePolicies.push_back(core.runahead);
            v.prefetch = v.prefetch || core.prefetch;
        }
        v.runahead = v.corePolicies.front();
        return v;
    }

    std::string name = label;
    bool prefetch = false;
    const std::size_t suffix = name.rfind("+pf");
    if (suffix != std::string::npos && suffix == name.size() - 3) {
        prefetch = true;
        name.resize(suffix);
    }
    RunaheadConfig config = RunaheadConfig::kBaseline;
    if (name == "baseline")
        config = RunaheadConfig::kBaseline;
    else if (name == "runahead")
        config = RunaheadConfig::kRunahead;
    else if (name == "runahead-enhanced")
        config = RunaheadConfig::kRunaheadEnhanced;
    else if (name == "buffer")
        config = RunaheadConfig::kRunaheadBuffer;
    else if (name == "buffer-cc")
        config = RunaheadConfig::kRunaheadBufferCC;
    else if (name == "hybrid")
        config = RunaheadConfig::kHybrid;
    else if (name == "cre")
        config = RunaheadConfig::kCRE;
    else if (name == "cre-hybrid")
        config = RunaheadConfig::kCREHybrid;
    else
        throw std::runtime_error("unknown config '" + label + "'");
    return makeVariant(config, prefetch);
}

CoreMixSpec
makeMix4()
{
    CoreMixSpec mix;
    mix.label = "mix4";
    mix.workloads = {"mcf", "libq", "omnetpp", "h264"};
    return mix;
}

CoreMixSpec
parseMixSpec(const std::string &text)
{
    CoreMixSpec mix;
    std::string list = text;
    const std::size_t eq = text.find('=');
    if (eq != std::string::npos) {
        mix.label = text.substr(0, eq);
        list = text.substr(eq + 1);
    }
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            mix.workloads.push_back(item);
    }
    if (mix.workloads.empty())
        throw std::runtime_error("empty mix spec '" + text + "'");
    if (mix.label.empty()) {
        for (const std::string &w : mix.workloads)
            mix.label += (mix.label.empty() ? "" : "+") + w;
    }
    return mix;
}

std::size_t
CampaignSpec::pointCount() const
{
    return (workloads.size() + mixes.size()) * variants.size()
        * seeds.size();
}

std::vector<SweepPoint>
expandGrid(const CampaignSpec &spec)
{
    std::vector<SweepPoint> points;
    points.reserve(spec.pointCount());
    const auto expand_variants = [&](const std::string &workload,
                                     const CoreMixSpec *mix) {
        for (const ConfigVariant &variant : spec.variants) {
            for (const std::uint64_t seed : spec.seeds) {
                SweepPoint p;
                p.index = points.size();
                p.workload = workload;
                p.variant = variant.label;
                p.runahead = variant.runahead;
                p.prefetch = variant.prefetch;
                p.seed = seed;
                if (mix) {
                    p.mixWorkloads = mix->workloads;
                    p.corePolicies = variant.corePolicies;
                }
                points.push_back(std::move(p));
            }
        }
    };
    for (const std::string &workload : spec.workloads)
        expand_variants(workload, nullptr);
    for (const CoreMixSpec &mix : spec.mixes)
        expand_variants(mix.label, &mix);
    return points;
}

std::size_t
CampaignResult::failedCount() const
{
    std::size_t failed = 0;
    for (const PointResult &p : points)
        failed += p.ok ? 0 : 1;
    return failed;
}

std::size_t
CampaignResult::skippedCount() const
{
    std::size_t skipped = 0;
    for (const PointResult &p : points)
        skipped += p.ran ? 0 : 1;
    return skipped;
}

std::uint64_t
CampaignResult::simulatedCycles() const
{
    std::uint64_t cycles = 0;
    for (const PointResult &p : points) {
        if (p.ok)
            cycles += p.result.cycles;
    }
    return cycles;
}

namespace
{

/** Workload parameters for @p point (seed 0 = workload default). */
WorkloadParams
pointWorkloadParams(const SweepPoint &point)
{
    const WorkloadSpec *workload = findWorkload(point.workload);
    if (!workload) {
        throw std::runtime_error("unknown workload '" + point.workload
                                 + "'");
    }
    WorkloadParams params = workload->params;
    if (point.seed != 0)
        params.seed = point.seed;
    return params;
}

/**
 * Config a warmup image for @p point's group is captured under: the
 * baseline policy (so the image is fork-safe — warmup never enters a
 * runahead interval) with the point's prefetch setting and every
 * spec-level knob that shapes warmup state. Variant-specific policy
 * is deliberately absent: it is exactly what each fork re-derives.
 */
SimConfig
warmupImageConfig(const CampaignSpec &spec, const SweepPoint &point)
{
    SimConfig config =
        makeConfig(RunaheadConfig::kBaseline, point.prefetch);
    config.instructions = spec.instructions;
    config.warmupInstructions = spec.warmup;
    config.checkLevel = spec.checkLevel;
    config.checkPolicy = spec.checkPolicy;
    config.fastForward = spec.fastForward;
    config.finalize();
    return config;
}

} // namespace

std::string
buildWarmupImage(const CampaignSpec &spec, const SweepPoint &point)
{
    Simulation sim(warmupImageConfig(spec, point),
                   buildWorkload(pointWorkloadParams(point)));
    sim.runWarmup();
    return captureSnapshot(sim);
}

std::string
warmupSnapshotId(const std::string &payload)
{
    return strprintf(
        "%lu/%s", (unsigned long)kSnapshotFormatVersion,
        snapshotHashHex(snapshotContentHash(payload)).c_str());
}

struct WarmupImageCache::Group
{
    std::mutex mutex;
    bool built = false;
    bool failed = false;
    std::string payload; ///< captureSnapshot image.
    std::string id;      ///< warmupSnapshotId(payload).
};

WarmupImageCache::WarmupImageCache(ResultStore *store,
                                   std::string git_sha)
    : store_(store), gitSha_(std::move(git_sha))
{
}

WarmupImageCache::~WarmupImageCache() = default;

const std::string *
WarmupImageCache::get(const CampaignSpec &spec, const SweepPoint &point,
                      std::string &snapshot_id)
{
    if (point.isMix())
        return nullptr; // Mix points always warm inline.

    Group *g = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &slot = groups_[std::make_tuple(point.workload, point.seed,
                                             point.prefetch)];
        if (!slot)
            slot = std::make_unique<Group>();
        g = slot.get();
    }

    std::lock_guard<std::mutex> lock(g->mutex);
    if (!g->built) {
        g->built = true;
        try {
            SnapshotStoreKey skey;
            bool from_store = false;
            if (store_) {
                skey.gitSha = gitSha_;
                skey.warmupDigestHex = hex64(snapshotWarmupDigest(
                    warmupImageConfig(spec, point)));
                skey.workload = point.workload;
                skey.seed = point.seed;
                skey.warmupInstructions = spec.warmup;
                skey.formatVersion = kSnapshotFormatVersion;
                if (auto payload = store_->lookupSnapshot(skey)) {
                    g->payload = std::move(*payload);
                    from_store = true;
                }
            }
            if (!from_store) {
                g->payload = buildWarmupImage(spec, point);
                if (store_)
                    store_->putSnapshot(skey, g->payload);
            }
            g->id = warmupSnapshotId(g->payload);
        } catch (const std::exception &e) {
            g->failed = true;
            g->payload.clear();
            warn("sweep: warmup image build failed for '%s' seed "
                 "%llu (%s): group warms inline",
                 point.workload.c_str(),
                 (unsigned long long)point.seed, e.what());
        }
    }
    if (g->failed)
        return nullptr;
    snapshot_id = g->id;
    return &g->payload;
}

PointResult
runPoint(const CampaignSpec &spec, const SweepPoint &point,
         const std::string *warmup_image)
{
    PointResult pr;
    pr.point = point;
    // rablint: nondeterminism-ok (per-point wall-time reporting;
    // wallSeconds never feeds simulated state or manifest ordering)
    const auto start = std::chrono::steady_clock::now();
    try {
        SimConfig config = makeConfig(point.runahead, point.prefetch);
        config.instructions = spec.instructions;
        config.warmupInstructions = spec.warmup;
        config.checkLevel = spec.checkLevel;
        config.checkPolicy = spec.checkPolicy;
        config.fastForward = spec.fastForward;
        if (point.isMix()) {
            config.numCores =
                static_cast<int>(point.mixWorkloads.size());
            config.corePolicies = point.corePolicies;
        }
        config.finalize();
        if (spec.configHook)
            spec.configHook(point.index, config);

        if (point.isMix()) {
            std::vector<Program> programs;
            programs.reserve(point.mixWorkloads.size());
            for (const std::string &name : point.mixWorkloads) {
                const WorkloadSpec *workload = findWorkload(name);
                if (!workload) {
                    throw std::runtime_error("unknown workload '"
                                             + name + "'");
                }
                WorkloadParams params = workload->params;
                if (point.seed != 0)
                    params.seed = point.seed;
                programs.push_back(buildWorkload(params));
            }
            MultiSimulation sim(config, std::move(programs));
            const MultiSimResult multi = sim.run();
            // PointResult carries one SimResult: synthesise the
            // chip-level view (per-core results live in the stats
            // payload under core<i>.* and shared.*).
            pr.result.workload = point.workload;
            pr.result.config = point.runahead;
            pr.result.prefetch = point.prefetch;
            pr.result.instructions = multi.instructions;
            pr.result.cycles = multi.cycles;
            pr.result.ipc = multi.throughputIpc;
            pr.result.energy = multi.energy;
            for (const SimResult &core : multi.cores) {
                pr.result.runaheadIntervals += core.runaheadIntervals;
                pr.result.dramRequests += core.dramRequests;
                pr.result.faultsInjected += core.faultsInjected;
                pr.result.watchdogRecoveries += core.watchdogRecoveries;
                pr.result.degradeSteps += core.degradeSteps;
            }
            pr.stats = multi.stats;
        } else {
            const WorkloadParams params = pointWorkloadParams(point);

            std::optional<Simulation> sim;
            sim.emplace(config, buildWorkload(params));
            if (warmup_image && !spec.configHook) {
                try {
                    restoreSnapshot(*sim, *warmup_image,
                                    SnapshotRestoreMode::kFork);
                    pr.snapshotWarmed = true;
                } catch (const SnapshotError &e) {
                    // Straight-line fallback: a bad image costs one
                    // inline warmup, never a failed point. The sim may
                    // be partially overwritten — rebuild it.
                    warn("sweep: snapshot restore failed for point "
                         "%zu (%s): falling back to inline warmup",
                         point.index, e.what());
                    sim.emplace(config, buildWorkload(params));
                }
            }
            pr.result =
                pr.snapshotWarmed ? sim->runMeasured() : sim->run();
            pr.stats = sim->core().stats().collect();
            for (const auto &[name, value] :
                 sim->memory().stats().collect())
                pr.stats.emplace(name, value);
        }
        pr.ok = true;
    } catch (const WatchdogTimeout &e) {
        pr.error = strprintf(
            "WatchdogTimeout: forward progress lost at cycle %llu "
            "after %d recoveries",
            (unsigned long long)e.cycle(), e.recoveries());
    } catch (const InvariantViolation &e) {
        pr.error = strprintf("InvariantViolation in '%s': %s",
                             e.module().c_str(), e.what());
    } catch (const std::exception &e) {
        pr.error = std::string("error: ") + e.what();
    }
    pr.wallSeconds = std::chrono::duration<double>(
                         // rablint: nondeterminism-ok (same reporting)
                         std::chrono::steady_clock::now() - start)
                         .count();
    pr.ran = true;
    return pr;
}

bool
isRetryableFailure(const std::string &error)
{
    // Fault-classified failures only: a watchdog giving up is the
    // "machine hiccup" class the degradation ladder exists for, and
    // the one the daemon must not let poison a whole campaign. Spec
    // errors (unknown workload) and invariant violations are
    // deterministic bugs — retrying them just burns time.
    return error.rfind("WatchdogTimeout", 0) == 0;
}

PointResult
runPointWithRecovery(const CampaignSpec &spec, const SweepPoint &point,
                     const std::string *warmup_image)
{
    PointResult pr = runPoint(spec, point, warmup_image);
    int attempt = 0;
    while (!pr.ok && isRetryableFailure(pr.error)
           && attempt < spec.retryLimit) {
        // Bounded exponential backoff, the MemorySystem retry idiom
        // lifted to point granularity. The sleep is wall time, not
        // simulated time: it never touches simulator state.
        std::this_thread::sleep_for(std::chrono::milliseconds(
            spec.retryBackoffMs > 0 ? spec.retryBackoffMs << attempt
                                    : 0));
        ++attempt;
        const std::string first_error = pr.error;
        pr = runPoint(spec, point, warmup_image);
        pr.retries = attempt;
        if (!pr.ok)
            pr.error += strprintf(" (retry %d of %d; first: %s)",
                                  attempt, spec.retryLimit,
                                  first_error.c_str());
    }
    if (!pr.ok && isRetryableFailure(pr.error))
        pr.quarantined = true;
    return pr;
}

namespace
{

/**
 * Lock-per-deque work-stealing queue of point indices. Points are
 * coarse (milliseconds to seconds each), so simple mutexes cost
 * nothing measurable; what matters is that a worker that drains its
 * own deque steals from the tail of its neighbours' instead of going
 * idle while a long workload hogs one lane.
 */
class WorkStealingQueue
{
  public:
    WorkStealingQueue(std::size_t workers, std::size_t items)
        : lanes_(workers)
    {
        // Round-robin seeding spreads each workload's variants (which
        // have correlated runtimes) across lanes.
        for (std::size_t i = 0; i < items; ++i)
            lanes_[i % workers].items.push_back(i);
    }

    /** Pop own front, else steal a neighbour's tail. */
    bool pop(std::size_t worker, std::size_t &out)
    {
        if (popFront(worker, out))
            return true;
        for (std::size_t k = 1; k < lanes_.size(); ++k) {
            const std::size_t victim = (worker + k) % lanes_.size();
            if (stealBack(victim, out))
                return true;
        }
        return false;
    }

  private:
    struct Lane
    {
        std::mutex mutex;
        std::deque<std::size_t> items;
    };

    bool popFront(std::size_t lane, std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(lanes_[lane].mutex);
        if (lanes_[lane].items.empty())
            return false;
        out = lanes_[lane].items.front();
        lanes_[lane].items.pop_front();
        return true;
    }

    bool stealBack(std::size_t lane, std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(lanes_[lane].mutex);
        if (lanes_[lane].items.empty())
            return false;
        out = lanes_[lane].items.back();
        lanes_[lane].items.pop_back();
        return true;
    }

    std::vector<Lane> lanes_;
};

} // namespace

CampaignResult
runCampaign(const CampaignSpec &spec, int threads)
{
    return runCampaign(spec, threads, CampaignRunOptions{});
}

CampaignResult
runCampaign(const CampaignSpec &spec, int threads,
            const CampaignRunOptions &options)
{
    // rablint: nondeterminism-ok (campaign wall-time reporting only)
    const auto start = std::chrono::steady_clock::now();
    const std::vector<SweepPoint> grid = expandGrid(spec);

    CampaignResult campaign;
    campaign.spec = spec;
    campaign.threads = threads < 1 ? 1 : threads;
    campaign.points.resize(grid.size());

    // A configHook mutates configs invisibly to the config hash, so
    // cached results could silently disagree with what the hook would
    // have produced — bypass the store entirely in that case.
    ResultStore *store =
        spec.configHook ? nullptr : options.store;
    if (options.store && !store) {
        warn("sweep: result store bypassed: spec '%s' has a "
             "configHook the config hash cannot see",
             spec.name.c_str());
    }
    const std::string git_sha = store ? currentGitSha() : "";
    const std::uint64_t hits0 = store ? store->hits() : 0;
    const std::uint64_t misses0 = store ? store->misses() : 0;
    const std::uint64_t corrupt0 = store ? store->corruptDiscarded() : 0;
    const std::uint64_t snap_hits0 = store ? store->snapshotHits() : 0;
    const std::uint64_t snap_misses0 =
        store ? store->snapshotMisses() : 0;

    // Snapshotted warmup follows the store's configHook rule for the
    // same reason: the hook's config mutations are invisible to the
    // warmup image, so a fork from it would resume the wrong machine.
    const bool snapshot_mode = spec.snapshotWarmup && !spec.configHook;
    if (spec.snapshotWarmup && !snapshot_mode) {
        warn("sweep: snapshot warmup bypassed: spec '%s' has a "
             "configHook the warmup image cannot see",
             spec.name.c_str());
    }

    // One shared warmup image per (workload, seed, prefetch) group of
    // single-core points; built lazily by whichever worker reaches
    // the group first.
    std::unique_ptr<WarmupImageCache> warmup_cache;
    if (snapshot_mode && !options.snapshotNoShare)
        warmup_cache = std::make_unique<WarmupImageCache>(store, git_sha);

    const std::atomic<bool> *stop = options.stop;
    const auto stopped = [stop] { return stop && stop->load(); };
    std::mutex stream_mutex; // serialises options.onPoint calls

    // One point, store-first: cached results short-circuit the
    // simulation; fresh ok results are persisted before they are
    // reported, so a kill arriving mid-campaign can never lose a
    // point that a client already saw.
    const auto run_index = [&](std::size_t index) {
        const SweepPoint &point = grid[index];

        const std::string *image = nullptr;
        std::string snapshot_id;
        std::string local_payload; // snapshotNoShare per-point image.
        if (snapshot_mode && !point.isMix()) {
            if (options.snapshotNoShare) {
                try {
                    local_payload = buildWarmupImage(spec, point);
                    snapshot_id = warmupSnapshotId(local_payload);
                    image = &local_payload;
                } catch (const std::exception &e) {
                    warn("sweep: warmup image build failed for point "
                         "%zu (%s): inline warmup",
                         index, e.what());
                }
            } else {
                image = warmup_cache->get(spec, point, snapshot_id);
            }
        }

        PointResult pr;
        if (store) {
            const StoreKey key = makeStoreKey(
                spec, point, git_sha, image ? snapshot_id : "");
            if (auto cached = store->lookup(key)) {
                pr = std::move(*cached);
                pr.point = point; // re-anchor to this grid's index
                pr.snapshotWarmed = image != nullptr;
            } else {
                pr = runPointWithRecovery(spec, point, image);
                if (pr.ok) {
                    // A point that fell back to inline warmup during
                    // restore lives in the inline-key universe, not
                    // the snapshot one it was aimed at.
                    if (image && !pr.snapshotWarmed)
                        store->put(makeStoreKey(spec, point, git_sha),
                                   pr);
                    else
                        store->put(key, pr);
                }
            }
        } else {
            pr = runPointWithRecovery(spec, point, image);
        }
        if (options.onPoint) {
            std::lock_guard<std::mutex> lock(stream_mutex);
            options.onPoint(pr);
        }
        campaign.points[index] = std::move(pr);
    };

    if (campaign.threads <= 1 || grid.size() <= 1) {
        // Serial reference path: no threads, same per-point code.
        for (const SweepPoint &point : grid) {
            if (stopped())
                break;
            run_index(point.index);
        }
    } else {
        const std::size_t workers =
            std::min<std::size_t>(campaign.threads, grid.size());
        WorkStealingQueue queue(workers, grid.size());
        // Each worker writes only campaign.points[index] slots it
        // popped — disjoint, so the joins below are the only sync.
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back([&, w] {
                std::size_t index = 0;
                // The stop flag gates claiming, not completion: an
                // in-flight point always finishes and is flushed.
                while (!stopped() && queue.pop(w, index))
                    run_index(index);
            });
        }
        for (std::thread &t : pool)
            t.join();
    }

    campaign.interrupted = stopped();
    for (std::size_t i = 0; i < campaign.points.size(); ++i) {
        PointResult &p = campaign.points[i];
        if (!p.ran) {
            p.point = grid[i];
            p.error = "interrupted: point not run";
        }
    }
    if (store) {
        campaign.storeHits = store->hits() - hits0;
        campaign.storeMisses = store->misses() - misses0;
        campaign.storeCorrupt = store->corruptDiscarded() - corrupt0;
        campaign.storeSnapshotHits = store->snapshotHits() - snap_hits0;
        campaign.storeSnapshotMisses =
            store->snapshotMisses() - snap_misses0;
    }

    campaign.wallSeconds = std::chrono::duration<double>(
                               // rablint: nondeterminism-ok (ditto)
                               std::chrono::steady_clock::now() - start)
                               .count();
    return campaign;
}

} // namespace rab
