/**
 * @file
 * Parallel sweep-campaign engine.
 *
 * Every paper figure is a grid of independent (workload x SimConfig x
 * seed) simulation points — embarrassingly parallel work the serial
 * bench loops left on the table. A CampaignSpec declares such a grid;
 * runCampaign() expands it in deterministic grid order, executes each
 * point as an isolated Simulation on a fixed-size thread pool with a
 * work-stealing queue, and merges the results back in grid order
 * regardless of completion order. The merged output is certified
 * byte-identical across thread counts by tests/test_sweep.cc.
 *
 * Failure isolation: each point runs under its own try/catch, so one
 * point that dies (WatchdogTimeout under fault injection, an escaped
 * InvariantViolation, a bad spec entry) is marked failed with a
 * diagnostic string while the rest of the campaign completes.
 *
 * Thread safety: a Simulation is self-contained (per-instance RNGs,
 * freshly constructed components, stat groups asserted un-aliased via
 * StatGroup::claimExclusive), so points share nothing but read-only
 * spec data. The optional configHook must itself be thread-safe.
 */

#ifndef RAB_SWEEP_CAMPAIGN_HH
#define RAB_SWEEP_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/sim_config.hh"
#include "core/simulation.hh"

namespace rab
{

/** One named runahead/prefetch configuration axis entry. */
struct ConfigVariant
{
    std::string label; ///< e.g. "Hybrid+PF"; unique within a campaign.
    RunaheadConfig runahead = RunaheadConfig::kBaseline;
    bool prefetch = false;
};

/** Label a (config, prefetch) pair the way the benches do. */
ConfigVariant makeVariant(RunaheadConfig config, bool prefetch);

/** A declarative workloads x variants x seeds grid. */
struct CampaignSpec
{
    std::string name = "campaign";

    std::vector<std::string> workloads;   ///< Suite workload names.
    std::vector<ConfigVariant> variants;  ///< Config axis.
    std::vector<std::uint64_t> seeds{0};  ///< 0: workload default seed.

    std::uint64_t instructions = 40'000;
    std::uint64_t warmup = 10'000;
    CheckLevel checkLevel = CheckLevel::kOff;
    CheckPolicy checkPolicy = CheckPolicy::kThrow;
    bool fastForward = true; ///< Cycle-loop fast-forward engine.

    /**
     * Optional per-point SimConfig override, applied after the
     * variant's base config is built and finalized. Runs on worker
     * threads: must be thread-safe (pure index-based decisions are).
     */
    std::function<void(std::size_t point_index, SimConfig &config)>
        configHook;

    std::size_t pointCount() const;
};

/** One expanded grid point. */
struct SweepPoint
{
    std::size_t index = 0; ///< Position in grid order.
    std::string workload;
    std::string variant;
    RunaheadConfig runahead = RunaheadConfig::kBaseline;
    bool prefetch = false;
    std::uint64_t seed = 0;
};

/**
 * Expand the grid in deterministic order: workload-major, then
 * variant, then seed. This order defines point indices, result order
 * and the manifest layout, independent of execution schedule.
 */
std::vector<SweepPoint> expandGrid(const CampaignSpec &spec);

/** Outcome of one point. */
struct PointResult
{
    SweepPoint point;
    bool ok = false;
    std::string error; ///< Diagnostic when !ok.
    SimResult result;  ///< Valid only when ok.
    /** Flattened core+memory StatGroup payload (dotted names). */
    std::map<std::string, double> stats;
    double wallSeconds = 0;
};

/** A finished campaign: points in grid order, always complete. */
struct CampaignResult
{
    CampaignSpec spec;
    int threads = 1;
    double wallSeconds = 0;
    std::vector<PointResult> points;

    std::size_t failedCount() const;
    /** Sum of simulated cycles over successful points. */
    std::uint64_t simulatedCycles() const;
};

/**
 * Run every point of @p spec. @p threads <= 1 runs serially on the
 * calling thread (the reference the determinism test compares
 * against); otherwise a pool of min(threads, points) workers drains a
 * work-stealing queue. Results are merged in grid order either way.
 */
CampaignResult runCampaign(const CampaignSpec &spec, int threads);

/** Run one point in isolation (also the serial path's worker). */
PointResult runPoint(const CampaignSpec &spec, const SweepPoint &point);

} // namespace rab

#endif // RAB_SWEEP_CAMPAIGN_HH
