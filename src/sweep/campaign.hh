/**
 * @file
 * Parallel sweep-campaign engine.
 *
 * Every paper figure is a grid of independent (workload x SimConfig x
 * seed) simulation points — embarrassingly parallel work the serial
 * bench loops left on the table. A CampaignSpec declares such a grid;
 * runCampaign() expands it in deterministic grid order, executes each
 * point as an isolated Simulation on a fixed-size thread pool with a
 * work-stealing queue, and merges the results back in grid order
 * regardless of completion order. The merged output is certified
 * byte-identical across thread counts by tests/test_sweep.cc.
 *
 * Failure isolation: each point runs under its own try/catch, so one
 * point that dies (WatchdogTimeout under fault injection, an escaped
 * InvariantViolation, a bad spec entry) is marked failed with a
 * diagnostic string while the rest of the campaign completes.
 *
 * Thread safety: a Simulation is self-contained (per-instance RNGs,
 * freshly constructed components, stat groups asserted un-aliased via
 * StatGroup::claimExclusive), so points share nothing but read-only
 * spec data. The optional configHook must itself be thread-safe.
 */

#ifndef RAB_SWEEP_CAMPAIGN_HH
#define RAB_SWEEP_CAMPAIGN_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "core/sim_config.hh"
#include "core/simulation.hh"

namespace rab
{

class ResultStore; // sweep/store/result_store.hh

/** One named runahead/prefetch configuration axis entry. */
struct ConfigVariant
{
    std::string label; ///< e.g. "Hybrid+PF"; unique within a campaign.
    RunaheadConfig runahead = RunaheadConfig::kBaseline;
    bool prefetch = false;

    /** Per-core policy override for multi-core mix points (the
     *  interference axis). Empty: every core runs `runahead`. Parsed
     *  from '|'-joined labels, e.g. "hybrid|baseline|baseline". Core i
     *  runs corePolicies[i % size] (SimConfig::corePolicy). */
    std::vector<RunaheadConfig> corePolicies;
};

/** Label a (config, prefetch) pair the way the benches do. */
ConfigVariant makeVariant(RunaheadConfig config, bool prefetch);

/**
 * Parse a CLI/wire config label — "baseline", "runahead",
 * "runahead-enhanced", "buffer", "buffer-cc", "hybrid", "cre" or
 * "cre-hybrid", each with an optional "+pf" suffix — into a variant. A '|'-joined label
 * ("hybrid|baseline") assigns a policy per core of a multi-core mix
 * point; the first segment is the variant's headline config, and any
 * segment's "+pf" suffix enables the (chip-wide) prefetcher. Throws
 * std::runtime_error on an unknown name (the daemon turns that into
 * a bad-spec error frame; the CLI into a fatal()).
 */
ConfigVariant parseVariantLabel(const std::string &label);

/** A named multi-core workload mix (one core per entry). */
struct CoreMixSpec
{
    std::string label;                  ///< e.g. "mix4".
    std::vector<std::string> workloads; ///< Suite name per core.
};

/** The headline 4-core interference mix: one high-MPKI pointer
 *  chaser (mcf), one streaming (libq), one chain-heavy gather
 *  (omnetpp) and one compute-bound (h264) workload. */
CoreMixSpec makeMix4();

/** Parse "label=w0,w1,..." or bare "w0,w1,..." (label joins the
 *  workloads with '+') into a mix. Throws std::runtime_error when no
 *  workload is given. */
CoreMixSpec parseMixSpec(const std::string &text);

/** A declarative workloads x variants x seeds grid. */
struct CampaignSpec
{
    std::string name = "campaign";

    std::vector<std::string> workloads;   ///< Suite workload names.
    std::vector<ConfigVariant> variants;  ///< Config axis.
    std::vector<std::uint64_t> seeds{0};  ///< 0: workload default seed.

    /** Multi-core mix axis, expanded after `workloads` (each mix x
     *  variants x seeds). A mix point runs a MultiSimulation with one
     *  core per mix entry sharing the LLC/MSHRs/DRAM; its variant's
     *  corePolicies (when set) give each core its own runahead
     *  policy. */
    std::vector<CoreMixSpec> mixes;

    std::uint64_t instructions = 40'000;
    std::uint64_t warmup = 10'000;
    CheckLevel checkLevel = CheckLevel::kOff;
    CheckPolicy checkPolicy = CheckPolicy::kThrow;
    bool fastForward = true; ///< Cycle-loop fast-forward engine.

    /**
     * Snapshotted warmup: warm each (workload, seed, prefetch) group
     * once under the baseline policy, capture a whole-simulator
     * snapshot at the warmup boundary, and fork every config variant
     * of the group from that shared image instead of re-running its
     * own warmup. Amortizes warmup across the variant axis (the bulk
     * of a sweep's redundant work) and, with a result store attached,
     * across campaigns and processes via cached snapshot records.
     *
     * Snapshot-warmed results are a distinct result universe from
     * inline-warmed ones (the warmup ran under the baseline policy,
     * not the variant's own), so the store keys them separately
     * (config-key v4 warmup_mode/snapshot fields). Multi-core mix
     * points always warm inline; a configHook disables snapshotting
     * the same way it disables the store.
     */
    bool snapshotWarmup = false;

    /**
     * @{ Bounded-retry recovery for fault-classified point failures
     * (WatchdogTimeout), the same idiom MemorySystem uses for dropped
     * DRAM responses: up to retryLimit re-runs with exponential
     * backoff (retryBackoffMs, doubling per attempt). A point that
     * exhausts its retries is quarantined — marked failed so the rest
     * of the campaign completes — instead of wedging the run.
     */
    int retryLimit = 2;
    int retryBackoffMs = 20;
    /** @} */

    /**
     * Optional per-point SimConfig override, applied after the
     * variant's base config is built and finalized. Runs on worker
     * threads: must be thread-safe (pure index-based decisions are).
     */
    std::function<void(std::size_t point_index, SimConfig &config)>
        configHook;

    std::size_t pointCount() const;
};

/** One expanded grid point. */
struct SweepPoint
{
    std::size_t index = 0; ///< Position in grid order.
    std::string workload;  ///< Suite name, or the mix label.
    std::string variant;
    RunaheadConfig runahead = RunaheadConfig::kBaseline;
    bool prefetch = false;
    std::uint64_t seed = 0;

    /** @{ Multi-core mix points only (empty otherwise): one workload
     *  per core, and the variant's per-core policy override. */
    std::vector<std::string> mixWorkloads;
    std::vector<RunaheadConfig> corePolicies;
    /** @} */

    bool isMix() const { return !mixWorkloads.empty(); }
};

/**
 * Expand the grid in deterministic order: workload-major, then
 * variant, then seed; mix points follow the single-core workloads in
 * the same variant/seed order. This order defines point indices,
 * result order and the manifest layout, independent of execution
 * schedule.
 */
std::vector<SweepPoint> expandGrid(const CampaignSpec &spec);

/** Outcome of one point. */
struct PointResult
{
    SweepPoint point;
    bool ok = false;
    std::string error; ///< Diagnostic when !ok.
    SimResult result;  ///< Valid only when ok.
    /** Flattened core+memory StatGroup payload (dotted names). */
    std::map<std::string, double> stats;
    double wallSeconds = 0;
    bool ran = false;    ///< False: interrupted before this point ran.
    bool cached = false; ///< Served from the result store.
    /** Resumed from a warmup snapshot (false: warmed inline, either
     *  by spec or because snapshot build/restore fell back). */
    bool snapshotWarmed = false;
    int retries = 0;     ///< Fault-classified re-runs performed.
    /** Failed every retry; isolated so the campaign completes. */
    bool quarantined = false;
};

/** A finished campaign: points in grid order, always complete. */
struct CampaignResult
{
    CampaignSpec spec;
    int threads = 1;
    double wallSeconds = 0;
    std::vector<PointResult> points;
    /** Stopped early (SIGINT / daemon drain): not every point ran. */
    bool interrupted = false;

    /** @{ Result-store traffic (zero when no store was attached). */
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t storeCorrupt = 0;
    std::uint64_t storeSnapshotHits = 0;
    std::uint64_t storeSnapshotMisses = 0;
    /** @} */

    std::size_t failedCount() const;
    /** Points never executed because the campaign was interrupted. */
    std::size_t skippedCount() const;
    /** Sum of simulated cycles over successful points. */
    std::uint64_t simulatedCycles() const;
};

/**
 * Execution environment for runCampaign beyond the spec itself: all
 * optional, all observed on worker threads.
 */
struct CampaignRunOptions
{
    /**
     * Consult this store before simulating each point and persist
     * fresh ok results into it — the mechanism that makes campaigns
     * resumable (the store is the checkpoint). Ignored when the spec
     * has a configHook: the hook's effect is invisible to the config
     * hash, so cached results could silently lie.
     */
    ResultStore *store = nullptr;

    /**
     * Cooperative stop flag (set by a SIGINT handler or the daemon's
     * drain path). Once true, workers finish their in-flight point
     * but claim no new ones; the campaign returns with
     * interrupted == true and un-run points marked !ran.
     */
    const std::atomic<bool> *stop = nullptr;

    /**
     * Per-completed-point callback, invoked under an internal mutex
     * (serialised) as soon as each point finishes, in completion
     * order — the daemon's incremental streaming hook.
     */
    std::function<void(const PointResult &point)> onPoint;

    /**
     * With spec.snapshotWarmup: build a private warmup image per
     * point instead of sharing one per group. Results are identical
     * by construction (same fork semantics, same image content) —
     * this is the benchmark control arm that isolates what sharing
     * buys, not a mode anyone should run for real.
     */
    bool snapshotNoShare = false;
};

/**
 * Run every point of @p spec. @p threads <= 1 runs serially on the
 * calling thread (the reference the determinism test compares
 * against); otherwise a pool of min(threads, points) workers drains a
 * work-stealing queue. Results are merged in grid order either way.
 */
CampaignResult runCampaign(const CampaignSpec &spec, int threads);

/** As above with a store / stop flag / streaming callback. */
CampaignResult runCampaign(const CampaignSpec &spec, int threads,
                           const CampaignRunOptions &options);

/**
 * Run one point in isolation (also the serial path's worker). When
 * @p warmup_image is non-null (a captureSnapshot payload of a warmed
 * baseline-policy simulation of the point's workload/seed/prefetch
 * group), the point's simulation fork-restores from it and runs only
 * the measured region; on any SnapshotError it falls back to inline
 * warmup on a fresh simulation (snapshotWarmed stays false).
 */
PointResult runPoint(const CampaignSpec &spec, const SweepPoint &point,
                     const std::string *warmup_image = nullptr);

/**
 * runPoint plus the spec's bounded-backoff retry and quarantine
 * policy (the daemon's and the pool's per-point worker).
 */
PointResult runPointWithRecovery(
    const CampaignSpec &spec, const SweepPoint &point,
    const std::string *warmup_image = nullptr);

/** Is @p error a fault-classified failure worth retrying? */
bool isRetryableFailure(const std::string &error);

/**
 * Warm one baseline-policy simulation of @p point's (workload, seed,
 * prefetch) group under @p spec's budgets and capture it — the image
 * every variant of the group forks from. Throws on any build, run or
 * capture failure. Exposed for the snapshotNoShare control arm and
 * tests; campaigns normally go through WarmupImageCache.
 */
std::string buildWarmupImage(const CampaignSpec &spec,
                             const SweepPoint &point);

/** Store-key id of a warmup image: "<format-version>/<content-hash>",
 *  the pair that makes a v4 config key self-invalidating. */
std::string warmupSnapshotId(const std::string &payload);

/**
 * Thread-safe cache of shared warmup images, one per (workload, seed,
 * prefetch) group: the engine behind CampaignSpec::snapshotWarmup,
 * reusable by any scheduler that runs points itself (runCampaign's
 * pool, the daemon's per-job workers). The first worker to reach a
 * group builds its image — consulting / feeding the result store's
 * snapshot records when one is attached — while the group's other
 * points block on the warmup they are about to reuse.
 */
class WarmupImageCache
{
  public:
    /** @p store (may be null) caches images across processes under
     *  code identity @p git_sha. */
    WarmupImageCache(ResultStore *store, std::string git_sha);
    ~WarmupImageCache();

    /**
     * The shared image for @p point's group under @p spec, building
     * it on first request. Returns nullptr — the caller warms inline
     * — for mix points and after a failed build (a group fails once,
     * not per point); otherwise the payload, with its store id left
     * in @p snapshot_id. The pointer stays valid for the cache's
     * lifetime.
     */
    const std::string *get(const CampaignSpec &spec,
                           const SweepPoint &point,
                           std::string &snapshot_id);

  private:
    struct Group;

    ResultStore *store_;
    std::string gitSha_;
    std::mutex mutex_; ///< Guards the map's shape, not the groups.
    std::map<std::tuple<std::string, std::uint64_t, bool>,
             std::unique_ptr<Group>>
        groups_;
};

} // namespace rab

#endif // RAB_SWEEP_CAMPAIGN_HH
