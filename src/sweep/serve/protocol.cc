#include "sweep/serve/protocol.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#ifdef __unix__
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace rab
{

#ifdef __unix__

namespace
{

/**
 * Millisecond deadline arithmetic for socket timeouts. Host time by
 * necessity — socket deadlines are about the real world, and none of
 * it flows into simulated state or manifests.
 */
std::int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               // rablint: nondeterminism-ok=wall-clock (socket I/O
               // deadlines; bounds poll() waits only, never reaches
               // simulation or reports)
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Wait for @p events on @p fd; false on timeout/error. */
bool
waitFor(int fd, short events, int timeout_ms)
{
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    for (;;) {
        // rablint: nondeterminism-ok=socket-io (bounded wait on a
        // client socket; a dead peer must not wedge the daemon)
        const int n = ::poll(&pfd, 1, timeout_ms);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        return (pfd.revents & (events | POLLHUP | POLLERR)) != 0;
    }
}

} // namespace

FrameStatus
FrameConn::readFrame(std::string &payload, int timeout_ms)
{
    // rablint: cycle-ok (wall-clock ms I/O deadline, not cycles)
    const std::int64_t deadline = nowMs() + timeout_ms;
    for (;;) {
        // A complete header (length + '\n') already buffered?
        const std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            if (newline == 0 || newline > 12)
                return FrameStatus::kError;
            std::size_t length = 0;
            for (std::size_t i = 0; i < newline; ++i) {
                const char c = buffer_[i];
                if (c < '0' || c > '9')
                    return FrameStatus::kError;
                length = length * 10 + static_cast<std::size_t>(c - '0');
            }
            if (length > kMaxFrame)
                return FrameStatus::kError;
            if (buffer_.size() >= newline + 1 + length) {
                payload = buffer_.substr(newline + 1, length);
                buffer_.erase(0, newline + 1 + length);
                return FrameStatus::kOk;
            }
        } else if (buffer_.size() > 13) {
            return FrameStatus::kError; // header never terminated
        }

        // rablint: cycle-ok (wall-clock ms remainder, not cycles)
        const int remaining = static_cast<int>(deadline - nowMs());
        if (remaining <= 0)
            return FrameStatus::kTimeout;
        if (!waitFor(fd_, POLLIN, remaining))
            return FrameStatus::kTimeout;

        char chunk[4096];
        // rablint: nondeterminism-ok=socket-io (daemon wire input;
        // campaign specs arrive here, results never loop back in)
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n == 0)
            return FrameStatus::kClosed;
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN
                || errno == EWOULDBLOCK)
                continue;
            return FrameStatus::kError;
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

bool
FrameConn::writeFrame(const std::string &payload, int timeout_ms)
{
    std::string frame = std::to_string(payload.size());
    frame += '\n';
    frame += payload;

    // rablint: cycle-ok (wall-clock ms I/O deadline, not cycles)
    const std::int64_t deadline = nowMs() + timeout_ms;
    std::size_t sent = 0;
    while (sent < frame.size()) {
        // rablint: cycle-ok (wall-clock ms remainder, not cycles)
        const int remaining = static_cast<int>(deadline - nowMs());
        if (remaining <= 0)
            return false;
        if (!waitFor(fd_, POLLOUT, remaining))
            return false;
        // MSG_NOSIGNAL: a reaped peer raises EPIPE, not SIGPIPE.
        // rablint: nondeterminism-ok=socket-io (daemon wire output;
        // bounded by the deadline so a hung reader is reaped)
        const ssize_t n = ::send(fd_, frame.data() + sent,
                                 frame.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN
                || errno == EWOULDBLOCK)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
FrameConn::writeJson(const Json &json, int timeout_ms)
{
    return writeFrame(json.dump(), timeout_ms);
}

int
connectUnixSocket(const std::string &path)
{
    // rablint: nondeterminism-ok=socket-io (client-side transport
    // for campaign submission; no simulated state involved)
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    // rablint: nondeterminism-ok=socket-io (ditto)
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

#else // !__unix__

FrameStatus
FrameConn::readFrame(std::string &, int)
{
    return FrameStatus::kError;
}

bool
FrameConn::writeFrame(const std::string &, int)
{
    return false;
}

bool
FrameConn::writeJson(const Json &, int)
{
    return false;
}

int
connectUnixSocket(const std::string &)
{
    return -1;
}

#endif

} // namespace rab
