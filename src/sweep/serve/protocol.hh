/**
 * @file
 * Wire protocol for daemon-mode rabsweep (`rabsweep --serve`).
 *
 * Transport: a unix-domain stream socket carrying length-prefixed
 * JSON frames. One frame is the ASCII decimal byte length of the
 * payload, a single '\n', then exactly that many payload bytes (a
 * rab JSON document, which itself contains newlines — hence the
 * length prefix rather than line framing).
 *
 * Frame vocabulary (all objects carry a "type" member):
 *
 *   client -> server
 *     {"type":"submit","campaign":{name,workloads,configs,seeds,
 *      instructions,warmup,fast_forward?,snapshot_warmup?}}
 *     {"type":"ping"}
 *
 *   server -> client
 *     {"type":"accepted","job":N,"points":M}
 *     {"type":"point","job":N,"index":I,...per-point summary...}
 *     {"type":"done","job":N,"manifest":{...canonical manifest...}}
 *     {"type":"interrupted","job":N,"manifest":{...partial...}}
 *     {"type":"error","code":"queue-full"|"too-large"|"bad-spec"|
 *      "protocol"|"draining"|"idle-timeout","message":"..."}
 *     {"type":"pong"}
 *
 * Robustness contract: every read and write is bounded by a poll()
 * deadline. A peer that stops draining its socket does not wedge the
 * caller — the operation reports failure and the connection is
 * reaped. Frame sizes are capped so a malicious or broken client
 * cannot OOM the daemon with one length prefix.
 */

#ifndef RAB_SWEEP_SERVE_PROTOCOL_HH
#define RAB_SWEEP_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "stats/json.hh"

namespace rab
{

/** Outcome of one framed read. */
enum class FrameStatus
{
    kOk,       ///< A complete frame was read.
    kTimeout,  ///< Deadline expired before a complete frame arrived.
    kClosed,   ///< Peer closed the connection cleanly.
    kError,    ///< Socket error or malformed/oversized frame.
};

/**
 * One framed connection over an already-connected socket fd. Owns a
 * read buffer (frames may arrive coalesced or fragmented) but not
 * the fd itself — the owner closes it.
 */
class FrameConn
{
  public:
    /** Payload cap for reads; a frame announcing more is kError. */
    static constexpr std::size_t kMaxFrame = 16u << 20;

    explicit FrameConn(int fd) : fd_(fd) {}

    int fd() const { return fd_; }

    /**
     * Read one complete frame into @p payload within @p timeout_ms
     * (total, across however many poll/read rounds it takes).
     */
    FrameStatus readFrame(std::string &payload, int timeout_ms);

    /**
     * Write one frame within @p timeout_ms. False on timeout or
     * error — the caller should treat the connection as dead (the
     * hung-client reaping path).
     */
    bool writeFrame(const std::string &payload, int timeout_ms);

    /** writeFrame(json.dump()). */
    bool writeJson(const Json &json, int timeout_ms);

  private:
    int fd_;
    std::string buffer_; ///< Bytes read past the last frame boundary.
};

/** Connect to a unix socket; -1 on failure. The fd is blocking. */
int connectUnixSocket(const std::string &path);

} // namespace rab

#endif // RAB_SWEEP_SERVE_PROTOCOL_HH
