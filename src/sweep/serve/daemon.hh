/**
 * @file
 * Daemon-mode rabsweep: a long-running campaign service over a unix
 * socket, built on the result store and the sweep engine.
 *
 * Many clients connect concurrently, submit campaign specs as JSON
 * frames (see protocol.hh), and receive incremental per-point result
 * frames as their grid completes. One shared worker pool executes
 * points with *fair round-robin sharing*: each claim takes the next
 * point of the next job in rotation, so a 1000-point campaign cannot
 * starve a 6-point one submitted a second later. All results flow
 * through the (optional but recommended) ResultStore, so overlapping
 * campaigns from different clients deduplicate their simulation work
 * and a daemon restart resumes instead of recomputing.
 *
 * Robustness is the design driver, in layers:
 *  - per-point bounded-backoff retry + quarantine (campaign.hh), so
 *    one poisoned point cannot wedge a campaign;
 *  - admission control: at most maxActiveJobs campaigns in flight;
 *    excess submissions are shed with a structured
 *    {"type":"error","code":"queue-full"} frame instead of growing
 *    an unbounded queue;
 *  - per-client I/O deadlines: a client that stops reading its
 *    socket is reaped after ioTimeoutMs and its jobs cancelled —
 *    the worker pool never blocks on a dead peer;
 *  - idle-connection reaping after idleTimeoutMs;
 *  - graceful drain on SIGTERM/SIGINT (serveDaemon) or
 *    requestDrain(): accept stops, in-flight points finish and are
 *    flushed to the store, every unfinished job receives an
 *    {"type":"interrupted"} frame with its partial manifest, and the
 *    daemon exits 0.
 *
 * Threads: one acceptor, `threads` pool workers, one per client.
 * Scheduler state is guarded by one mutex; points execute outside
 * it. The TSan CI job runs the gtest daemon suite against this code.
 */

#ifndef RAB_SWEEP_SERVE_DAEMON_HH
#define RAB_SWEEP_SERVE_DAEMON_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "checker/check_level.hh"
#include "sweep/campaign.hh"

namespace rab
{

class ResultStore;

struct DaemonConfig
{
    std::string socketPath;       ///< Unix socket to bind.
    std::string storeDir;         ///< Result store root ("" = none).
    int threads = 2;              ///< Worker pool size.
    std::size_t maxActiveJobs = 4;///< Admission-control limit.
    std::size_t maxPointsPerJob = 4096; ///< Shed absurd grids.
    int ioTimeoutMs = 5000;       ///< Per-frame read/write deadline.
    int idleTimeoutMs = 60000;    ///< Reap idle connections after.
    int retryLimit = 2;           ///< Per-point fault retries.
    int retryBackoffMs = 20;      ///< Base retry backoff.
    CheckLevel checkLevel = CheckLevel::kOff;
};

/** Monotonic daemon-lifetime observability counters. */
struct DaemonStats
{
    std::atomic<std::uint64_t> jobsAccepted{0};
    std::atomic<std::uint64_t> jobsCompleted{0};
    std::atomic<std::uint64_t> jobsInterrupted{0};
    std::atomic<std::uint64_t> jobsShed{0};      ///< queue-full.
    std::atomic<std::uint64_t> badSpecs{0};
    std::atomic<std::uint64_t> clientsAccepted{0};
    std::atomic<std::uint64_t> clientsReaped{0}; ///< Timed out.
    std::atomic<std::uint64_t> pointsSimulated{0};
    std::atomic<std::uint64_t> pointsCached{0};
};

class Daemon
{
  public:
    explicit Daemon(const DaemonConfig &config);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /** Bind, listen and spawn threads. False (with error()) when the
     *  socket or store cannot be set up. */
    bool start();
    const std::string &error() const;

    /**
     * Graceful drain: stop accepting, finish in-flight points, send
     * partial manifests, flush the store, release every thread.
     * Idempotent; safe from any thread (and, flag-wise, from the
     * serveDaemon signal path).
     */
    void requestDrain();

    /** Block until fully drained (requestDrain + join). */
    void drainAndWait();

    const DaemonStats &stats() const;
    ResultStore *store();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Run a daemon until SIGTERM/SIGINT, then drain gracefully. Returns
 * the process exit code (0 after a clean drain, 2 on startup
 * failure). This is `rabsweep --serve`.
 */
int serveDaemon(const DaemonConfig &config);

} // namespace rab

#endif // RAB_SWEEP_SERVE_DAEMON_HH
