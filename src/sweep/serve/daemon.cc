#include "sweep/serve/daemon.hh"

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#ifdef __unix__
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "common/logging.hh"
#include "sweep/report.hh"
#include "sweep/serve/protocol.hh"
#include "sweep/store/result_store.hh"
#include "workloads/suite.hh"

namespace rab
{

#ifdef __unix__

namespace
{

std::int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               // rablint: nondeterminism-ok=wall-clock (client
               // idle/reap deadlines; never reaches simulated state)
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Parse a submit frame's "campaign" member into a spec. Throws
 *  JsonError / std::runtime_error with a client-presentable message. */
CampaignSpec
specFromJson(const Json &json)
{
    CampaignSpec spec;
    if (const Json *name = json.find("name"))
        spec.name = name->asString();
    else
        spec.name = "daemon-job";

    spec.workloads.clear();
    for (const Json &w : json.at("workloads").elements()) {
        const std::string name = w.asString();
        if (!findWorkload(name))
            throw std::runtime_error("unknown workload '" + name + "'");
        spec.workloads.push_back(name);
    }
    spec.variants.clear();
    for (const Json &c : json.at("configs").elements())
        spec.variants.push_back(parseVariantLabel(c.asString()));
    if (const Json *seeds = json.find("seeds")) {
        spec.seeds.clear();
        for (const Json &s : seeds->elements())
            spec.seeds.push_back(s.asU64());
        if (spec.seeds.empty())
            spec.seeds = {0};
    }
    if (const Json *instructions = json.find("instructions"))
        spec.instructions = instructions->asU64();
    if (const Json *warmup = json.find("warmup"))
        spec.warmup = warmup->asU64();
    if (const Json *ff = json.find("fast_forward"))
        spec.fastForward = ff->asBool();
    if (const Json *sw = json.find("snapshot_warmup"))
        spec.snapshotWarmup = sw->asBool();
    if (spec.workloads.empty() || spec.variants.empty())
        throw std::runtime_error("empty grid (need workloads+configs)");
    return spec;
}

Json
errorFrame(const char *code, const std::string &message)
{
    Json f = Json::object();
    f["type"] = "error";
    f["code"] = code;
    f["message"] = message;
    return f;
}

struct Client;

struct Job
{
    std::uint64_t id = 0;
    std::shared_ptr<Client> client;
    CampaignSpec spec;
    std::vector<SweepPoint> grid;
    std::size_t next = 0;      ///< Next unclaimed grid index.
    std::size_t completed = 0;
    std::size_t inFlight = 0;
    bool cancelled = false;
    std::uint64_t storeHits = 0;
    CampaignResult result;
    /** Shared warmup images (spec.snapshotWarmup jobs only). */
    std::unique_ptr<WarmupImageCache> warmupCache;
};

struct Client
{
    std::uint64_t id = 0;
    int fd = -1;
    int wakeRx = -1; ///< Worker-to-client wake pipe (read end).
    int wakeTx = -1;
    FrameConn conn{-1};

    std::mutex mutex; ///< Guards outbox only.
    std::deque<std::string> outbox;

    std::atomic<bool> dead{false};
    std::atomic<bool> finished{false}; ///< Thread has exited.
    std::size_t activeJobs = 0;        ///< Guarded by Impl::mutex.
    std::thread thread;
};

} // namespace

struct Daemon::Impl
{
    explicit Impl(const DaemonConfig &c) : config(c) {}

    DaemonConfig config;
    std::string errorText;
    std::unique_ptr<ResultStore> resultStore;
    std::string gitSha;
    int listenFd = -1;
    bool started = false;

    std::atomic<bool> draining{false};
    std::atomic<bool> shuttingDown{false};
    DaemonStats stats;

    std::mutex mutex; ///< Scheduler + client registry.
    std::condition_variable cv;
    std::vector<std::shared_ptr<Job>> jobs;
    std::size_t rr = 0; ///< Round-robin cursor over jobs.
    std::set<std::string> inFlightKeys;
    std::uint64_t nextJobId = 1;
    std::uint64_t nextClientId = 1;
    std::vector<std::shared_ptr<Client>> clients;

    std::thread acceptor;
    std::vector<std::thread> workers;

    // -----------------------------------------------------------------
    // Outbound frames

    void
    enqueue(const std::shared_ptr<Client> &client, const Json &frame)
    {
        if (client->dead)
            return;
        {
            std::lock_guard<std::mutex> lock(client->mutex);
            client->outbox.push_back(frame.dump());
        }
        const char byte = 1;
        // Wake the client thread out of its poll().
        (void)!::write(client->wakeTx, &byte, 1);
    }

    // -----------------------------------------------------------------
    // Scheduler

    /** Store key for a job's grid point (store attached only). */
    std::string
    keyOf(const Job &job, std::size_t index) const
    {
        return makeStoreKey(job.spec, job.grid[index], gitSha)
            .hashHex();
    }

    /**
     * Is any point claimable right now? Mirrors claim(): a job's
     * head point is claimable unless another worker is already
     * simulating the same store key (in-flight dedup — the waiter
     * will hit the store once the twin completes).
     */
    bool
    claimable() const
    {
        for (const auto &job : jobs) {
            if (job->cancelled || job->next >= job->grid.size())
                continue;
            if (resultStore
                && inFlightKeys.count(keyOf(*job, job->next)))
                continue;
            return true;
        }
        return false;
    }

    /** Claim the next point, fair round-robin across jobs. */
    std::shared_ptr<Job>
    claim(std::size_t &index, std::string &key)
    {
        const std::size_t count = jobs.size();
        for (std::size_t k = 0; k < count; ++k) {
            const std::size_t at = (rr + k) % count;
            const auto &job = jobs[at];
            if (job->cancelled || job->next >= job->grid.size())
                continue;
            key.clear();
            if (resultStore) {
                key = keyOf(*job, job->next);
                if (inFlightKeys.count(key))
                    continue;
                inFlightKeys.insert(key);
            }
            index = job->next++;
            ++job->inFlight;
            rr = (at + 1) % count;
            return job;
        }
        return nullptr;
    }

    /** Execute one point (store-first); called without the lock. */
    PointResult
    executePoint(const Job &job, std::size_t index, bool &cached)
    {
        const SweepPoint &point = job.grid[index];
        cached = false;

        // Snapshotted warmup: fork from the job's shared group image
        // (built by the first worker to reach the group). The image's
        // id is part of the store key — snapshot-warmed results are a
        // different universe than inline-warmed ones.
        const std::string *image = nullptr;
        std::string snapshot_id;
        if (job.warmupCache)
            image = job.warmupCache->get(job.spec, point, snapshot_id);

        if (resultStore) {
            const StoreKey key = makeStoreKey(
                job.spec, point, gitSha, image ? snapshot_id : "");
            if (auto hit = resultStore->lookup(key)) {
                PointResult pr = std::move(*hit);
                pr.point = point;
                pr.snapshotWarmed = image != nullptr;
                cached = true;
                ++stats.pointsCached;
                return pr;
            }
            PointResult pr =
                runPointWithRecovery(job.spec, point, image);
            if (pr.ok) {
                // A restore-time fallback to inline warmup belongs to
                // the inline-key universe.
                if (image && !pr.snapshotWarmed)
                    resultStore->put(
                        makeStoreKey(job.spec, point, gitSha), pr);
                else
                    resultStore->put(key, pr);
            }
            ++stats.pointsSimulated;
            return pr;
        }
        PointResult pr = runPointWithRecovery(job.spec, point, image);
        ++stats.pointsSimulated;
        return pr;
    }

    Json
    pointFrame(const Job &job, const PointResult &pr) const
    {
        Json f = Json::object();
        f["type"] = "point";
        f["job"] = job.id;
        f["index"] = pr.point.index;
        f["workload"] = pr.point.workload;
        f["variant"] = pr.point.variant;
        f["seed"] = pr.point.seed;
        f["ok"] = pr.ok;
        f["cached"] = pr.cached;
        if (pr.ok) {
            f["ipc"] = pr.result.ipc;
            f["cycles"] = pr.result.cycles;
        } else {
            f["error"] = pr.error;
            f["quarantined"] = pr.quarantined;
        }
        return f;
    }

    /** Job fully complete: manifest, done frame, retire. Lock held. */
    void
    finishJob(const std::shared_ptr<Job> &job)
    {
        job->result.interrupted = false;
        job->result.storeHits = job->storeHits;
        Json f = Json::object();
        f["type"] = "done";
        f["job"] = job->id;
        f["store_hits"] = job->storeHits;
        f["manifest"] = campaignManifest(job->result,
                                         /*canonical=*/true);
        enqueue(job->client, f);
        ++stats.jobsCompleted;
        retireJob(job);
    }

    /** Remove @p job from the active list. Lock held. */
    void
    retireJob(const std::shared_ptr<Job> &job)
    {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (jobs[i] == job) {
                jobs.erase(jobs.begin()
                           + static_cast<std::ptrdiff_t>(i));
                if (rr > i)
                    --rr;
                if (!jobs.empty())
                    rr %= jobs.size();
                else
                    rr = 0;
                break;
            }
        }
        if (job->client->activeJobs > 0)
            --job->client->activeJobs;
    }

    void
    workerLoop()
    {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            cv.wait(lock, [this] {
                return draining.load() || claimable();
            });
            if (draining)
                return;
            std::size_t index = 0;
            std::string key;
            const std::shared_ptr<Job> job = claim(index, key);
            if (!job)
                continue;
            lock.unlock();
            bool cached = false;
            PointResult pr = executePoint(*job, index, cached);
            lock.lock();
            if (!key.empty())
                inFlightKeys.erase(key);
            if (cached)
                ++job->storeHits;
            const bool deliver = !job->cancelled && !job->client->dead;
            job->result.points[index] = pr;
            ++job->completed;
            --job->inFlight;
            if (deliver)
                enqueue(job->client, pointFrame(*job, pr));
            if (!job->cancelled
                && job->completed == job->grid.size())
                finishJob(job);
            cv.notify_all();
        }
    }

    // -----------------------------------------------------------------
    // Client handling

    /** Cancel every job owned by @p client. Lock held. */
    void
    cancelClientJobs(const std::shared_ptr<Client> &client)
    {
        std::vector<std::shared_ptr<Job>> owned;
        for (const auto &job : jobs) {
            if (job->client == client)
                owned.push_back(job);
        }
        for (const auto &job : owned) {
            job->cancelled = true;
            retireJob(job);
        }
        cv.notify_all();
    }

    void
    reapClient(const std::shared_ptr<Client> &client, bool timed_out)
    {
        client->dead = true;
        if (timed_out)
            ++stats.clientsReaped;
        std::lock_guard<std::mutex> lock(mutex);
        cancelClientJobs(client);
    }

    void
    handleSubmit(const std::shared_ptr<Client> &client,
                 const Json &frame)
    {
        CampaignSpec spec;
        try {
            spec = specFromJson(frame.at("campaign"));
        } catch (const std::exception &e) {
            ++stats.badSpecs;
            enqueue(client, errorFrame("bad-spec", e.what()));
            return;
        }
        spec.checkLevel = config.checkLevel;
        spec.retryLimit = config.retryLimit;
        spec.retryBackoffMs = config.retryBackoffMs;

        std::lock_guard<std::mutex> lock(mutex);
        if (draining) {
            enqueue(client,
                    errorFrame("draining",
                               "daemon is draining; resubmit later"));
            return;
        }
        // Admission control: shed load with a structured error
        // instead of queueing without bound.
        if (jobs.size() >= config.maxActiveJobs) {
            ++stats.jobsShed;
            Json f = errorFrame(
                "queue-full",
                strprintf("%zu campaigns already active (limit %zu); "
                          "resubmit later",
                          jobs.size(), config.maxActiveJobs));
            f["active"] = static_cast<std::uint64_t>(jobs.size());
            f["limit"] =
                static_cast<std::uint64_t>(config.maxActiveJobs);
            enqueue(client, f);
            return;
        }
        auto job = std::make_shared<Job>();
        job->id = nextJobId++;
        job->client = client;
        job->spec = std::move(spec);
        job->grid = expandGrid(job->spec);
        if (job->grid.size() > config.maxPointsPerJob) {
            ++stats.jobsShed;
            enqueue(client,
                    errorFrame(
                        "too-large",
                        strprintf("grid has %zu points (limit %zu)",
                                  job->grid.size(),
                                  config.maxPointsPerJob)));
            return;
        }
        job->result.spec = job->spec;
        job->result.threads = config.threads;
        job->result.points.resize(job->grid.size());
        if (job->spec.snapshotWarmup) {
            job->warmupCache = std::make_unique<WarmupImageCache>(
                resultStore.get(), gitSha);
        }
        jobs.push_back(job);
        ++client->activeJobs;
        ++stats.jobsAccepted;

        Json f = Json::object();
        f["type"] = "accepted";
        f["job"] = job->id;
        f["points"] = static_cast<std::uint64_t>(job->grid.size());
        enqueue(client, f);
        cv.notify_all();
    }

    void
    handleFrame(const std::shared_ptr<Client> &client,
                const std::string &payload)
    {
        Json frame;
        try {
            frame = Json::parse(payload);
            const std::string &type = frame.at("type").asString();
            if (type == "submit") {
                handleSubmit(client, frame);
            } else if (type == "ping") {
                Json f = Json::object();
                f["type"] = "pong";
                enqueue(client, f);
            } else {
                enqueue(client,
                        errorFrame("protocol",
                                   "unknown frame type '" + type
                                       + "'"));
            }
        } catch (const JsonError &e) {
            enqueue(client,
                    errorFrame("protocol",
                               std::string("malformed frame: ")
                                   + e.what()));
        }
    }

    /** Flush the outbox; false means the client timed out mid-write
     *  (hung reader) and has been reaped. */
    bool
    flushOutbox(const std::shared_ptr<Client> &client)
    {
        for (;;) {
            std::string payload;
            {
                std::lock_guard<std::mutex> lock(client->mutex);
                if (client->outbox.empty())
                    return true;
                payload = client->outbox.front();
            }
            if (!client->conn.writeFrame(payload,
                                         config.ioTimeoutMs)) {
                reapClient(client, /*timed_out=*/true);
                return false;
            }
            std::lock_guard<std::mutex> lock(client->mutex);
            client->outbox.pop_front();
        }
    }

    bool
    clientIdle(const std::shared_ptr<Client> &client)
    {
        std::lock_guard<std::mutex> lock(mutex);
        return client->activeJobs == 0;
    }

    void
    clientLoop(const std::shared_ptr<Client> &client)
    {
        std::int64_t last_activity = nowMs();
        while (!client->dead) {
            if (!flushOutbox(client))
                break;
            if (shuttingDown) {
                // Drain: partial manifests were enqueued before the
                // flag flipped, and flushOutbox above emptied them.
                break;
            }

            struct pollfd pfds[2];
            pfds[0].fd = client->fd;
            pfds[0].events = POLLIN;
            pfds[0].revents = 0;
            pfds[1].fd = client->wakeRx;
            pfds[1].events = POLLIN;
            pfds[1].revents = 0;
            // rablint: nondeterminism-ok=socket-io (client event
            // loop; wire traffic only, simulation state untouched)
            const int n = ::poll(pfds, 2, 100);
            if (n < 0 && errno != EINTR)
                break;

            if (n > 0 && (pfds[1].revents & POLLIN)) {
                char sink[64];
                (void)!::read(client->wakeRx, sink, sizeof(sink));
            }

            if (n > 0
                && (pfds[0].revents & (POLLIN | POLLHUP | POLLERR))) {
                std::string payload;
                const FrameStatus status = client->conn.readFrame(
                    payload, config.ioTimeoutMs);
                if (status == FrameStatus::kOk) {
                    last_activity = nowMs();
                    handleFrame(client, payload);
                } else if (status == FrameStatus::kTimeout) {
                    // Mid-frame stall: cannot resync a byte stream.
                    reapClient(client, /*timed_out=*/true);
                    break;
                } else {
                    // Closed or garbage: a vanished client takes its
                    // unfinished jobs with it.
                    reapClient(client, /*timed_out=*/false);
                    break;
                }
            }

            if (clientIdle(client)
                && nowMs() - last_activity > config.idleTimeoutMs) {
                ++stats.clientsReaped;
                Json bye = errorFrame("idle-timeout",
                                      "closing idle connection");
                (void)client->conn.writeJson(bye, 100);
                reapClient(client, /*timed_out=*/false);
                break;
            }
        }
        client->dead = true;
        ::close(client->fd);
        ::close(client->wakeRx);
        ::close(client->wakeTx);
        client->finished = true;
    }

    // -----------------------------------------------------------------
    // Accept loop

    /** Join and drop clients whose threads have exited. Lock held
     *  by caller. */
    void
    sweepFinishedClients()
    {
        for (std::size_t i = 0; i < clients.size();) {
            if (clients[i]->finished) {
                if (clients[i]->thread.joinable())
                    clients[i]->thread.join();
                clients.erase(clients.begin()
                              + static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }
    }

    void
    acceptLoop()
    {
        while (!draining) {
            struct pollfd pfd;
            pfd.fd = listenFd;
            pfd.events = POLLIN;
            pfd.revents = 0;
            // rablint: nondeterminism-ok=socket-io (daemon accept
            // loop; connection plumbing only)
            const int n = ::poll(&pfd, 1, 100);
            {
                std::lock_guard<std::mutex> lock(mutex);
                sweepFinishedClients();
            }
            if (draining)
                break;
            if (n <= 0)
                continue;
            // rablint: nondeterminism-ok=socket-io (ditto)
            const int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd < 0)
                continue;

            int wake[2];
            if (::pipe(wake) != 0) {
                ::close(fd);
                continue;
            }
            auto client = std::make_shared<Client>();
            client->fd = fd;
            client->wakeRx = wake[0];
            client->wakeTx = wake[1];
            client->conn = FrameConn(fd);
            ++stats.clientsAccepted;
            {
                std::lock_guard<std::mutex> lock(mutex);
                client->id = nextClientId++;
                clients.push_back(client);
            }
            client->thread =
                std::thread([this, client] { clientLoop(client); });
        }
    }

    // -----------------------------------------------------------------
    // Lifecycle

    bool
    start()
    {
        if (!config.storeDir.empty()) {
            resultStore =
                std::make_unique<ResultStore>(config.storeDir);
            if (!resultStore->ok()) {
                errorText = resultStore->error();
                return false;
            }
        }
        gitSha = currentGitSha();

        ::unlink(config.socketPath.c_str());
        // rablint: nondeterminism-ok=socket-io (daemon listening
        // socket; service plumbing only)
        listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd < 0) {
            errorText = "socket(): " + std::string(strerror(errno));
            return false;
        }
        struct sockaddr_un addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sun_family = AF_UNIX;
        if (config.socketPath.size() >= sizeof(addr.sun_path)) {
            errorText = "socket path too long: " + config.socketPath;
            ::close(listenFd);
            listenFd = -1;
            return false;
        }
        std::memcpy(addr.sun_path, config.socketPath.c_str(),
                    config.socketPath.size() + 1);
        if (::bind(listenFd,
                   reinterpret_cast<struct sockaddr *>(&addr),
                   sizeof(addr))
                != 0
            || ::listen(listenFd, 16) != 0) {
            errorText = "bind/listen('" + config.socketPath
                + "'): " + std::string(strerror(errno));
            ::close(listenFd);
            listenFd = -1;
            return false;
        }

        const int worker_count = config.threads < 1 ? 1 : config.threads;
        workers.reserve(static_cast<std::size_t>(worker_count));
        for (int w = 0; w < worker_count; ++w)
            workers.emplace_back([this] { workerLoop(); });
        acceptor = std::thread([this] { acceptLoop(); });
        started = true;
        return true;
    }

    void
    drainAndWait()
    {
        if (!started)
            return;
        draining = true;
        cv.notify_all();
        if (acceptor.joinable())
            acceptor.join();
        // Workers finish their in-flight point, record it, then exit.
        for (std::thread &w : workers) {
            if (w.joinable())
                w.join();
        }
        workers.clear();

        // Every surviving job gets its partial manifest: completed
        // points are real (and in the store); unclaimed ones are
        // marked interrupted.
        {
            std::lock_guard<std::mutex> lock(mutex);
            for (const auto &job : jobs) {
                for (std::size_t i = 0; i < job->grid.size(); ++i) {
                    PointResult &p = job->result.points[i];
                    if (!p.ran) {
                        p.point = job->grid[i];
                        p.error = "interrupted: point not run";
                    }
                }
                job->result.interrupted = true;
                job->result.storeHits = job->storeHits;
                Json f = Json::object();
                f["type"] = "interrupted";
                f["job"] = job->id;
                f["manifest"] = campaignManifest(job->result,
                                                 /*canonical=*/true);
                enqueue(job->client, f);
                ++stats.jobsInterrupted;
                if (job->client->activeJobs > 0)
                    --job->client->activeJobs;
            }
            jobs.clear();
        }

        // Let every client flush its tail (point frames + partial
        // manifests), then close.
        shuttingDown = true;
        std::vector<std::shared_ptr<Client>> snapshot;
        {
            std::lock_guard<std::mutex> lock(mutex);
            snapshot = clients;
        }
        const char byte = 1;
        for (const auto &client : snapshot)
            (void)!::write(client->wakeTx, &byte, 1);
        for (const auto &client : snapshot) {
            if (client->thread.joinable())
                client->thread.join();
        }
        {
            std::lock_guard<std::mutex> lock(mutex);
            clients.clear();
        }

        if (listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
        }
        ::unlink(config.socketPath.c_str());
        started = false;
    }
};

Daemon::Daemon(const DaemonConfig &config)
    : impl_(std::make_unique<Impl>(config))
{
}

Daemon::~Daemon()
{
    impl_->drainAndWait();
}

bool
Daemon::start()
{
    return impl_->start();
}

const std::string &
Daemon::error() const
{
    return impl_->errorText;
}

void
Daemon::requestDrain()
{
    impl_->draining = true;
    impl_->cv.notify_all();
}

void
Daemon::drainAndWait()
{
    impl_->drainAndWait();
}

const DaemonStats &
Daemon::stats() const
{
    return impl_->stats;
}

ResultStore *
Daemon::store()
{
    return impl_->resultStore.get();
}

namespace
{

volatile std::sig_atomic_t g_serve_signal = 0;

void
onServeSignal(int sig)
{
    g_serve_signal = sig;
}

} // namespace

int
serveDaemon(const DaemonConfig &config)
{
    Daemon daemon(config);
    if (!daemon.start()) {
        std::fprintf(stderr, "rabsweep --serve: %s\n",
                     daemon.error().c_str());
        return 2;
    }
    g_serve_signal = 0;
    std::signal(SIGTERM, onServeSignal);
    std::signal(SIGINT, onServeSignal);
    std::fprintf(stderr,
                 "rabsweep daemon: listening on %s (%d workers, "
                 "store %s)\n",
                 config.socketPath.c_str(),
                 config.threads < 1 ? 1 : config.threads,
                 config.storeDir.empty() ? "disabled"
                                         : config.storeDir.c_str());
    while (g_serve_signal == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::fprintf(stderr,
                 "rabsweep daemon: signal %d, draining "
                 "(in-flight points finish, partial manifests "
                 "flush)\n",
                 static_cast<int>(g_serve_signal));
    daemon.drainAndWait();
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    return 0;
}

#else // !__unix__

struct Daemon::Impl
{
    explicit Impl(const DaemonConfig &c) : config(c)
    {
        errorText = "daemon mode requires a unix platform";
    }
    DaemonConfig config;
    std::string errorText;
    DaemonStats stats;
};

Daemon::Daemon(const DaemonConfig &config)
    : impl_(std::make_unique<Impl>(config))
{
}

Daemon::~Daemon() = default;

bool
Daemon::start()
{
    return false;
}

const std::string &
Daemon::error() const
{
    return impl_->errorText;
}

void
Daemon::requestDrain()
{
}

void
Daemon::drainAndWait()
{
}

const DaemonStats &
Daemon::stats() const
{
    return impl_->stats;
}

ResultStore *
Daemon::store()
{
    return nullptr;
}

int
serveDaemon(const DaemonConfig &)
{
    std::fprintf(stderr,
                 "rabsweep --serve: unsupported on this platform\n");
    return 2;
}

#endif

} // namespace rab
