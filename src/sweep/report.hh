/**
 * @file
 * Machine-readable campaign reports and the CI perf-regression gate.
 *
 * campaignManifest() turns a finished CampaignResult into the
 * rab-sweep-manifest-v1 JSON document (BENCH_sweep.json): the grid
 * declaration, per-point metrics + flattened StatGroup payloads, and
 * an environment section (git SHA, host, threads, wall time,
 * simulated-cycles-per-wall-second throughput).
 *
 * Canonical mode omits every volatile field (the environment section
 * and per-point wall times), leaving a document that is byte-identical
 * across runs, hosts and thread counts — what the determinism test
 * compares and what diffs cleanly in CI.
 *
 * The perf gate compares a manifest's throughput against a checked-in
 * baseline (bench/baseline.json, rab-sweep-baseline-v1) and fails on a
 * configurable relative drop; see DESIGN.md §9.
 */

#ifndef RAB_SWEEP_REPORT_HH
#define RAB_SWEEP_REPORT_HH

#include <string>

#include "stats/json.hh"
#include "sweep/campaign.hh"

namespace rab
{

/** Manifest schema identifiers. */
inline constexpr const char *kSweepManifestSchema =
    "rab-sweep-manifest-v1";
inline constexpr const char *kSweepBaselineSchema =
    "rab-sweep-baseline-v1";

/** Current git SHA: $RAB_GIT_SHA / $GITHUB_SHA, else `git rev-parse`,
 *  else "unknown". */
std::string currentGitSha();

/** Host name, or "unknown". */
std::string currentHostname();

/** SimResult as a flat JSON object of metric fields. */
Json simResultJson(const SimResult &result);

/**
 * Inverse of simResultJson over the fields it serialises (workload /
 * config identity lives on the manifest point entry, not here).
 * parse(simResultJson(r)) re-dumps byte-identically — the property
 * the result store's resume guarantee rests on. Throws JsonError.
 */
SimResult simResultFromJson(const Json &json);

/** Build the manifest. @p canonical omits volatile fields. */
Json campaignManifest(const CampaignResult &campaign,
                      bool canonical = false);

/** Aggregate throughput: simulated cycles (ok points) per wall s. */
double campaignCyclesPerSecond(const CampaignResult &campaign);

/** Baseline document for the perf gate. */
Json makeBaseline(const CampaignResult &campaign);

/** Outcome of a perf-gate comparison. */
struct GateResult
{
    bool pass = false;
    double measured = 0;  ///< cycles/wall-second this run.
    double baseline = 0;  ///< cycles/wall-second in the baseline.
    double drop = 0;      ///< Relative drop (negative = faster).
    std::string message;  ///< One-line human summary.
};

/**
 * Gate @p campaign against a parsed baseline document. Fails when
 * throughput dropped more than @p max_drop (0.25 = 25%) below the
 * baseline, when any point failed, or when the baseline is malformed.
 */
GateResult perfGate(const CampaignResult &campaign,
                    const Json &baseline, double max_drop);

/**
 * rabsweep's exit-code precedence, in one auditable place.
 * Interruption dominates everything: a partial manifest must never be
 * gated (a verdict over a cut-short grid is meaningless) nor promoted
 * to a baseline, so 7 wins over both the failed-points code (5) and
 * the gate verdict (6). A failed gate in turn outranks failed points,
 * matching the historical batch-mode behaviour.
 *
 * @return 7 interrupted | 6 gate failed | 5 points failed | 0 ok.
 */
int resolveSweepExitCode(bool interrupted, bool failed_points,
                         bool gate_failed);

/**
 * Merge two rab-sweep-manifest-v1 documents into one: grid axes are
 * unioned in first-appearance order, points concatenated with indices
 * rewritten sequentially, and the point/failure counters recomputed.
 * Rejects (JsonError) a schema string that is not exactly
 * kSweepManifestSchema on either side, and any duplicate
 * (workload, variant, seed) point key — within one input or across
 * the two — instead of silently letting the last writer win.
 */
Json mergeManifests(const Json &a, const Json &b);

/** Write @p document to @p path; returns false on I/O error. */
bool writeJsonFile(const std::string &path, const Json &document);

/** Read and parse a JSON file; throws JsonError on parse or I/O
 *  failure. */
Json readJsonFile(const std::string &path);

} // namespace rab

#endif // RAB_SWEEP_REPORT_HH
