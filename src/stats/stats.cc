#include "stats/stats.hh"

#include <iomanip>
#include <limits>

#include "common/logging.hh"

namespace rab
{

Distribution::Distribution(std::uint64_t low, std::uint64_t high,
                           std::uint64_t bucket_size)
    : low_(low), high_(high), bucketSize_(bucket_size),
      min_(std::numeric_limits<std::uint64_t>::max())
{
    if (high <= low || bucket_size == 0)
        panic("Distribution: bad bucket spec [%lu, %lu) / %lu",
              (unsigned long)low, (unsigned long)high,
              (unsigned long)bucket_size);
    buckets_.assign((high - low + bucket_size - 1) / bucket_size, 0);
}

void
Distribution::sample(std::uint64_t value, std::uint64_t count)
{
    samples_ += count;
    sum_ += value * count;
    if (value < min_)
        min_ = value;
    if (value > max_)
        max_ = value;
    if (value < low_) {
        underflow_ += count;
    } else if (value >= high_) {
        overflow_ += count;
    } else {
        buckets_[(value - low_) / bucketSize_] += count;
    }
}

double
Distribution::mean() const
{
    return samples_ ? static_cast<double>(sum_) / samples_ : 0.0;
}

std::uint64_t
Distribution::bucketCount(std::uint64_t value) const
{
    if (value < low_)
        return underflow_;
    if (value >= high_)
        return overflow_;
    return buckets_[(value - low_) / bucketSize_];
}

void
Distribution::reset()
{
    buckets_.assign(buckets_.size(), 0);
    underflow_ = overflow_ = samples_ = sum_ = max_ = 0;
    min_ = std::numeric_limits<std::uint64_t>::max();
}

StatGroup::StatGroup(std::string name)
    : name_(std::move(name))
{
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name))
{
    if (parent)
        parent->addChild(this);
}

void
StatGroup::addCounter(const std::string &name, Counter *counter,
                      const std::string &desc)
{
    entries_.push_back(Entry{name, counter, nullptr, desc});
}

void
StatGroup::addScalar(const std::string &name, const double *value,
                     const std::string &desc)
{
    entries_.push_back(Entry{name, nullptr, value, desc});
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::collectInto(const std::string &prefix,
                       std::map<std::string, double> &out) const
{
    const std::string base = prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &e : entries_) {
        const double v = e.counter
            ? static_cast<double>(e.counter->value()) : *e.scalar;
        out[base + "." + e.name] = v;
    }
    for (const auto *child : children_)
        child->collectInto(base, out);
}

std::map<std::string, double>
StatGroup::collect() const
{
    std::map<std::string, double> out;
    collectInto("", out);
    return out;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, value] : collect()) {
        os << std::left << std::setw(52) << name << " "
           << std::right << std::setw(16) << value << "\n";
    }
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const auto &[name, value] : collect()) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  \"" << name << "\": " << value;
    }
    os << "\n}\n";
}

double
StatGroup::get(const std::string &dotted_name) const
{
    const auto all = collect();
    const auto it = all.find(name_ + "." + dotted_name);
    if (it == all.end())
        panic("StatGroup::get: unknown stat '%s'", dotted_name.c_str());
    return it->second;
}

void
StatGroup::claimExclusive(const void *owner)
{
    if (owner_ && owner_ != owner) {
        panic("StatGroup '%s' is already claimed by another "
              "simulation: stat storage may not be shared between "
              "live runs",
              name_.c_str());
    }
    owner_ = owner;
    for (auto *child : children_)
        child->claimExclusive(owner);
}

void
StatGroup::releaseExclusive(const void *owner)
{
    if (owner_ == owner)
        owner_ = nullptr;
    for (auto *child : children_)
        child->releaseExclusive(owner);
}

void
StatGroup::resetCounters()
{
    for (auto &e : entries_) {
        if (e.counter)
            e.counter->reset();
    }
    for (auto *child : children_)
        child->resetCounters();
}

} // namespace rab
