#include "stats/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rab
{

Json
Json::object()
{
    Json j;
    j.type_ = Type::kObject;
    return j;
}

Json
Json::array()
{
    Json j;
    j.type_ = Type::kArray;
    return j;
}

std::size_t
Json::size() const
{
    if (type_ == Type::kArray)
        return elements_.size();
    if (type_ == Type::kObject)
        return members_.size();
    return 0;
}

bool
Json::asBool() const
{
    if (type_ != Type::kBool)
        throw JsonError("Json: not a bool");
    return bool_;
}

double
Json::asDouble() const
{
    if (type_ != Type::kNumber)
        throw JsonError("Json: not a number");
    return number_;
}

std::uint64_t
Json::asU64() const
{
    const double v = asDouble();
    if (v < 0)
        throw JsonError("Json: negative value read as u64");
    return static_cast<std::uint64_t>(v);
}

const std::string &
Json::asString() const
{
    if (type_ != Type::kString)
        throw JsonError("Json: not a string");
    return string_;
}

Json &
Json::operator[](const std::string &key)
{
    if (type_ == Type::kNull)
        type_ = Type::kObject;
    if (type_ != Type::kObject)
        throw JsonError("Json: operator[] on a non-object");
    for (auto &[name, value] : members_) {
        if (name == key)
            return value;
    }
    members_.emplace_back(key, Json());
    return members_.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::kObject)
        return nullptr;
    for (const auto &[name, value] : members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *found = find(key);
    if (!found)
        throw JsonError("Json: missing key '" + key + "'");
    return *found;
}

const Json &
Json::at(std::size_t index) const
{
    if (type_ != Type::kArray || index >= elements_.size())
        throw JsonError("Json: array index out of range");
    return elements_[index];
}

void
Json::push(Json value)
{
    if (type_ == Type::kNull)
        type_ = Type::kArray;
    if (type_ != Type::kArray)
        throw JsonError("Json: push on a non-array");
    elements_.push_back(std::move(value));
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    if (type_ != Type::kObject)
        throw JsonError("Json: members() on a non-object");
    return members_;
}

const std::vector<Json> &
Json::elements() const
{
    if (type_ != Type::kArray)
        throw JsonError("Json: elements() on a non-array");
    return elements_;
}

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; null is the conventional stand-in.
        out += "null";
        return;
    }
    // Integral values within the exactly-representable range print as
    // integers (cycle and instruction counts dominate the manifests).
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        const auto as_int = static_cast<long long>(v);
        char buf[32];
        const auto [end, ec] =
            std::to_chars(buf, buf + sizeof(buf), as_int);
        out.append(buf, end);
        return;
    }
    char buf[64];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, end);
}

} // namespace

void
Json::dumpTo(std::string &out, int depth) const
{
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    const std::string pad_in(static_cast<std::size_t>(depth + 1) * 2,
                             ' ');
    switch (type_) {
      case Type::kNull:
        out += "null";
        break;
      case Type::kBool:
        out += bool_ ? "true" : "false";
        break;
      case Type::kNumber:
        appendNumber(out, number_);
        break;
      case Type::kString:
        appendEscaped(out, string_);
        break;
      case Type::kArray:
        if (elements_.empty()) {
            out += "[]";
            break;
        }
        out += "[\n";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            out += pad_in;
            elements_[i].dumpTo(out, depth + 1);
            if (i + 1 < elements_.size())
                out += ',';
            out += '\n';
        }
        out += pad + "]";
        break;
      case Type::kObject:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            out += pad_in;
            appendEscaped(out, members_[i].first);
            out += ": ";
            members_[i].second.dumpTo(out, depth + 1);
            if (i + 1 < members_.size())
                out += ',';
            out += '\n';
        }
        out += pad + "}";
        break;
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out, 0);
    out += '\n';
    return out;
}

namespace
{

/** Recursive-descent parser over a string view. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json parse()
    {
        Json value = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters");
        return value;
    }

  private:
    [[noreturn]] void fail(const std::string &why) const
    {
        throw JsonError("Json parse error at offset "
                        + std::to_string(pos_) + ": " + why);
    }

    void skipSpace()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeLiteral(const char *literal)
    {
        const std::size_t len = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, len, literal) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    Json parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Json(parseString());
          case 't':
            if (consumeLiteral("true"))
                return Json(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return Json(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return Json();
            fail("bad literal");
          default: return parseNumber();
        }
    }

    Json parseObject()
    {
        expect('{');
        Json obj = Json::object();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            if (peek() != '"')
                fail("expected object key");
            std::string key = parseString();
            expect(':');
            obj[key] = parseValue();
            const char c = peek();
            ++pos_;
            if (c == '}')
                return obj;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    Json parseArray()
    {
        expect('[');
        Json arr = Json::array();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(parseValue());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return arr;
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // The writer only emits \u for control characters;
                // decode the BMP subset as UTF-8 for completeness.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    Json parseNumber()
    {
        skipSpace();
        const std::size_t start = pos_;
        while (pos_ < text_.size()
               && (std::isdigit(static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '-' || text_[pos_] == '+'
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E'))
            ++pos_;
        if (start == pos_)
            fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            fail("bad number '" + token + "'");
        return Json(v);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace rab
