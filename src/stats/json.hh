/**
 * @file
 * Minimal JSON value type for machine-readable reports.
 *
 * The sweep engine's campaign manifests (BENCH_sweep.json) must be
 * byte-stable: two runs of the same grid — serial or parallel, any
 * thread count — have to serialise identically so CI can diff them and
 * the determinism test can byte-compare them. That rules out
 * std::map's sorted-only ordering tricks and locale-dependent number
 * formatting, so this class keeps object keys in insertion order and
 * formats numbers with std::to_chars (shortest round-trip form).
 *
 * parse() inverts dump() exactly: parse(dump(v)).dump() == dump(v).
 * Errors throw JsonError rather than panic() so a malformed baseline
 * file fails a perf gate gracefully instead of aborting the driver.
 */

#ifndef RAB_STATS_JSON_HH
#define RAB_STATS_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace rab
{

/** Malformed document or wrong-type access. */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &what) : std::runtime_error(what)
    {
    }
};

/** One JSON value: null, bool, number, string, array or object. */
class Json
{
  public:
    enum class Type
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Json() = default; ///< null
    Json(bool value) : type_(Type::kBool), bool_(value) {}
    Json(double value) : type_(Type::kNumber), number_(value) {}
    Json(int value) : Json(static_cast<double>(value)) {}
    Json(std::uint64_t value) : Json(static_cast<double>(value)) {}
    Json(std::string value)
        : type_(Type::kString), string_(std::move(value))
    {
    }
    Json(const char *value) : Json(std::string(value)) {}

    static Json object();
    static Json array();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }
    bool isObject() const { return type_ == Type::kObject; }
    bool isArray() const { return type_ == Type::kArray; }

    /** Array/object element count (0 for scalars). */
    std::size_t size() const;

    /** @{ Typed accessors; throw JsonError on a type mismatch. */
    bool asBool() const;
    double asDouble() const;
    std::uint64_t asU64() const;
    const std::string &asString() const;
    /** @} */

    /** Object lookup; inserts a null member when absent. Converts a
     *  null value into an object (so `j["a"]["b"] = 1` works). */
    Json &operator[](const std::string &key);

    /** Object lookup without insertion; nullptr when absent. */
    const Json *find(const std::string &key) const;

    /** Object lookup; throws JsonError when absent. */
    const Json &at(const std::string &key) const;

    /** Array element; throws JsonError when out of range. */
    const Json &at(std::size_t index) const;

    /** Append to an array. Converts a null value into an array. */
    void push(Json value);

    /** Members in insertion order (object only). */
    const std::vector<std::pair<std::string, Json>> &members() const;

    /** Elements (array only). */
    const std::vector<Json> &elements() const;

    /** Serialise. Deterministic: insertion-ordered keys, to_chars
     *  numbers, 2-space indentation. */
    std::string dump() const;

    /** Parse a document; throws JsonError with an offset on error. */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int depth) const;

    Type type_ = Type::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> elements_;
    std::vector<std::pair<std::string, Json>> members_;
};

} // namespace rab

#endif // RAB_STATS_JSON_HH
