/**
 * @file
 * Lightweight gem5-flavoured statistics package.
 *
 * Components register named statistics with a StatGroup; groups nest to
 * form a tree that can be dumped as an aligned table or JSON. Three stat
 * kinds cover the simulator's needs:
 *   - Counter:      a monotonically increasing scalar event count.
 *   - ScalarValue:  an arbitrary scalar sampled at dump time.
 *   - Distribution: bucketed samples with mean/min/max.
 */

#ifndef RAB_STATS_STATS_HH
#define RAB_STATS_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace rab
{

/** A monotonically increasing event counter. */
class Counter
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Bucketed samples with running mean/min/max. */
class Distribution
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    /** Buckets cover [low, high) in steps of bucket_size. */
    Distribution(std::uint64_t low, std::uint64_t high,
                 std::uint64_t bucket_size);

    void sample(std::uint64_t value, std::uint64_t count = 1);

    std::uint64_t samples() const { return samples_; }
    double mean() const;
    std::uint64_t min() const { return min_; }
    std::uint64_t max() const { return max_; }

    /** Count in the bucket that holds @p value. */
    std::uint64_t bucketCount(std::uint64_t value) const;

    void reset();

  private:
    std::uint64_t low_;
    std::uint64_t high_;
    std::uint64_t bucketSize_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_;
    std::uint64_t max_ = 0;
};

/**
 * A named collection of statistics. Values are registered by pointer and
 * read live at dump time, so components keep plain members and register
 * them once in their constructor.
 *
 * Reset-or-fresh semantics: a group is either freshly constructed with
 * its owning component (the normal case — every Simulation builds new
 * components, hence new groups), or explicitly wiped between runs with
 * resetCounters(). There is no implicit carry-over, and a group tree
 * may never be shared between two live Simulations: each Simulation
 * claims its trees via claimExclusive(), which panics on aliasing, so
 * concurrent sweep points can never read or reset each other's
 * counters.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);
    StatGroup(std::string name, StatGroup *parent);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    void addCounter(const std::string &name, Counter *counter,
                    const std::string &desc = "");
    void addScalar(const std::string &name, const double *value,
                   const std::string &desc = "");
    void addChild(StatGroup *child);

    /** Flatten this group's subtree into dotted-name → value pairs. */
    std::map<std::string, double> collect() const;

    /** Dump an aligned "name value # desc" table. */
    void dump(std::ostream &os) const;

    /** Dump the subtree as a flat JSON object of dotted names. */
    void dumpJson(std::ostream &os) const;

    /** Look up one stat by dotted path relative to this group. */
    double get(const std::string &dotted_name) const;

    void resetCounters();

    /**
     * Assert exclusive ownership of this subtree for @p owner (one
     * running Simulation). Panics if any group in the subtree is
     * already claimed by a different owner — i.e. the same stat
     * storage was wired into two simulations, which would silently
     * alias counters across concurrent sweep points.
     */
    void claimExclusive(const void *owner);

    /** Release a claimExclusive() claim (no-op for other owners). */
    void releaseExclusive(const void *owner);

    /** The current exclusive owner, or nullptr. */
    const void *exclusiveOwner() const { return owner_; }

  private:
    struct Entry
    {
        std::string name;
        Counter *counter = nullptr;
        const double *scalar = nullptr;
        std::string desc;
    };

    void collectInto(const std::string &prefix,
                     std::map<std::string, double> &out) const;

    std::string name_;
    std::vector<Entry> entries_;
    std::vector<StatGroup *> children_;
    const void *owner_ = nullptr;
};

} // namespace rab

#endif // RAB_STATS_STATS_HH
