#include "backend/reservation_station.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rab
{

ReservationStation::ReservationStation(int capacity)
    : capacity_(capacity)
{
    if (capacity <= 0)
        fatal("ReservationStation: bad capacity %d", capacity);
    entries_.assign(capacity, Entry{});
}

void
ReservationStation::insert(int rob_slot, SeqNum seq)
{
    if (full())
        panic("ReservationStation: insert when full");
    for (Entry &e : entries_) {
        if (!e.valid) {
            e.valid = true;
            e.robSlot = rob_slot;
            e.seq = seq;
            ++size_;
            ++inserts;
            return;
        }
    }
    panic("ReservationStation: inconsistent size");
}

std::vector<int>
ReservationStation::selectReady(const Rob &rob, const PhysRegFile &prf,
                                int width)
{
    // Gather ready entries, oldest first.
    std::vector<Entry *> ready;
    ready.reserve(size_);
    for (Entry &e : entries_) {
        if (!e.valid)
            continue;
        const DynUop &uop = rob.slot(e.robSlot);
        const bool s1_ok =
            uop.psrc1 == kNoPhysReg || prf.ready(uop.psrc1);
        const bool s2_ok =
            uop.psrc2 == kNoPhysReg || prf.ready(uop.psrc2);
        ++wakeups;
        if (s1_ok && s2_ok)
            ready.push_back(&e);
    }
    std::sort(ready.begin(), ready.end(),
              [](const Entry *a, const Entry *b) { return a->seq < b->seq; });

    std::vector<int> selected;
    selected.reserve(std::min<std::size_t>(ready.size(), width));
    for (Entry *e : ready) {
        if (static_cast<int>(selected.size()) >= width)
            break;
        selected.push_back(e->robSlot);
        e->valid = false;
        --size_;
    }
    return selected;
}

void
ReservationStation::squashAfter(SeqNum seq)
{
    for (Entry &e : entries_) {
        if (e.valid && e.seq > seq) {
            e.valid = false;
            --size_;
        }
    }
}

void
ReservationStation::clear()
{
    entries_.assign(capacity_, Entry{});
    size_ = 0;
}

} // namespace rab
