#include "backend/reservation_station.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rab
{

ReservationStation::ReservationStation(int capacity)
    : capacity_(capacity)
{
    if (capacity <= 0)
        fatal("ReservationStation: bad capacity %d", capacity);
    entries_.assign(capacity, Entry{});
    freeSlots_.reserve(capacity);
    for (int i = capacity - 1; i >= 0; --i)
        freeSlots_.push_back(i);
    readyList_.reserve(capacity);
}

void
ReservationStation::registerWait(PhysReg reg, int idx)
{
    if (reg >= waiters_.size())
        waiters_.resize(reg + 1);
    waiters_[reg].push_back(idx);
}

void
ReservationStation::insert(int rob_slot, SeqNum seq, PhysReg src1,
                           PhysReg src2, const PhysRegFile &prf)
{
    if (full())
        panic("ReservationStation: insert when full");
    const int idx = freeSlots_.back();
    freeSlots_.pop_back();
    Entry &e = entries_[idx];
    e.valid = true;
    e.robSlot = rob_slot;
    e.seq = seq;
    e.src1 = src1;
    e.src2 = src2;
    e.wait1 = src1 != kNoPhysReg && !prf.ready(src1);
    e.wait2 = src2 != kNoPhysReg && !prf.ready(src2);
    if (e.wait1)
        registerWait(src1, idx);
    if (e.wait2)
        registerWait(src2, idx);
    if (!e.wait1 && !e.wait2)
        readyList_.push_back(idx);
    ++size_;
    ++inserts;
}

void
ReservationStation::notifyWritten(PhysReg reg)
{
    if (reg >= waiters_.size())
        return;
    std::vector<int> &list = waiters_[reg];
    if (list.empty())
        return;
    for (const int idx : list) {
        Entry &e = entries_[idx];
        // Guards make stale registrations harmless: the entry may have
        // left the window (or its slot been reused) since it enlisted.
        if (!e.valid)
            continue;
        bool cleared = false;
        if (e.wait1 && e.src1 == reg) {
            e.wait1 = false;
            cleared = true;
        }
        if (e.wait2 && e.src2 == reg) {
            e.wait2 = false;
            cleared = true;
        }
        // `cleared` keeps duplicate registrations (src1 == src2, or a
        // reused slot re-enlisting on the same register) from pushing
        // the entry twice.
        if (cleared && !e.wait1 && !e.wait2)
            readyList_.push_back(idx);
    }
    list.clear();
}

const std::vector<int> &
ReservationStation::selectReady(int width)
{
    if (width > kMaxSelectWidth)
        panic("ReservationStation: select width %d > %d", width,
              kMaxSelectWidth);

    // One wakeup (source-ready check) per resident entry per cycle:
    // the energy model charges the CAM broadcast whether or not the
    // event-driven ready list short-circuits the actual comparison.
    wakeups += static_cast<std::uint64_t>(size_);

    selectedBuf_.clear();
    if (readyList_.empty())
        return selectedBuf_;

    // Bounded insertion sort over the ready list: keep the `width`
    // oldest ready entries, ascending by seq. The ready list is the
    // exact ready set (see the wakeup invariant in the header), so
    // this selects the same uops a full scan would.
    int best[kMaxSelectWidth];
    int nbest = 0;
    for (const int idx : readyList_) {
        const Entry &e = entries_[idx];
        if (nbest == width && entries_[best[nbest - 1]].seq < e.seq)
            continue; // Younger than every kept entry.
        // Shift larger seqs up (discarding the current maximum when
        // already at width) and slot this entry in seq order.
        int pos = nbest < width ? nbest : nbest - 1;
        while (pos > 0 && entries_[best[pos - 1]].seq > e.seq) {
            best[pos] = best[pos - 1];
            --pos;
        }
        best[pos] = idx;
        if (nbest < width)
            ++nbest;
    }

    for (int i = 0; i < nbest; ++i) {
        Entry &e = entries_[best[i]];
        selectedBuf_.push_back(e.robSlot);
        e.valid = false;
        freeSlots_.push_back(best[i]);
        --size_;
    }
    compactReadyList();
    return selectedBuf_;
}

bool
ReservationStation::anyReady(const Rob &rob, const PhysRegFile &prf) const
{
    for (const Entry &e : entries_) {
        if (!e.valid)
            continue;
        const DynUop &uop = rob.slot(e.robSlot);
        const bool s1_ok =
            uop.psrc1 == kNoPhysReg || prf.ready(uop.psrc1);
        const bool s2_ok =
            uop.psrc2 == kNoPhysReg || prf.ready(uop.psrc2);
        if (s1_ok && s2_ok)
            return true;
    }
    return false;
}

void
ReservationStation::compactReadyList()
{
    readyList_.erase(
        std::remove_if(readyList_.begin(), readyList_.end(),
                       [this](int idx) { return !entries_[idx].valid; }),
        readyList_.end());
}

void
ReservationStation::squashAfter(SeqNum seq)
{
    const int n = static_cast<int>(entries_.size());
    int removed = 0;
    for (int idx = 0; idx < n; ++idx) {
        Entry &e = entries_[idx];
        if (e.valid && e.seq > seq) {
            e.valid = false;
            freeSlots_.push_back(idx);
            --size_;
            ++removed;
        }
    }
    if (removed > 0)
        compactReadyList();
}

void
ReservationStation::clear()
{
    entries_.assign(capacity_, Entry{});
    size_ = 0;
    freeSlots_.clear();
    for (int i = capacity_ - 1; i >= 0; --i)
        freeSlots_.push_back(i);
    readyList_.clear();
    for (std::vector<int> &w : waiters_)
        w.clear();
}

} // namespace rab
