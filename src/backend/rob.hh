/**
 * @file
 * Reorder buffer: a fixed-capacity circular buffer of DynUops.
 *
 * Slots are *physical* indices that stay stable while an entry is live,
 * so the RS, store queue and writeback queue can reference entries
 * safely across head pops. The runahead buffer's dependence-chain
 * generator searches the ROB with PC and destination-register CAMs;
 * the hardware CAMs are modelled here as intrusive, age-ordered linked
 * lists threaded through the slots — one list per PC and one per
 * architectural destination register — maintained incrementally on
 * push / popHead / popTail / clear. findOldestByPc and findProducer
 * walk only the matching key's list (O(1) amortized) instead of the
 * whole window; the original linear scans are retained as
 * findOldestByPcScan / findProducerScan and cross-validated against
 * the indexed forms by the invariant checker (checkRobIndexes), the
 * same pattern the reservation station uses for hasReady/anyReady.
 * The modelled cycle costs of the searches are charged by the caller
 * either way.
 */

#ifndef RAB_BACKEND_ROB_HH
#define RAB_BACKEND_ROB_HH

#include <cstddef>
#include <vector>

#include "backend/dyn_uop.hh"
#include "common/types.hh"
#include "isa/program.hh"

namespace rab
{

/** The reorder buffer. */
class Rob
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit Rob(int capacity);

    int capacity() const { return capacity_; }
    int size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == capacity_; }

    /** Append at the tail; returns the physical slot. */
    int push(DynUop &&uop);

    /** @{ In-place push, for the rename hot path: beginPush() resets
     *  and returns the tail entry for the caller to fill directly (no
     *  intermediate DynUop copy); finishPush() makes it live and
     *  indexes it once seq / pc / sop are set. Abandoning a begun push
     *  (never calling finishPush) is allowed — the slot stays dead. */
    DynUop &beginPush();
    int finishPush();
    /** @} */

    /** Oldest entry. */
    DynUop &head();
    const DynUop &head() const;
    int headSlot() const { return head_; }

    /** Retire the oldest entry. */
    void popHead();

    /** Youngest entry's physical slot (-1 when empty). */
    int tailSlot() const;

    /** Remove the youngest entry (squash). */
    void popTail();

    /** Access by physical slot. */
    DynUop &slot(int phys_slot);
    const DynUop &slot(int phys_slot) const;

    /** True if @p phys_slot currently holds a live entry with @p seq. */
    bool validSlot(int phys_slot, SeqNum seq) const;

    /** Logical index (0 = oldest) → physical slot. */
    int logicalToSlot(int logical) const;

    /**
     * PC CAM: find the *oldest* live entry with @p pc that is younger
     * than @p after_seq. Returns -1 when absent. Used by chain
     * generation ("add oldest matching op to DC").
     */
    int findOldestByPc(Pc pc, SeqNum after_seq) const
    {
        return indexed_ ? findOldestByPcIndexed(pc, after_seq)
                        : findOldestByPcScan(pc, after_seq);
    }

    /**
     * Destination-register CAM: youngest entry older than @p before_seq
     * whose architectural destination is @p reg. Returns -1.
     */
    int findProducer(ArchReg reg, SeqNum before_seq) const
    {
        return indexed_ ? findProducerIndexed(reg, before_seq)
                        : findProducerScan(reg, before_seq);
    }

    /** @{ Indexed CAM analogues: walk the per-key age-ordered list. */
    int findOldestByPcIndexed(Pc pc, SeqNum after_seq) const;
    int findProducerIndexed(ArchReg reg, SeqNum before_seq) const;
    /** @} */

    /** @{ Scan-based reference forms of the CAM searches: the original
     *  whole-window linear walks, kept as the independent ground truth
     *  the invariant checker compares the indexed forms against. */
    int findOldestByPcScan(Pc pc, SeqNum after_seq) const;
    int findProducerScan(ArchReg reg, SeqNum before_seq) const;
    /** @} */

    /** Select the scan-based reference paths for findOldestByPc /
     *  findProducer (differential certification; default indexed). The
     *  indexes stay maintained either way. */
    void setIndexed(bool indexed) { indexed_ = indexed; }
    bool indexed() const { return indexed_; }

    void clear();

  private:
    /** Intrusive doubly-linked list node threaded through a slot. */
    struct SlotLinks
    {
        int prev = -1;
        int next = -1;
    };

    /** Ends of one key's age-ordered list (front = oldest). */
    struct ListEnds
    {
        int front = -1;
        int back = -1;
    };

    /** One cell of the flat PC table. */
    struct PcCell
    {
        Pc pc = 0;
        ListEnds ends;
        bool used = false;
    };

    bool liveSlot(int phys_slot) const;

    /** Wrap @p unwrapped (a head_ + offset sum, offset <= capacity_)
     *  into [0, capacity_) — capacity is not a power of two, so a
     *  compare-subtract beats the integer division of a modulo. */
    int wrapSlot(int unwrapped) const
    {
        return unwrapped >= capacity_ ? unwrapped - capacity_
                                      : unwrapped;
    }

    /** @{ Index maintenance (see file comment). */
    void indexInsert(int slot);
    void indexRemove(int slot);
    static void listAppend(ListEnds &ends, std::vector<SlotLinks> &links,
                           int slot);
    static void listRemove(ListEnds &ends, std::vector<SlotLinks> &links,
                           int slot);
    /** @} */

    /** @{ Flat PC table: open addressing with linear probing. Keys are
     *  never erased (their lists are just emptied), so probing needs no
     *  tombstones; see pcCells_. */
    static std::size_t pcHash(Pc pc);
    int pcFind(Pc pc) const;   ///< Cell index, -1 when absent.
    int pcFindOrInsert(Pc pc); ///< Cell index; may grow the table.
    void pcGrow();
    /** @} */

    int capacity_;
    int head_ = 0;
    int size_ = 0;
    bool indexed_ = true;
    std::vector<DynUop> entries_;
    std::vector<bool> live_;

    /** @{ PC multimap analogue: per-PC age-ordered slot list. The
     *  key → list-ends lookup is a flat power-of-two open-addressing
     *  hash table (std::unordered_map's bucket chasing dominated the
     *  rename profile). Cells persist once created (emptied, never
     *  erased) so steady state allocates nothing and probe chains have
     *  no tombstones; the key population is bounded by the program's
     *  static uop count. pcCellOf_ caches each live slot's cell index
     *  so popHead/popTail/clear never rehash the PC. */
    std::vector<PcCell> pcCells_;
    std::size_t pcMask_ = 0; ///< pcCells_.size() - 1.
    std::size_t pcUsed_ = 0; ///< Distinct PCs resident in the table.
    std::vector<int> pcCellOf_;
    std::vector<SlotLinks> pcLinks_;
    /** @} */

    /** @{ Producer index: per-architectural-destination-register
     *  age-ordered slot list (kNoArchReg destinations are unindexed —
     *  no chain-generation query ever asks for them). */
    std::vector<ListEnds> regIndex_; ///< kNumArchRegs entries.
    std::vector<SlotLinks> regLinks_;
    /** @} */
};

} // namespace rab

#endif // RAB_BACKEND_ROB_HH
