/**
 * @file
 * Reorder buffer: a fixed-capacity circular buffer of DynUops.
 *
 * Slots are *physical* indices that stay stable while an entry is live,
 * so the RS, store queue and writeback queue can reference entries
 * safely across head pops. The runahead buffer's dependence-chain
 * generator searches the ROB with PC and destination-register CAMs;
 * those searches are linear scans here (findYoungestByPc /
 * findProducer), with their cycle costs modelled by the caller.
 */

#ifndef RAB_BACKEND_ROB_HH
#define RAB_BACKEND_ROB_HH

#include <vector>

#include "backend/dyn_uop.hh"
#include "common/types.hh"

namespace rab
{

/** The reorder buffer. */
class Rob
{
  public:
    explicit Rob(int capacity);

    int capacity() const { return capacity_; }
    int size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == capacity_; }

    /** Append at the tail; returns the physical slot. */
    int push(DynUop &&uop);

    /** Oldest entry. */
    DynUop &head();
    const DynUop &head() const;
    int headSlot() const { return head_; }

    /** Retire the oldest entry. */
    void popHead();

    /** Youngest entry's physical slot (-1 when empty). */
    int tailSlot() const;

    /** Remove the youngest entry (squash). */
    void popTail();

    /** Access by physical slot. */
    DynUop &slot(int phys_slot);
    const DynUop &slot(int phys_slot) const;

    /** True if @p phys_slot currently holds a live entry with @p seq. */
    bool validSlot(int phys_slot, SeqNum seq) const;

    /** Logical index (0 = oldest) → physical slot. */
    int logicalToSlot(int logical) const;

    /**
     * PC CAM: find the *oldest* live entry with @p pc that is younger
     * than @p after_seq. Returns -1 when absent. Used by chain
     * generation ("add oldest matching op to DC").
     */
    int findOldestByPc(Pc pc, SeqNum after_seq) const;

    /**
     * Destination-register CAM: youngest entry older than @p before_seq
     * whose architectural destination is @p reg. Returns -1.
     */
    int findProducer(ArchReg reg, SeqNum before_seq) const;

    void clear();

  private:
    bool liveSlot(int phys_slot) const;

    int capacity_;
    int head_ = 0;
    int size_ = 0;
    std::vector<DynUop> entries_;
    std::vector<bool> live_;
};

} // namespace rab

#endif // RAB_BACKEND_ROB_HH
