#include "backend/lsq.hh"

#include "common/logging.hh"

namespace rab
{

StoreQueue::StoreQueue(int capacity)
    : capacity_(capacity)
{
    if (capacity <= 0)
        fatal("StoreQueue: bad capacity %d", capacity);
}

void
StoreQueue::allocate(SeqNum seq, int rob_slot)
{
    if (full())
        panic("StoreQueue: allocate when full");
    if (!entries_.empty() && entries_.back().seq >= seq)
        panic("StoreQueue: out-of-order allocation");
    Entry e;
    e.seq = seq;
    e.robSlot = rob_slot;
    entries_.push_back(e);
}

StoreQueue::Entry *
StoreQueue::find(SeqNum seq)
{
    for (Entry &e : entries_) {
        if (e.seq == seq)
            return &e;
    }
    return nullptr;
}

void
StoreQueue::setAddress(SeqNum seq, Addr addr, bool poisoned)
{
    Entry *e = find(seq);
    if (!e)
        panic("StoreQueue: setAddress for unknown store");
    e->wordAddr = wordOf(addr);
    e->addrPoisoned = poisoned;
}

void
StoreQueue::setData(SeqNum seq, std::uint64_t data, bool poisoned)
{
    Entry *e = find(seq);
    if (!e)
        panic("StoreQueue: setData for unknown store");
    e->data = data;
    e->dataReady = true;
    e->dataPoisoned = poisoned;
}

SqSearch
StoreQueue::searchForLoad(SeqNum load_seq, Addr addr)
{
    ++searches;
    const Addr word = wordOf(addr);
    SqSearch result;
    // Scan youngest-to-oldest among stores older than the load.
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        const Entry &e = *it;
        if (e.seq >= load_seq)
            continue;
        if (e.wordAddr == kNoAddr && !e.addrPoisoned) {
            // Unresolved older store: cannot disambiguate.
            ++unknownAddrStalls;
            result.kind = SqSearch::Kind::kUnknownAddr;
            return result;
        }
        if (e.addrPoisoned) {
            // Runahead: a poisoned store address matches nothing (the
            // store is treated as a NOP, per the runahead scheme).
            continue;
        }
        if (e.wordAddr == word) {
            if (!e.dataReady) {
                result.kind = SqSearch::Kind::kNotReady;
            } else {
                result.kind = SqSearch::Kind::kForward;
                result.data = e.data;
                result.poisoned = e.dataPoisoned;
                ++forwards;
            }
            result.storeSeq = e.seq;
            result.storeRobSlot = e.robSlot;
            return result;
        }
    }
    return result;
}

int
StoreQueue::findStoreRobSlot(SeqNum before_seq, Addr addr) const
{
    const Addr word = wordOf(addr);
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        const Entry &e = *it;
        if (e.seq >= before_seq)
            continue;
        if (e.wordAddr != kNoAddr && e.wordAddr == word)
            return e.robSlot;
    }
    return -1;
}

void
StoreQueue::release(SeqNum seq)
{
    if (entries_.empty() || entries_.front().seq != seq)
        panic("StoreQueue: release out of order");
    entries_.pop_front();
}

void
StoreQueue::squashAfter(SeqNum seq)
{
    while (!entries_.empty() && entries_.back().seq > seq)
        entries_.pop_back();
}

} // namespace rab
