/**
 * @file
 * Execution-side helpers: the writeback event queue that carries
 * completion events (ALU latencies, cache hits, DRAM fills) back to the
 * pipeline, and the per-cycle issue port tracker.
 */

#ifndef RAB_BACKEND_EXECUTE_HH
#define RAB_BACKEND_EXECUTE_HH

#include <queue>
#include <vector>

#include "common/types.hh"

namespace rab
{

/** A pending completion. */
struct WbEvent
{
    Cycle when = 0;
    int robSlot = -1;
    SeqNum seq = kNoSeqNum;

    bool operator>(const WbEvent &other) const { return when > other.when; }
};

/**
 * Min-heap of scheduled writebacks. Events for squashed uops are
 * filtered by the consumer via Rob::validSlot (slot, seq) checks.
 */
class WritebackQueue
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    void schedule(Cycle when, int rob_slot, SeqNum seq);

    /** Pop every event with when <= now. The returned buffer is owned
     *  by the queue and reused across calls (no per-cycle allocation);
     *  it stays valid until the next popReady(). */
    const std::vector<WbEvent> &popReady(Cycle now);

    /** Cycle of the next pending event, or kNoSeqNum when empty. */
    Cycle nextEventCycle() const;

    bool empty() const { return heap_.empty(); }
    void clear();

  private:
    std::priority_queue<WbEvent, std::vector<WbEvent>, std::greater<>>
        heap_;
    std::vector<WbEvent> readyBuf_; ///< popReady() scratch, reused.
};

/** Issue-port budget for one cycle: total width plus D-cache ports. */
class IssuePorts
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    IssuePorts(int width, int mem_ports)
        : width_(width), memPorts_(mem_ports)
    {
    }

    void newCycle()
    {
        usedWidth_ = 0;
        usedMem_ = 0;
    }

    bool takeAlu()
    {
        if (usedWidth_ >= width_)
            return false;
        ++usedWidth_;
        return true;
    }

    bool takeMem()
    {
        if (usedWidth_ >= width_ || usedMem_ >= memPorts_)
            return false;
        ++usedWidth_;
        ++usedMem_;
        return true;
    }

    int remainingWidth() const { return width_ - usedWidth_; }

  private:
    int width_;
    int memPorts_;
    int usedWidth_ = 0;
    int usedMem_ = 0;
};

} // namespace rab

#endif // RAB_BACKEND_EXECUTE_HH
