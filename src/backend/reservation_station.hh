/**
 * @file
 * Reservation station: a 92-entry (Table 1) unified scheduler window.
 *
 * Entries reference ROB slots. Wakeup is evaluated against the physical
 * register file's ready bits; select picks the oldest ready entries up
 * to the issue width each cycle.
 */

#ifndef RAB_BACKEND_RESERVATION_STATION_HH
#define RAB_BACKEND_RESERVATION_STATION_HH

#include <vector>

#include "backend/rename.hh"
#include "backend/rob.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace rab
{

/** The unified reservation station. */
class ReservationStation
{
  public:
    explicit ReservationStation(int capacity);

    int capacity() const { return capacity_; }
    int size() const { return size_; }
    bool full() const { return size_ == capacity_; }

    /** Insert the uop in @p rob_slot. */
    void insert(int rob_slot, SeqNum seq);

    /**
     * Select up to @p width oldest entries whose sources are ready in
     * @p prf (poisoned sources count as ready — poison propagates at
     * execute). Selected entries are removed. Returns ROB slots.
     */
    std::vector<int> selectReady(const Rob &rob, const PhysRegFile &prf,
                                 int width);

    /** Remove every entry younger than @p seq (squash). */
    void squashAfter(SeqNum seq);

    /** Remove all entries. */
    void clear();

    /** Re-insert a uop whose memory access was rejected (retry). */
    void reinsert(int rob_slot, SeqNum seq) { insert(rob_slot, seq); }

    /** @{ Statistics. */
    Counter inserts;
    Counter wakeups; ///< Source-ready checks that fired (energy events).
    /** @} */

  private:
    struct Entry
    {
        bool valid = false;
        int robSlot = -1;
        SeqNum seq = kNoSeqNum;
    };

    int capacity_;
    int size_ = 0;
    std::vector<Entry> entries_;
};

} // namespace rab

#endif // RAB_BACKEND_RESERVATION_STATION_HH
