/**
 * @file
 * Reservation station: a 92-entry (Table 1) unified scheduler window.
 *
 * Entries reference ROB slots. Wakeup is event-driven: each entry
 * records which of its source registers were pending at insert, and
 * the core forwards every physical-register write through
 * notifyWritten(), which moves entries whose last pending source just
 * completed onto a ready list. Select picks the oldest ready entries
 * up to the issue width each cycle.
 *
 * This bookkeeping is exact, not approximate, because of two register
 * file invariants (see PhysRegFile): write() is the only transition
 * from pending to ready, and alloc() — the only transition back — can
 * target just free-list registers, which no resident entry references
 * (a source register is freed only after every consumer has left the
 * window). The checker cross-validates the ready list against a full
 * register-file scan (anyReady) at every fast-forward window.
 */

#ifndef RAB_BACKEND_RESERVATION_STATION_HH
#define RAB_BACKEND_RESERVATION_STATION_HH

#include <vector>

#include "backend/rename.hh"
#include "backend/rob.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace rab
{

/** The unified reservation station. */
class ReservationStation
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit ReservationStation(int capacity);

    int capacity() const { return capacity_; }
    int size() const { return size_; }
    bool full() const { return size_ == capacity_; }

    /**
     * Insert the uop in @p rob_slot. Sources that are not ready in
     * @p prf (kNoPhysReg means "no source") are registered for wakeup;
     * an entry with no pending source is immediately selectable.
     */
    void insert(int rob_slot, SeqNum seq, PhysReg src1, PhysReg src2,
                const PhysRegFile &prf);

    /**
     * Wake entries waiting on @p reg. Must be called for every
     * PhysRegFile::write() while entries are resident — the core
     * routes all writes through Core::writePhysReg() to guarantee
     * this.
     */
    void notifyWritten(PhysReg reg);

    /**
     * Select up to @p width oldest ready entries (poisoned sources
     * count as ready — poison propagates at execute). Selected
     * entries are removed. Returns ROB slots in a buffer owned by the
     * station and reused across calls (valid until the next
     * selectReady(); insert/reinsert during iteration is safe).
     */
    const std::vector<int> &selectReady(int width);

    /** True when the next selectReady() call would select something.
     *  O(1) query on the event-driven ready list; the fast-forward
     *  quiescence predicate polls it every cycle. */
    bool hasReady() const { return !readyList_.empty(); }

    /** Scan-based equivalent of hasReady(), re-derived from the
     *  register file's ready bits. The invariant checker uses this
     *  independent form so a wakeup bookkeeping bug in the ready list
     *  is caught rather than silently trusted. */
    bool anyReady(const Rob &rob, const PhysRegFile &prf) const;

    /** Remove every entry younger than @p seq (squash). */
    void squashAfter(SeqNum seq);

    /** Remove all entries. */
    void clear();

    /** Re-insert a uop whose memory access was rejected (retry). */
    void reinsert(int rob_slot, SeqNum seq, PhysReg src1, PhysReg src2,
                  const PhysRegFile &prf)
    {
        insert(rob_slot, seq, src1, src2, prf);
    }

    /** Upper bound on the selectReady width (sized well above any
     *  realistic issue width; selection uses a stack buffer). */
    static constexpr int kMaxSelectWidth = 16;

    /** @{ Statistics. */
    Counter inserts;
    Counter wakeups; ///< Source-ready checks that fired (energy events).
    /** @} */

  private:
    struct Entry
    {
        bool valid = false;
        bool wait1 = false; ///< src1 pending (registered in waiters_).
        bool wait2 = false; ///< src2 pending.
        int robSlot = -1;
        SeqNum seq = kNoSeqNum;
        PhysReg src1 = kNoPhysReg;
        PhysReg src2 = kNoPhysReg;
    };

    void registerWait(PhysReg reg, int idx);
    /** Drop entries invalidated by select/squash from the ready
     *  list. */
    void compactReadyList();

    int capacity_;
    int size_ = 0;
    std::vector<Entry> entries_;
    std::vector<int> freeSlots_; ///< Stack of invalid entry indices
                                 ///< (placement does not affect
                                 ///< selection: picks are seq-ordered).
    std::vector<int> readyList_; ///< Entries with no pending source.
    std::vector<int> selectedBuf_; ///< selectReady() scratch, reused.
    /** Per-physical-register wakeup lists (entry indices), indexed by
     *  register and grown lazily. A write drains the register's list;
     *  entries that left the window while waiting go stale in place
     *  and are skipped via the valid/wait/src guards in
     *  notifyWritten(). */
    std::vector<std::vector<int>> waiters_;
};

} // namespace rab

#endif // RAB_BACKEND_RESERVATION_STATION_HH
