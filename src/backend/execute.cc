#include "backend/execute.hh"

#include <limits>

namespace rab
{

void
WritebackQueue::schedule(Cycle when, int rob_slot, SeqNum seq)
{
    heap_.push(WbEvent{when, rob_slot, seq});
}

const std::vector<WbEvent> &
WritebackQueue::popReady(Cycle now)
{
    readyBuf_.clear();
    while (!heap_.empty() && heap_.top().when <= now) {
        readyBuf_.push_back(heap_.top());
        heap_.pop();
    }
    return readyBuf_;
}

Cycle
WritebackQueue::nextEventCycle() const
{
    if (heap_.empty())
        return std::numeric_limits<Cycle>::max();
    return heap_.top().when;
}

void
WritebackQueue::clear()
{
    while (!heap_.empty())
        heap_.pop();
}

} // namespace rab
