/**
 * @file
 * Dynamic (in-flight) micro-op state carried through the pipeline.
 */

#ifndef RAB_BACKEND_DYN_UOP_HH
#define RAB_BACKEND_DYN_UOP_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/uop.hh"

namespace rab
{

/** One dynamic instance of a uop, as stored in the ROB. */
struct DynUop
{
    /** Fetch-order sequence number (unique, monotonic). */
    SeqNum seq = kNoSeqNum;

    /** Program counter of the static uop. */
    Pc pc = 0;

    /** Copy of the decoded static uop (the paper adds 4 B per ROB entry
     *  to keep decoded uops until retirement; we keep the whole uop). */
    Uop sop;

    /** Dynamic count of instructions fetched before this one in normal
     *  mode; used by the runahead enhancement policies. */
    std::uint64_t instrNum = 0;

    /** @{ Rename state. */
    PhysReg pdst = kNoPhysReg;
    PhysReg psrc1 = kNoPhysReg;
    PhysReg psrc2 = kNoPhysReg;
    PhysReg prevPdst = kNoPhysReg; ///< For undo-walk recovery.
    /** @} */

    /** @{ Branch state. */
    bool predTaken = false;
    Pc predTarget = 0;
    std::uint64_t historySnapshot = 0; ///< BHR before this branch.
    bool actualTaken = false;
    Pc nextPc = 0;      ///< Resolved next PC.
    bool mispredicted = false;
    /** @} */

    /** @{ Memory state. */
    Addr effAddr = kNoAddr;
    bool memIssued = false;   ///< Memory request sent (or forwarded).
    std::uint64_t missIssueInstrNum = 0; ///< Fetched-instruction count
                                         ///< when the access issued.
    bool llcMiss = false;     ///< The demand access missed the LLC.
    bool offChipWait = false; ///< Waiting off-chip-long: a new LLC
                              ///< miss OR a merge into one in flight.
    int sqIndex = -1;         ///< Store queue slot for stores.
    bool forwarded = false;   ///< Load got its value from the SQ.
    /** @} */

    /** @{ Status. */
    bool inRs = false;        ///< Currently occupies an RS entry.
    bool issued = false;      ///< Selected for execution.
    bool executed = false;    ///< Result (or address) computed.
    bool completed = false;   ///< Eligible for (pseudo-)retirement.
    bool poisoned = false;    ///< Runahead poison bit.
    Cycle readyAt = 0;        ///< Cycle the result becomes available.
    /** @} */

    /** @{ Runahead provenance. */
    bool isRunahead = false;        ///< Fetched during runahead mode.
    bool fromRunaheadBuffer = false;///< Issued by the runahead buffer.
    /** @} */

    /** Value-level state (for the value-based timing model). */
    std::uint64_t v1 = 0;
    std::uint64_t v2 = 0;
    std::uint64_t result = 0;

    /** Fig. 2 instrumentation: some transitive source of this value was
     *  produced by an off-chip (LLC-miss) load within the window. */
    bool srcFromOffChip = false;

    bool isLoad() const { return sop.isLoad(); }
    bool isStore() const { return sop.isStore(); }
    bool isControl() const { return sop.isControl(); }
};

} // namespace rab

#endif // RAB_BACKEND_DYN_UOP_HH
