/**
 * @file
 * Dynamic (in-flight) micro-op state carried through the pipeline.
 */

#ifndef RAB_BACKEND_DYN_UOP_HH
#define RAB_BACKEND_DYN_UOP_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/uop.hh"

namespace rab
{

/** One dynamic instance of a uop, as stored in the ROB.
 *
 *  Field order is deliberate: a 192-entry ROB of these does not fit in
 *  L1d, so the members every per-event pipeline touch reads — seq, pc,
 *  the decoded uop, rename tags and the status bits — are packed into
 *  the first cache line; colder branch / memory / value state follows.
 */
struct DynUop
{
    /** Fetch-order sequence number (unique, monotonic). */
    SeqNum seq = kNoSeqNum;

    /** Program counter of the static uop. */
    Pc pc = 0;

    /** Copy of the decoded static uop (the paper adds 4 B per ROB entry
     *  to keep decoded uops until retirement; we keep the whole uop). */
    Uop sop;

    /** @{ Rename state. */
    PhysReg pdst = kNoPhysReg;
    PhysReg psrc1 = kNoPhysReg;
    PhysReg psrc2 = kNoPhysReg;
    PhysReg prevPdst = kNoPhysReg; ///< For undo-walk recovery.
    /** @} */

    /** @{ Status. */
    bool inRs = false;        ///< Currently occupies an RS entry.
    bool issued = false;      ///< Selected for execution.
    bool executed = false;    ///< Result (or address) computed.
    bool completed = false;   ///< Eligible for (pseudo-)retirement.
    bool poisoned = false;    ///< Runahead poison bit.
    /** @} */

    /** @{ Memory status bits. */
    bool memIssued = false;   ///< Memory request sent (or forwarded).
    bool llcMiss = false;     ///< The demand access missed the LLC.
    bool offChipWait = false; ///< Waiting off-chip-long: a new LLC
                              ///< miss OR a merge into one in flight.
    /** @} */

    // ---- first cache line ends here (64 B) ----

    Cycle readyAt = 0; ///< Cycle the result becomes available.

    /** Value-level state (for the value-based timing model). */
    std::uint64_t v1 = 0;
    std::uint64_t v2 = 0;
    std::uint64_t result = 0;

    /** @{ Memory state. */
    Addr effAddr = kNoAddr;
    std::uint64_t missIssueInstrNum = 0; ///< Fetched-instruction count
                                         ///< when the access issued.
    int sqIndex = -1;         ///< Store queue slot for stores.
    bool forwarded = false;   ///< Load got its value from the SQ.
    /** @} */

    /** @{ Runahead provenance. */
    bool isRunahead = false;        ///< Fetched during runahead mode.
    bool fromRunaheadBuffer = false;///< Issued by the runahead buffer.
    /** @} */

    /** Fig. 2 instrumentation: some transitive source of this value was
     *  produced by an off-chip (LLC-miss) load within the window. */
    bool srcFromOffChip = false;

    /** @{ Branch state. */
    bool predTaken = false;
    bool actualTaken = false;
    bool mispredicted = false;
    Pc predTarget = 0;
    Pc nextPc = 0;      ///< Resolved next PC.
    std::uint64_t historySnapshot = 0; ///< BHR before this branch.
    /** @} */

    /** Dynamic count of instructions fetched before this one in normal
     *  mode; used by the runahead enhancement policies. */
    std::uint64_t instrNum = 0;

    bool isLoad() const { return sop.isLoad(); }
    bool isStore() const { return sop.isStore(); }
    bool isControl() const { return sop.isControl(); }
};

} // namespace rab

#endif // RAB_BACKEND_DYN_UOP_HH
