#include "backend/rename.hh"

#include "common/logging.hh"

namespace rab
{

PhysRegFile::PhysRegFile(int num_regs)
{
    if (num_regs <= kNumArchRegs)
        fatal("PhysRegFile: need more than %d registers", kNumArchRegs);
    regs_.assign(num_regs, Reg{});
    freeList_.reserve(num_regs);
    for (int i = num_regs - 1; i >= 0; --i)
        freeList_.push_back(static_cast<PhysReg>(i));
}

void
PhysRegFile::check(PhysReg reg) const
{
    if (reg >= regs_.size())
        panic("PhysRegFile: bad register %d", (int)reg);
}

PhysReg
PhysRegFile::alloc()
{
    if (freeList_.empty())
        panic("PhysRegFile: free list empty");
    const PhysReg reg = freeList_.back();
    freeList_.pop_back();
    Reg &r = regs_[reg];
    r.allocated = true;
    r.ready = false;
    r.poisoned = false;
    r.offChip = false;
    return reg;
}

void
PhysRegFile::free(PhysReg reg)
{
    check(reg);
    if (!regs_[reg].allocated)
        panic("PhysRegFile: double free of register %d", (int)reg);
    regs_[reg].allocated = false;
    freeList_.push_back(reg);
}

std::uint64_t
PhysRegFile::value(PhysReg reg) const
{
    check(reg);
    return regs_[reg].value;
}

bool
PhysRegFile::ready(PhysReg reg) const
{
    check(reg);
    return regs_[reg].ready;
}

bool
PhysRegFile::poisoned(PhysReg reg) const
{
    check(reg);
    return regs_[reg].poisoned;
}

bool
PhysRegFile::offChip(PhysReg reg) const
{
    check(reg);
    return regs_[reg].offChip;
}

bool
PhysRegFile::allocated(PhysReg reg) const
{
    check(reg);
    return regs_[reg].allocated;
}

void
PhysRegFile::write(PhysReg reg, std::uint64_t value, bool poisoned,
                   bool off_chip)
{
    check(reg);
    Reg &r = regs_[reg];
    r.value = value;
    r.ready = true;
    r.poisoned = poisoned;
    r.offChip = off_chip;
}

void
PhysRegFile::markPending(PhysReg reg)
{
    check(reg);
    regs_[reg].ready = false;
}

void
PhysRegFile::setPoisoned(PhysReg reg, bool poisoned)
{
    check(reg);
    regs_[reg].poisoned = poisoned;
}

void
PhysRegFile::resetAll()
{
    freeList_.clear();
    for (int i = static_cast<int>(regs_.size()) - 1; i >= 0; --i) {
        regs_[i] = Reg{};
        freeList_.push_back(static_cast<PhysReg>(i));
    }
}

Rat::Rat()
{
    map_.fill(kNoPhysReg);
}

PhysReg
Rat::map(ArchReg reg) const
{
    if (reg >= kNumArchRegs)
        panic("Rat: bad arch register %d", (int)reg);
    return map_[reg];
}

void
Rat::setMap(ArchReg reg, PhysReg phys)
{
    if (reg >= kNumArchRegs)
        panic("Rat: bad arch register %d", (int)reg);
    map_[reg] = phys;
}

void
Rat::restore(const std::array<PhysReg, kNumArchRegs> &snapshot)
{
    map_ = snapshot;
}

} // namespace rab
