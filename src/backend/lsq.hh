/**
 * @file
 * Store queue with store-to-load forwarding.
 *
 * Loads search the queue (a CAM, as the paper notes) for the youngest
 * older store to the same 8-byte word. An older store with an unknown
 * address conservatively blocks the load. The chain generator also
 * searches this queue to pull store data producers into dependence
 * chains (Algorithm 1's "Search store buffer for load address").
 */

#ifndef RAB_BACKEND_LSQ_HH
#define RAB_BACKEND_LSQ_HH

#include <cstdint>
#include <deque>

#include "common/types.hh"
#include "stats/stats.hh"

namespace rab
{

/** Result of a load's store-queue search. */
struct SqSearch
{
    enum class Kind
    {
        kNoMatch,     ///< No older store to this word.
        kForward,     ///< Forward @c data from the matching store.
        kNotReady,    ///< Matching store's data not yet available.
        kUnknownAddr, ///< An older store address is unresolved: stall.
    };

    Kind kind = Kind::kNoMatch;
    std::uint64_t data = 0;
    bool poisoned = false;
    SeqNum storeSeq = kNoSeqNum;
    int storeRobSlot = -1;
};

/** In-order store queue. */
class StoreQueue
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    /** One store's state (public so the invariant checker can audit the
     *  queue against the ROB). */
    struct Entry
    {
        SeqNum seq = kNoSeqNum;
        int robSlot = -1;
        Addr wordAddr = kNoAddr; ///< kNoAddr until computed.
        std::uint64_t data = 0;
        bool dataReady = false;
        bool addrPoisoned = false;
        bool dataPoisoned = false;
    };

    explicit StoreQueue(int capacity);

    int capacity() const { return capacity_; }
    int size() const { return static_cast<int>(entries_.size()); }
    bool full() const { return size() == capacity_; }

    /** Allocate at rename; address/data arrive at execute. */
    void allocate(SeqNum seq, int rob_slot);

    /** Record the computed address (word-aligned internally). */
    void setAddress(SeqNum seq, Addr addr, bool poisoned);

    /** Record the store data once the source register is ready. */
    void setData(SeqNum seq, std::uint64_t data, bool poisoned);

    /** Search for the youngest store older than @p load_seq matching
     *  the word containing @p addr. */
    SqSearch searchForLoad(SeqNum load_seq, Addr addr);

    /** Chain generation: youngest store older than @p before_seq whose
     *  (known) address matches the word of @p addr; -1 if none. */
    int findStoreRobSlot(SeqNum before_seq, Addr addr) const;

    /** Free the oldest entry (store committed). Must match @p seq. */
    void release(SeqNum seq);

    /** Remove entries younger than @p seq (squash). */
    void squashAfter(SeqNum seq);

    void clear() { entries_.clear(); }

    /** Read-only view, oldest first (invariant checker). */
    const std::deque<Entry> &entries() const { return entries_; }

    /** @{ Statistics. */
    Counter forwards;
    Counter unknownAddrStalls;
    Counter searches; ///< CAM search energy events.
    /** @} */

  private:
    static Addr wordOf(Addr addr) { return addr & ~Addr{7}; }
    Entry *find(SeqNum seq);

    int capacity_;
    std::deque<Entry> entries_; ///< Oldest at front.
};

} // namespace rab

#endif // RAB_BACKEND_LSQ_HH
