/**
 * @file
 * The out-of-order core: a value-based, cycle-level model of the
 * pipeline in Figure 6 — fetch, decode, rename, select/wakeup,
 * register read, execute, commit — with the paper's runahead
 * extensions: poison bits in the physical register file, architectural
 * checkpointing, the runahead cache, and the runahead buffer feeding
 * rename when the front-end is clock-gated.
 *
 * Each tick() advances one core cycle, processing (in order) writeback,
 * commit / pseudo-retirement, runahead entry/exit, issue/execute,
 * rename/dispatch and fetch.
 */

#ifndef RAB_BACKEND_CORE_HH
#define RAB_BACKEND_CORE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "backend/dyn_uop.hh"
#include "backend/execute.hh"
#include "backend/lsq.hh"
#include "backend/rename.hh"
#include "backend/reservation_station.hh"
#include "backend/rob.hh"
#include "checker/invariant_checker.hh"
#include "fault/watchdog.hh"
#include "frontend/branch_predictor.hh"
#include "frontend/frontend.hh"
#include "isa/program.hh"
#include "memory/memory_system.hh"
#include "runahead/chain_analysis.hh"
#include "runahead/runahead_controller.hh"
#include "stats/stats.hh"

namespace rab
{

/** Core configuration (defaults reproduce Table 1). */
struct CoreConfig
{
    int fetchWidth = 4;
    int renameWidth = 4;
    int issueWidth = 4;
    int commitWidth = 4;
    int robEntries = 192;
    int rsEntries = 92;
    int sqEntries = 48;
    int numPhysRegs = 352;
    int memPorts = 2;          ///< L1D ports.
    int redirectPenalty = 2;   ///< Extra cycles on branch redirect.
    int exitPenalty = 4;       ///< Pipeline restore on runahead exit.
    Cycle stallEntryCycles = 4; ///< Back-pressure stall cycles before a
                                ///< non-full ROB may trigger runahead.
    int minRunaheadDistance = 20; ///< Skip entry when the blocking miss
                                  ///< returns sooner than this (a short
                                  ///< interval cannot repay the exit
                                  ///< flush).
    std::uint64_t deadlockCycles = 2'000'000;
    bool collectChainAnalysis = false;

    /** Skip fully-stalled cycle windows in run() by jumping straight
     *  to the next pipeline event (see Core::fastForwardHorizon).
     *  Certified behaviour-preserving by tests/test_fastforward.cc;
     *  disable (--no-fast-forward) for differential debugging. */
    bool fastForward = true;

    /** Route Rob::findOldestByPc / findProducer through the retained
     *  linear-scan reference paths instead of the incremental indexes
     *  (see Rob::setIndexed). Certified behaviour-preserving by
     *  tests/test_rob_index.cc; enable for differential debugging. */
    bool referenceScans = false;

    /** Invariant checking effort; the RAB_CHECK_LEVEL environment
     *  variable overrides this (the test suite forces "full"). */
    CheckLevel checkLevel = CheckLevel::kOff;

    /** What a detected invariant violation does: throw (tests) or
     *  route speculative-structure violations to the degradation
     *  ladder (production runs). RAB_CHECK_POLICY overrides this. */
    CheckPolicy checkPolicy = CheckPolicy::kThrow;

    /** Forward-progress watchdog (fault recovery layer 1). */
    WatchdogConfig watchdog{};

    FrontendConfig frontend{};
    BranchPredictorConfig bp{};
    RunaheadPolicy runahead{};
};

/** The core. */
class Core
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    Core(const CoreConfig &config, const Program *program,
         MemorySystem *mem);

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    /** Advance one cycle. */
    void tick();

    /** Run until @p max_instructions retire or @p max_cycles elapse. */
    void run(std::uint64_t max_instructions, std::uint64_t max_cycles);

    /** @{ External-driver interface. run() is written in terms of
     *  these three calls, so a lockstep multi-core driver
     *  (MultiSimulation) interleaving several cores reproduces the
     *  single-core control flow exactly: tick, then — only from a
     *  fully-stalled tick — propose a skip horizon and apply it. */
    /** A fast-forward window may only open from a fully-stalled tick;
     *  an active tick is near-certain to fail the quiescence checks
     *  anyway, and running one extra real tick at a window boundary
     *  is exact by the engine's own contract. */
    bool fastForwardEligible() const
    {
        return config_.fastForward && !pipelineActivity_;
    }
    /** Prove the core quiescent at the current cycle and return the
     *  earliest cycle at which any pipeline event can occur; 0 when
     *  not quiescent (tick normally). Only meaningful when
     *  fastForwardEligible(). */
    Cycle proposeFastForward();
    /** Jump to @p target (> cycle()+1), bulk-replicating every
     *  per-cycle statistic the skipped ticks would have produced. */
    void applyFastForward(Cycle target);
    /** @} */

    Cycle cycle() const { return cycle_; }
    std::uint64_t retired() const { return retired_; }
    double ipc() const;

    /** Hook invoked for every architecturally retired uop (testing /
     *  tracing). */
    using CommitHook = std::function<void(const DynUop &)>;
    void setCommitHook(CommitHook hook) { commitHook_ = std::move(hook); }

    /** Attach a fault injector (may be null): shared with the
     *  runahead controller (chain cache) and used directly for
     *  runahead-buffer uop corruption. */
    void setFaultInjector(FaultInjector *faults)
    {
        faults_ = faults;
        runaheadCtrl_.setFaultInjector(faults);
    }

    /** @{ Component access (tests, figures, energy model). */
    RunaheadController &runahead() { return runaheadCtrl_; }
    const RunaheadController &runahead() const { return runaheadCtrl_; }
    ForwardProgressWatchdog &watchdog() { return watchdog_; }
    const ForwardProgressWatchdog &watchdog() const { return watchdog_; }
    InvariantChecker &checker() { return *checker_; }
    const InvariantChecker &checker() const { return *checker_; }
    Frontend &frontend() { return *frontend_; }
    BranchPredictor &branchPredictor() { return bp_; }
    ChainAnalysis &chainAnalysis() { return chainAnalysis_; }
    FunctionalMemory &memImage() { return funcMem_; }
    MemorySystem &memory() { return *mem_; }
    const CoreConfig &config() const { return config_; }
    StatGroup &stats() { return statGroup_; }
    /** @} */

    /** Architectural value of @p reg (committed state). */
    std::uint64_t archReg(ArchReg reg) const;

    /** @{ Scheduler/LSQ event counts (energy model inputs). */
    std::uint64_t rsInsertCount() const { return rs_.inserts.value(); }
    std::uint64_t rsWakeupCount() const { return rs_.wakeups.value(); }
    std::uint64_t sqSearchCount() const { return sq_.searches.value(); }
    /** @} */

    /** @{ Statistics (also energy events). */
    Counter committedUops;     ///< Architecturally retired.
    Counter pseudoRetiredUops; ///< Retired during runahead.
    Counter renamedUops;
    Counter issuedUops;
    Counter issuedMemUops;
    Counter prfReads;
    Counter prfWrites;
    Counter robWrites;
    Counter robReads;
    Counter memStallCycles;    ///< Zero-commit cycles blocked on an
                               ///< outstanding LLC miss (Fig. 1).
    Counter stallLoadOther;    ///< Zero-commit: head load, not an LLC
                               ///< miss (L1/LLC latency, replay).
    Counter stallExec;         ///< Zero-commit: head non-load pending.
    Counter stallEmptyRob;     ///< Zero-commit: ROB empty (refill).
    Counter robFullCycles;
    Counter squashedUops;
    Counter fig2MissTotal;     ///< Normal-mode demand load LLC misses.
    Counter fig2MissSrcOnChip; ///< ... whose source data was on-chip.
    Counter loadsForwarded;
    Counter runaheadCacheForwards;
    Counter loadQueueRetries;  ///< Loads re-issued: memory queue
                               ///< rejected the access.
    Counter storeQueueRetries; ///< Store commits retried likewise.
    Counter memFaultRetries;   ///< Retries caused by an injected
                               ///< fault (drop budget exhausted).
    Counter watchdogFlushes;   ///< Watchdog-driven recovery flushes.
    /** @} */

    /** @{ Fast-forward engine statistics. Registered under their own
     *  "fastforward" child group: these are the only counters allowed
     *  to differ between fast-forwarded and tick-by-tick runs, and the
     *  differential test excludes exactly that subtree. */
    Counter ffWindows;       ///< Quiescent windows skipped.
    Counter ffSkippedCycles; ///< Cycles covered by those windows.
    /** @} */

  private:
    /** @{ Pipeline stages, called by tick() in this order. */
    void doWriteback(Cycle now);
    void doCommit(Cycle now);
    void doRunaheadControl(Cycle now);
    void doIssue(Cycle now);
    void doRename(Cycle now);
    /** @} */

    /** @{ Issue helpers. */
    void issueCompute(int slot, DynUop &uop, Cycle now);
    void issueLoad(int slot, DynUop &uop, Cycle now);
    void issueStore(int slot, DynUop &uop, Cycle now);
    /** @} */

    void resolveBranch(int slot, DynUop &uop, Cycle now);
    void squashYoungerThan(int slot, SeqNum seq);

    /** Write @p reg and wake reservation-station entries waiting on
     *  it. Every PhysRegFile::write() in the core goes through here so
     *  the event-driven wakeup list stays exact. */
    void writePhysReg(PhysReg reg, std::uint64_t value, bool poisoned,
                      bool off_chip);

    void enterRunahead(const EntryDecision &decision, Cycle now);
    void exitRunahead(Cycle now);
    void resetArchState();

    /** @{ Watchdog recovery: abandon all in-flight speculative work
     *  and restart from committed architectural state. */
    void recoverFromWatchdog(Cycle now);
    void flushToArchState(Cycle now);
    /** @} */

    bool inRunahead() const { return runaheadCtrl_.inRunahead(); }
    RunaheadMode mode() const { return runaheadCtrl_.mode(); }

    /** @{ Fast-forward engine (see run()). The horizon query proves
     *  the core quiescent at cycle_ and returns the earliest cycle at
     *  which any pipeline event can occur (0: not quiescent, tick
     *  normally); fastForwardTo() jumps there, bulk-replicating every
     *  per-cycle statistic the skipped ticks would have produced. */
    Cycle fastForwardHorizon();
    void fastForwardTo(Cycle target);
    /** @} */

    /** decideEntry denial memo: while the pipeline is fully stalled
     *  the controller's inputs are frozen, so a refused runahead entry
     *  stays refused until the ROB head changes, any stage makes
     *  progress, or the degradation ladder moves. Skipping the
     *  re-evaluation keeps per-episode counters (CAM searches,
     *  suppression/no-chain counts, fault-RNG draws) identical between
     *  fast-forwarded and tick-by-tick runs. */
    bool entryDenialValid() const;
    std::uint64_t ladderTransitions() const;

    CoreConfig config_;
    const Program *program_;
    MemorySystem *mem_;

    FunctionalMemory funcMem_;
    BranchPredictor bp_;
    std::unique_ptr<Frontend> frontend_;

    PhysRegFile prf_;
    Rat rat_;
    std::array<std::uint64_t, kNumArchRegs> archValues_{};

    Rob rob_;
    ReservationStation rs_;
    StoreQueue sq_;
    WritebackQueue wbq_;
    IssuePorts ports_;

    RunaheadController runaheadCtrl_;
    ForwardProgressWatchdog watchdog_;
    FaultInjector *faults_ = nullptr;
    ChainAnalysis chainAnalysis_;
    ArchCheckpoint checkpoint_;
    std::unique_ptr<InvariantChecker> checker_; ///< After the structures
                                                ///< it watches.

    Cycle cycle_ = 0;
    SeqNum seqCounter_ = 0;
    std::uint64_t retired_ = 0;
    std::uint64_t fetchedInstrNum_ = 0; ///< Normal-mode renamed uops.
    std::uint64_t retiredAtEntry_ = 0;
    std::uint64_t pseudoRetiredInterval_ = 0;
    Cycle lastCommitCycle_ = 0;
    Cycle stallCyclesSinceCommit_ = 0;
    bool renameProgress_ = false;

    /** @{ decideEntry denial memo (see entryDenialValid()). */
    bool entryDenied_ = false;
    SeqNum entryDeniedSeq_ = kNoSeqNum;
    std::uint64_t entryDeniedLadderSteps_ = 0;
    /** @} */
    bool pipelineActivity_ = false; ///< Any stage progressed this tick.
    Pc resumePc_ = 0; ///< Next-to-commit PC; watchdog restart point
                      ///< when the ROB has already drained.

    CommitHook commitHook_;
    StatGroup statGroup_;
    StatGroup ffStatGroup_; ///< "fastforward" child (see ffWindows).
};

} // namespace rab

#endif // RAB_BACKEND_CORE_HH
