#include "backend/rob.hh"

#include "common/logging.hh"

namespace rab
{

Rob::Rob(int capacity)
    : capacity_(capacity)
{
    if (capacity <= 0)
        fatal("Rob: bad capacity %d", capacity);
    entries_.resize(capacity);
    live_.assign(capacity, false);
}

int
Rob::push(DynUop &&uop)
{
    if (full())
        panic("Rob: push when full");
    const int slot = (head_ + size_) % capacity_;
    entries_[slot] = std::move(uop);
    live_[slot] = true;
    ++size_;
    return slot;
}

DynUop &
Rob::head()
{
    if (empty())
        panic("Rob: head of empty buffer");
    return entries_[head_];
}

const DynUop &
Rob::head() const
{
    if (empty())
        panic("Rob: head of empty buffer");
    return entries_[head_];
}

void
Rob::popHead()
{
    if (empty())
        panic("Rob: popHead of empty buffer");
    live_[head_] = false;
    head_ = (head_ + 1) % capacity_;
    --size_;
}

int
Rob::tailSlot() const
{
    if (empty())
        return -1;
    return (head_ + size_ - 1) % capacity_;
}

void
Rob::popTail()
{
    if (empty())
        panic("Rob: popTail of empty buffer");
    live_[tailSlot()] = false;
    --size_;
}

DynUop &
Rob::slot(int phys_slot)
{
    if (phys_slot < 0 || phys_slot >= capacity_ || !live_[phys_slot])
        panic("Rob: access to dead slot %d", phys_slot);
    return entries_[phys_slot];
}

const DynUop &
Rob::slot(int phys_slot) const
{
    if (phys_slot < 0 || phys_slot >= capacity_ || !live_[phys_slot])
        panic("Rob: access to dead slot %d", phys_slot);
    return entries_[phys_slot];
}

bool
Rob::validSlot(int phys_slot, SeqNum seq) const
{
    return phys_slot >= 0 && phys_slot < capacity_ && live_[phys_slot]
        && entries_[phys_slot].seq == seq;
}

bool
Rob::liveSlot(int phys_slot) const
{
    return live_[phys_slot];
}

int
Rob::logicalToSlot(int logical) const
{
    if (logical < 0 || logical >= size_)
        panic("Rob: bad logical index %d (size %d)", logical, size_);
    return (head_ + logical) % capacity_;
}

int
Rob::findOldestByPc(Pc pc, SeqNum after_seq) const
{
    for (int i = 0; i < size_; ++i) {
        const int slot = (head_ + i) % capacity_;
        const DynUop &uop = entries_[slot];
        if (uop.seq > after_seq && uop.pc == pc)
            return slot;
    }
    return -1;
}

int
Rob::findProducer(ArchReg reg, SeqNum before_seq) const
{
    for (int i = size_ - 1; i >= 0; --i) {
        const int slot = (head_ + i) % capacity_;
        const DynUop &uop = entries_[slot];
        if (uop.seq < before_seq && uop.sop.dest == reg)
            return slot;
    }
    return -1;
}

void
Rob::clear()
{
    head_ = 0;
    size_ = 0;
    live_.assign(capacity_, false);
}

} // namespace rab
