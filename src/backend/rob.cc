#include "backend/rob.hh"

#include <cstdint>

#include "common/logging.hh"

namespace rab
{

Rob::Rob(int capacity)
    : capacity_(capacity)
{
    if (capacity <= 0)
        fatal("Rob: bad capacity %d", capacity);
    entries_.resize(capacity);
    live_.assign(capacity, false);
    pcLinks_.assign(capacity, SlotLinks{});
    regLinks_.assign(capacity, SlotLinks{});
    regIndex_.assign(kNumArchRegs, ListEnds{});
    pcCellOf_.assign(capacity, -1);
    // A window's working set repeats PCs heavily (loops); start with
    // room for one distinct PC per slot at <= 50% load.
    std::size_t cells = 2;
    while (cells < static_cast<std::size_t>(capacity) * 2)
        cells *= 2;
    pcCells_.assign(cells, PcCell{});
    pcMask_ = cells - 1;
}

std::size_t
Rob::pcHash(Pc pc)
{
    // Fibonacci multiplicative hash with a xor-fold so high key bits
    // still influence the masked result.
    std::uint64_t h = static_cast<std::uint64_t>(pc)
        * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    return static_cast<std::size_t>(h);
}

int
Rob::pcFind(Pc pc) const
{
    for (std::size_t i = pcHash(pc) & pcMask_;;
         i = (i + 1) & pcMask_) {
        const PcCell &cell = pcCells_[i];
        if (!cell.used)
            return -1;
        if (cell.pc == pc)
            return static_cast<int>(i);
    }
}

int
Rob::pcFindOrInsert(Pc pc)
{
    for (std::size_t i = pcHash(pc) & pcMask_;;
         i = (i + 1) & pcMask_) {
        PcCell &cell = pcCells_[i];
        if (cell.used) {
            if (cell.pc == pc)
                return static_cast<int>(i);
            continue;
        }
        if (pcUsed_ * 2 >= pcCells_.size()) {
            pcGrow();
            return pcFindOrInsert(pc);
        }
        cell.used = true;
        cell.pc = pc;
        cell.ends = ListEnds{};
        ++pcUsed_;
        return static_cast<int>(i);
    }
}

void
Rob::pcGrow()
{
    // Growth is rare (the table only ever accumulates the program's
    // distinct PCs), so re-probing every live slot afterwards to
    // refresh the cached cell indices is cheap.
    std::vector<PcCell> old;
    old.swap(pcCells_);
    pcCells_.assign(old.size() * 2, PcCell{});
    pcMask_ = pcCells_.size() - 1;
    for (const PcCell &cell : old) {
        if (!cell.used)
            continue;
        for (std::size_t i = pcHash(cell.pc) & pcMask_;;
             i = (i + 1) & pcMask_) {
            if (pcCells_[i].used)
                continue;
            pcCells_[i] = cell;
            break;
        }
    }
    for (int i = 0; i < size_; ++i) {
        const int slot = wrapSlot(head_ + i);
        pcCellOf_[slot] = pcFind(entries_[slot].pc);
    }
}

void
Rob::listAppend(ListEnds &ends, std::vector<SlotLinks> &links, int slot)
{
    links[slot].prev = ends.back;
    links[slot].next = -1;
    if (ends.back >= 0)
        links[ends.back].next = slot;
    else
        ends.front = slot;
    ends.back = slot;
}

void
Rob::listRemove(ListEnds &ends, std::vector<SlotLinks> &links, int slot)
{
    const SlotLinks l = links[slot];
    if (l.prev >= 0)
        links[l.prev].next = l.next;
    else
        ends.front = l.next;
    if (l.next >= 0)
        links[l.next].prev = l.prev;
    else
        ends.back = l.prev;
    links[slot] = SlotLinks{};
}

void
Rob::indexInsert(int slot)
{
    const DynUop &uop = entries_[slot];
    // Pushes arrive in strictly increasing seq order and removals only
    // happen at the head or tail, so appending at the back keeps every
    // per-key list age-sorted (oldest at front).
    const int cell = pcFindOrInsert(uop.pc);
    pcCellOf_[slot] = cell;
    listAppend(pcCells_[cell].ends, pcLinks_, slot);
    const ArchReg dest = uop.sop.dest;
    if (dest < kNumArchRegs)
        listAppend(regIndex_[dest], regLinks_, slot);
}

void
Rob::indexRemove(int slot)
{
    const DynUop &uop = entries_[slot];
    const int cell = pcCellOf_[slot];
    if (cell < 0 || !pcCells_[cell].used
        || pcCells_[cell].pc != uop.pc) {
        panic("Rob: slot %d (pc %llu) missing from the PC index", slot,
              (unsigned long long)uop.pc);
    }
    listRemove(pcCells_[cell].ends, pcLinks_, slot);
    pcCellOf_[slot] = -1;
    const ArchReg dest = uop.sop.dest;
    if (dest < kNumArchRegs)
        listRemove(regIndex_[dest], regLinks_, slot);
}

int
Rob::push(DynUop &&uop)
{
    if (full())
        panic("Rob: push when full");
    const int slot = wrapSlot(head_ + size_);
    entries_[slot] = std::move(uop);
    live_[slot] = true;
    ++size_;
    indexInsert(slot);
    return slot;
}

DynUop &
Rob::beginPush()
{
    if (full())
        panic("Rob: push when full");
    const int slot = wrapSlot(head_ + size_);
    entries_[slot] = DynUop{};
    return entries_[slot];
}

int
Rob::finishPush()
{
    const int slot = wrapSlot(head_ + size_);
    live_[slot] = true;
    ++size_;
    indexInsert(slot);
    return slot;
}

DynUop &
Rob::head()
{
    if (empty())
        panic("Rob: head of empty buffer");
    return entries_[head_];
}

const DynUop &
Rob::head() const
{
    if (empty())
        panic("Rob: head of empty buffer");
    return entries_[head_];
}

void
Rob::popHead()
{
    if (empty())
        panic("Rob: popHead of empty buffer");
    indexRemove(head_);
    live_[head_] = false;
    head_ = wrapSlot(head_ + 1);
    --size_;
}

int
Rob::tailSlot() const
{
    if (empty())
        return -1;
    return wrapSlot(head_ + size_ - 1);
}

void
Rob::popTail()
{
    if (empty())
        panic("Rob: popTail of empty buffer");
    const int tail = tailSlot();
    indexRemove(tail);
    live_[tail] = false;
    --size_;
}

DynUop &
Rob::slot(int phys_slot)
{
    if (phys_slot < 0 || phys_slot >= capacity_ || !live_[phys_slot])
        panic("Rob: access to dead slot %d", phys_slot);
    return entries_[phys_slot];
}

const DynUop &
Rob::slot(int phys_slot) const
{
    if (phys_slot < 0 || phys_slot >= capacity_ || !live_[phys_slot])
        panic("Rob: access to dead slot %d", phys_slot);
    return entries_[phys_slot];
}

bool
Rob::validSlot(int phys_slot, SeqNum seq) const
{
    return phys_slot >= 0 && phys_slot < capacity_ && live_[phys_slot]
        && entries_[phys_slot].seq == seq;
}

bool
Rob::liveSlot(int phys_slot) const
{
    return live_[phys_slot];
}

int
Rob::logicalToSlot(int logical) const
{
    if (logical < 0 || logical >= size_)
        panic("Rob: bad logical index %d (size %d)", logical, size_);
    return wrapSlot(head_ + logical);
}

int
Rob::findOldestByPcIndexed(Pc pc, SeqNum after_seq) const
{
    const int cell = pcFind(pc);
    if (cell < 0)
        return -1;
    // The list is age-sorted; skip the prefix at or below after_seq.
    for (int slot = pcCells_[cell].ends.front; slot >= 0;
         slot = pcLinks_[slot].next) {
        if (entries_[slot].seq > after_seq)
            return slot;
    }
    return -1;
}

int
Rob::findProducerIndexed(ArchReg reg, SeqNum before_seq) const
{
    if (reg >= kNumArchRegs) {
        // Unindexed key (kNoArchReg or out of range): no caller asks
        // for these, but fall back to the reference scan so the two
        // forms can never diverge.
        return findProducerScan(reg, before_seq);
    }
    // Youngest-first: skip the suffix at or above before_seq.
    for (int slot = regIndex_[reg].back; slot >= 0;
         slot = regLinks_[slot].prev) {
        if (entries_[slot].seq < before_seq)
            return slot;
    }
    return -1;
}

int
Rob::findOldestByPcScan(Pc pc, SeqNum after_seq) const
{
    for (int i = 0; i < size_; ++i) {
        const int slot = wrapSlot(head_ + i);
        const DynUop &uop = entries_[slot];
        if (uop.seq > after_seq && uop.pc == pc)
            return slot;
    }
    return -1;
}

int
Rob::findProducerScan(ArchReg reg, SeqNum before_seq) const
{
    for (int i = size_ - 1; i >= 0; --i) {
        const int slot = wrapSlot(head_ + i);
        const DynUop &uop = entries_[slot];
        if (uop.seq < before_seq && uop.sop.dest == reg)
            return slot;
    }
    return -1;
}

void
Rob::clear()
{
    // Reset only the lists the live entries touch: PC cells persist
    // (clear() runs at every runahead exit, so dropping the table here
    // would churn probe chains on the hot path).
    for (int i = 0; i < size_; ++i) {
        const int slot = wrapSlot(head_ + i);
        const DynUop &uop = entries_[slot];
        pcCells_[pcCellOf_[slot]].ends = ListEnds{};
        pcCellOf_[slot] = -1;
        const ArchReg dest = uop.sop.dest;
        if (dest < kNumArchRegs)
            regIndex_[dest] = ListEnds{};
        pcLinks_[slot] = SlotLinks{};
        regLinks_[slot] = SlotLinks{};
    }
    head_ = 0;
    size_ = 0;
    live_.assign(capacity_, false);
}

} // namespace rab
