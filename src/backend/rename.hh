/**
 * @file
 * Register rename machinery: physical register file (with poison bits,
 * as traditional runahead requires), free list, and register alias
 * table with checkpoint support.
 */

#ifndef RAB_BACKEND_RENAME_HH
#define RAB_BACKEND_RENAME_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/program.hh"
#include "stats/stats.hh"

namespace rab
{

/** Physical register file with ready/poison/provenance bits. */
class PhysRegFile
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit PhysRegFile(int num_regs);

    int size() const { return static_cast<int>(regs_.size()); }
    int freeCount() const { return static_cast<int>(freeList_.size()); }

    /** Allocate a register; panics when the free list is empty. */
    PhysReg alloc();
    bool canAlloc() const { return !freeList_.empty(); }

    /** Return a register to the free list. */
    void free(PhysReg reg);

    /** @{ Value / status access. */
    std::uint64_t value(PhysReg reg) const;
    bool ready(PhysReg reg) const;
    bool poisoned(PhysReg reg) const;
    bool offChip(PhysReg reg) const;
    bool allocated(PhysReg reg) const;

    /** Write a computed value and mark the register ready. */
    void write(PhysReg reg, std::uint64_t value, bool poisoned,
               bool off_chip);

    /** Mark not-ready (at rename of the producing uop). */
    void markPending(PhysReg reg);

    /** Directly set the poison bit (runahead entry poisons the
     *  blocking load's destination). */
    void setPoisoned(PhysReg reg, bool poisoned);
    /** @} */

    /** Free every register (used on full-pipeline flushes such as
     *  runahead exit; the core re-allocates the architectural set). */
    void resetAll();

  private:
    struct Reg
    {
        std::uint64_t value = 0;
        bool ready = true;
        bool poisoned = false;
        bool offChip = false;
        bool allocated = false;
    };

    void check(PhysReg reg) const;

    std::vector<Reg> regs_;
    std::vector<PhysReg> freeList_;
};

/** Architectural-register → physical-register map with checkpoints. */
class Rat
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    Rat();

    PhysReg map(ArchReg reg) const;
    void setMap(ArchReg reg, PhysReg phys);

    /** Full table snapshot (cheap: kNumArchRegs entries). */
    std::array<PhysReg, kNumArchRegs> snapshot() const { return map_; }
    void restore(const std::array<PhysReg, kNumArchRegs> &snapshot);

  private:
    std::array<PhysReg, kNumArchRegs> map_;
};

/**
 * Architectural checkpoint taken at runahead entry: per-arch-reg value,
 * poison state discarded (registers are clean at a commit boundary).
 */
struct ArchCheckpoint
{
    std::array<std::uint64_t, kNumArchRegs> values{};
    std::uint64_t branchHistory = 0;
    std::vector<Pc> ras;
    Pc resumePc = 0;
    bool valid = false;
};

} // namespace rab

#endif // RAB_BACKEND_RENAME_HH
