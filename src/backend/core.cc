#include "backend/core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "isa/functional.hh"

namespace rab
{

Core::Core(const CoreConfig &config, const Program *program,
           MemorySystem *mem)
    : config_(config), program_(program), mem_(mem),
      bp_(config.bp),
      prf_(config.numPhysRegs),
      rob_(config.robEntries),
      rs_(config.rsEntries),
      sq_(config.sqEntries),
      ports_(config.issueWidth, config.memPorts),
      runaheadCtrl_(config.runahead),
      watchdog_(config.watchdog),
      statGroup_("core")
{
    if (!program_ || program_->empty())
        fatal("core: empty program");
    if (!mem_)
        fatal("core: no memory system");

    if (program_->memoryImage())
        funcMem_.setBackground(program_->memoryImage());

    frontend_ = std::make_unique<Frontend>(config_.frontend, program_,
                                           &bp_, mem_);

    resetArchState();

    CheckerContext checker_ctx;
    checker_ctx.rob = &rob_;
    checker_ctx.sq = &sq_;
    checker_ctx.prf = &prf_;
    checker_ctx.rat = &rat_;
    checker_ctx.runahead = &runaheadCtrl_;
    checker_ctx.program = program_;
    checker_ctx.archValues = &archValues_;
    checker_ = std::make_unique<InvariantChecker>(
        checkLevelFromEnv(config_.checkLevel), checker_ctx);
    checker_->setPolicy(checkPolicyFromEnv(config_.checkPolicy));
    checker_->setDegradeSink([this](const InvariantViolation &) {
        runaheadCtrl_.noteSpeculativeFault();
    });
    runaheadCtrl_.setChecker(checker_.get());

    statGroup_.addCounter("committed_uops", &committedUops,
                          "architecturally retired uops");
    statGroup_.addCounter("pseudo_retired_uops", &pseudoRetiredUops,
                          "uops pseudo-retired during runahead");
    statGroup_.addCounter("renamed_uops", &renamedUops, "uops renamed");
    statGroup_.addCounter("issued_uops", &issuedUops, "uops issued");
    statGroup_.addCounter("issued_mem_uops", &issuedMemUops,
                          "memory uops issued");
    statGroup_.addCounter("prf_reads", &prfReads, "PRF read events");
    statGroup_.addCounter("prf_writes", &prfWrites, "PRF write events");
    statGroup_.addCounter("rob_writes", &robWrites, "ROB dispatch writes");
    statGroup_.addCounter("rob_reads", &robReads, "ROB retire reads");
    statGroup_.addCounter("mem_stall_cycles", &memStallCycles,
                          "zero-commit cycles blocked on an LLC miss");
    statGroup_.addCounter("stall_load_other", &stallLoadOther,
                          "zero-commit cycles on non-miss head load");
    statGroup_.addCounter("stall_exec", &stallExec,
                          "zero-commit cycles on non-load head");
    statGroup_.addCounter("stall_empty_rob", &stallEmptyRob,
                          "zero-commit cycles with an empty ROB");
    statGroup_.addCounter("rob_full_cycles", &robFullCycles,
                          "cycles with a full ROB");
    statGroup_.addCounter("squashed_uops", &squashedUops,
                          "uops squashed on mispredicts");
    statGroup_.addCounter("fig2_miss_total", &fig2MissTotal,
                          "normal-mode demand load LLC misses");
    statGroup_.addCounter("fig2_miss_src_on_chip", &fig2MissSrcOnChip,
                          "misses whose source data was on chip");
    statGroup_.addCounter("loads_forwarded", &loadsForwarded,
                          "loads forwarded from the store queue");
    statGroup_.addCounter("runahead_cache_forwards",
                          &runaheadCacheForwards,
                          "loads forwarded from the runahead cache");
    statGroup_.addCounter("load_queue_retries", &loadQueueRetries,
                          "loads re-issued after a queue rejection");
    statGroup_.addCounter("store_queue_retries", &storeQueueRetries,
                          "store commits retried after a rejection");
    statGroup_.addCounter("mem_fault_retries", &memFaultRetries,
                          "retries caused by injected memory faults");
    statGroup_.addCounter("watchdog_flushes", &watchdogFlushes,
                          "watchdog-driven recovery flushes");
    statGroup_.addCounter("rs_inserts", &rs_.inserts,
                          "reservation station inserts");
    statGroup_.addCounter("rs_wakeups", &rs_.wakeups,
                          "reservation station wakeup checks");
    statGroup_.addCounter("sq_forwards", &sq_.forwards,
                          "store queue forwards");
    statGroup_.addCounter("sq_searches", &sq_.searches,
                          "store queue CAM searches");

    bp_.regStats(&statGroup_);
    frontend_->regStats(&statGroup_);
    runaheadCtrl_.regStats(&statGroup_);
    watchdog_.regStats(&statGroup_);
    chainAnalysis_.regStats(&statGroup_);
    checker_->regStats(&statGroup_);
}

void
Core::resetArchState()
{
    for (ArchReg r = 0; r < kNumArchRegs; ++r) {
        const std::uint64_t value = program_->initialReg(r);
        const PhysReg pdst = prf_.alloc();
        prf_.write(pdst, value, /*poisoned=*/false, /*off_chip=*/false);
        rat_.setMap(r, pdst);
        archValues_[r] = value;
    }
}

std::uint64_t
Core::archReg(ArchReg reg) const
{
    if (reg >= kNumArchRegs)
        panic("Core::archReg: bad register %d", (int)reg);
    return archValues_[reg];
}

double
Core::ipc() const
{
    return cycle_ == 0 ? 0.0
        : static_cast<double>(retired_) / static_cast<double>(cycle_);
}

void
Core::tick()
{
    const Cycle now = cycle_;
    doWriteback(now);
    doCommit(now);
    doRunaheadControl(now);
    doIssue(now);
    doRename(now);
    frontend_->tick(now);
    runaheadCtrl_.tickCycle();
    checker_->onCycle(now);
    ++cycle_;

    // Forward-progress watchdog (fault recovery layer 1): bounded
    // recovery before the hard deadlock panic below can trigger.
    if (watchdog_.enabled()
        && watchdog_.shouldRecover(cycle_, lastCommitCycle_, retired_,
                                   checker_->stateDump())) {
        recoverFromWatchdog(cycle_);
    }

    if (cycle_ - lastCommitCycle_ > config_.deadlockCycles) {
        const DynUop *head = rob_.empty() ? nullptr : &rob_.head();
        panic("core deadlock at cycle %llu: no commit since %llu "
              "(rob %d/%d, rs %d, head pc %llu completed %d mode %d)",
              (unsigned long long)cycle_,
              (unsigned long long)lastCommitCycle_, rob_.size(),
              rob_.capacity(), rs_.size(),
              head ? (unsigned long long)head->pc : 0ull,
              head ? (int)head->completed : -1,
              (int)runaheadCtrl_.mode());
    }
}

void
Core::run(std::uint64_t max_instructions, std::uint64_t max_cycles)
{
    const std::uint64_t target = retired_ + max_instructions;
    const Cycle cycle_limit = cycle_ + max_cycles;
    while (retired_ < target && cycle_ < cycle_limit)
        tick();
}

// ---------------------------------------------------------------------
// Writeback
// ---------------------------------------------------------------------

void
Core::doWriteback(Cycle now)
{
    for (const WbEvent &ev : wbq_.popReady(now)) {
        if (!rob_.validSlot(ev.robSlot, ev.seq))
            continue; // Squashed or already pseudo-retired.
        DynUop &uop = rob_.slot(ev.robSlot);
        uop.executed = true;
        uop.completed = true;

        if (uop.sop.hasDest() && uop.pdst != kNoPhysReg) {
            const bool off_chip = uop.isLoad()
                ? (uop.llcMiss || uop.poisoned)
                : (uop.srcFromOffChip || uop.poisoned);
            prf_.write(uop.pdst, uop.result, uop.poisoned, off_chip);
            ++prfWrites;
        }

        if (config_.collectChainAnalysis
            && mode() == RunaheadMode::kTraditional) {
            chainAnalysis_.recordExec(uop);
            // Chains that lead to cache misses: both fresh misses and
            // merges into fills a previous interval started (the chain
            // still produced an off-chip access).
            if (uop.isLoad() && uop.offChipWait && uop.isRunahead)
                chainAnalysis_.recordMiss(uop);
        }

        if (uop.isControl())
            resolveBranch(ev.robSlot, uop, now);
    }
}

void
Core::resolveBranch(int slot, DynUop &uop, Cycle now)
{
    if (uop.poisoned) {
        // A poisoned branch cannot be verified: runahead follows the
        // predicted path.
        uop.actualTaken = uop.predTaken;
        uop.nextPc = uop.predTarget;
        return;
    }
    const bool mispredicted = uop.actualTaken != uop.predTaken
        || (uop.actualTaken && uop.nextPc != uop.predTarget);
    if (!mispredicted)
        return;

    ++bp_.mispredicts;
    uop.mispredicted = true;
    squashYoungerThan(slot, uop.seq);
    bp_.setHistory((uop.historySnapshot << 1)
                   | (uop.actualTaken ? 1 : 0));
    frontend_->redirect(uop.nextPc, now + 1 + config_.redirectPenalty);
    // Normalise so a replayed writeback does not re-trigger recovery.
    uop.predTaken = uop.actualTaken;
    uop.predTarget = uop.nextPc;
}

void
Core::squashYoungerThan(int slot, SeqNum seq)
{
    while (!rob_.empty()) {
        const int tail = rob_.tailSlot();
        if (tail == slot)
            break;
        DynUop &t = rob_.slot(tail);
        if (t.seq <= seq)
            break;
        if (t.sop.hasDest() && t.pdst != kNoPhysReg) {
            rat_.setMap(t.sop.dest, t.prevPdst);
            prf_.free(t.pdst);
        }
        rob_.popTail();
        ++squashedUops;
    }
    rs_.squashAfter(seq);
    sq_.squashAfter(seq);
}

// ---------------------------------------------------------------------
// Commit / pseudo-retirement
// ---------------------------------------------------------------------

void
Core::doCommit(Cycle now)
{
    const bool runahead = inRunahead();
    int commits = 0;
    for (int i = 0; i < config_.commitWidth && !rob_.empty(); ++i) {
        DynUop &head = rob_.head();
        if (!head.completed) {
            if (runahead && head.isLoad() && head.memIssued
                && head.offChipWait) {
                // Runahead pseudo-retires miss loads with a poisoned
                // destination instead of waiting for the data.
                if (head.pdst != kNoPhysReg) {
                    prf_.write(head.pdst, 0, /*poisoned=*/true,
                               /*off_chip=*/true);
                    ++prfWrites;
                }
                head.poisoned = true;
                head.executed = true;
                head.completed = true;
            } else {
                break;
            }
        }

        if (!runahead && head.isStore()) {
            checker_->onRealStore(head.effAddr);
            const AccessResult res =
                mem_->access(AccessType::kStore, head.effAddr, now,
                             /*runahead=*/false, head.pc);
            if (res.rejected) {
                // Memory queue full (or faulted): retry next cycle.
                ++storeQueueRetries;
                if (res.faulted)
                    ++memFaultRetries;
                break;
            }
            funcMem_.write(head.effAddr, head.result);
        }

        if (head.sop.hasDest() && head.prevPdst != kNoPhysReg)
            prf_.free(head.prevPdst);
        if (head.isStore())
            sq_.release(head.seq);
        if (head.sop.op == Opcode::kBranch && !head.poisoned) {
            bp_.update(head.pc, head.actualTaken, head.nextPc,
                       head.historySnapshot);
        }

        if (!runahead) {
            if (head.sop.hasDest())
                archValues_[head.sop.dest] = head.result;
            resumePc_ = head.isControl() ? head.nextPc : head.pc + 1;
            ++retired_;
            ++committedUops;
            if (commitHook_)
                commitHook_(head);
        } else {
            ++pseudoRetiredUops;
            ++pseudoRetiredInterval_;
        }
        checker_->onRetire(head, rob_.headSlot());
        ++robReads;
        rob_.popHead();
        ++commits;
    }

    if (commits > 0) {
        lastCommitCycle_ = now;
        stallCyclesSinceCommit_ = 0;
    } else {
        ++stallCyclesSinceCommit_;
        if (rob_.empty()) {
            ++stallEmptyRob;
        } else if (!runahead) {
            const DynUop &head = rob_.head();
            if (!head.completed && head.isLoad() && head.memIssued
                && head.offChipWait) {
                ++memStallCycles;
            } else if (!head.completed && head.isLoad()) {
                ++stallLoadOther;
            } else if (!head.completed) {
                ++stallExec;
            }
        }
    }
    if (rob_.full())
        ++robFullCycles;
}

// ---------------------------------------------------------------------
// Runahead entry / exit
// ---------------------------------------------------------------------

void
Core::doRunaheadControl(Cycle now)
{
    if (inRunahead()) {
        if (runaheadCtrl_.shouldExit(now))
            exitRunahead(now);
        return;
    }
    if (!config_.runahead.anyRunahead() || rob_.empty())
        return;

    DynUop &head = rob_.head();
    if (head.completed || !head.isLoad() || !head.memIssued
        || !head.offChipWait) {
        return;
    }
    // Not worth checkpointing if the data is about to arrive.
    if (head.readyAt <= now + config_.minRunaheadDistance)
        return;
    const bool back_pressure = rob_.full() || rs_.full()
        || (stallCyclesSinceCommit_ >= config_.stallEntryCycles
            && !renameProgress_);
    if (!back_pressure)
        return;

    const EntryDecision decision = runaheadCtrl_.decideEntry(
        rob_, sq_, head, fetchedInstrNum_, retired_);
    if (decision.enter)
        enterRunahead(decision, now);
}

void
Core::enterRunahead(const EntryDecision &decision, Cycle now)
{
    const DynUop &head = rob_.head();

    checkpoint_.values = archValues_;
    checkpoint_.branchHistory = head.historySnapshot;
    checkpoint_.ras = bp_.rasSnapshot();
    checkpoint_.resumePc = head.pc;
    checkpoint_.valid = true;
    retiredAtEntry_ = retired_;
    pseudoRetiredInterval_ = 0;

    runaheadCtrl_.enter(decision, now, head.readyAt, retired_);

    // Poison every in-flight LLC miss (including the blocking head):
    // runahead does not wait for off-chip data.
    for (int i = 0; i < rob_.size(); ++i) {
        DynUop &u = rob_.slot(rob_.logicalToSlot(i));
        if (u.isLoad() && u.memIssued && !u.completed
            && u.offChipWait) {
            if (u.pdst != kNoPhysReg) {
                prf_.write(u.pdst, 0, /*poisoned=*/true,
                           /*off_chip=*/true);
                ++prfWrites;
            }
            u.poisoned = true;
            u.executed = true;
            u.completed = true;
        }
    }

    if (decision.mode == RunaheadMode::kBuffer) {
        // The runahead buffer supplies rename; clock-gate the
        // front-end for the whole interval.
        frontend_->setGated(true);
    } else if (config_.collectChainAnalysis) {
        chainAnalysis_.beginInterval();
    }

    checker_->onRunaheadEnter(checkpoint_);
}

void
Core::exitRunahead(Cycle now)
{
    const RunaheadMode exit_mode = mode();
    if (exit_mode == RunaheadMode::kTraditional
        && config_.collectChainAnalysis) {
        chainAnalysis_.endInterval();
    }

    const std::uint64_t farthest = exit_mode == RunaheadMode::kTraditional
        ? retiredAtEntry_ + pseudoRetiredInterval_
        : retiredAtEntry_;
    runaheadCtrl_.exit(now, farthest);

    // Flush the whole pipeline and restore the checkpoint.
    rob_.clear();
    rs_.clear();
    sq_.clear();
    wbq_.clear();
    prf_.resetAll();
    for (ArchReg r = 0; r < kNumArchRegs; ++r) {
        const PhysReg pdst = prf_.alloc();
        prf_.write(pdst, checkpoint_.values[r], /*poisoned=*/false,
                   /*off_chip=*/false);
        rat_.setMap(r, pdst);
        archValues_[r] = checkpoint_.values[r];
    }
    bp_.setHistory(checkpoint_.branchHistory);
    bp_.rasRestore(checkpoint_.ras);
    frontend_->setGated(false);
    frontend_->redirect(checkpoint_.resumePc, now + config_.exitPenalty);
    checkpoint_.valid = false;

    checker_->onRunaheadExit(checkpoint_);
}

// ---------------------------------------------------------------------
// Watchdog recovery
// ---------------------------------------------------------------------

void
Core::recoverFromWatchdog(Cycle now)
{
    ++watchdogFlushes;
    if (inRunahead()) {
        // Runahead exit is already a full flush-and-restore to the
        // checkpoint; reuse it as the recovery action.
        exitRunahead(now);
    } else {
        flushToArchState(now);
    }
    // Count the flush as progress so the watchdog re-arms for a full
    // bound instead of re-firing every cycle.
    lastCommitCycle_ = now;
    stallCyclesSinceCommit_ = 0;
}

void
Core::flushToArchState(Cycle now)
{
    // The ROB head (oldest un-retired uop) is the restart point; if
    // the ROB already drained, resume after the last retirement.
    const Pc resume = rob_.empty() ? resumePc_ : rob_.head().pc;

    // Discard every in-flight structure. Nothing here has touched
    // architectural state: archValues_/funcMem_ only change at
    // commit, so refetching from `resume` replays deterministically.
    rob_.clear();
    rs_.clear();
    sq_.clear();
    wbq_.clear();
    prf_.resetAll();
    for (ArchReg r = 0; r < kNumArchRegs; ++r) {
        const PhysReg pdst = prf_.alloc();
        prf_.write(pdst, archValues_[r], /*poisoned=*/false,
                   /*off_chip=*/false);
        rat_.setMap(r, pdst);
    }
    frontend_->setGated(false);
    frontend_->redirect(resume, now + config_.exitPenalty);
}

// ---------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------

void
Core::doIssue(Cycle now)
{
    ports_.newCycle();
    const std::vector<int> selected =
        rs_.selectReady(rob_, prf_, config_.issueWidth);
    for (const int slot : selected) {
        DynUop &uop = rob_.slot(slot);
        const bool is_mem = uop.sop.isMem();
        if (is_mem ? !ports_.takeMem() : !ports_.takeAlu()) {
            rs_.reinsert(slot, uop.seq);
            continue;
        }

        uop.v1 = uop.psrc1 != kNoPhysReg ? prf_.value(uop.psrc1) : 0;
        uop.v2 = uop.psrc2 != kNoPhysReg ? prf_.value(uop.psrc2) : 0;
        prfReads += uop.sop.numSrcs();
        const bool poisoned =
            (uop.psrc1 != kNoPhysReg && prf_.poisoned(uop.psrc1))
            || (uop.psrc2 != kNoPhysReg && prf_.poisoned(uop.psrc2));
        uop.srcFromOffChip =
            (uop.psrc1 != kNoPhysReg && prf_.offChip(uop.psrc1))
            || (uop.psrc2 != kNoPhysReg && prf_.offChip(uop.psrc2));
        uop.poisoned = poisoned;
        uop.issued = true;
        ++issuedUops;
        if (is_mem)
            ++issuedMemUops;

        if (uop.isLoad())
            issueLoad(slot, uop, now);
        else if (uop.isStore())
            issueStore(slot, uop, now);
        else
            issueCompute(slot, uop, now);
    }
}

void
Core::issueCompute(int slot, DynUop &uop, Cycle now)
{
    const int latency = execLatency(uop.sop.op);
    if (uop.sop.op == Opcode::kBranch) {
        if (!uop.poisoned) {
            uop.actualTaken = evalBranch(uop.sop, uop.v1, uop.v2);
            uop.nextPc = uop.actualTaken ? uop.sop.target : uop.pc + 1;
        }
        // Poisoned branches resolve in resolveBranch as "predicted".
    } else if (uop.sop.op == Opcode::kJump) {
        uop.actualTaken = true;
        uop.nextPc = uop.sop.target;
    } else if (uop.sop.op != Opcode::kNop) {
        uop.result = uop.poisoned ? 0 : evalAlu(uop.sop, uop.v1, uop.v2);
    }
    wbq_.schedule(now + latency, slot, uop.seq);
}

void
Core::issueLoad(int slot, DynUop &uop, Cycle now)
{
    if (uop.poisoned) {
        // Poisoned address: propagate poison without touching memory.
        uop.result = 0;
        wbq_.schedule(now + 1, slot, uop.seq);
        return;
    }

    uop.effAddr = effectiveAddr(uop.sop, uop.v1);

    const SqSearch search = sq_.searchForLoad(uop.seq, uop.effAddr);
    if (search.kind == SqSearch::Kind::kUnknownAddr
        || search.kind == SqSearch::Kind::kNotReady) {
        rs_.reinsert(slot, uop.seq);
        return;
    }
    if (search.kind == SqSearch::Kind::kForward) {
        checker_->onForward(uop.seq, search.storeSeq);
        uop.result = search.data;
        uop.poisoned = search.poisoned;
        uop.forwarded = true;
        uop.memIssued = true;
        ++loadsForwarded;
        wbq_.schedule(now + 1, slot, uop.seq);
        return;
    }

    if (inRunahead()) {
        std::uint64_t data = 0;
        if (runaheadCtrl_.runaheadCache().read(uop.effAddr, data)) {
            uop.result = data;
            uop.memIssued = true;
            ++runaheadCacheForwards;
            wbq_.schedule(now + 1, slot, uop.seq);
            return;
        }
    }

    const AccessResult res =
        mem_->access(AccessType::kLoad, uop.effAddr, now, inRunahead(),
                     uop.pc);
    if (res.rejected) {
        ++loadQueueRetries;
        if (res.faulted)
            ++memFaultRetries;
        rs_.reinsert(slot, uop.seq);
        return;
    }
    uop.memIssued = true;
    uop.missIssueInstrNum = fetchedInstrNum_;
    uop.llcMiss = res.llcMiss;
    uop.offChipWait = res.llcMiss || res.pendingMiss;
    uop.readyAt = res.readyCycle;

    if (inRunahead()) {
        if (uop.offChipWait) {
            // Runahead does not wait for off-chip data: the request
            // itself is the prefetch (this is the generated MLP). A
            // merge into an in-flight fill poisons too but creates no
            // new parallelism.
            if (res.llcMiss)
                runaheadCtrl_.noteRunaheadMiss();
            uop.poisoned = true;
            uop.result = 0;
            wbq_.schedule(now + mem_->config().l1d.latency, slot,
                          uop.seq);
        } else {
            uop.result = funcMem_.read(uop.effAddr);
            wbq_.schedule(res.readyCycle, slot, uop.seq);
        }
        return;
    }

    uop.result = funcMem_.read(uop.effAddr);
    wbq_.schedule(res.readyCycle, slot, uop.seq);
    if (res.llcMiss) {
        ++fig2MissTotal;
        if (!uop.srcFromOffChip)
            ++fig2MissSrcOnChip;
    }
}

void
Core::issueStore(int slot, DynUop &uop, Cycle now)
{
    const bool addr_poisoned =
        uop.psrc1 != kNoPhysReg && prf_.poisoned(uop.psrc1);
    const bool data_poisoned =
        uop.psrc2 != kNoPhysReg && prf_.poisoned(uop.psrc2);

    if (addr_poisoned) {
        sq_.setAddress(uop.seq, 0, /*poisoned=*/true);
    } else {
        uop.effAddr = effectiveAddr(uop.sop, uop.v1);
        sq_.setAddress(uop.seq, uop.effAddr, /*poisoned=*/false);
    }
    sq_.setData(uop.seq, uop.v2, data_poisoned);
    uop.result = uop.v2;
    uop.poisoned = addr_poisoned || data_poisoned;

    if (inRunahead() && !uop.poisoned) {
        // Runahead stores must not become globally observable; they go
        // to the runahead cache for forwarding only.
        runaheadCtrl_.runaheadCache().write(uop.effAddr, uop.v2);
    }
    wbq_.schedule(now + 1, slot, uop.seq);
}

// ---------------------------------------------------------------------
// Rename / dispatch
// ---------------------------------------------------------------------

void
Core::doRename(Cycle now)
{
    renameProgress_ = false;
    const bool buffer_mode = mode() == RunaheadMode::kBuffer;
    if (buffer_mode && now < runaheadCtrl_.bufferIssueStart())
        return; // Chain generation still in progress.

    for (int i = 0; i < config_.renameWidth; ++i) {
        if (buffer_mode) {
            if (!runaheadCtrl_.buffer().hasOp())
                break;
        } else if (!frontend_->hasReady(now)) {
            break;
        }
        if (rob_.full() || rs_.full() || !prf_.canAlloc())
            break;

        DynUop du;
        if (buffer_mode) {
            const ChainOp &cop = runaheadCtrl_.buffer().peek();
            du.pc = cop.pc;
            du.sop = cop.sop;
            // Fault injection: flip fields of the buffer-supplied uop
            // (speculative only; discarded wholesale at runahead exit).
            if (faults_)
                faults_->maybeCorruptUop(du.sop);
        } else {
            const FetchedUop &fu = frontend_->peek();
            du.pc = fu.pc;
            du.sop = fu.sop;
            du.predTaken = fu.predTaken;
            du.predTarget = fu.predTarget;
            du.historySnapshot = fu.historySnapshot;
        }
        if (du.sop.isStore() && sq_.full())
            break;

        if (buffer_mode)
            runaheadCtrl_.buffer().advance();
        else
            frontend_->pop();

        du.seq = ++seqCounter_;
        du.isRunahead = inRunahead();
        du.fromRunaheadBuffer = buffer_mode;
        if (!inRunahead())
            du.instrNum = ++fetchedInstrNum_;
        else
            du.instrNum = fetchedInstrNum_;

        du.psrc1 = du.sop.src1 != kNoArchReg ? rat_.map(du.sop.src1)
                                             : kNoPhysReg;
        du.psrc2 = du.sop.src2 != kNoArchReg ? rat_.map(du.sop.src2)
                                             : kNoPhysReg;
        if (du.sop.hasDest()) {
            du.prevPdst = rat_.map(du.sop.dest);
            du.pdst = prf_.alloc();
            rat_.setMap(du.sop.dest, du.pdst);
        }
        ++renamedUops;

        const SeqNum seq = du.seq;
        const bool is_store = du.sop.isStore();
        const int slot = rob_.push(std::move(du));
        ++robWrites;
        if (is_store)
            sq_.allocate(seq, slot);
        rs_.insert(slot, seq);
        renameProgress_ = true;
    }
}

} // namespace rab
