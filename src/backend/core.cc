#include "backend/core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/profiler.hh"
#include "fault/fault_injector.hh"
#include "isa/functional.hh"

namespace rab
{

Core::Core(const CoreConfig &config, const Program *program,
           MemorySystem *mem)
    : config_(config), program_(program), mem_(mem),
      bp_(config.bp),
      prf_(config.numPhysRegs),
      rob_(config.robEntries),
      rs_(config.rsEntries),
      sq_(config.sqEntries),
      ports_(config.issueWidth, config.memPorts),
      runaheadCtrl_(config.runahead),
      watchdog_(config.watchdog),
      statGroup_("core"),
      ffStatGroup_("fastforward")
{
    if (!program_ || program_->empty())
        fatal("core: empty program");
    if (!mem_)
        fatal("core: no memory system");

    if (program_->memoryImage())
        funcMem_.setBackground(program_->memoryImage());

    rob_.setIndexed(!config_.referenceScans);

    frontend_ = std::make_unique<Frontend>(config_.frontend, program_,
                                           &bp_, mem_);

    if (config_.runahead.engine.enabled
        || config_.runahead.engine.instantiateInert) {
        // Continuous Runahead: the engine lives beside the memory
        // controller and reads values from the architectural image —
        // const, so it is prefetch-only by construction.
        mem_->enableChainEngine(config_.runahead.engine, &funcMem_);
    }

    resetArchState();

    CheckerContext checker_ctx;
    checker_ctx.rob = &rob_;
    checker_ctx.sq = &sq_;
    checker_ctx.prf = &prf_;
    checker_ctx.rat = &rat_;
    checker_ctx.runahead = &runaheadCtrl_;
    checker_ctx.program = program_;
    checker_ctx.archValues = &archValues_;
    checker_ctx.wbq = &wbq_;
    checker_ctx.frontend = frontend_.get();
    checker_ctx.rs = &rs_;
    checker_ctx.engine = mem_->chainEngine();
    checker_ = std::make_unique<InvariantChecker>(
        checkLevelFromEnv(config_.checkLevel), checker_ctx);
    checker_->setPolicy(checkPolicyFromEnv(config_.checkPolicy));
    checker_->setDegradeSink([this](const InvariantViolation &) {
        runaheadCtrl_.noteSpeculativeFault();
    });
    runaheadCtrl_.setChecker(checker_.get());

    statGroup_.addCounter("committed_uops", &committedUops,
                          "architecturally retired uops");
    statGroup_.addCounter("pseudo_retired_uops", &pseudoRetiredUops,
                          "uops pseudo-retired during runahead");
    statGroup_.addCounter("renamed_uops", &renamedUops, "uops renamed");
    statGroup_.addCounter("issued_uops", &issuedUops, "uops issued");
    statGroup_.addCounter("issued_mem_uops", &issuedMemUops,
                          "memory uops issued");
    statGroup_.addCounter("prf_reads", &prfReads, "PRF read events");
    statGroup_.addCounter("prf_writes", &prfWrites, "PRF write events");
    statGroup_.addCounter("rob_writes", &robWrites, "ROB dispatch writes");
    statGroup_.addCounter("rob_reads", &robReads, "ROB retire reads");
    statGroup_.addCounter("mem_stall_cycles", &memStallCycles,
                          "zero-commit cycles blocked on an LLC miss");
    statGroup_.addCounter("stall_load_other", &stallLoadOther,
                          "zero-commit cycles on non-miss head load");
    statGroup_.addCounter("stall_exec", &stallExec,
                          "zero-commit cycles on non-load head");
    statGroup_.addCounter("stall_empty_rob", &stallEmptyRob,
                          "zero-commit cycles with an empty ROB");
    statGroup_.addCounter("rob_full_cycles", &robFullCycles,
                          "cycles with a full ROB");
    statGroup_.addCounter("squashed_uops", &squashedUops,
                          "uops squashed on mispredicts");
    statGroup_.addCounter("fig2_miss_total", &fig2MissTotal,
                          "normal-mode demand load LLC misses");
    statGroup_.addCounter("fig2_miss_src_on_chip", &fig2MissSrcOnChip,
                          "misses whose source data was on chip");
    statGroup_.addCounter("loads_forwarded", &loadsForwarded,
                          "loads forwarded from the store queue");
    statGroup_.addCounter("runahead_cache_forwards",
                          &runaheadCacheForwards,
                          "loads forwarded from the runahead cache");
    statGroup_.addCounter("load_queue_retries", &loadQueueRetries,
                          "loads re-issued after a queue rejection");
    statGroup_.addCounter("store_queue_retries", &storeQueueRetries,
                          "store commits retried after a rejection");
    statGroup_.addCounter("mem_fault_retries", &memFaultRetries,
                          "retries caused by injected memory faults");
    statGroup_.addCounter("watchdog_flushes", &watchdogFlushes,
                          "watchdog-driven recovery flushes");
    statGroup_.addCounter("rs_inserts", &rs_.inserts,
                          "reservation station inserts");
    statGroup_.addCounter("rs_wakeups", &rs_.wakeups,
                          "reservation station wakeup checks");
    statGroup_.addCounter("sq_forwards", &sq_.forwards,
                          "store queue forwards");
    statGroup_.addCounter("sq_searches", &sq_.searches,
                          "store queue CAM searches");
    ffStatGroup_.addCounter("windows", &ffWindows,
                            "quiescent windows fast-forwarded");
    ffStatGroup_.addCounter("skipped_cycles", &ffSkippedCycles,
                            "cycles covered by fast-forward windows");
    statGroup_.addChild(&ffStatGroup_);

    bp_.regStats(&statGroup_);
    frontend_->regStats(&statGroup_);
    runaheadCtrl_.regStats(&statGroup_);
    watchdog_.regStats(&statGroup_);
    chainAnalysis_.regStats(&statGroup_);
    checker_->regStats(&statGroup_);
}

void
Core::resetArchState()
{
    for (ArchReg r = 0; r < kNumArchRegs; ++r) {
        const std::uint64_t value = program_->initialReg(r);
        const PhysReg pdst = prf_.alloc();
        writePhysReg(pdst, value, /*poisoned=*/false, /*off_chip=*/false);
        rat_.setMap(r, pdst);
        archValues_[r] = value;
    }
}

void
Core::writePhysReg(PhysReg reg, std::uint64_t value, bool poisoned,
                   bool off_chip)
{
    prf_.write(reg, value, poisoned, off_chip);
    rs_.notifyWritten(reg);
}

std::uint64_t
Core::archReg(ArchReg reg) const
{
    if (reg >= kNumArchRegs)
        panic("Core::archReg: bad register %d", (int)reg);
    return archValues_[reg];
}

double
Core::ipc() const
{
    return cycle_ == 0 ? 0.0
        : static_cast<double>(retired_) / static_cast<double>(cycle_);
}

void
Core::tick()
{
    const Cycle now = cycle_;
    pipelineActivity_ = false;
    {
        ProfScope prof(ProfPhase::kWriteback);
        doWriteback(now);
    }
    {
        ProfScope prof(ProfPhase::kCommit);
        doCommit(now);
    }
    {
        ProfScope prof(ProfPhase::kRunaheadCtl);
        doRunaheadControl(now);
    }
    {
        ProfScope prof(ProfPhase::kIssue);
        doIssue(now);
    }
    {
        ProfScope prof(ProfPhase::kRename);
        doRename(now);
    }
    {
        ProfScope prof(ProfPhase::kFetch);
        frontend_->tick(now);
    }
    runaheadCtrl_.tickCycle();
    {
        ProfScope prof(ProfPhase::kChecker);
        checker_->onCycle(now);
    }
    ++cycle_;

    // Any stage progress can change the runahead controller's entry
    // inputs (ROB/SQ contents, readiness), so the denial memo only
    // survives fully-stalled ticks.
    if (pipelineActivity_)
        entryDenied_ = false;

    // Forward-progress watchdog (fault recovery layer 1): bounded
    // recovery before the hard deadlock panic below can trigger. The
    // expired() pre-check keeps the diagnostic state dump (a multi-line
    // string build) off the per-cycle path: it is only materialized in
    // the rare cycle where the stall bound has actually been exceeded.
    if (watchdog_.expired(cycle_, lastCommitCycle_)
        && watchdog_.shouldRecover(cycle_, lastCommitCycle_, retired_,
                                   checker_->stateDump())) {
        recoverFromWatchdog(cycle_);
    }

    if (cycle_ - lastCommitCycle_ > config_.deadlockCycles) {
        const DynUop *head = rob_.empty() ? nullptr : &rob_.head();
        panic("core deadlock at cycle %llu: no commit since %llu "
              "(rob %d/%d, rs %d, head pc %llu completed %d mode %d)",
              (unsigned long long)cycle_,
              (unsigned long long)lastCommitCycle_, rob_.size(),
              rob_.capacity(), rs_.size(),
              head ? (unsigned long long)head->pc : 0ull,
              head ? (int)head->completed : -1,
              (int)runaheadCtrl_.mode());
    }
}

void
Core::run(std::uint64_t max_instructions, std::uint64_t max_cycles)
{
    const std::uint64_t target = retired_ + max_instructions;
    const Cycle cycle_limit = cycle_ + max_cycles;
    while (retired_ < target && cycle_ < cycle_limit) {
        tick();
        // Only look for a skippable window from a fully-stalled tick
        // (see fastForwardEligible): this gate can shorten a window by
        // at most one extra real tick, never change behaviour.
        if (!fastForwardEligible())
            continue;
        Cycle horizon = proposeFastForward();
        if (horizon > cycle_limit)
            horizon = cycle_limit;
        if (horizon > cycle_ + 1)
            applyFastForward(horizon);
    }
}

Cycle
Core::proposeFastForward()
{
    return fastForwardHorizon();
}

void
Core::applyFastForward(Cycle target)
{
    ProfScope prof(ProfPhase::kFastForward);
    checker_->onFastForward(cycle_, target);
    fastForwardTo(target);
}

// ---------------------------------------------------------------------
// Fast-forward engine
// ---------------------------------------------------------------------

Cycle
Core::fastForwardHorizon()
{
    const Cycle now = cycle_;

    // --- Quiescence: if any stage can do work at the very next tick,
    // --- there is nothing to skip.
    if (!rob_.empty()) {
        const DynUop &head = rob_.head();
        // Commit possible (including store commit-retry loops: those
        // touch the memory system every cycle and must tick normally).
        if (head.completed)
            return 0;
        // Runahead pseudo-retires blocked miss loads immediately.
        if (inRunahead() && head.isLoad() && head.memIssued
            && head.offChipWait) {
            return 0;
        }
    }
    if (!wbq_.empty() && wbq_.nextEventCycle() <= now)
        return 0;
    if (rs_.hasReady())
        return 0;

    // --- Horizon: earliest cycle at which any pipeline event can
    // --- occur. Every cap below is exact or conservative (too small
    // --- only costs a shorter skip, never correctness).

    // Deadlock panic and watchdog both fire at the tick that raises
    // (cycle - lastCommit) strictly above their bound; executing that
    // tick for real reproduces tick-by-tick behaviour exactly.
    Cycle horizon = lastCommitCycle_ + config_.deadlockCycles;
    if (watchdog_.enabled()) {
        const Cycle wd = lastCommitCycle_ + watchdog_.config().cycles;
        if (wd < horizon)
            horizon = wd;
    }

    if (!wbq_.empty()) {
        const Cycle wb = wbq_.nextEventCycle();
        if (wb < horizon)
            horizon = wb;
    }

    const bool structural_block =
        rob_.full() || rs_.full() || !prf_.canAlloc();

    // Rename source. Structural blocks (ROB/RS/PRF, store with a full
    // SQ) can only clear through commit or writeback events, which the
    // caps above already bound.
    if (mode() == RunaheadMode::kBuffer) {
        if (runaheadCtrl_.buffer().hasOp()) {
            const Cycle start = runaheadCtrl_.bufferIssueStart();
            if (now < start) {
                if (start < horizon)
                    horizon = start;
            } else if (!structural_block) {
                return 0;
            }
        }
    } else if (!frontend_->queueEmpty() && !structural_block
               && !(frontend_->peek().sop.isStore() && sq_.full())) {
        if (frontend_->hasReady(now))
            return 0;
        const Cycle fr = frontend_->frontReadyCycle();
        if (fr < horizon)
            horizon = fr;
    }

    // Fetch source: every fetch-capable cycle touches the I-cache, so
    // it is only skippable while gated, stalled, or queue-full (the
    // queue cannot drain during the window: rename is blocked above).
    if (!frontend_->gated()) {
        const Cycle stalled = frontend_->stalledUntil();
        if (stalled > now) {
            if (stalled < horizon)
                horizon = stalled;
        } else if (!frontend_->queueFull()) {
            return 0;
        }
    }

    if (inRunahead()) {
        // Exit fires at the first tick at or past blockingReady_.
        const Cycle exit_at = runaheadCtrl_.exitReadyAt();
        if (exit_at <= now)
            return 0;
        if (exit_at < horizon)
            horizon = exit_at;
    } else if (config_.runahead.anyRunahead() && !rob_.empty()) {
        // Entry eligibility: never skip past the tick where
        // decideEntry would run — its per-episode counters (and
        // fault-RNG draws) must match tick-by-tick execution.
        const DynUop &head = rob_.head();
        if (head.isLoad() && head.memIssued && head.offChipWait
            && !entryDenialValid()) {
            if (rob_.full() || rs_.full()) {
                if (head.readyAt > now + config_.minRunaheadDistance)
                    return 0;
                // Too close to the fill: entry declined before
                // decideEntry is consulted — no event to protect.
            } else {
                // Stall-counter path: doCommit increments the stall
                // counter before doRunaheadControl reads it, so the
                // tick at cycle c sees stallCyclesSinceCommit_ + (c -
                // now + 1).
                const Cycle stalled = stallCyclesSinceCommit_ + 1;
                Cycle fire = now
                    + (config_.stallEntryCycles > stalled
                           ? config_.stallEntryCycles - stalled
                           : 0);
                // renameProgress_ still holds last tick's value at the
                // first skipped tick only (doRename clears it later in
                // the same tick).
                if (fire == now && renameProgress_)
                    fire = now + 1;
                if (fire == now)
                    return 0;
                if (head.readyAt > fire + config_.minRunaheadDistance
                    && fire < horizon) {
                    horizon = fire;
                }
            }
        }
    }

    // Degradation-ladder probation: a re-enable step inside the window
    // would change controller behaviour; cap the skip below it so the
    // transition happens in a real tick.
    const std::uint64_t max_skip =
        runaheadCtrl_.ladder().maxSkippableCycles();
    if (max_skip < horizon - now)
        horizon = now + max_skip;

    // Memory-system events (fills, DRAM bank/bus frees) are consumed
    // lazily by later accesses, but bound the skip at the next one so
    // no window ever straddles a memory state change.
    const Cycle mem_next = mem_->nextEventCycle(now);
    if (mem_next > now && mem_next < horizon)
        horizon = mem_next;

    return horizon;
}

void
Core::fastForwardTo(Cycle target)
{
    const std::uint64_t delta = target - cycle_;

    // Replicate exactly what `delta` fully-stalled ticks would have
    // accumulated. The stall classification is frozen for the whole
    // window: nothing can complete, commit, issue or rename inside it.
    stallCyclesSinceCommit_ += delta;
    if (rob_.empty()) {
        stallEmptyRob += delta;
    } else if (!inRunahead()) {
        const DynUop &head = rob_.head();
        if (!head.completed && head.isLoad() && head.memIssued
            && head.offChipWait) {
            memStallCycles += delta;
        } else if (!head.completed && head.isLoad()) {
            stallLoadOther += delta;
        } else if (!head.completed) {
            stallExec += delta;
        }
    }
    if (rob_.full())
        robFullCycles += delta;

    // selectReady() counts one wakeup per resident entry per cycle
    // even when nothing issues.
    rs_.wakeups += static_cast<std::uint64_t>(rs_.size()) * delta;

    frontend_->accountSkippedCycles(cycle_, delta);
    runaheadCtrl_.accountSkippedCycles(delta);

    renameProgress_ = false;
    ++ffWindows;
    ffSkippedCycles += delta;
    cycle_ = target;
}

// ---------------------------------------------------------------------
// Writeback
// ---------------------------------------------------------------------

void
Core::doWriteback(Cycle now)
{
    for (const WbEvent &ev : wbq_.popReady(now)) {
        pipelineActivity_ = true;
        if (!rob_.validSlot(ev.robSlot, ev.seq))
            continue; // Squashed or already pseudo-retired.
        DynUop &uop = rob_.slot(ev.robSlot);
        uop.executed = true;
        uop.completed = true;

        if (uop.sop.hasDest() && uop.pdst != kNoPhysReg) {
            const bool off_chip = uop.isLoad()
                ? (uop.llcMiss || uop.poisoned)
                : (uop.srcFromOffChip || uop.poisoned);
            writePhysReg(uop.pdst, uop.result, uop.poisoned, off_chip);
            ++prfWrites;
        }

        if (config_.collectChainAnalysis
            && mode() == RunaheadMode::kTraditional) {
            chainAnalysis_.recordExec(uop);
            // Chains that lead to cache misses: both fresh misses and
            // merges into fills a previous interval started (the chain
            // still produced an off-chip access).
            if (uop.isLoad() && uop.offChipWait && uop.isRunahead)
                chainAnalysis_.recordMiss(uop);
        }

        if (uop.isControl())
            resolveBranch(ev.robSlot, uop, now);
    }
}

void
Core::resolveBranch(int slot, DynUop &uop, Cycle now)
{
    if (uop.poisoned) {
        // A poisoned branch cannot be verified: runahead follows the
        // predicted path.
        uop.actualTaken = uop.predTaken;
        uop.nextPc = uop.predTarget;
        return;
    }
    const bool mispredicted = uop.actualTaken != uop.predTaken
        || (uop.actualTaken && uop.nextPc != uop.predTarget);
    if (!mispredicted)
        return;

    ++bp_.mispredicts;
    uop.mispredicted = true;
    squashYoungerThan(slot, uop.seq);
    bp_.setHistory((uop.historySnapshot << 1)
                   | (uop.actualTaken ? 1 : 0));
    frontend_->redirect(uop.nextPc, now + 1 + config_.redirectPenalty);
    // Normalise so a replayed writeback does not re-trigger recovery.
    uop.predTaken = uop.actualTaken;
    uop.predTarget = uop.nextPc;
}

void
Core::squashYoungerThan(int slot, SeqNum seq)
{
    while (!rob_.empty()) {
        const int tail = rob_.tailSlot();
        if (tail == slot)
            break;
        DynUop &t = rob_.slot(tail);
        if (t.seq <= seq)
            break;
        if (t.sop.hasDest() && t.pdst != kNoPhysReg) {
            rat_.setMap(t.sop.dest, t.prevPdst);
            prf_.free(t.pdst);
        }
        rob_.popTail();
        ++squashedUops;
    }
    rs_.squashAfter(seq);
    sq_.squashAfter(seq);
}

// ---------------------------------------------------------------------
// Commit / pseudo-retirement
// ---------------------------------------------------------------------

void
Core::doCommit(Cycle now)
{
    const bool runahead = inRunahead();
    int commits = 0;
    for (int i = 0; i < config_.commitWidth && !rob_.empty(); ++i) {
        DynUop &head = rob_.head();
        if (!head.completed) {
            if (runahead && head.isLoad() && head.memIssued
                && head.offChipWait) {
                // Runahead pseudo-retires miss loads with a poisoned
                // destination instead of waiting for the data.
                if (head.pdst != kNoPhysReg) {
                    writePhysReg(head.pdst, 0, /*poisoned=*/true,
                                 /*off_chip=*/true);
                    ++prfWrites;
                }
                head.poisoned = true;
                head.executed = true;
                head.completed = true;
            } else {
                break;
            }
        }

        if (!runahead && head.isStore()) {
            checker_->onRealStore(head.effAddr);
            const AccessResult res =
                mem_->access(AccessType::kStore, head.effAddr, now,
                             /*runahead=*/false, head.pc);
            if (res.rejected) {
                // Memory queue full (or faulted): retry next cycle.
                ++storeQueueRetries;
                if (res.faulted)
                    ++memFaultRetries;
                break;
            }
            funcMem_.write(head.effAddr, head.result);
        }

        if (head.sop.hasDest() && head.prevPdst != kNoPhysReg)
            prf_.free(head.prevPdst);
        if (head.isStore())
            sq_.release(head.seq);
        if (head.sop.op == Opcode::kBranch && !head.poisoned) {
            bp_.update(head.pc, head.actualTaken, head.nextPc,
                       head.historySnapshot);
        }

        if (!runahead) {
            if (head.sop.hasDest())
                archValues_[head.sop.dest] = head.result;
            resumePc_ = head.isControl() ? head.nextPc : head.pc + 1;
            ++retired_;
            ++committedUops;
            if (commitHook_)
                commitHook_(head);
        } else {
            ++pseudoRetiredUops;
            ++pseudoRetiredInterval_;
        }
        checker_->onRetire(head, rob_.headSlot());
        ++robReads;
        rob_.popHead();
        ++commits;
    }

    if (commits > 0) {
        pipelineActivity_ = true;
        lastCommitCycle_ = now;
        stallCyclesSinceCommit_ = 0;
    } else {
        ++stallCyclesSinceCommit_;
        if (rob_.empty()) {
            ++stallEmptyRob;
        } else if (!runahead) {
            const DynUop &head = rob_.head();
            if (!head.completed && head.isLoad() && head.memIssued
                && head.offChipWait) {
                ++memStallCycles;
            } else if (!head.completed && head.isLoad()) {
                ++stallLoadOther;
            } else if (!head.completed) {
                ++stallExec;
            }
        }
    }
    if (rob_.full())
        ++robFullCycles;
}

// ---------------------------------------------------------------------
// Runahead entry / exit
// ---------------------------------------------------------------------

void
Core::doRunaheadControl(Cycle now)
{
    if (inRunahead()) {
        if (runaheadCtrl_.shouldExit(now))
            exitRunahead(now);
        return;
    }
    if (!config_.runahead.anyRunahead() || rob_.empty())
        return;

    DynUop &head = rob_.head();
    if (head.completed || !head.isLoad() || !head.memIssued
        || !head.offChipWait) {
        return;
    }
    // Not worth checkpointing if the data is about to arrive.
    if (head.readyAt <= now + config_.minRunaheadDistance)
        return;
    const bool back_pressure = rob_.full() || rs_.full()
        || (stallCyclesSinceCommit_ >= config_.stallEntryCycles
            && !renameProgress_);
    if (!back_pressure)
        return;

    // While the pipeline is fully stalled the controller sees frozen
    // inputs, so a denied entry decision is memoised instead of being
    // re-evaluated every cycle (see entryDenialValid()).
    if (entryDenialValid())
        return;

    const EntryDecision decision = runaheadCtrl_.decideEntry(
        rob_, sq_, head, fetchedInstrNum_, retired_);
    if (decision.enter) {
        enterRunahead(decision, now);
    } else {
        entryDenied_ = true;
        entryDeniedSeq_ = head.seq;
        entryDeniedLadderSteps_ = ladderTransitions();
    }
}

bool
Core::entryDenialValid() const
{
    return entryDenied_ && !rob_.empty()
        && rob_.head().seq == entryDeniedSeq_
        && ladderTransitions() == entryDeniedLadderSteps_;
}

std::uint64_t
Core::ladderTransitions() const
{
    const DegradationLadder &ladder = runaheadCtrl_.ladder();
    return ladder.degradeSteps.value() + ladder.reenableSteps.value();
}

void
Core::enterRunahead(const EntryDecision &decision, Cycle now)
{
    pipelineActivity_ = true;
    const DynUop &head = rob_.head();

    checkpoint_.values = archValues_;
    checkpoint_.branchHistory = head.historySnapshot;
    checkpoint_.ras = bp_.rasSnapshot();
    checkpoint_.resumePc = head.pc;
    checkpoint_.valid = true;
    retiredAtEntry_ = retired_;
    pseudoRetiredInterval_ = 0;

    runaheadCtrl_.enter(decision, now, head.readyAt, retired_);

    // Poison every in-flight LLC miss (including the blocking head):
    // runahead does not wait for off-chip data.
    for (int i = 0; i < rob_.size(); ++i) {
        DynUop &u = rob_.slot(rob_.logicalToSlot(i));
        if (u.isLoad() && u.memIssued && !u.completed
            && u.offChipWait) {
            if (u.pdst != kNoPhysReg) {
                writePhysReg(u.pdst, 0, /*poisoned=*/true,
                             /*off_chip=*/true);
                ++prfWrites;
            }
            u.poisoned = true;
            u.executed = true;
            u.completed = true;
        }
    }

    if (decision.mode == RunaheadMode::kBuffer) {
        // The runahead buffer supplies rename; clock-gate the
        // front-end for the whole interval.
        frontend_->setGated(true);
        if (ChainEngine *engine = mem_->chainEngine()) {
            // Continuous Runahead: the chain that blocked the window
            // keeps running at the memory controller after this
            // interval ends, seeded with the committed register state.
            engine->shipChain(head.pc, decision.chain, archValues_,
                              now);
        }
    } else if (config_.collectChainAnalysis) {
        chainAnalysis_.beginInterval();
    }

    checker_->onRunaheadEnter(checkpoint_);
}

void
Core::exitRunahead(Cycle now)
{
    pipelineActivity_ = true;
    const RunaheadMode exit_mode = mode();
    if (exit_mode == RunaheadMode::kTraditional
        && config_.collectChainAnalysis) {
        chainAnalysis_.endInterval();
    }

    const std::uint64_t farthest = exit_mode == RunaheadMode::kTraditional
        ? retiredAtEntry_ + pseudoRetiredInterval_
        : retiredAtEntry_;
    runaheadCtrl_.exit(now, farthest);

    // Flush the whole pipeline and restore the checkpoint.
    rob_.clear();
    rs_.clear();
    sq_.clear();
    wbq_.clear();
    prf_.resetAll();
    for (ArchReg r = 0; r < kNumArchRegs; ++r) {
        const PhysReg pdst = prf_.alloc();
        writePhysReg(pdst, checkpoint_.values[r], /*poisoned=*/false,
                     /*off_chip=*/false);
        rat_.setMap(r, pdst);
        archValues_[r] = checkpoint_.values[r];
    }
    bp_.setHistory(checkpoint_.branchHistory);
    bp_.rasRestore(checkpoint_.ras);
    frontend_->setGated(false);
    frontend_->redirect(checkpoint_.resumePc, now + config_.exitPenalty);
    checkpoint_.valid = false;

    checker_->onRunaheadExit(checkpoint_);
}

// ---------------------------------------------------------------------
// Watchdog recovery
// ---------------------------------------------------------------------

void
Core::recoverFromWatchdog(Cycle now)
{
    pipelineActivity_ = true;
    ++watchdogFlushes;
    if (inRunahead()) {
        // Runahead exit is already a full flush-and-restore to the
        // checkpoint; reuse it as the recovery action.
        exitRunahead(now);
    } else {
        flushToArchState(now);
    }
    // Count the flush as progress so the watchdog re-arms for a full
    // bound instead of re-firing every cycle.
    lastCommitCycle_ = now;
    stallCyclesSinceCommit_ = 0;
}

void
Core::flushToArchState(Cycle now)
{
    // The ROB head (oldest un-retired uop) is the restart point; if
    // the ROB already drained, resume after the last retirement.
    const Pc resume = rob_.empty() ? resumePc_ : rob_.head().pc;

    // Discard every in-flight structure. Nothing here has touched
    // architectural state: archValues_/funcMem_ only change at
    // commit, so refetching from `resume` replays deterministically.
    rob_.clear();
    rs_.clear();
    sq_.clear();
    wbq_.clear();
    prf_.resetAll();
    for (ArchReg r = 0; r < kNumArchRegs; ++r) {
        const PhysReg pdst = prf_.alloc();
        writePhysReg(pdst, archValues_[r], /*poisoned=*/false,
                     /*off_chip=*/false);
        rat_.setMap(r, pdst);
    }
    frontend_->setGated(false);
    frontend_->redirect(resume, now + config_.exitPenalty);
}

// ---------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------

void
Core::doIssue(Cycle now)
{
    ports_.newCycle();
    const std::vector<int> &selected =
        rs_.selectReady(config_.issueWidth);
    if (!selected.empty())
        pipelineActivity_ = true;
    for (const int slot : selected) {
        DynUop &uop = rob_.slot(slot);
        const bool is_mem = uop.sop.isMem();
        if (is_mem ? !ports_.takeMem() : !ports_.takeAlu()) {
            rs_.reinsert(slot, uop.seq, uop.psrc1, uop.psrc2, prf_);
            continue;
        }

        uop.v1 = uop.psrc1 != kNoPhysReg ? prf_.value(uop.psrc1) : 0;
        uop.v2 = uop.psrc2 != kNoPhysReg ? prf_.value(uop.psrc2) : 0;
        prfReads += uop.sop.numSrcs();
        const bool poisoned =
            (uop.psrc1 != kNoPhysReg && prf_.poisoned(uop.psrc1))
            || (uop.psrc2 != kNoPhysReg && prf_.poisoned(uop.psrc2));
        uop.srcFromOffChip =
            (uop.psrc1 != kNoPhysReg && prf_.offChip(uop.psrc1))
            || (uop.psrc2 != kNoPhysReg && prf_.offChip(uop.psrc2));
        uop.poisoned = poisoned;
        uop.issued = true;
        ++issuedUops;
        if (is_mem)
            ++issuedMemUops;

        if (uop.isLoad())
            issueLoad(slot, uop, now);
        else if (uop.isStore())
            issueStore(slot, uop, now);
        else
            issueCompute(slot, uop, now);
    }
}

void
Core::issueCompute(int slot, DynUop &uop, Cycle now)
{
    const int latency = execLatency(uop.sop.op);
    if (uop.sop.op == Opcode::kBranch) {
        if (!uop.poisoned) {
            uop.actualTaken = evalBranch(uop.sop, uop.v1, uop.v2);
            uop.nextPc = uop.actualTaken ? uop.sop.target : uop.pc + 1;
        }
        // Poisoned branches resolve in resolveBranch as "predicted".
    } else if (uop.sop.op == Opcode::kJump) {
        uop.actualTaken = true;
        uop.nextPc = uop.sop.target;
    } else if (uop.sop.op != Opcode::kNop) {
        uop.result = uop.poisoned ? 0 : evalAlu(uop.sop, uop.v1, uop.v2);
    }
    wbq_.schedule(now + latency, slot, uop.seq);
}

void
Core::issueLoad(int slot, DynUop &uop, Cycle now)
{
    if (uop.poisoned) {
        // Poisoned address: propagate poison without touching memory.
        uop.result = 0;
        wbq_.schedule(now + 1, slot, uop.seq);
        return;
    }

    uop.effAddr = effectiveAddr(uop.sop, uop.v1);

    const SqSearch search = sq_.searchForLoad(uop.seq, uop.effAddr);
    if (search.kind == SqSearch::Kind::kUnknownAddr
        || search.kind == SqSearch::Kind::kNotReady) {
        rs_.reinsert(slot, uop.seq, uop.psrc1, uop.psrc2, prf_);
        return;
    }
    if (search.kind == SqSearch::Kind::kForward) {
        checker_->onForward(uop.seq, search.storeSeq);
        uop.result = search.data;
        uop.poisoned = search.poisoned;
        uop.forwarded = true;
        uop.memIssued = true;
        ++loadsForwarded;
        wbq_.schedule(now + 1, slot, uop.seq);
        return;
    }

    if (inRunahead()) {
        std::uint64_t data = 0;
        if (runaheadCtrl_.runaheadCache().read(uop.effAddr, data)) {
            uop.result = data;
            uop.memIssued = true;
            ++runaheadCacheForwards;
            wbq_.schedule(now + 1, slot, uop.seq);
            return;
        }
    }

    const AccessResult res =
        mem_->access(AccessType::kLoad, uop.effAddr, now, inRunahead(),
                     uop.pc);
    if (res.rejected) {
        ++loadQueueRetries;
        if (res.faulted)
            ++memFaultRetries;
        rs_.reinsert(slot, uop.seq, uop.psrc1, uop.psrc2, prf_);
        return;
    }
    uop.memIssued = true;
    uop.missIssueInstrNum = fetchedInstrNum_;
    uop.llcMiss = res.llcMiss;
    uop.offChipWait = res.llcMiss || res.pendingMiss;
    uop.readyAt = res.readyCycle;

    if (inRunahead()) {
        if (uop.offChipWait) {
            // Runahead does not wait for off-chip data: the request
            // itself is the prefetch (this is the generated MLP). A
            // merge into an in-flight fill poisons too but creates no
            // new parallelism.
            if (res.llcMiss)
                runaheadCtrl_.noteRunaheadMiss();
            uop.poisoned = true;
            uop.result = 0;
            wbq_.schedule(now + mem_->config().l1d.latency, slot,
                          uop.seq);
        } else {
            uop.result = funcMem_.read(uop.effAddr);
            wbq_.schedule(res.readyCycle, slot, uop.seq);
        }
        return;
    }

    uop.result = funcMem_.read(uop.effAddr);
    wbq_.schedule(res.readyCycle, slot, uop.seq);
    if (res.llcMiss) {
        ++fig2MissTotal;
        if (!uop.srcFromOffChip)
            ++fig2MissSrcOnChip;
    }
}

void
Core::issueStore(int slot, DynUop &uop, Cycle now)
{
    const bool addr_poisoned =
        uop.psrc1 != kNoPhysReg && prf_.poisoned(uop.psrc1);
    const bool data_poisoned =
        uop.psrc2 != kNoPhysReg && prf_.poisoned(uop.psrc2);

    if (addr_poisoned) {
        sq_.setAddress(uop.seq, 0, /*poisoned=*/true);
    } else {
        uop.effAddr = effectiveAddr(uop.sop, uop.v1);
        sq_.setAddress(uop.seq, uop.effAddr, /*poisoned=*/false);
    }
    sq_.setData(uop.seq, uop.v2, data_poisoned);
    uop.result = uop.v2;
    uop.poisoned = addr_poisoned || data_poisoned;

    if (inRunahead() && !uop.poisoned) {
        // Runahead stores must not become globally observable; they go
        // to the runahead cache for forwarding only.
        runaheadCtrl_.runaheadCache().write(uop.effAddr, uop.v2);
    }
    wbq_.schedule(now + 1, slot, uop.seq);
}

// ---------------------------------------------------------------------
// Rename / dispatch
// ---------------------------------------------------------------------

void
Core::doRename(Cycle now)
{
    renameProgress_ = false;
    const bool buffer_mode = mode() == RunaheadMode::kBuffer;
    if (buffer_mode && now < runaheadCtrl_.bufferIssueStart())
        return; // Chain generation still in progress.

    for (int i = 0; i < config_.renameWidth; ++i) {
        if (buffer_mode) {
            if (!runaheadCtrl_.buffer().hasOp())
                break;
        } else if (!frontend_->hasReady(now)) {
            break;
        }
        if (rob_.full() || rs_.full() || !prf_.canAlloc())
            break;

        // Fill the ROB's tail entry in place: a DynUop is a couple of
        // cache lines, so a stack temporary moved in afterwards would
        // double the stores on the hottest loop in the simulator.
        DynUop &du = rob_.beginPush();
        if (buffer_mode) {
            const ChainOp &cop = runaheadCtrl_.buffer().peek();
            du.pc = cop.pc;
            du.sop = cop.sop;
            // Fault injection: flip fields of the buffer-supplied uop
            // (speculative only; discarded wholesale at runahead exit).
            if (faults_)
                faults_->maybeCorruptUop(du.sop);
        } else {
            const FetchedUop &fu = frontend_->peek();
            du.pc = fu.pc;
            du.sop = fu.sop;
            du.predTaken = fu.predTaken;
            du.predTarget = fu.predTarget;
            du.historySnapshot = fu.historySnapshot;
        }
        if (du.sop.isStore() && sq_.full())
            break; // Abandons the begun push; the slot stays dead.

        if (buffer_mode)
            runaheadCtrl_.buffer().advance();
        else
            frontend_->pop();

        du.seq = ++seqCounter_;
        du.isRunahead = inRunahead();
        du.fromRunaheadBuffer = buffer_mode;
        if (!inRunahead())
            du.instrNum = ++fetchedInstrNum_;
        else
            du.instrNum = fetchedInstrNum_;

        du.psrc1 = du.sop.src1 != kNoArchReg ? rat_.map(du.sop.src1)
                                             : kNoPhysReg;
        du.psrc2 = du.sop.src2 != kNoArchReg ? rat_.map(du.sop.src2)
                                             : kNoPhysReg;
        if (du.sop.hasDest()) {
            du.prevPdst = rat_.map(du.sop.dest);
            du.pdst = prf_.alloc();
            rat_.setMap(du.sop.dest, du.pdst);
        }
        ++renamedUops;

        const SeqNum seq = du.seq;
        const bool is_store = du.sop.isStore();
        const PhysReg psrc1 = du.psrc1;
        const PhysReg psrc2 = du.psrc2;
        const int slot = rob_.finishPush();
        ++robWrites;
        if (is_store)
            sq_.allocate(seq, slot);
        rs_.insert(slot, seq, psrc1, psrc2, prf_);
        renameProgress_ = true;
        pipelineActivity_ = true;
    }
}

} // namespace rab
