/**
 * @file
 * Forward-progress watchdog.
 *
 * Detects retirement stalls beyond a configurable cycle bound and
 * drives bounded recovery: the core responds to a fired watchdog by
 * flushing to architectural state (a safe point, by the same argument
 * that makes runahead exit safe) and refetching, instead of
 * livelocking on a wedged speculative structure or a memory request
 * whose response was lost. Repeated firings without any retirement in
 * between mean recovery is not helping; after a bounded number the
 * watchdog gives up with a structured WatchdogTimeout instead of
 * letting the simulation hang until the hard deadlock panic.
 */

#ifndef RAB_FAULT_WATCHDOG_HH
#define RAB_FAULT_WATCHDOG_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.hh"
#include "stats/stats.hh"

namespace rab
{

/** Watchdog configuration. */
struct WatchdogConfig
{
    /** Fire after this many cycles without a (pseudo-)retirement.
     *  0 disables the watchdog entirely (the hard deadlock panic in
     *  Core remains as the backstop). */
    std::uint64_t cycles = 0;

    /** Give up after this many consecutive firings with no retirement
     *  in between (recovery is clearly not restoring progress). */
    int giveUpAfter = 3;

    /** Total recovery budget across the whole run; 0 = unlimited. */
    int maxRecoveries = 0;
};

/** Structured give-up signal: the watchdog exhausted its recovery
 *  budget. Drivers catch this for a one-line diagnosis and a distinct
 *  exit code instead of a raw trace. */
class WatchdogTimeout : public std::runtime_error
{
  public:
    WatchdogTimeout(Cycle cycle, int recoveries, std::string detail);

    Cycle cycle() const { return cycle_; }
    int recoveries() const { return recoveries_; }
    const std::string &detail() const { return detail_; }

  private:
    Cycle cycle_;
    int recoveries_;
    std::string detail_;
};

/** The watchdog state machine. Owns no core state: the Core feeds it
 *  (cycle, last-commit cycle, retired count) and performs the actual
 *  flush when told to recover. */
class ForwardProgressWatchdog
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit ForwardProgressWatchdog(const WatchdogConfig &config);

    const WatchdogConfig &config() const { return config_; }
    bool enabled() const { return config_.cycles > 0; }
    int consecutiveFires() const { return consecutive_; }

    /** Pure stall-bound predicate (no state change): true when a
     *  shouldRecover() call right now would fire. Lets the caller skip
     *  building the diagnostic state dump on the per-cycle path —
     *  shouldRecover() needs it only when this is true. */
    bool expired(Cycle now, Cycle last_commit) const
    {
        return enabled() && now - last_commit > config_.cycles;
    }

    /**
     * Poll once per cycle. Returns true when the stall bound is
     * exceeded and the caller should attempt a recovery flush; throws
     * WatchdogTimeout when the recovery budget is exhausted.
     *
     * @param now         current cycle.
     * @param last_commit cycle of the most recent (pseudo-)retirement.
     * @param retired     architectural retirement count (progress
     *                    metric across recoveries).
     * @param state_dump  diagnostic state (from the invariant checker)
     *                    attached to the give-up error.
     */
    bool shouldRecover(Cycle now, Cycle last_commit,
                       std::uint64_t retired,
                       const std::string &state_dump);

    /** @{ Statistics. */
    Counter fires;      ///< Stall-bound expirations.
    Counter recoveries; ///< Recovery flushes granted.
    /** @} */

    void regStats(StatGroup *parent);

  private:
    WatchdogConfig config_;
    std::uint64_t lastFireRetired_ = 0;
    bool firedBefore_ = false;
    int consecutive_ = 0;
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_FAULT_WATCHDOG_HH
