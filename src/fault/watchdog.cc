#include "fault/watchdog.hh"

#include "common/logging.hh"

namespace rab
{

WatchdogTimeout::WatchdogTimeout(Cycle cycle, int recoveries,
                                 std::string detail)
    : std::runtime_error(strprintf(
          "watchdog gave up at cycle %llu after %d recoveries: %s",
          (unsigned long long)cycle, recoveries, detail.c_str())),
      cycle_(cycle), recoveries_(recoveries), detail_(std::move(detail))
{
}

ForwardProgressWatchdog::ForwardProgressWatchdog(
    const WatchdogConfig &config)
    : config_(config), statGroup_("watchdog")
{
    statGroup_.addCounter("fires", &fires,
                          "forward-progress stall bound expirations");
    statGroup_.addCounter("recoveries", &recoveries,
                          "recovery flushes granted");
}

bool
ForwardProgressWatchdog::shouldRecover(Cycle now, Cycle last_commit,
                                       std::uint64_t retired,
                                       const std::string &state_dump)
{
    if (!expired(now, last_commit))
        return false;

    ++fires;
    if (firedBefore_ && retired == lastFireRetired_)
        ++consecutive_;
    else
        consecutive_ = 1;
    firedBefore_ = true;
    lastFireRetired_ = retired;

    const int granted = static_cast<int>(recoveries.value());
    if (consecutive_ > config_.giveUpAfter
        || (config_.maxRecoveries > 0
            && granted >= config_.maxRecoveries)) {
        throw WatchdogTimeout(
            now, granted,
            strprintf("no retirement for %llu cycles "
                      "(%d consecutive recoveries ineffective); %s",
                      (unsigned long long)(now - last_commit),
                      consecutive_ - 1, state_dump.c_str()));
    }

    warn("watchdog: no retirement for %llu cycles at cycle %llu "
         "(fire %llu, consecutive %d); flushing to architectural "
         "state\n  %s",
         (unsigned long long)(now - last_commit),
         (unsigned long long)now, (unsigned long long)fires.value(),
         consecutive_, state_dump.c_str());
    ++recoveries;
    return true;
}

void
ForwardProgressWatchdog::regStats(StatGroup *parent)
{
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
