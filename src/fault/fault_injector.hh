/**
 * @file
 * Deterministic, seed-driven fault injection.
 *
 * The paper's correctness argument is that the runahead buffer and the
 * chain cache are purely speculative: a corrupt or stale chain can only
 * cost performance, never architectural state. The FaultInjector makes
 * that claim testable by deliberately corrupting the speculative and
 * memory layers on reproducible schedules — flipping fields of
 * chain-cache entries and runahead-buffer uops, dropping or delaying
 * DRAM responses, and transiently stalling the memory queue — so the
 * recovery layers (forward-progress watchdog, bounded memory retry,
 * the runahead degradation ladder) can be exercised and the
 * architectural-equivalence guarantee proven differentially.
 *
 * All randomness flows through one xorshift64* generator seeded from
 * FaultConfig::seed, so identical configurations inject identical fault
 * schedules.
 *
 * Corruptions are *structurally legal*: register ids stay within the
 * architectural file, chain PCs stay within the program, and opcode
 * classes are never changed. This models soft errors in the stored
 * fields themselves (wrong values of the right type), which is exactly
 * the class of fault the speculative-containment argument covers; a
 * bit flip that escaped the structure type entirely would be caught by
 * the sanitizer builds instead.
 */

#ifndef RAB_FAULT_FAULT_INJECTOR_HH
#define RAB_FAULT_FAULT_INJECTOR_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "isa/uop.hh"
#include "runahead/chain.hh"
#include "stats/stats.hh"

namespace rab
{

class ChainCache;

/** Fault-injection configuration. All rates are per-opportunity
 *  Bernoulli probabilities in [0, 1]; a rate of 0 disables that fault
 *  kind. The injector as a whole is inert unless enabled. */
struct FaultConfig
{
    bool enabled = false;
    std::uint64_t seed = 1;

    /** Corrupt a random live chain-cache entry (per entry decision). */
    double chainCacheRate = 0.0;

    /** Flip fields of a runahead-buffer uop as it enters rename. */
    double bufferUopRate = 0.0;

    /** Drop a DRAM response (per issue attempt); the memory system
     *  re-issues after a timeout with backoff, boundedly. */
    double dramDropRate = 0.0;

    /** Arbitrarily delay a DRAM response. */
    double dramDelayRate = 0.0;
    // rablint: cycle-ok (bounded fault-knob; applied via Cycle math)
    int dramDelayMaxCycles = 2'000; ///< Injected delays are in
                                    ///< [1, dramDelayMaxCycles].

    /** Open a transient memory-queue stall window (per LLC-miss
     *  allocation attempt) during which all allocations are rejected. */
    double memStallRate = 0.0;
    // rablint: cycle-ok (bounded fault-knob; applied via Cycle math)
    int memStallCycles = 200; ///< Stall window length.

    bool anySpeculative() const
    {
        return chainCacheRate > 0.0 || bufferUopRate > 0.0;
    }
    bool anyMemory() const
    {
        return dramDropRate > 0.0 || dramDelayRate > 0.0
            || memStallRate > 0.0;
    }

    /** Convenience: set every rate at once (rabsim --fault-rate). */
    void setAllRates(double rate)
    {
        chainCacheRate = rate;
        bufferUopRate = rate;
        dramDropRate = rate;
        dramDelayRate = rate;
        memStallRate = rate;
    }
};

/** The injector. One instance per Simulation, shared by the core side
 *  (chain cache, runahead buffer) and the memory side (DRAM, memory
 *  queue). */
class FaultInjector
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit FaultInjector(const FaultConfig &config);

    const FaultConfig &config() const { return config_; }
    bool enabled() const { return config_.enabled; }

    /** @{ Speculative-side hooks. */

    /** Maybe corrupt one live entry of @p cache in place. Returns true
     *  if a corruption was applied. */
    bool maybeCorruptChainCache(ChainCache &cache);

    /** Corrupt @p chain in place (unconditionally; rate already
     *  rolled). Keeps the chain non-empty and every field structurally
     *  legal. @p program_size bounds rewritten PCs (0 = leave PCs). */
    void corruptChain(DependenceChain &chain, std::size_t program_size);

    /** Maybe flip fields of a buffer-supplied uop entering rename.
     *  Returns true if the uop was altered. */
    bool maybeCorruptUop(Uop &sop);

    /** @} */

    /** @{ Memory-side hooks. */

    /** Roll the drop fault for one DRAM issue attempt. */
    bool dropDramResponse();

    /** Injected extra response latency (0 = none this access). */
    Cycle dramDelay();

    /** True while an injected memory-queue stall window is open at
     *  @p now; may deterministically open a new window. */
    bool memQueueStalled(Cycle now);

    /** @} */

    /** Total injections across every fault kind. */
    std::uint64_t totalInjected() const;

    /** @{ Statistics. */
    Counter chainCorruptions; ///< Chain-cache entries corrupted.
    Counter uopFlips;         ///< Runahead-buffer uops corrupted.
    Counter dramDrops;        ///< DRAM responses dropped.
    Counter dramDelays;       ///< DRAM responses delayed.
    Counter memStallWindows;  ///< Memory-queue stall windows opened.
    /** @} */

    StatGroup &stats() { return statGroup_; }
    void regStats(StatGroup *parent);

  private:
    void corruptUopFields(Uop &sop);

    FaultConfig config_;
    Rng rng_;
    Cycle stallUntil_ = 0;
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_FAULT_FAULT_INJECTOR_HH
