#include "fault/fault_injector.hh"

#include <algorithm>

#include "isa/program.hh"
#include "runahead/chain_cache.hh"

namespace rab
{

FaultInjector::FaultInjector(const FaultConfig &config)
    : config_(config), rng_(config.seed), statGroup_("faults")
{
    statGroup_.addCounter("chain_corruptions", &chainCorruptions,
                          "chain-cache entries corrupted");
    statGroup_.addCounter("uop_flips", &uopFlips,
                          "runahead-buffer uops corrupted");
    statGroup_.addCounter("dram_drops", &dramDrops,
                          "DRAM responses dropped");
    statGroup_.addCounter("dram_delays", &dramDelays,
                          "DRAM responses delayed");
    statGroup_.addCounter("mem_stall_windows", &memStallWindows,
                          "memory-queue stall windows opened");
}

// ---------------------------------------------------------------------
// Speculative side
// ---------------------------------------------------------------------

bool
FaultInjector::maybeCorruptChainCache(ChainCache &cache)
{
    if (!enabled() || !rng_.chance(config_.chainCacheRate))
        return false;
    // Choose uniformly among the live (valid, non-empty) entries so a
    // sparsely filled cache still gets corrupted at the full rate.
    const int slots = cache.entries();
    std::vector<DependenceChain *> live;
    for (int i = 0; i < slots; ++i) {
        DependenceChain *chain = cache.faultSlotChain(i);
        if (chain && !chain->empty())
            live.push_back(chain);
    }
    if (live.empty())
        return false;
    corruptChain(*live[rng_.range(live.size())], 0);
    ++chainCorruptions;
    return true;
}

void
FaultInjector::corruptChain(DependenceChain &chain,
                            std::size_t program_size)
{
    if (chain.empty())
        return;
    const std::size_t victim = rng_.range(chain.size());
    switch (rng_.range(4)) {
      case 0: // Flip fields of one op.
        corruptUopFields(chain[victim].sop);
        break;
      case 1: // Retarget one op's PC (stale-entry model).
        if (program_size > 0) {
            chain[victim].pc = rng_.range(program_size);
        } else if (chain.size() > 1) {
            chain[victim].pc = chain[rng_.range(chain.size())].pc;
        } else {
            corruptUopFields(chain[victim].sop);
        }
        break;
      case 2: // Swap two ops (breaks program order).
        if (chain.size() > 1) {
            std::swap(chain[victim],
                      chain[rng_.range(chain.size())]);
        } else {
            corruptUopFields(chain[victim].sop);
        }
        break;
      case 3: // Truncate (often drops the terminating load).
        if (chain.size() > 1)
            chain.resize(1 + rng_.range(chain.size() - 1));
        else
            corruptUopFields(chain[victim].sop);
        break;
    }
}

bool
FaultInjector::maybeCorruptUop(Uop &sop)
{
    if (!enabled() || !rng_.chance(config_.bufferUopRate))
        return false;
    corruptUopFields(sop);
    ++uopFlips;
    return true;
}

void
FaultInjector::corruptUopFields(Uop &sop)
{
    // Flip one field, keeping the uop structurally legal: registers
    // that exist stay within the architectural file, the opcode class
    // never changes, and absent sources stay absent (a load must keep
    // an address base; see the file comment).
    const auto random_reg = [&]() -> ArchReg {
        return static_cast<ArchReg>(rng_.range(kNumArchRegs));
    };
    for (int attempt = 0; attempt < 4; ++attempt) {
        switch (rng_.range(5)) {
          case 0:
            if (sop.src1 == kNoArchReg)
                continue;
            sop.src1 = random_reg();
            return;
          case 1:
            if (sop.src2 == kNoArchReg)
                continue;
            sop.src2 = random_reg();
            return;
          case 2:
            if (sop.dest == kNoArchReg)
                continue;
            sop.dest = random_reg();
            return;
          case 3:
            sop.imm ^= static_cast<std::int64_t>(
                1ll << rng_.range(16));
            return;
          case 4:
            if (sop.op != Opcode::kIntAlu)
                continue;
            sop.func = static_cast<AluFunc>(rng_.range(10));
            return;
        }
    }
    // Every rolled field was absent: fall back to the immediate, which
    // every uop carries.
    sop.imm ^= 1;
}

// ---------------------------------------------------------------------
// Memory side
// ---------------------------------------------------------------------

bool
FaultInjector::dropDramResponse()
{
    if (!enabled() || !rng_.chance(config_.dramDropRate))
        return false;
    ++dramDrops;
    return true;
}

Cycle
FaultInjector::dramDelay()
{
    if (!enabled() || config_.dramDelayMaxCycles <= 0
        || !rng_.chance(config_.dramDelayRate)) {
        return 0;
    }
    ++dramDelays;
    return 1 + rng_.range(static_cast<std::uint64_t>(
                   config_.dramDelayMaxCycles));
}

bool
FaultInjector::memQueueStalled(Cycle now)
{
    if (!enabled())
        return false;
    if (now < stallUntil_)
        return true;
    if (config_.memStallCycles > 0 && rng_.chance(config_.memStallRate)) {
        stallUntil_ = now + static_cast<Cycle>(config_.memStallCycles);
        ++memStallWindows;
        return true;
    }
    return false;
}

std::uint64_t
FaultInjector::totalInjected() const
{
    return chainCorruptions.value() + uopFlips.value()
        + dramDrops.value() + dramDelays.value()
        + memStallWindows.value();
}

void
FaultInjector::regStats(StatGroup *parent)
{
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
