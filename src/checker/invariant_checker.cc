#include "checker/invariant_checker.hh"

#include <algorithm>
#include <cstdlib>

#include "backend/dyn_uop.hh"
#include "backend/execute.hh"
#include "backend/lsq.hh"
#include "backend/reservation_station.hh"
#include "backend/rob.hh"
#include "common/logging.hh"
#include "frontend/frontend.hh"
#include "isa/program.hh"
#include "runahead/chain_engine.hh"
#include "runahead/runahead_controller.hh"

namespace rab
{

const char *
checkLevelName(CheckLevel level)
{
    switch (level) {
      case CheckLevel::kOff: return "off";
      case CheckLevel::kCheap: return "cheap";
      case CheckLevel::kFull: return "full";
    }
    return "?";
}

CheckLevel
parseCheckLevel(const std::string &name)
{
    if (name == "off")
        return CheckLevel::kOff;
    if (name == "cheap")
        return CheckLevel::kCheap;
    if (name == "full")
        return CheckLevel::kFull;
    fatal("unknown check level '%s' (off | cheap | full)", name.c_str());
}

CheckLevel
checkLevelFromEnv(CheckLevel fallback)
{
    const char *env = std::getenv("RAB_CHECK_LEVEL");
    if (!env || !*env)
        return fallback;
    return parseCheckLevel(env);
}

const char *
checkPolicyName(CheckPolicy policy)
{
    switch (policy) {
      case CheckPolicy::kThrow: return "throw";
      case CheckPolicy::kDegrade: return "degrade";
    }
    return "?";
}

CheckPolicy
parseCheckPolicy(const std::string &name)
{
    if (name == "throw")
        return CheckPolicy::kThrow;
    if (name == "degrade")
        return CheckPolicy::kDegrade;
    fatal("unknown check policy '%s' (throw | degrade)", name.c_str());
}

CheckPolicy
checkPolicyFromEnv(CheckPolicy fallback)
{
    const char *env = std::getenv("RAB_CHECK_POLICY");
    if (!env || !*env)
        return fallback;
    return parseCheckPolicy(env);
}

InvariantViolation::InvariantViolation(Cycle cycle, std::string module,
                                       std::string invariant,
                                       std::string detail)
    : std::runtime_error(strprintf(
          "invariant violation at cycle %llu [%s/%s]: %s",
          (unsigned long long)cycle, module.c_str(), invariant.c_str(),
          detail.c_str())),
      cycle_(cycle), module_(std::move(module)),
      invariant_(std::move(invariant)), detail_(std::move(detail))
{
}

InvariantChecker::InvariantChecker(CheckLevel level,
                                   const CheckerContext &ctx)
    : level_(level), ctx_(ctx), statGroup_("checker")
{
    if (ctx_.prf)
        refMarks_.assign(static_cast<std::size_t>(ctx_.prf->size()), 0);
}

bool
InvariantChecker::isSpeculativeModule(const char *module)
{
    // Violations in these modules concern speculative structures only:
    // the paper's containment argument guarantees they cannot have
    // corrupted architectural state, so a long run may degrade instead
    // of dying. "runahead" covers chain use, containment and
    // checkpoint discipline around the speculative interval.
    const std::string m = module;
    return m == "chain" || m == "chain_cache" || m == "runahead"
        || m == "engine";
}

void
InvariantChecker::violate(const char *module, const char *invariant,
                          std::string detail)
{
    ++violations;
    warn("invariant violation at cycle %llu [%s/%s]: %s\n  %s",
         (unsigned long long)now_, module, invariant, detail.c_str(),
         stateDump().c_str());
    InvariantViolation violation(now_, module, invariant,
                                 std::move(detail));
    if (policy_ == CheckPolicy::kDegrade && sink_
        && isSpeculativeModule(module)) {
        ++violationsRouted;
        sink_(violation);
        return;
    }
    throw violation;
}

std::string
InvariantChecker::stateDump() const
{
    std::string dump = strprintf("cycle %llu", (unsigned long long)now_);
    if (ctx_.rob) {
        dump += strprintf(", rob %d/%d", ctx_.rob->size(),
                          ctx_.rob->capacity());
        if (!ctx_.rob->empty()) {
            const DynUop &head = ctx_.rob->head();
            dump += strprintf(" (head seq %llu pc %llu completed %d)",
                              (unsigned long long)head.seq,
                              (unsigned long long)head.pc,
                              (int)head.completed);
        }
    }
    if (ctx_.sq)
        dump += strprintf(", sq %d/%d", ctx_.sq->size(),
                          ctx_.sq->capacity());
    if (ctx_.prf)
        dump += strprintf(", prf free %d/%d", ctx_.prf->freeCount(),
                          ctx_.prf->size());
    if (ctx_.runahead)
        dump += strprintf(", mode %d",
                          (int)ctx_.runahead->mode());
    return dump;
}

// ---------------------------------------------------------------------
// Per-cycle driver
// ---------------------------------------------------------------------

void
InvariantChecker::onCycle(Cycle now)
{
    now_ = now;
    if (!enabled())
        return;
    spotChecks();
    if (level_ == CheckLevel::kFull) {
        if (inRunahead_)
            checkArchStateFrozen();
        if (now % kFullScanPeriod == 0)
            fullScan();
    }
}

void
InvariantChecker::onFastForward(Cycle from, Cycle to)
{
    now_ = from;
    if (!enabled() || to <= from)
        return;

    // Legality invariant: every event source must be provably idle for
    // the whole window [from, to). Each condition is re-derived here
    // from the watched structures, independently of the core's own
    // horizon computation, so a bug in either is caught by the other.
    if (ctx_.rob && !ctx_.rob->empty() && ctx_.rob->head().completed) {
        violate("fastforward", "head-committable",
                strprintf("skip of [%llu, %llu) with a completed ROB "
                          "head (seq %llu)",
                          (unsigned long long)from,
                          (unsigned long long)to,
                          (unsigned long long)ctx_.rob->head().seq));
    }
    if (ctx_.wbq && !ctx_.wbq->empty()
        && ctx_.wbq->nextEventCycle() < to) {
        violate("fastforward", "writeback-in-window",
                strprintf("writeback at %llu inside skip [%llu, %llu)",
                          (unsigned long long)ctx_.wbq->nextEventCycle(),
                          (unsigned long long)from,
                          (unsigned long long)to));
    }
    if (ctx_.rs && ctx_.rob && ctx_.prf
        && ctx_.rs->anyReady(*ctx_.rob, *ctx_.prf)) {
        violate("fastforward", "issue-ready",
                strprintf("issue-ready RS entry at the start of skip "
                          "[%llu, %llu)",
                          (unsigned long long)from,
                          (unsigned long long)to));
    }
    if (ctx_.runahead && ctx_.runahead->inRunahead()
        && ctx_.runahead->exitReadyAt() < to) {
        violate("fastforward", "runahead-exit-in-window",
                strprintf("runahead exit at %llu inside skip "
                          "[%llu, %llu)",
                          (unsigned long long)ctx_.runahead->exitReadyAt(),
                          (unsigned long long)from,
                          (unsigned long long)to));
    }
    if (ctx_.frontend) {
        const Frontend &fe = *ctx_.frontend;
        if (!fe.gated() && !fe.queueFull()
            && std::max(from, fe.stalledUntil()) < to) {
            violate("fastforward", "fetch-in-window",
                    strprintf("fetch possible at %llu inside skip "
                              "[%llu, %llu)",
                              (unsigned long long)std::max(
                                  from, fe.stalledUntil()),
                              (unsigned long long)from,
                              (unsigned long long)to));
        }
        // Rename feasibility: a decoded uop becoming rename-ready
        // inside the window is an event unless rename is structurally
        // blocked for the whole window.
        const bool buffer_mode = ctx_.runahead
            && ctx_.runahead->mode() == RunaheadMode::kBuffer;
        const bool structural_block =
            (ctx_.rob && ctx_.rob->full()) || (ctx_.rs && ctx_.rs->full())
            || (ctx_.prf && !ctx_.prf->canAlloc());
        if (!buffer_mode && !fe.queueEmpty() && !structural_block
            && fe.frontReadyCycle() < to
            && !(fe.peek().sop.isStore() && ctx_.sq && ctx_.sq->full())) {
            violate("fastforward", "rename-in-window",
                    strprintf("front-end uop rename-ready at %llu "
                              "inside skip [%llu, %llu)",
                              (unsigned long long)fe.frontReadyCycle(),
                              (unsigned long long)from,
                              (unsigned long long)to));
        }
        if (buffer_mode && ctx_.runahead->buffer().hasOp()
            && !structural_block
            && std::max(from, ctx_.runahead->bufferIssueStart()) < to) {
            violate("fastforward", "buffer-rename-in-window",
                    strprintf("runahead-buffer rename possible inside "
                              "skip [%llu, %llu)",
                              (unsigned long long)from,
                              (unsigned long long)to));
        }
    }

    // Replicate the accounting tick-by-tick onCycle() calls would have
    // produced over the window: the state is frozen, so one spot check
    // (and one full scan when the window covers any) audits the same
    // state every skipped cycle would have.
    spotChecks();
    if (level_ == CheckLevel::kFull) {
        if (inRunahead_)
            checkArchStateFrozen();
        const Cycle period = kFullScanPeriod;
        const std::uint64_t scans = (to + period - 1) / period
            - (from + period - 1) / period;
        if (scans > 0) {
            fullScan();
            checksRun += scans - 1;
        }
    }
}

void
InvariantChecker::spotChecks()
{
    if (ctx_.rob) {
        const Rob &rob = *ctx_.rob;
        if (rob.size() < 0 || rob.size() > rob.capacity()) {
            violate("rob", "size-bounds",
                    strprintf("size %d outside [0, %d]", rob.size(),
                              rob.capacity()));
        }
        if (!rob.empty()) {
            const SeqNum head_seq = rob.head().seq;
            const SeqNum tail_seq = rob.slot(rob.tailSlot()).seq;
            if (head_seq > tail_seq) {
                violate("rob", "age-order",
                        strprintf("head seq %llu younger than tail %llu",
                                  (unsigned long long)head_seq,
                                  (unsigned long long)tail_seq));
            }
        }
    }
    if (ctx_.sq && ctx_.sq->size() > ctx_.sq->capacity()) {
        violate("lsq", "size-bounds",
                strprintf("sq size %d exceeds capacity %d",
                          ctx_.sq->size(), ctx_.sq->capacity()));
    }
    if (ctx_.prf && ctx_.prf->freeCount() > ctx_.prf->size()) {
        violate("rename", "free-list-bounds",
                strprintf("free list %d exceeds file size %d",
                          ctx_.prf->freeCount(), ctx_.prf->size()));
    }
    if (ctx_.runahead
        && ctx_.runahead->inRunahead() != inRunahead_) {
        violate("runahead", "mode-transition",
                strprintf("controller mode %d but checker saw no %s "
                          "transition hook",
                          (int)ctx_.runahead->mode(),
                          inRunahead_ ? "exit" : "entry"));
    }
}

void
InvariantChecker::fullScan()
{
    checkRobOrder();
    checkRobIndexes();
    checkStoreQueue();
    checkRenameState();
    if (ctx_.engine) {
        // Continuous Runahead containment: the engine may only ever
        // prefetch — stores stay in its slot buffers and every fill it
        // tracks stays inside the owning core's namespaced slice.
        std::string why;
        if (!ctx_.engine->auditContainment(&why))
            violate("engine", "prefetch-only", std::move(why));
    }
    ++checksRun;
}

// ---------------------------------------------------------------------
// Invariant 1: ROB age order / head-only retirement
// ---------------------------------------------------------------------

void
InvariantChecker::checkRobOrder()
{
    if (!ctx_.rob)
        return;
    const Rob &rob = *ctx_.rob;
    SeqNum prev = 0;
    for (int i = 0; i < rob.size(); ++i) {
        const int slot = rob.logicalToSlot(i);
        if (!rob.validSlot(slot, rob.slot(slot).seq)) {
            violate("rob", "live-entries",
                    strprintf("logical entry %d (slot %d) is dead", i,
                              slot));
        }
        const SeqNum seq = rob.slot(slot).seq;
        if (i > 0 && seq <= prev) {
            violate("rob", "age-order",
                    strprintf("entry %d seq %llu not older than "
                              "entry %d seq %llu",
                              i - 1, (unsigned long long)prev, i,
                              (unsigned long long)seq));
        }
        prev = seq;
    }
}

void
InvariantChecker::checkRobIndexes()
{
    if (!ctx_.rob)
        return;
    const Rob &rob = *ctx_.rob;

    // Cross-validate the incremental PC / producer indexes against the
    // retained linear scans (the RS hasReady/anyReady pattern): for
    // every live entry, the indexed PC CAM queried just below its seq
    // must return that entry, and the producer CAM must agree with the
    // scan for each register the entry reads or writes.
    for (int i = 0; i < rob.size(); ++i) {
        const int slot = rob.logicalToSlot(i);
        const DynUop &uop = rob.slot(slot);

        const int by_pc = uop.seq == 0
            ? slot // seq 0 has no "just below" query; core seqs start at 1.
            : rob.findOldestByPcIndexed(uop.pc, uop.seq - 1);
        if (by_pc != slot) {
            violate("rob", "index-coherence",
                    strprintf("pc index finds slot %d for pc %llu "
                              "after seq %llu, expected slot %d",
                              by_pc, (unsigned long long)uop.pc,
                              (unsigned long long)(uop.seq - 1), slot));
        }

        const ArchReg regs[3] = {uop.sop.src1, uop.sop.src2,
                                 uop.sop.dest};
        for (const ArchReg reg : regs) {
            if (reg == kNoArchReg)
                continue;
            const int indexed = rob.findProducerIndexed(reg, uop.seq);
            const int scanned = rob.findProducerScan(reg, uop.seq);
            if (indexed != scanned) {
                violate("rob", "index-coherence",
                        strprintf("producer index finds slot %d for "
                                  "r%d before seq %llu, scan finds %d",
                                  indexed, (int)reg,
                                  (unsigned long long)uop.seq, scanned));
            }
        }
    }

    // Absence agreement past the tail: a query younger than everything
    // must come back empty from both forms.
    if (!rob.empty()) {
        const DynUop &tail = rob.slot(rob.tailSlot());
        if (rob.findOldestByPcIndexed(tail.pc, tail.seq) >= 0) {
            violate("rob", "index-coherence",
                    strprintf("pc index finds an entry for pc %llu "
                              "younger than the tail seq %llu",
                              (unsigned long long)tail.pc,
                              (unsigned long long)tail.seq));
        }
    }
}

void
InvariantChecker::onRetire(const DynUop &uop, int rob_slot)
{
    if (!enabled() || !ctx_.rob)
        return;
    const Rob &rob = *ctx_.rob;
    if (rob.empty() || rob_slot != rob.headSlot()) {
        violate("rob", "retire-at-head",
                strprintf("retiring slot %d but head slot is %d",
                          rob_slot, rob.empty() ? -1 : rob.headSlot()));
    }
    if (uop.seq != rob.head().seq) {
        violate("rob", "retire-at-head",
                strprintf("retiring seq %llu but head seq is %llu",
                          (unsigned long long)uop.seq,
                          (unsigned long long)rob.head().seq));
    }
    if (!uop.completed) {
        violate("rob", "retire-completed",
                strprintf("retiring seq %llu pc %llu before completion",
                          (unsigned long long)uop.seq,
                          (unsigned long long)uop.pc));
    }
}

// ---------------------------------------------------------------------
// Invariant 2: store queue <-> ROB agreement, forwarding order
// ---------------------------------------------------------------------

void
InvariantChecker::checkStoreQueue()
{
    if (!ctx_.sq)
        return;
    const StoreQueue &sq = *ctx_.sq;
    SeqNum prev = 0;
    bool first = true;
    for (const StoreQueue::Entry &e : sq.entries()) {
        if (!first && e.seq <= prev) {
            violate("lsq", "program-order",
                    strprintf("sq entry seq %llu not older than "
                              "successor seq %llu",
                              (unsigned long long)prev,
                              (unsigned long long)e.seq));
        }
        first = false;
        prev = e.seq;
        if (ctx_.rob) {
            if (!ctx_.rob->validSlot(e.robSlot, e.seq)) {
                violate("lsq", "rob-agreement",
                        strprintf("sq entry seq %llu points at dead "
                                  "rob slot %d",
                                  (unsigned long long)e.seq, e.robSlot));
            }
            if (!ctx_.rob->slot(e.robSlot).isStore()) {
                violate("lsq", "rob-agreement",
                        strprintf("sq entry seq %llu maps to a "
                                  "non-store uop",
                                  (unsigned long long)e.seq));
            }
        }
    }
    if (ctx_.rob) {
        int rob_stores = 0;
        for (int i = 0; i < ctx_.rob->size(); ++i) {
            if (ctx_.rob->slot(ctx_.rob->logicalToSlot(i)).isStore())
                ++rob_stores;
        }
        if (rob_stores != sq.size()) {
            violate("lsq", "one-to-one",
                    strprintf("%d in-flight store uops but %d sq "
                              "entries",
                              rob_stores, sq.size()));
        }
    }
}

void
InvariantChecker::onForward(SeqNum load_seq, SeqNum store_seq)
{
    if (!enabled())
        return;
    if (store_seq >= load_seq) {
        violate("lsq", "forward-program-order",
                strprintf("load seq %llu forwarded from store seq %llu "
                          "(not older)",
                          (unsigned long long)load_seq,
                          (unsigned long long)store_seq));
    }
}

// ---------------------------------------------------------------------
// Invariant 3: rename map + free list partition the register file
// ---------------------------------------------------------------------

void
InvariantChecker::checkRenameState()
{
    if (!ctx_.prf || !ctx_.rat)
        return;
    const PhysRegFile &prf = *ctx_.prf;
    const Rat &rat = *ctx_.rat;
    const int num_regs = prf.size();
    refMarks_.assign(static_cast<std::size_t>(num_regs), 0);
    constexpr std::uint8_t kRefRat = 1;
    constexpr std::uint8_t kRefPdst = 2;
    constexpr std::uint8_t kRefPrev = 4;

    const auto reference = [&](PhysReg reg, std::uint8_t kind,
                               const char *what, int who) {
        if (reg == kNoPhysReg || reg >= num_regs) {
            violate("rename", "valid-mapping",
                    strprintf("%s %d names invalid phys reg %d", what,
                              who, (int)reg));
        }
        if (!prf.allocated(reg)) {
            violate("rename", "free-in-use",
                    strprintf("%s %d names phys reg %d which is on the "
                              "free list",
                              what, who, (int)reg));
        }
        if ((kind != kRefPrev) && (refMarks_[reg] & kind)) {
            violate("rename", "aliased-mapping",
                    strprintf("phys reg %d referenced twice as %s",
                              (int)reg, what));
        }
        refMarks_[reg] |= kind;
    };

    for (ArchReg r = 0; r < kNumArchRegs; ++r)
        reference(rat.map(r), kRefRat, "rat entry", r);

    if (ctx_.rob) {
        for (int i = 0; i < ctx_.rob->size(); ++i) {
            const DynUop &uop =
                ctx_.rob->slot(ctx_.rob->logicalToSlot(i));
            if (!uop.sop.hasDest())
                continue;
            if (uop.pdst != kNoPhysReg)
                reference(uop.pdst, kRefPdst, "rob pdst", i);
            if (uop.prevPdst != kNoPhysReg)
                reference(uop.prevPdst, kRefPrev, "rob prevPdst", i);
        }
    }

    int allocated = 0;
    for (int p = 0; p < num_regs; ++p) {
        const bool is_alloc = prf.allocated(static_cast<PhysReg>(p));
        if (is_alloc)
            ++allocated;
        // Without the ROB view a subset of allocated regs (in-flight
        // destinations) is legitimately unreferenced.
        if (is_alloc && ctx_.rob && refMarks_[p] == 0) {
            violate("rename", "register-leak",
                    strprintf("phys reg %d allocated but unreachable "
                              "from the rat or any in-flight uop",
                              p));
        }
    }
    if (allocated + prf.freeCount() != num_regs) {
        violate("rename", "partition",
                strprintf("%d allocated + %d free != %d registers",
                          allocated, prf.freeCount(), num_regs));
    }
}

// ---------------------------------------------------------------------
// Invariant 4: Algorithm 1 chain well-formedness
// ---------------------------------------------------------------------

void
InvariantChecker::checkChain(const DependenceChain &chain,
                             Pc blocking_pc, int max_length)
{
    if (!enabled())
        return;
    if (chain.empty()) {
        violate("chain", "non-empty", "generated chain has no uops");
        return; // Routed: nothing further to inspect.
    }
    if (static_cast<int>(chain.size()) > max_length) {
        violate("chain", "length-cap",
                strprintf("chain has %d uops, cap is %d",
                          (int)chain.size(), max_length));
    }
    const ChainOp &last = chain.back();
    if (!last.sop.isLoad() || last.pc != blocking_pc) {
        violate("chain", "terminates-at-blocking-load",
                strprintf("chain ends with %s at pc %llu, expected a "
                          "load at pc %llu",
                          opcodeName(last.sop.op),
                          (unsigned long long)last.pc,
                          (unsigned long long)blocking_pc));
    }

    const auto check_reg = [&](ArchReg reg, std::size_t idx,
                               const char *what) {
        if (reg != kNoArchReg && reg >= kNumArchRegs) {
            violate("chain", "well-formed-sources",
                    strprintf("chain op %d %s register %d out of "
                              "range",
                              (int)idx, what, (int)reg));
        }
    };
    for (std::size_t i = 0; i < chain.size(); ++i) {
        const ChainOp &op = chain[i];
        if (op.sop.isControl()) {
            violate("chain", "no-control-uops",
                    strprintf("chain op %d at pc %llu is a control uop",
                              (int)i, (unsigned long long)op.pc));
        }
        check_reg(op.sop.dest, i, "dest");
        check_reg(op.sop.src1, i, "src1");
        check_reg(op.sop.src2, i, "src2");
        if (op.sop.isLoad() && op.sop.src1 == kNoArchReg) {
            violate("chain", "well-formed-sources",
                    strprintf("chain op %d load has no address base",
                              (int)i));
        }
        if (op.sop.isStore()
            && (op.sop.src1 == kNoArchReg
                || op.sop.src2 == kNoArchReg)) {
            violate("chain", "well-formed-sources",
                    strprintf("chain op %d store lacks address or data "
                              "source",
                              (int)i));
        }
        if (ctx_.program) {
            if (op.pc >= ctx_.program->size()) {
                violate("chain", "decodes-from-program",
                        strprintf("chain op %d pc %llu outside program "
                                  "of %d uops",
                                  (int)i, (unsigned long long)op.pc,
                                  (int)ctx_.program->size()));
                continue; // Routed: pc is unusable as an index.
            }
            const Uop &ref = ctx_.program->at(op.pc);
            if (ref.op != op.sop.op || ref.func != op.sop.func
                || ref.cond != op.sop.cond || ref.dest != op.sop.dest
                || ref.src1 != op.sop.src1 || ref.src2 != op.sop.src2
                || ref.imm != op.sop.imm
                || ref.target != op.sop.target) {
                violate("chain", "decodes-from-program",
                        strprintf("chain op %d does not match the "
                                  "static uop at pc %llu",
                                  (int)i, (unsigned long long)op.pc));
            }
        }
    }
    // Every source is now known to be well-formed; it is chain-internal
    // if an earlier op writes it, loop-carried if only a later op does
    // (the buffer re-issues the chain as a loop), and live-in otherwise
    // -- all three are legal per Algorithm 1.
}

// ---------------------------------------------------------------------
// Invariant 5: runahead checkpoint / restore / store containment
// ---------------------------------------------------------------------

void
InvariantChecker::onRunaheadEnter(const ArchCheckpoint &checkpoint)
{
    if (!enabled())
        return;
    if (!checkpoint.valid) {
        violate("runahead", "checkpoint-taken",
                "entered runahead with an invalid checkpoint");
    }
    if (ctx_.runahead && !ctx_.runahead->inRunahead()) {
        violate("runahead", "mode-transition",
                "entry hook fired but the controller is not in "
                "runahead");
    }
    if (ctx_.archValues) {
        for (ArchReg r = 0; r < kNumArchRegs; ++r) {
            if (checkpoint.values[r] != (*ctx_.archValues)[r]) {
                violate("runahead", "checkpoint-exact",
                        strprintf("checkpoint r%d = %llu but "
                                  "architectural value is %llu",
                                  (int)r,
                                  (unsigned long long)
                                      checkpoint.values[r],
                                  (unsigned long long)(
                                      *ctx_.archValues)[r]));
            }
        }
        entrySnapshot_ = *ctx_.archValues;
    }
    inRunahead_ = true;
    if (level_ == CheckLevel::kFull || level_ == CheckLevel::kCheap)
        fullScan();
}

void
InvariantChecker::checkArchStateFrozen()
{
    if (!ctx_.archValues || !inRunahead_)
        return;
    for (ArchReg r = 0; r < kNumArchRegs; ++r) {
        if ((*ctx_.archValues)[r] != entrySnapshot_[r]) {
            violate("runahead", "arch-state-frozen",
                    strprintf("architectural r%d changed from %llu to "
                              "%llu during runahead",
                              (int)r,
                              (unsigned long long)entrySnapshot_[r],
                              (unsigned long long)(*ctx_.archValues)[r]));
        }
    }
}

void
InvariantChecker::onRunaheadExit(const ArchCheckpoint &checkpoint)
{
    if (!enabled())
        return;
    const bool entered_under_checker = inRunahead_;
    inRunahead_ = false;
    if (ctx_.runahead && ctx_.runahead->inRunahead()) {
        violate("runahead", "mode-transition",
                "exit hook fired but the controller is still in "
                "runahead");
    }
    if (checkpoint.valid) {
        violate("runahead", "checkpoint-consumed",
                "checkpoint still marked valid after restore");
    }
    if (ctx_.archValues && entered_under_checker) {
        for (ArchReg r = 0; r < kNumArchRegs; ++r) {
            if ((*ctx_.archValues)[r] != entrySnapshot_[r]) {
                violate("runahead", "restore-exact",
                        strprintf("r%d restored to %llu but entry "
                                  "value was %llu",
                                  (int)r,
                                  (unsigned long long)(
                                      *ctx_.archValues)[r],
                                  (unsigned long long)
                                      entrySnapshot_[r]));
            }
        }
    }
    if (ctx_.rob && !ctx_.rob->empty()) {
        violate("runahead", "pipeline-flushed",
                strprintf("rob holds %d entries after runahead exit",
                          ctx_.rob->size()));
    }
    if (ctx_.sq && ctx_.sq->size() != 0) {
        violate("runahead", "pipeline-flushed",
                strprintf("sq holds %d entries after runahead exit",
                          ctx_.sq->size()));
    }
    if (ctx_.prf && ctx_.rat && ctx_.archValues) {
        if (ctx_.prf->freeCount() != ctx_.prf->size() - kNumArchRegs) {
            violate("runahead", "restore-exact",
                    strprintf("%d free regs after exit, expected %d",
                              ctx_.prf->freeCount(),
                              ctx_.prf->size() - kNumArchRegs));
        }
        for (ArchReg r = 0; r < kNumArchRegs; ++r) {
            const PhysReg p = ctx_.rat->map(r);
            if (p == kNoPhysReg || p >= ctx_.prf->size()
                || !ctx_.prf->allocated(p)) {
                violate("runahead", "restore-exact",
                        strprintf("r%d maps to invalid phys reg %d "
                                  "after exit",
                                  (int)r, (int)p));
                continue; // Routed: p is unusable as an index.
            }
            if (ctx_.prf->poisoned(p)) {
                violate("runahead", "restore-exact",
                        strprintf("r%d poisoned after runahead exit "
                                  "(poison leak)",
                                  (int)r));
            }
            if (ctx_.prf->value(p) != (*ctx_.archValues)[r]) {
                violate("runahead", "restore-exact",
                        strprintf("r%d physical value %llu differs "
                                  "from architectural %llu",
                                  (int)r,
                                  (unsigned long long)
                                      ctx_.prf->value(p),
                                  (unsigned long long)(
                                      *ctx_.archValues)[r]));
            }
        }
    }
    if (level_ == CheckLevel::kFull || level_ == CheckLevel::kCheap)
        fullScan();
}

void
InvariantChecker::onRealStore(Addr addr)
{
    if (!enabled())
        return;
    const bool in_runahead =
        ctx_.runahead ? ctx_.runahead->inRunahead() : inRunahead_;
    if (in_runahead) {
        violate("runahead", "store-containment",
                strprintf("runahead store to addr %llu reached the "
                          "real memory hierarchy",
                          (unsigned long long)addr));
    }
}

// ---------------------------------------------------------------------
// Invariant 6: chain cache indexing discipline
// ---------------------------------------------------------------------

void
InvariantChecker::onChainCacheInsert(Pc pc, const DependenceChain &chain)
{
    if (!enabled())
        return;
    if (chain.empty() || !chain.back().sop.isLoad()
        || chain.back().pc != pc) {
        violate("chain_cache", "indexed-by-generating-pc",
                strprintf("insert at pc %llu but chain terminates at "
                          "pc %llu",
                          (unsigned long long)pc,
                          chain.empty()
                              ? 0ull
                              : (unsigned long long)chain.back().pc));
    }
}

void
InvariantChecker::onChainCacheHit(Pc pc, const DependenceChain &chain)
{
    if (!enabled())
        return;
    if (chain.empty() || !chain.back().sop.isLoad()
        || chain.back().pc != pc) {
        violate("chain_cache", "indexed-by-generating-pc",
                strprintf("hit at pc %llu returned a chain terminating "
                          "at pc %llu",
                          (unsigned long long)pc,
                          chain.empty()
                              ? 0ull
                              : (unsigned long long)chain.back().pc));
    }
}

void
InvariantChecker::regStats(StatGroup *parent)
{
    statGroup_.addCounter("checks_run", &checksRun,
                          "full structural scans completed");
    statGroup_.addCounter("violations", &violations,
                          "invariant violations raised");
    statGroup_.addCounter("violations_routed", &violationsRouted,
                          "violations routed to the degradation "
                          "ladder instead of thrown");
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
