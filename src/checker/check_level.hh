/**
 * @file
 * Invariant-checker effort levels. A tiny standalone header so config
 * structs (SimConfig/CoreConfig) can carry a level without pulling in
 * the checker itself.
 */

#ifndef RAB_CHECKER_CHECK_LEVEL_HH
#define RAB_CHECKER_CHECK_LEVEL_HH

#include <string>

namespace rab
{

/** How much invariant checking to run. */
enum class CheckLevel
{
    kOff,   ///< No checking (production runs).
    kCheap, ///< O(1) spot checks per cycle + full scans at mode
            ///< transitions.
    kFull,  ///< Everything: periodic full structural scans plus every
            ///< event hook. Intended for tests and debugging.
};

/** Name string ("off" / "cheap" / "full"). */
const char *checkLevelName(CheckLevel level);

/** Parse a level name; calls fatal() on an unknown name. */
CheckLevel parseCheckLevel(const std::string &name);

/** The RAB_CHECK_LEVEL environment variable overrides @p fallback when
 *  set (this is how the test suite forces full checking everywhere). */
CheckLevel checkLevelFromEnv(CheckLevel fallback);

/** What a raised invariant violation does. */
enum class CheckPolicy
{
    kThrow,   ///< Throw InvariantViolation (fail-fast; tests).
    kDegrade, ///< Route violations in *speculative* state to the
              ///< runahead degradation ladder and keep simulating;
              ///< violations of architectural structures still throw.
};

/** Name string ("throw" / "degrade"). */
const char *checkPolicyName(CheckPolicy policy);

/** Parse a policy name; calls fatal() on an unknown name. */
CheckPolicy parseCheckPolicy(const std::string &name);

/** The RAB_CHECK_POLICY environment variable overrides @p fallback
 *  when set. */
CheckPolicy checkPolicyFromEnv(CheckPolicy fallback);

} // namespace rab

#endif // RAB_CHECKER_CHECK_LEVEL_HH
