/**
 * @file
 * Microarchitectural invariant checker.
 *
 * The simulator's correctness hinges on cross-module invariants that no
 * single structure can enforce alone: ROB age order, store-queue /
 * ROB agreement, the rename map and free list partitioning the physical
 * register file, Algorithm 1 chain well-formedness, exact
 * checkpoint/restore around runahead intervals, and runahead store
 * containment. The checker validates them from the outside, each cycle
 * and at every mode transition, gated by CheckLevel so production runs
 * pay nothing.
 *
 * A violation logs a state dump through common/logging and raises an
 * InvariantViolation carrying the cycle, module and invariant name, so
 * tests can assert that deliberately corrupted state is caught. What
 * "raises" means is policy-controlled (CheckPolicy): under kThrow the
 * violation is thrown; under kDegrade violations in *speculative*
 * state (chain, chain cache, runahead containment) are routed to a
 * degrade sink — the runahead degradation ladder — and simulation
 * continues, because the paper's containment argument guarantees they
 * cannot corrupt architectural results. Architectural-structure
 * violations (ROB, LSQ, rename) throw under every policy: past that
 * point the simulation is meaningless.
 */

#ifndef RAB_CHECKER_INVARIANT_CHECKER_HH
#define RAB_CHECKER_INVARIANT_CHECKER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "backend/rename.hh"
#include "checker/check_level.hh"
#include "common/types.hh"
#include "runahead/chain.hh"
#include "stats/stats.hh"

namespace rab
{

class Rob;
class StoreQueue;
class RunaheadController;
class Program;
class WritebackQueue;
class Frontend;
class ReservationStation;
class ChainEngine;
struct DynUop;

/** Thrown (after logging a state dump) when an invariant fails. */
class InvariantViolation : public std::runtime_error
{
  public:
    InvariantViolation(Cycle cycle, std::string module,
                       std::string invariant, std::string detail);

    Cycle cycle() const { return cycle_; }
    const std::string &module() const { return module_; }
    const std::string &invariant() const { return invariant_; }
    const std::string &detail() const { return detail_; }

  private:
    Cycle cycle_;
    std::string module_;
    std::string invariant_;
    std::string detail_;
};

/** Read-only views of the structures the checker validates. Any pointer
 *  may be null; the corresponding checks are skipped (unit tests drive
 *  single invariants against partial contexts). */
struct CheckerContext
{
    const Rob *rob = nullptr;
    const StoreQueue *sq = nullptr;
    const PhysRegFile *prf = nullptr;
    const Rat *rat = nullptr;
    const RunaheadController *runahead = nullptr;
    const Program *program = nullptr;
    const std::array<std::uint64_t, kNumArchRegs> *archValues = nullptr;
    /** @{ Fast-forward legality inputs: the event sources the core's
     *  quiescence predicate reasons about. */
    const WritebackQueue *wbq = nullptr;
    const Frontend *frontend = nullptr;
    const ReservationStation *rs = nullptr;
    /** @} */
    /** Continuous Runahead engine (CRE configs only): audited for the
     *  prefetch-only containment invariant at full check level. */
    const ChainEngine *engine = nullptr;
};

/** The checker. One instance per Core; also constructible standalone
 *  around individual structures for unit tests. */
class InvariantChecker
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    InvariantChecker(CheckLevel level, const CheckerContext &ctx);

    CheckLevel level() const { return level_; }
    bool enabled() const { return level_ != CheckLevel::kOff; }

    /** @{ Violation policy (see file comment). Default kThrow. The
     *  degrade sink receives every routed violation; without a sink,
     *  kDegrade still throws. */
    void setPolicy(CheckPolicy policy) { policy_ = policy; }
    CheckPolicy policy() const { return policy_; }
    using DegradeSink = std::function<void(const InvariantViolation &)>;
    void setDegradeSink(DegradeSink sink) { sink_ = std::move(sink); }

    /** True for modules whose violations only ever concern speculative
     *  state (safe to route to the degradation ladder). */
    static bool isSpeculativeModule(const char *module);
    /** @} */

    /** One-line diagnostic snapshot of the watched structures (also
     *  attached to every violation and watchdog report). */
    std::string stateDump() const;

    /** Cycles between full structural scans at kFull (spot checks still
     *  run every cycle). */
    static constexpr Cycle kFullScanPeriod = 16;

    /** @{ Hook points, called by Core / RunaheadController. */

    /** End of every simulated cycle. */
    void onCycle(Cycle now);

    /**
     * The core is about to fast-forward from cycle @p from directly to
     * cycle @p to (ticks at cycles [from, to) are skipped). Verifies
     * the legality invariant — no pipeline event (writeback, commit,
     * issue, rename, fetch, runahead transition) may fall inside the
     * skipped window — by re-deriving quiescence independently from
     * the context structures, then replicates the per-cycle check
     * accounting (spot checks, periodic full scans) the skipped ticks
     * would have performed, so checker statistics stay identical to
     * tick-by-tick execution. Violations here are simulator bugs and
     * throw under every policy.
     */
    void onFastForward(Cycle from, Cycle to);

    /** Immediately before the ROB pops @p uop for (pseudo-)retirement:
     *  retirement happens at the head only, oldest first, completed. */
    void onRetire(const DynUop &uop, int rob_slot);

    /** A load was forwarded from the store queue: program order. */
    void onForward(SeqNum load_seq, SeqNum store_seq);

    /** A store is about to access the real memory hierarchy. */
    void onRealStore(Addr addr);

    /** After runahead entry: checkpoint must capture the architectural
     *  state exactly. */
    void onRunaheadEnter(const ArchCheckpoint &checkpoint);

    /** After runahead exit + restore: state must match the entry
     *  snapshot exactly and the pipeline must be clean. */
    void onRunaheadExit(const ArchCheckpoint &checkpoint);

    /** A dependence chain was generated (or pulled from the chain
     *  cache) for the blocking load at @p blocking_pc. */
    void checkChain(const DependenceChain &chain, Pc blocking_pc,
                    int max_length);

    /** Chain-cache discipline: entries are only ever indexed by their
     *  generating blocking-load PC. */
    void onChainCacheInsert(Pc pc, const DependenceChain &chain);
    void onChainCacheHit(Pc pc, const DependenceChain &chain);
    /** @} */

    /** @{ Individual structural scans (public so tests can target one
     *  invariant at a time). Each throws InvariantViolation on
     *  failure. */
    void checkRobOrder();
    void checkRobIndexes();
    void checkStoreQueue();
    void checkRenameState();
    void checkArchStateFrozen();
    /** @} */

    /** @{ Statistics. */
    Counter checksRun;         ///< Structural scans completed.
    Counter violations;        ///< Violations raised.
    Counter violationsRouted;  ///< Violations routed to the degrade
                               ///< sink instead of thrown.
    /** @} */

    void regStats(StatGroup *parent);

  private:
    /** Raise a violation. Returns normally (instead of throwing) only
     *  when the policy routed it to the degrade sink; callers must be
     *  prepared to continue past a routed violation. */
    void violate(const char *module, const char *invariant,
                 std::string detail);
    void spotChecks();
    void fullScan();

    CheckLevel level_;
    CheckPolicy policy_ = CheckPolicy::kThrow;
    DegradeSink sink_;
    CheckerContext ctx_;
    Cycle now_ = 0;
    bool inRunahead_ = false;
    std::array<std::uint64_t, kNumArchRegs> entrySnapshot_{};
    std::vector<std::uint8_t> refMarks_; ///< Scratch: PRF reference map.
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_CHECKER_INVARIANT_CHECKER_HH
