#include "runahead/runahead_buffer.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace rab
{

RunaheadBuffer::RunaheadBuffer(int capacity)
    : capacity_(capacity), statGroup_("runahead_buffer")
{
    if (capacity <= 0)
        fatal("runahead buffer: bad capacity %d", capacity);
}

void
RunaheadBuffer::fill(const DependenceChain &chain)
{
    chain_ = chain;
    if (static_cast<int>(chain_.size()) > capacity_)
        chain_.resize(capacity_);
    index_ = 0;
    iterations_ = 0;
    active_ = true;
    ++fills;

    if (std::getenv("RAB_DUMP_CHAIN") && fills.value() <= 4) {
        std::fprintf(stderr, "--- runahead buffer fill #%llu (%zu ops)\n",
                     (unsigned long long)fills.value(), chain_.size());
        for (const ChainOp &op : chain_) {
            std::fprintf(stderr, "  pc=%llu %s\n",
                         (unsigned long long)op.pc,
                         op.sop.toString().c_str());
        }
    }
}

const ChainOp &
RunaheadBuffer::peek() const
{
    if (!hasOp())
        panic("runahead buffer: peek while inactive/empty");
    return chain_[index_];
}

void
RunaheadBuffer::advance()
{
    if (!hasOp())
        panic("runahead buffer: advance while inactive/empty");
    ++opsIssued;
    ++index_;
    if (index_ >= chain_.size()) {
        // Dependence chains are treated as loops (Section 4.3).
        index_ = 0;
        ++iterations_;
        ++loops;
    }
}

void
RunaheadBuffer::deactivate()
{
    active_ = false;
    chain_.clear();
    index_ = 0;
}

void
RunaheadBuffer::regStats(StatGroup *parent)
{
    statGroup_.addCounter("fills", &fills, "chains loaded");
    statGroup_.addCounter("ops_issued", &opsIssued,
                          "uops issued to rename");
    statGroup_.addCounter("loops", &loops, "chain loop iterations");
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
