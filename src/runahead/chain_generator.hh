/**
 * @file
 * Dependence-chain generation (the paper's Algorithm 1).
 *
 * When a load blocks the head of the ROB, the generator searches the
 * ROB for a younger dynamic instance of the same PC (a priority PC
 * CAM), then backward-walks producers of its source registers with a
 * destination-register CAM, pulling store-queue producers in for loads,
 * until the source register search list (SRSL) drains or the chain hits
 * the 32-uop cap. Control uops are never included (the ROB holds a
 * branch-predicted stream). The walk is modelled cycle-accurately: up
 * to two destination-register searches per cycle (Section 5), plus one
 * cycle for the PC CAM and ROB read-out at the superscalar width.
 */

#ifndef RAB_RUNAHEAD_CHAIN_GENERATOR_HH
#define RAB_RUNAHEAD_CHAIN_GENERATOR_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "backend/lsq.hh"
#include "backend/rob.hh"
#include "runahead/chain.hh"
#include "stats/stats.hh"

namespace rab
{

/** Chain generator configuration. */
struct ChainGeneratorConfig
{
    int maxChainLength = 32;     ///< Runahead buffer capacity in uops.
    // rablint: cycle-ok (a per-cycle port count, not a cycle quantity)
    int regSearchesPerCycle = 2; ///< Dest-register CAM ports.
    int readoutWidth = 4;        ///< ROB read-out uops per cycle.
    int srslEntries = 16;        ///< Source register search list size.
};

/** Result of one generation attempt. */
struct ChainResult
{
    bool pcFound = false;   ///< A younger instance of the PC existed.
    bool overflow = false;  ///< SRSL was not drained at the length cap
                            ///< (hybrid policy falls back to
                            ///< traditional runahead).
    DependenceChain chain;  ///< Program-ordered filtered chain.

    /** @{ Modelled cost. */
    Cycle generationCycles = 0;
    int pcCamSearches = 0;
    int regCamSearches = 0;
    int sqSearches = 0;
    int robReads = 0;
    /** @} */
};

/** The generator. Stateless between calls apart from statistics and
 *  pooled scratch buffers (reused, never observable in results). */
class ChainGenerator
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit ChainGenerator(const ChainGeneratorConfig &config);

    /**
     * Run Algorithm 1.
     *
     * @param rob          the reorder buffer to filter from.
     * @param sq           the store queue (register spill/fill search).
     * @param blocking_pc  PC of the load blocking the ROB head.
     * @param blocking_seq its sequence number.
     */
    ChainResult generate(const Rob &rob, const StoreQueue &sq,
                         Pc blocking_pc, SeqNum blocking_seq);

    const ChainGeneratorConfig &config() const { return config_; }

    /** @{ Statistics. */
    Counter attempts;
    Counter noPcMatch;
    Counter overflows;
    Counter generatedChains;
    Counter generatedOps;
    /** @} */

    void regStats(StatGroup *parent);

  private:
    ChainGeneratorConfig config_;

    /** @{ Algorithm-1 working state, pooled across generate() calls so
     *  the runahead-entry hot path allocates nothing in steady state.
     *  The SRSL is a pure stack; the included set is a slot-indexed
     *  mark array plus the insertion list for enumeration. */
    std::vector<std::pair<ArchReg, SeqNum>> srsl_;
    std::vector<std::uint8_t> includedMark_; ///< Indexed by ROB slot.
    std::vector<int> includedSlots_;
    /** @} */

    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_RUNAHEAD_CHAIN_GENERATOR_HH
