#include "runahead/runahead_controller.hh"

#include <algorithm>
#include <utility>

#include "checker/invariant_checker.hh"
#include "common/logging.hh"
#include "fault/fault_injector.hh"

namespace rab
{

RunaheadPolicy
policyNone()
{
    return RunaheadPolicy{};
}

RunaheadPolicy
policyTraditional()
{
    RunaheadPolicy p;
    p.traditionalEnabled = true;
    return p;
}

RunaheadPolicy
policyTraditionalEnhanced()
{
    RunaheadPolicy p;
    p.traditionalEnabled = true;
    p.enhancements = true;
    return p;
}

RunaheadPolicy
policyBuffer()
{
    RunaheadPolicy p;
    p.bufferEnabled = true;
    return p;
}

RunaheadPolicy
policyBufferChainCache()
{
    RunaheadPolicy p;
    p.bufferEnabled = true;
    p.chainCacheEnabled = true;
    return p;
}

RunaheadPolicy
policyHybrid()
{
    RunaheadPolicy p;
    p.traditionalEnabled = true;
    p.bufferEnabled = true;
    p.chainCacheEnabled = true;
    p.hybrid = true;
    p.enhancements = true; // Section 4.6: used by the Hybrid policy.
    return p;
}

RunaheadPolicy
policyCre()
{
    // Continuous Runahead rides on the buffer + chain-cache machinery:
    // the chain cache is what feeds the engine.
    RunaheadPolicy p = policyBufferChainCache();
    p.engine.enabled = true;
    return p;
}

RunaheadPolicy
policyCreHybrid()
{
    RunaheadPolicy p = policyHybrid();
    p.engine.enabled = true;
    return p;
}

RunaheadController::RunaheadController(const RunaheadPolicy &policy)
    : policy_(policy),
      runaheadCache_(policy.runaheadCache),
      chainGen_(policy.chainGen),
      chainCache_(policy.chainCacheEntries),
      buffer_(policy.bufferEntries),
      ladder_(policy.degrade),
      statGroup_("runahead")
{
}

void
RunaheadController::noteSpeculativeFault()
{
    ++speculativeFaults;
    ladder_.noteFault();
}

const DependenceChain *
RunaheadController::lookupTrustedChain(Pc pc)
{
    const DependenceChain *cached = chainCache_.lookup(pc);
    if (!cached)
        return nullptr;
    if (checker_) {
        // Under CheckPolicy::kDegrade a corrupt cached chain does not
        // throw; the violation is routed to noteSpeculativeFault(),
        // which bumps speculativeFaults. Snapshot the counter so we
        // can tell whether this particular chain was flagged.
        const std::uint64_t faults_before = speculativeFaults.value();
        checker_->onChainCacheHit(pc, *cached);
        checker_->checkChain(*cached, pc, policy_.chainGen.maxChainLength);
        if (speculativeFaults.value() != faults_before) {
            // Discard the corrupt entry; the caller regenerates the
            // chain from the ROB and the insert overwrites this slot.
            ++cachedChainsRejected;
            return nullptr;
        }
    }
    return cached;
}

EntryDecision
RunaheadController::decideEntry(const Rob &rob, const StoreQueue &sq,
                                const DynUop &head,
                                std::uint64_t fetched_instrs,
                                std::uint64_t retired_instrs)
{
    EntryDecision decision;
    if (!policy_.anyRunahead() || inRunahead())
        return decision;
    if (!ladder_.runaheadAllowed()) {
        ++degradedNoEntry;
        return decision;
    }

    if (policy_.enhancements) {
        // Enhancement 1: if the blocking miss was issued to memory long
        // ago, most of its latency has elapsed and the interval would
        // be too short to be useful.
        if (fetched_instrs - head.missIssueInstrNum
                >= policy_.distanceThreshold) {
            ++suppressedShort;
            return decision;
        }
        // Enhancement 2: do not re-enter runahead over instructions a
        // previous interval already covered (overlap elimination).
        if (retired_instrs <= farthestInstr_) {
            ++suppressedOverlap;
            return decision;
        }
    }

    // The degradation ladder narrows the policy's capabilities: at
    // kNoBuffer every buffer entry demotes to traditional runahead
    // (the paper's hybrid fallback path); the chain cache is only
    // usable while the buffer is.
    const bool buffer_ok = policy_.bufferEnabled
        && ladder_.bufferAllowed();
    const bool cc_ok = buffer_ok && policy_.chainCacheEnabled
        && ladder_.chainCacheAllowed();

    // Fault injection: corrupt a random live chain-cache entry on the
    // injector's schedule before any lookup below can consume it.
    if (faults_ && cc_ok)
        faults_->maybeCorruptChainCache(chainCache_);

    if (!buffer_ok) {
        decision.enter = true;
        decision.mode = RunaheadMode::kTraditional;
        if (policy_.bufferEnabled)
            ++degradedTraditional;
        return decision;
    }

    if (policy_.hybrid) {
        // Fig. 8: matching PC in ROB? -> chain cache? -> short enough?
        const int match = rob.findOldestByPc(head.pc, head.seq);
        ++pcCamSearches;
        if (match < 0) {
            decision.enter = true;
            decision.mode = RunaheadMode::kTraditional;
            return decision;
        }
        if (cc_ok) {
            if (const DependenceChain *cached =
                    lookupTrustedChain(head.pc)) {
                decision.enter = true;
                decision.mode = RunaheadMode::kBuffer;
                decision.usedCachedChain = true;
                decision.chain = *cached;
                decision.generationCycles = 1;

                // Fig. 13 instrumentation: does the cached chain match
                // what the ROB would generate right now?
                ChainResult regen =
                    chainGen_.generate(rob, sq, head.pc, head.seq);
                ++chainCacheCheckedHits;
                if (regen.pcFound
                    && chainsEqual(*cached, regen.chain)) {
                    ++chainCacheExactHits;
                }
                return decision;
            }
        }
        ChainResult result = chainGen_.generate(rob, sq, head.pc, head.seq);
        regCamSearches += result.regCamSearches;
        sqCamSearches += result.sqSearches;
        robChainReads += result.robReads;
        if (result.overflow || result.chain.empty()) {
            decision.enter = true;
            decision.mode = RunaheadMode::kTraditional;
            return decision;
        }
        if (checker_) {
            checker_->checkChain(result.chain, head.pc,
                                 policy_.chainGen.maxChainLength);
        }
        if (cc_ok) {
            if (checker_)
                checker_->onChainCacheInsert(head.pc, result.chain);
            chainCache_.insert(head.pc, result.chain);
        }
        decision.enter = true;
        decision.mode = RunaheadMode::kBuffer;
        decision.chain = std::move(result.chain);
        decision.generationCycles = result.generationCycles;
        return decision;
    }

    // Buffer-only policies (Algorithm 1, optionally with chain cache).
    if (cc_ok) {
        if (const DependenceChain *cached = lookupTrustedChain(head.pc)) {
            decision.enter = true;
            decision.mode = RunaheadMode::kBuffer;
            decision.usedCachedChain = true;
            decision.chain = *cached;
            decision.generationCycles = 1;

            ChainResult regen =
                chainGen_.generate(rob, sq, head.pc, head.seq);
            ++chainCacheCheckedHits;
            if (regen.pcFound && chainsEqual(*cached, regen.chain))
                ++chainCacheExactHits;
            return decision;
        }
    }
    ChainResult result = chainGen_.generate(rob, sq, head.pc, head.seq);
    ++pcCamSearches;
    regCamSearches += result.regCamSearches;
    sqCamSearches += result.sqSearches;
    robChainReads += result.robReads;
    if (!result.pcFound || result.chain.empty()) {
        // Without traditional runahead to fall back on, stay stalled.
        ++noChainNoEntry;
        return decision;
    }
    // The buffer-only policy caps the chain at 32 uops and proceeds.
    if (checker_) {
        checker_->checkChain(result.chain, head.pc,
                             policy_.chainGen.maxChainLength);
    }
    if (cc_ok) {
        if (checker_)
            checker_->onChainCacheInsert(head.pc, result.chain);
        chainCache_.insert(head.pc, result.chain);
    }
    decision.enter = true;
    decision.mode = RunaheadMode::kBuffer;
    decision.chain = std::move(result.chain);
    decision.generationCycles = result.generationCycles;
    return decision;
}

void
RunaheadController::enter(const EntryDecision &decision, Cycle now,
                          Cycle blocking_ready,
                          std::uint64_t retired_instrs)
{
    if (!decision.enter || inRunahead())
        panic("RunaheadController::enter: bad entry");
    mode_ = decision.mode;
    blockingReady_ = blocking_ready;
    enteredAt_ = now;
    missesAtEntry_ = runaheadMisses.value();
    ++intervals;
    ++checkpoints;
    farthestInstr_ = std::max(farthestInstr_, retired_instrs);
    if (mode_ == RunaheadMode::kBuffer) {
        ++bufferIntervals;
        chainGenCycles += decision.generationCycles;
        bufferIssueStart_ = now + decision.generationCycles;
        buffer_.fill(decision.chain);
    } else {
        ++traditionalIntervals;
        bufferIssueStart_ = 0;
    }
}

void
RunaheadController::exit(Cycle now, std::uint64_t farthest_instr)
{
    if (!inRunahead())
        panic("RunaheadController::exit while not in runahead");
    farthestInstr_ = std::max(farthestInstr_, farthest_instr);
    intervalLengths_.sample(now >= enteredAt_ ? now - enteredAt_ : 0);
    intervalMlp_.sample(runaheadMisses.value() - missesAtEntry_);
    mode_ = RunaheadMode::kNone;
    buffer_.deactivate();
    runaheadCache_.clear();
}

void
RunaheadController::tickCycle()
{
    if (mode_ == RunaheadMode::kTraditional)
        ++cyclesTraditional;
    else if (mode_ == RunaheadMode::kBuffer)
        ++cyclesBuffer;
    ladder_.tick();
}

void
RunaheadController::accountSkippedCycles(std::uint64_t n)
{
    if (mode_ == RunaheadMode::kTraditional)
        cyclesTraditional += n;
    else if (mode_ == RunaheadMode::kBuffer)
        cyclesBuffer += n;
    ladder_.advance(n);
}

void
RunaheadController::noteRunaheadMiss()
{
    ++runaheadMisses;
}

double
RunaheadController::missesPerInterval() const
{
    if (intervals.value() == 0)
        return 0.0;
    return static_cast<double>(runaheadMisses.value())
        / static_cast<double>(intervals.value());
}

double
RunaheadController::bufferCycleFraction() const
{
    const std::uint64_t total =
        cyclesTraditional.value() + cyclesBuffer.value();
    if (total == 0)
        return 0.0;
    return static_cast<double>(cyclesBuffer.value())
        / static_cast<double>(total);
}

void
RunaheadController::regStats(StatGroup *parent)
{
    statGroup_.addCounter("intervals", &intervals, "runahead intervals");
    statGroup_.addCounter("traditional_intervals", &traditionalIntervals,
                          "traditional-mode intervals");
    statGroup_.addCounter("buffer_intervals", &bufferIntervals,
                          "buffer-mode intervals");
    statGroup_.addCounter("cycles_traditional", &cyclesTraditional,
                          "cycles in traditional runahead");
    statGroup_.addCounter("cycles_buffer", &cyclesBuffer,
                          "cycles in buffer runahead");
    statGroup_.addCounter("chain_gen_cycles", &chainGenCycles,
                          "cycles spent generating chains");
    statGroup_.addCounter("runahead_misses", &runaheadMisses,
                          "LLC misses generated during runahead");
    statGroup_.addCounter("suppressed_short", &suppressedShort,
                          "entries suppressed: interval too short");
    statGroup_.addCounter("suppressed_overlap", &suppressedOverlap,
                          "entries suppressed: overlapping interval");
    statGroup_.addCounter("no_chain_no_entry", &noChainNoEntry,
                          "buffer-only entries skipped: no chain");
    statGroup_.addCounter("chain_cache_exact_hits", &chainCacheExactHits,
                          "chain cache hits matching the ROB chain");
    statGroup_.addCounter("chain_cache_checked_hits",
                          &chainCacheCheckedHits,
                          "chain cache hits with a comparison run");
    statGroup_.addCounter("checkpoints", &checkpoints,
                          "architectural checkpoints taken");
    statGroup_.addCounter("pc_cam_searches", &pcCamSearches,
                          "ROB PC CAM searches");
    statGroup_.addCounter("reg_cam_searches", &regCamSearches,
                          "ROB destination-register CAM searches");
    statGroup_.addCounter("sq_cam_searches", &sqCamSearches,
                          "store queue CAM searches (chain gen)");
    statGroup_.addCounter("rob_chain_reads", &robChainReads,
                          "ROB reads during chain read-out");
    statGroup_.addCounter("speculative_faults", &speculativeFaults,
                          "detected faults in speculative state");
    statGroup_.addCounter("cached_chains_rejected", &cachedChainsRejected,
                          "corrupt cached chains discarded");
    statGroup_.addCounter("degraded_no_entry", &degradedNoEntry,
                          "entries blocked: ladder at no-runahead");
    statGroup_.addCounter("degraded_traditional", &degradedTraditional,
                          "buffer entries demoted to traditional");
    ladder_.regStats(&statGroup_);
    runaheadCache_.regStats(&statGroup_);
    chainGen_.regStats(&statGroup_);
    chainCache_.regStats(&statGroup_);
    buffer_.regStats(&statGroup_);
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
