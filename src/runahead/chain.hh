/**
 * @file
 * Dependence-chain types shared by the chain generator, chain cache and
 * runahead buffer.
 */

#ifndef RAB_RUNAHEAD_CHAIN_HH
#define RAB_RUNAHEAD_CHAIN_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/uop.hh"

namespace rab
{

/** One decoded uop in a dependence chain (architectural register
 *  form — renaming happens when the buffer issues it). */
struct ChainOp
{
    Pc pc = 0;
    Uop sop;
};

/** A filtered dependence chain in program order. */
using DependenceChain = std::vector<ChainOp>;

/** Order-sensitive signature of a chain (for exact-match stats). */
std::uint64_t chainSignature(const DependenceChain &chain);

/** Structural equality (pc + opcode fields of every op, in order). */
bool chainsEqual(const DependenceChain &a, const DependenceChain &b);

} // namespace rab

#endif // RAB_RUNAHEAD_CHAIN_HH
