/**
 * @file
 * Graceful runahead degradation ladder.
 *
 * The runahead buffer and chain cache are purely speculative, so a
 * faulting speculative structure is never a correctness problem — but
 * repeatedly consuming corrupt chains wastes every runahead interval
 * and hammers the invariant checker. The ladder converts repeated
 * detected faults into progressively narrower runahead capability:
 *
 *   kFull → kNoChainCache → kNoBuffer → kNoRunahead
 *
 * At kNoChainCache the chain cache is bypassed (chains are always
 * regenerated from the ROB); at kNoBuffer the runahead buffer is
 * disabled and entries fall back to the paper's traditional-runahead
 * hybrid path; at kNoRunahead the core runs as the baseline. Each level
 * is probationary: after a configurable clean window with no further
 * faults the ladder re-enables one step, so a transient fault burst
 * does not permanently cost the mechanism's performance.
 */

#ifndef RAB_RUNAHEAD_DEGRADATION_LADDER_HH
#define RAB_RUNAHEAD_DEGRADATION_LADDER_HH

#include <cstdint>

#include "common/types.hh"
#include "stats/stats.hh"

namespace rab
{

/** How much runahead capability is currently enabled. Ordered: larger
 *  values are more degraded. */
enum class DegradeLevel : int
{
    kFull = 0,        ///< Everything the policy allows.
    kNoChainCache = 1,///< Chain cache bypassed.
    kNoBuffer = 2,    ///< Runahead buffer disabled (traditional only).
    kNoRunahead = 3,  ///< All runahead disabled.
};

const char *degradeLevelName(DegradeLevel level);

/** Ladder configuration. */
struct DegradationConfig
{
    bool enabled = true; ///< Armed; inert until a fault is reported.

    /** Faults observed at the current level before stepping down. */
    int faultThreshold = 4;

    /** Clean cycles at a degraded level before re-enabling one step
     *  (probation). */
    std::uint64_t probationCycles = 50'000;
};

/** The ladder. */
class DegradationLadder
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit DegradationLadder(const DegradationConfig &config);

    const DegradationConfig &config() const { return config_; }
    DegradeLevel level() const { return level_; }

    bool chainCacheAllowed() const
    {
        return level_ < DegradeLevel::kNoChainCache;
    }
    bool bufferAllowed() const
    {
        return level_ < DegradeLevel::kNoBuffer;
    }
    bool runaheadAllowed() const
    {
        return level_ < DegradeLevel::kNoRunahead;
    }

    /** A detected fault in speculative state (invariant violation or
     *  reported corruption). Steps down when the per-level threshold
     *  is reached. */
    void noteFault();

    /** Advance one cycle; drives probation-based re-enable. */
    void tick();

    /** Advance @p n cycles at once without evaluating probation; the
     *  caller must keep @p n within maxSkippableCycles() so no stepUp
     *  is jumped over (the core's fast-forward engine caps its skip
     *  horizon accordingly and lets a real tick() perform the step). */
    void advance(std::uint64_t n) { cycle_ += n; }

    /** Largest cycle count advance() may take right now without
     *  skipping past a probationary stepUp(). */
    std::uint64_t maxSkippableCycles() const
    {
        if (!config_.enabled || level_ == DegradeLevel::kFull
            || config_.probationCycles == 0) {
            return ~std::uint64_t{0};
        }
        const std::uint64_t elapsed = cycle_ - lastFaultCycle_;
        return elapsed + 1 >= config_.probationCycles
            ? 0
            : config_.probationCycles - elapsed - 1;
    }

    /** @{ Statistics. */
    Counter faultsObserved;  ///< noteFault() calls.
    Counter degradeSteps;    ///< Downward transitions.
    Counter reenableSteps;   ///< Probationary upward transitions.
    Counter toNoChainCache;  ///< Transitions into kNoChainCache.
    Counter toNoBuffer;      ///< Transitions into kNoBuffer.
    Counter toNoRunahead;    ///< Transitions into kNoRunahead.
    /** @} */

    void regStats(StatGroup *parent);

  private:
    void stepDown();
    void stepUp();

    DegradationConfig config_;
    DegradeLevel level_ = DegradeLevel::kFull;
    int faultsAtLevel_ = 0;
    std::uint64_t cycle_ = 0;
    std::uint64_t lastFaultCycle_ = 0;
    double levelValue_ = 0.0; ///< level() as a dumpable scalar.
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_RUNAHEAD_DEGRADATION_LADDER_HH
