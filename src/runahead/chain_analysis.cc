#include "runahead/chain_analysis.hh"

#include <algorithm>
#include <vector>

#include "isa/functional.hh"

namespace rab
{

ChainAnalysis::ChainAnalysis(int window, int max_chain)
    : window_(window), maxChain_(max_chain), statGroup_("chain_analysis")
{
}

void
ChainAnalysis::beginInterval()
{
    inInterval_ = true;
    history_.clear();
    intervalSignatures_.clear();
    intervalNecessary_.clear();
    intervalExecuted_ = 0;
}

void
ChainAnalysis::recordExec(const DynUop &uop)
{
    if (!inInterval_)
        return;
    ++intervalExecuted_;
    history_.emplace(uop.seq, Rec{uop.pc, uop.sop.dest, uop.sop.src1,
                                  uop.sop.src2});
    if (static_cast<int>(history_.size()) > window_)
        history_.erase(history_.begin());
}

void
ChainAnalysis::recordMiss(const DynUop &uop)
{
    if (!inInterval_)
        return;

    // Reconstruct the backward dependence slice of the missing load
    // over the recorded window.
    std::unordered_set<int> needed; // architectural registers
    if (uop.sop.src1 != kNoArchReg)
        needed.insert(uop.sop.src1);
    if (uop.sop.src2 != kNoArchReg)
        needed.insert(uop.sop.src2);

    // The chain is the *static* slice: each static uop (PC) counts
    // once. Without the dedup, every loop-carried induction would drag
    // the slice back through all prior iterations and no two chains
    // would ever compare equal.
    std::vector<Pc> slice_pcs{uop.pc};
    intervalNecessary_.insert(uop.seq);

    const auto in_slice = [&](Pc pc) {
        for (const Pc p : slice_pcs) {
            if (p == pc)
                return true;
        }
        return false;
    };

    // Walk strictly backwards in program (sequence) order.
    auto it = history_.lower_bound(uop.seq);
    while (it != history_.begin() && !needed.empty()
           && static_cast<int>(slice_pcs.size()) < maxChain_) {
        --it;
        const Rec &rec = it->second;
        if (rec.dest == kNoArchReg || !needed.count(rec.dest))
            continue;
        needed.erase(rec.dest);
        intervalNecessary_.insert(it->first);
        if (in_slice(rec.pc))
            continue; // an older instance of a static op already seen
        if (rec.src1 != kNoArchReg)
            needed.insert(rec.src1);
        if (rec.src2 != kNoArchReg)
            needed.insert(rec.src2);
        slice_pcs.push_back(rec.pc);
    }

    // Structural signature: the sorted distinct-PC set of the slice.
    std::sort(slice_pcs.begin(), slice_pcs.end());
    std::uint64_t sig = 0x452821e638d01377ull;
    for (const Pc pc : slice_pcs)
        sig = mix64(sig ^ pc);

    ++chainsTotal;
    if (!intervalSignatures_.insert(sig).second)
        ++chainsRepeated;

    chainLengthSum += slice_pcs.size();
    ++chainsMeasured;
}

void
ChainAnalysis::endInterval()
{
    if (!inInterval_)
        return;
    opsExecuted += intervalExecuted_;
    opsNecessary += intervalNecessary_.size();
    inInterval_ = false;
    history_.clear();
    intervalSignatures_.clear();
    intervalNecessary_.clear();
    intervalExecuted_ = 0;
}

double
ChainAnalysis::necessaryFraction() const
{
    if (opsExecuted.value() == 0)
        return 0.0;
    return static_cast<double>(opsNecessary.value())
        / static_cast<double>(opsExecuted.value());
}

double
ChainAnalysis::repeatedFraction() const
{
    if (chainsTotal.value() == 0)
        return 0.0;
    return static_cast<double>(chainsRepeated.value())
        / static_cast<double>(chainsTotal.value());
}

double
ChainAnalysis::averageChainLength() const
{
    if (chainsMeasured.value() == 0)
        return 0.0;
    return static_cast<double>(chainLengthSum.value())
        / static_cast<double>(chainsMeasured.value());
}

void
ChainAnalysis::regStats(StatGroup *parent)
{
    statGroup_.addCounter("ops_executed", &opsExecuted,
                          "runahead ops executed (traditional mode)");
    statGroup_.addCounter("ops_necessary", &opsNecessary,
                          "runahead ops on a miss dependence chain");
    statGroup_.addCounter("chains_total", &chainsTotal,
                          "miss dependence chains observed");
    statGroup_.addCounter("chains_repeated", &chainsRepeated,
                          "chains repeated within an interval");
    statGroup_.addCounter("chain_length_sum", &chainLengthSum,
                          "sum of chain lengths (uops)");
    statGroup_.addCounter("chains_measured", &chainsMeasured,
                          "chains with a measured length");
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
