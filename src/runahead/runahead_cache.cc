#include "runahead/runahead_cache.hh"

#include <bit>

#include "common/logging.hh"

namespace rab
{

RunaheadCache::RunaheadCache(const RunaheadCacheConfig &config)
    : config_(config), statGroup_("runahead_cache")
{
    if (config_.lineBytes <= 0
        || (config_.lineBytes & (config_.lineBytes - 1)) != 0) {
        fatal("runahead cache: line size must be a power of two");
    }
    lineShift_ = std::countr_zero(
        static_cast<unsigned>(config_.lineBytes));
    const std::uint64_t lines = config_.sizeBytes / config_.lineBytes;
    if (lines == 0 || lines % config_.associativity != 0)
        fatal("runahead cache: bad geometry");
    numSets_ = static_cast<int>(lines / config_.associativity);
    if ((numSets_ & (numSets_ - 1)) != 0)
        fatal("runahead cache: set count must be a power of two");
    lines_.assign(lines, Line{});
}

std::size_t
RunaheadCache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

Addr
RunaheadCache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

void
RunaheadCache::write(Addr addr, std::uint64_t data)
{
    ++writes;
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * config_.associativity];
    for (int way = 0; way < config_.associativity; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            line.data = data;
            line.lruStamp = ++lruCounter_;
            return;
        }
    }
    Line *victim = &base[0];
    for (int way = 0; way < config_.associativity; ++way) {
        Line &line = base[way];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lruStamp < victim->lruStamp)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->data = data;
    victim->lruStamp = ++lruCounter_;
}

bool
RunaheadCache::read(Addr addr, std::uint64_t &data)
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * config_.associativity];
    for (int way = 0; way < config_.associativity; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++lruCounter_;
            data = line.data;
            ++readHits;
            return true;
        }
    }
    ++readMisses;
    return false;
}

void
RunaheadCache::clear()
{
    lines_.assign(lines_.size(), Line{});
}

std::uint64_t
RunaheadCache::occupancy() const
{
    std::uint64_t count = 0;
    for (const Line &line : lines_) {
        if (line.valid)
            ++count;
    }
    return count;
}

void
RunaheadCache::regStats(StatGroup *parent)
{
    statGroup_.addCounter("writes", &writes, "store data writes");
    statGroup_.addCounter("read_hits", &readHits, "forwarding hits");
    statGroup_.addCounter("read_misses", &readMisses, "forwarding misses");
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
