#include "runahead/degradation_ladder.hh"

#include "common/logging.hh"

namespace rab
{

const char *
degradeLevelName(DegradeLevel level)
{
    switch (level) {
      case DegradeLevel::kFull: return "full";
      case DegradeLevel::kNoChainCache: return "no-chain-cache";
      case DegradeLevel::kNoBuffer: return "no-buffer";
      case DegradeLevel::kNoRunahead: return "no-runahead";
    }
    return "?";
}

DegradationLadder::DegradationLadder(const DegradationConfig &config)
    : config_(config), statGroup_("degrade")
{
    statGroup_.addCounter("faults_observed", &faultsObserved,
                          "speculative faults reported to the ladder");
    statGroup_.addCounter("degrade_steps", &degradeSteps,
                          "downward ladder transitions");
    statGroup_.addCounter("reenable_steps", &reenableSteps,
                          "probationary upward transitions");
    statGroup_.addCounter("to_no_chain_cache", &toNoChainCache,
                          "transitions into no-chain-cache");
    statGroup_.addCounter("to_no_buffer", &toNoBuffer,
                          "transitions into no-buffer");
    statGroup_.addCounter("to_no_runahead", &toNoRunahead,
                          "transitions into no-runahead");
    statGroup_.addScalar("level", &levelValue_,
                         "current degradation level (0=full)");
}

void
DegradationLadder::noteFault()
{
    ++faultsObserved;
    if (!config_.enabled)
        return;
    lastFaultCycle_ = cycle_;
    if (level_ == DegradeLevel::kNoRunahead)
        return; // Already at the bottom.
    if (++faultsAtLevel_ >= config_.faultThreshold)
        stepDown();
}

void
DegradationLadder::stepDown()
{
    level_ = static_cast<DegradeLevel>(static_cast<int>(level_) + 1);
    levelValue_ = static_cast<double>(level_);
    faultsAtLevel_ = 0;
    ++degradeSteps;
    switch (level_) {
      case DegradeLevel::kNoChainCache: ++toNoChainCache; break;
      case DegradeLevel::kNoBuffer: ++toNoBuffer; break;
      case DegradeLevel::kNoRunahead: ++toNoRunahead; break;
      case DegradeLevel::kFull: break; // Unreachable.
    }
    warn("degradation ladder: stepping down to %s after %llu faults",
         degradeLevelName(level_),
         (unsigned long long)faultsObserved.value());
}

void
DegradationLadder::stepUp()
{
    level_ = static_cast<DegradeLevel>(static_cast<int>(level_) - 1);
    levelValue_ = static_cast<double>(level_);
    faultsAtLevel_ = 0;
    ++reenableSteps;
    // Restart probation for the next step from this moment.
    lastFaultCycle_ = cycle_;
    warn("degradation ladder: clean probation window, re-enabling to %s",
         degradeLevelName(level_));
}

void
DegradationLadder::tick()
{
    ++cycle_;
    if (!config_.enabled || level_ == DegradeLevel::kFull)
        return;
    if (config_.probationCycles > 0
        && cycle_ - lastFaultCycle_ >= config_.probationCycles) {
        stepUp();
    }
}

void
DegradationLadder::regStats(StatGroup *parent)
{
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
