/**
 * @file
 * Chain-generation latency microbenchmark.
 *
 * Times ChainGenerator::generate() against a full, realistically
 * structured ROB (a pointer-chasing loop body repeated to capacity)
 * twice: once through the incremental PC/producer indexes and once
 * through the retained linear-scan reference paths, and reports the
 * per-call latency distribution of each. Shared between the
 * bench_chain_generation binary (human-readable table) and rabsweep,
 * which embeds the result in the sweep manifest's environment section
 * so every campaign records the indexing speedup it ran with.
 */

#ifndef RAB_RUNAHEAD_CHAIN_MICROBENCH_HH
#define RAB_RUNAHEAD_CHAIN_MICROBENCH_HH

#include <cstdint>

#include "stats/json.hh"

namespace rab
{

/** Per-call latency distribution of one generate() variant. */
struct ChainGenLatencyDist
{
    std::uint64_t calls = 0;
    double minNs = 0;
    double p50Ns = 0;
    double p90Ns = 0;
    double p99Ns = 0;
    double maxNs = 0;
    double meanNs = 0;
};

/** The full before/after comparison. */
struct ChainGenMicrobench
{
    ChainGenLatencyDist indexed; ///< Incremental CAM indexes (default).
    ChainGenLatencyDist scan;    ///< Linear-scan reference paths.
    double speedup = 0;          ///< scan.meanNs / indexed.meanNs.
    int robEntries = 0;
    int chainLength = 0; ///< Ops in the generated chain (sanity).
};

/**
 * Run the microbenchmark.
 *
 * @param rob_entries ROB capacity to fill (Table 1 default 192).
 * @param iterations  timed generate() calls per variant.
 */
ChainGenMicrobench runChainGenMicrobench(int rob_entries = 192,
                                         int iterations = 4000);

/** JSON form (for the sweep manifest). */
Json chainGenMicrobenchJson(const ChainGenMicrobench &result);

} // namespace rab

#endif // RAB_RUNAHEAD_CHAIN_MICROBENCH_HH
