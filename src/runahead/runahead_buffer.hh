/**
 * @file
 * The runahead buffer (Section 4.3): a 32-uop structure in the rename
 * stage that holds one filtered dependence chain. During buffer-mode
 * runahead the chain is issued to rename as a loop — when the last op
 * issues, the buffer wraps to the first — until the blocking load's
 * data returns. The front-end is clock-gated the whole time.
 */

#ifndef RAB_RUNAHEAD_RUNAHEAD_BUFFER_HH
#define RAB_RUNAHEAD_RUNAHEAD_BUFFER_HH

#include "common/types.hh"
#include "runahead/chain.hh"
#include "stats/stats.hh"

namespace rab
{

/** The runahead buffer. */
class RunaheadBuffer
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit RunaheadBuffer(int capacity);

    int capacity() const { return capacity_; }
    bool active() const { return active_; }
    std::size_t chainLength() const { return chain_.size(); }
    const DependenceChain &chain() const { return chain_; }

    /** Load a chain (truncated to capacity) and start looping. */
    void fill(const DependenceChain &chain);

    /** True if an op is available to rename. */
    bool hasOp() const { return active_ && !chain_.empty(); }

    /** Next op in loop order. */
    const ChainOp &peek() const;

    /** Advance the loop pointer. Counts completed iterations. */
    void advance();

    /** Stop issuing and drop the chain (runahead exit). */
    void deactivate();

    std::uint64_t iterationsCompleted() const { return iterations_; }

    /** @{ Statistics. */
    Counter fills;
    Counter opsIssued;
    Counter loops;
    /** @} */

    void regStats(StatGroup *parent);

  private:
    int capacity_;
    bool active_ = false;
    DependenceChain chain_;
    std::size_t index_ = 0;
    std::uint64_t iterations_ = 0;
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_RUNAHEAD_RUNAHEAD_BUFFER_HH
