#include "runahead/chain_generator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/profiler.hh"
#include "isa/functional.hh"

namespace rab
{

std::uint64_t
chainSignature(const DependenceChain &chain)
{
    std::uint64_t sig = 0x243f6a8885a308d3ull;
    for (const ChainOp &op : chain) {
        sig = mix64(sig ^ op.pc);
        sig = mix64(sig ^ static_cast<std::uint64_t>(op.sop.op));
    }
    return sig;
}

bool
chainsEqual(const DependenceChain &a, const DependenceChain &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].pc != b[i].pc
            || a[i].sop.op != b[i].sop.op
            || a[i].sop.dest != b[i].sop.dest
            || a[i].sop.src1 != b[i].sop.src1
            || a[i].sop.src2 != b[i].sop.src2
            || a[i].sop.imm != b[i].sop.imm) {
            return false;
        }
    }
    return true;
}

ChainGenerator::ChainGenerator(const ChainGeneratorConfig &config)
    : config_(config), statGroup_("chain_gen")
{
}

ChainResult
ChainGenerator::generate(const Rob &rob, const StoreQueue &sq,
                         Pc blocking_pc, SeqNum blocking_seq)
{
    ProfScope prof(ProfPhase::kChainGen);
    ++attempts;
    ChainResult result;

    // Cycle 0: priority PC CAM over the ROB for a younger dynamic
    // instance of the blocking load.
    result.pcCamSearches = 1;
    result.generationCycles = 1;
    const int match_slot = rob.findOldestByPc(blocking_pc, blocking_seq);
    if (match_slot < 0) {
        ++noPcMatch;
        return result;
    }
    result.pcFound = true;

    // Reset the pooled scratch: unmark only the slots the previous call
    // touched (robust to any exit path), then size the mark array to
    // this ROB.
    for (const int slot : includedSlots_)
        includedMark_[slot] = 0;
    includedSlots_.clear();
    srsl_.clear();
    if (static_cast<int>(includedMark_.size()) < rob.capacity())
        includedMark_.resize(rob.capacity(), 0);

    // Source register search list: (register, consumer seq) pairs. The
    // consumer seq bounds the priority CAM so we find the *youngest
    // producer older than the consumer*.
    const auto enqueue_sources = [&](const DynUop &uop) {
        const auto push = [&](ArchReg reg) {
            if (reg == kNoArchReg)
                return;
            if (static_cast<int>(srsl_.size())
                    >= config_.srslEntries) {
                return; // SRSL full: chain becomes less exact.
            }
            srsl_.emplace_back(reg, uop.seq);
        };
        push(uop.sop.src1);
        push(uop.sop.src2);
    };

    const auto include = [&](int slot) -> bool {
        if (includedMark_[slot])
            return true;
        if (static_cast<int>(includedSlots_.size())
                >= config_.maxChainLength) {
            result.overflow = true;
            return false;
        }
        includedMark_[slot] = 1;
        includedSlots_.push_back(slot);
        return true;
    };

    const DynUop &seed = rob.slot(match_slot);
    include(match_slot);
    enqueue_sources(seed);

    // Walk producers, up to regSearchesPerCycle CAM searches per cycle,
    // until the SRSL drains or the chain is full.
    while (!srsl_.empty() && !result.overflow) {
        ++result.generationCycles;
        for (int port = 0;
             port < config_.regSearchesPerCycle && !srsl_.empty();
             ++port) {
            // Depth-first: walking the youngest enqueued register first
            // keeps the SRSL shallow on serial chains, so the deep
            // producers (loop inductions) are found before the list
            // capacity drops anything.
            const auto [reg, consumer_seq] = srsl_.back();
            srsl_.pop_back();
            ++result.regCamSearches;
            const int producer_slot = rob.findProducer(reg, consumer_seq);
            if (producer_slot < 0)
                continue;
            if (includedMark_[producer_slot])
                continue;
            const DynUop &producer = rob.slot(producer_slot);
            if (producer.isControl())
                continue; // Branch-predicted stream: no control uops.
            if (!include(producer_slot))
                break;
            enqueue_sources(producer);

            // Register spills/fills: a load may consume data from an
            // in-flight store; include that store and its sources.
            if (producer.isLoad() && producer.effAddr != kNoAddr) {
                ++result.sqSearches;
                const int store_slot =
                    sq.findStoreRobSlot(producer.seq, producer.effAddr);
                if (store_slot >= 0 && !includedMark_[store_slot]) {
                    if (!include(store_slot))
                        break;
                    enqueue_sources(rob.slot(store_slot));
                }
            }
        }
    }

    // Read the chain out of the ROB in program order at the back-end's
    // superscalar width. Seqs are unique, so sorting the insertion-order
    // slot list by seq yields the same program order the old
    // slot-ordered set did.
    std::sort(includedSlots_.begin(), includedSlots_.end(),
              [&](int a, int b) { return rob.slot(a).seq < rob.slot(b).seq; });
    result.chain.reserve(includedSlots_.size());
    for (const int slot : includedSlots_) {
        const DynUop &uop = rob.slot(slot);
        result.chain.push_back(ChainOp{uop.pc, uop.sop});
    }
    result.robReads = static_cast<int>(result.chain.size());
    result.generationCycles += (result.robReads + config_.readoutWidth - 1)
        / config_.readoutWidth;

    if (result.overflow)
        ++overflows;
    ++generatedChains;
    generatedOps += result.chain.size();
    return result;
}

void
ChainGenerator::regStats(StatGroup *parent)
{
    statGroup_.addCounter("attempts", &attempts, "generation attempts");
    statGroup_.addCounter("no_pc_match", &noPcMatch,
                          "attempts with no matching PC in ROB");
    statGroup_.addCounter("overflows", &overflows,
                          "chains that hit the length cap");
    statGroup_.addCounter("generated_chains", &generatedChains,
                          "chains generated");
    statGroup_.addCounter("generated_ops", &generatedOps,
                          "total uops across generated chains");
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
