/**
 * @file
 * Continuous Runahead chain engine (Hashemi's dissertation, "On-Chip
 * Mechanisms to Reduce Effective Memory Access Latency", ch. 5).
 *
 * The paper's runahead buffer only executes filtered dependence chains
 * *inside* runahead intervals — the chain dies when the blocking load
 * returns. Continuous Runahead decouples the two: the chain that
 * caused a full-window stall is shipped to a small execution engine at
 * the memory controller, which holds its own 32-entry register file
 * and loops the chain continuously, issuing every load address it
 * computes as a prefetch into the real hierarchy through the shared
 * MSHR/DRAM path. Because the engine is value-based (it reads the
 * architectural memory image, never writes it) the loop tracks real
 * future addresses of pointer chases instead of strides.
 *
 * Steering: each chain slot carries a saturating utility counter.
 * Engine prefetches that arrive before the core's demand miss
 * increment it; fills evicted unused or aged out unreferenced
 * decrement it; a slot that hits zero is descheduled until the core
 * ships the chain again. Chains whose iterations stop producing new
 * fills (ALU-only or fully cache-resident loops) are also descheduled,
 * which bounds the engine's execution rate.
 *
 * Prefetch-only invariant: the engine can read the functional memory
 * image (const pointer — compile-enforced) but all stores it executes
 * are contained in a per-slot forwarding buffer, and all memory
 * traffic it emits goes through SharedMemory's prefetch path. The
 * invariant checker audits this at full check level, including under
 * fault injection (corrupted chains shipped from the chain cache).
 *
 * Timing: the engine is event-driven. MemorySystem calls advanceTo()
 * at the head of every demand access, and the engine catches up
 * cycle-accurately, jumping over windows where every slot is stalled
 * on a fill. All interactions with DRAM/LLC carry the engine's own
 * cycle timestamps, so the catch-up is exact: engine state is a
 * function of (shipped chains, target cycle), never of the host call
 * pattern — which is what keeps CRE runs deterministic and fast-
 * forward transparent.
 */

#ifndef RAB_RUNAHEAD_CHAIN_ENGINE_HH
#define RAB_RUNAHEAD_CHAIN_ENGINE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "runahead/chain.hh"
#include "stats/stats.hh"

namespace rab
{

class MemorySystem;
class FunctionalMemory;

/** Chain-engine configuration. Defaults model a 2-chain engine sized
 *  like the chain cache it is fed from. */
struct ChainEngineConfig
{
    bool enabled = false; ///< Ship chains and loop them continuously.

    /** Instantiate the engine and run every MemorySystem hook without
     *  ever accepting a chain. Test-only: the differential suite uses
     *  this to certify the hook plumbing is side-effect free. */
    bool instantiateInert = false;

    int slots = 2;       ///< Concurrent chain contexts (chain cache size).
    int storeBufEntries = 16; ///< Per-slot store-forwarding entries.

    /** Dataflow execute bandwidth: ready uops issued per engine cycle,
     *  with same-cycle forwarding across the engine's single ALU
     *  cluster (the register file is 32 entries and chains are short,
     *  so full bypass is cheap). The width is what lets a serial
     *  15-uop chain iteration turn in ~4 cycles — faster than the
     *  core's demand iteration, which is the precondition for running
     *  ahead of it. Loads still publish their dest at the fill cycle. */
    // rablint: cycle-ok (issue bandwidth per engine cycle, not a
    // cycle count — never enters Cycle arithmetic)
    int uopsPerCycle = 4;

    /** @{ Utility steering. New/re-shipped chains start at init;
     *  timely prefetches saturate at max; zero deschedules. */
    int utilityInit = 4;
    int utilityMax = 7;
    /** @} */

    /** Iterations in a row producing no new or in-flight fill before
     *  the slot is descheduled (bounds ALU-only / cache-resident
     *  loops). Sized to cover the one-time catch-up a freshly seeded
     *  chain needs: it starts from *committed* register state, a full
     *  ROB plus a runahead interval behind the core's demand frontier,
     *  and every iteration until it overtakes hits warm lines. */
    std::uint64_t idleIterationLimit = 64;

    /** Recent-prefetch table capacity (timeliness matching). */
    std::size_t recentEntries = 64;

    // rablint: cycle-ok (bounded retry/aging knobs; applied via Cycle
    // math against the engine's own clock)
    int queueRetryCycles = 32; ///< Stall after a queue-full rejection.
    int recentTtlCycles = 8192; ///< Fill age-out horizon (unused ⇒ −1).
};

/** Outcome of one engine prefetch handed to the hierarchy. */
struct EnginePrefetchResult
{
    bool accepted = false; ///< Line is (or will be) on chip.
    bool issued = false;   ///< A new DRAM fill was started for it.
    bool merged = false;   ///< Joined a fill already in flight.
    Cycle readyCycle = 0;  ///< When the line (and its value) is usable.
    Addr line = 0;         ///< Namespaced, line-aligned fill address.
};

/** The Continuous Runahead engine: one per core, owned by the core's
 *  MemorySystem, fed by the core at runahead-buffer entries. */
class ChainEngine
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    ChainEngine(const ChainEngineConfig &config, MemorySystem *mem,
                const FunctionalMemory *func_mem);

    const ChainEngineConfig &config() const { return config_; }

    /** True when the engine accepts and loops chains. An inert
     *  instance (instantiateInert) returns false and every hook
     *  degenerates to a no-op. */
    bool active() const { return config_.enabled; }

    /**
     * Accept a dependence chain from the core (called at runahead
     * entry for buffer-mode decisions). The engine seeds the slot's
     * register file from the core's architectural values at ship time
     * and starts looping at @p now. Re-shipping a chain PC refreshes
     * its slot (chain + registers) and reschedules it.
     */
    void shipChain(Pc chain_pc, const DependenceChain &chain,
                   const std::array<std::uint64_t, kNumArchRegs> &regs,
                   Cycle now);

    /** Catch the engine up to core cycle @p now. Idempotent; safe to
     *  call with a non-increasing @p now (no-op). */
    void advanceTo(Cycle now);

    /** Demand-miss hook: the core is about to access @p line (already
     *  namespaced). Matches against recent engine fills to credit
     *  timely prefetches. */
    void noteDemandAccess(Addr line, Cycle now);

    /** Eviction hook: @p line left the LLC. If it was an engine fill
     *  never referenced by a demand access, the owning chain loses
     *  utility. */
    void noteEvicted(Addr line);

    /**
     * Prefetch-only containment audit (invariant checker, full level).
     * Verifies every store the engine ever executed was contained in
     * its slot-local buffer and every tracked fill stays line-aligned
     * inside the owning core's namespaced slice. Returns false and
     * fills @p why on violation.
     */
    bool auditContainment(std::string *why) const;

    /** @{ Statistics. */
    Counter chainsShipped;    ///< Chains accepted from the core.
    Counter chainReplacements;///< Ships that evicted a live slot.
    Counter uopsExecuted;     ///< Engine uops executed.
    Counter loadsExecuted;    ///< Loads among them.
    Counter storeUopsSeen;    ///< Store uops encountered.
    Counter storesContained;  ///< Stores absorbed by the slot buffer.
    Counter prefetchesIssued; ///< New DRAM fills started.
    Counter prefetchesTimely; ///< Fills referenced after completion.
    Counter prefetchesLate;   ///< Fills referenced while in flight.
    Counter prefetchesUnused; ///< Fills evicted or aged out unused.
    Counter iterations;       ///< Completed chain loop iterations.
    Counter deschedules;      ///< Slots parked (utility/idle).
    Counter queueStalls;      ///< Queue-full rejections absorbed.
    Counter pacingStalls;     ///< Credit-window (recent-table) pauses.
    /** @} */

    void regStats(StatGroup *parent);
    StatGroup &stats() { return statGroup_; }

  private:
    struct StoreEntry
    {
        Addr addr = 0;
        std::uint64_t value = 0;
    };

    /** One chain context: the Continuous Runahead Engine's register
     *  file plus the loop cursor and steering state. */
    struct Slot
    {
        bool valid = false;
        bool running = false;
        Pc chainPc = 0;
        DependenceChain chain;
        std::array<std::uint64_t, kNumArchRegs> regs{};
        /** Scoreboard: cycle each register's value becomes consumable.
         *  Loads write their value immediately (the runahead value
         *  idiom — the register file carries data, the scoreboard
         *  carries timing) but publish readiness at the fill cycle, so
         *  only uops that actually consume a load's value wait on
         *  memory. A pointer chase serialises on its address register;
         *  a gather chain, whose loaded values feed nothing, loops
         *  ahead of the demand stream — which is the whole point. */
        std::array<Cycle, kNumArchRegs> regReady{};
        std::vector<StoreEntry> storeBuf;
        std::size_t index = 0;     ///< Loop cursor into chain.
        int utility = 0;
        Cycle stallUntil = 0;      ///< Waiting on a source / retry.
        std::uint64_t fillsThisIteration = 0;
        std::uint64_t idleIterations = 0;
    };

    /** A recently issued engine fill awaiting its demand reference. */
    struct RecentFill
    {
        Addr line = 0;
        Cycle readyCycle = 0;
        Cycle issuedCycle = 0;
        int slot = 0;
    };

    /** Execute slot @p s's next uop at engine cycle @p now. Returns
     *  false when the slot stalled instead of consuming the uop. */
    bool executeUop(Slot &s, Cycle now);

    void finishIteration(Slot &s);
    void bumpUtility(int slot, int delta);
    void deschedule(Slot &s);
    int pickShipSlot(Pc chain_pc);
    void recordFill(Addr line, Cycle ready, Cycle now, int slot);
    void ageRecentFills(Cycle now);

    /** Earliest cycle any stalled-but-running slot becomes runnable;
     *  0 when every slot is parked. */
    Cycle nextRunnableCycle() const;

    ChainEngineConfig config_;
    MemorySystem *mem_;
    /** Architectural memory image — const: the engine can read values
     *  (that is what makes it track pointer chases) but a write path
     *  does not compile. */
    const FunctionalMemory *funcMem_;

    std::vector<Slot> slots_;
    std::size_t nextSlotRr_ = 0; ///< Round-robin issue pointer.
    std::vector<RecentFill> recent_; ///< FIFO, bounded.
    Cycle cycle_ = 0; ///< Engine-local clock (trails the core's).

    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_RUNAHEAD_CHAIN_ENGINE_HH
