/**
 * @file
 * Runahead policy + mode controller.
 *
 * Owns everything runahead-specific that is not the core pipeline
 * itself: the policy knobs (traditional / buffer / chain cache /
 * hybrid / enhancements), the runahead cache, the chain generator,
 * the chain cache and the runahead buffer, plus all per-interval
 * bookkeeping the evaluation figures need (MLP per interval, cycles per
 * mode, chain-cache exact-match rates, suppressed entries).
 */

#ifndef RAB_RUNAHEAD_RUNAHEAD_CONTROLLER_HH
#define RAB_RUNAHEAD_RUNAHEAD_CONTROLLER_HH

#include <cstdint>

#include "backend/dyn_uop.hh"
#include "backend/lsq.hh"
#include "backend/rob.hh"
#include "runahead/chain_cache.hh"
#include "runahead/chain_engine.hh"
#include "runahead/chain_generator.hh"
#include "runahead/degradation_ladder.hh"
#include "runahead/runahead_buffer.hh"
#include "runahead/runahead_cache.hh"
#include "stats/stats.hh"

namespace rab
{

class InvariantChecker;
class FaultInjector;

/** Which runahead mechanism is currently running. */
enum class RunaheadMode
{
    kNone,        ///< Normal execution.
    kTraditional, ///< Front-end supplies runahead instructions.
    kBuffer,      ///< Runahead buffer supplies the dependence chain.
};

/** Configuration of the runahead mechanisms (Section 4). */
struct RunaheadPolicy
{
    bool traditionalEnabled = false;
    bool bufferEnabled = false;
    bool chainCacheEnabled = false;
    bool hybrid = false;        ///< Fig. 8 fallback policy.
    bool enhancements = false;  ///< Mutlu ISCA-32 interval filters.

    /** Enhancement 1: only enter when the blocking miss was issued to
     *  memory fewer than this many instructions ago. */
    std::uint64_t distanceThreshold = 250;

    int bufferEntries = 32;
    int chainCacheEntries = 2;
    ChainGeneratorConfig chainGen{};
    RunaheadCacheConfig runaheadCache{};
    DegradationConfig degrade{}; ///< Graceful-degradation ladder.
    ChainEngineConfig engine{}; ///< Continuous Runahead engine (CRE).

    bool anyRunahead() const
    {
        return traditionalEnabled || bufferEnabled;
    }
};

/** @{ Named policy presets matching the paper's evaluated systems. */
RunaheadPolicy policyNone();
RunaheadPolicy policyTraditional();           ///< "Runahead"
RunaheadPolicy policyTraditionalEnhanced();   ///< "Runahead Enhancements"
RunaheadPolicy policyBuffer();                ///< "Runahead Buffer"
RunaheadPolicy policyBufferChainCache();      ///< "RA Buffer + Chain Cache"
RunaheadPolicy policyHybrid();                ///< "Hybrid"
RunaheadPolicy policyCre();                   ///< "CRE"
RunaheadPolicy policyCreHybrid();             ///< "CRE+Hybrid"
/** @} */

/** What to do when the ROB is blocked by an LLC miss. */
struct EntryDecision
{
    bool enter = false;
    RunaheadMode mode = RunaheadMode::kNone;
    bool usedCachedChain = false;
    DependenceChain chain;      ///< For kBuffer mode.
    Cycle generationCycles = 0; ///< Pipeline delay before buffer issue.
};

/** The controller. */
class RunaheadController
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit RunaheadController(const RunaheadPolicy &policy);

    const RunaheadPolicy &policy() const { return policy_; }
    RunaheadMode mode() const { return mode_; }
    bool inRunahead() const { return mode_ != RunaheadMode::kNone; }

    /**
     * Decide whether/how to enter runahead for the blocking load at the
     * ROB head.
     *
     * @param head           the blocking load.
     * @param fetched_instrs normal-mode fetched-uop count (drives the
     *                       short-interval enhancement).
     * @param retired_instrs committed-uop count (drives the overlap
     *                       enhancement).
     */
    EntryDecision decideEntry(const Rob &rob, const StoreQueue &sq,
                              const DynUop &head,
                              std::uint64_t fetched_instrs,
                              std::uint64_t retired_instrs);

    /** Commit to an entry decision at cycle @p now. The blocking miss
     *  returns at @p blocking_ready. */
    void enter(const EntryDecision &decision, Cycle now,
               Cycle blocking_ready, std::uint64_t retired_instrs);

    /** True when the blocking data has returned. */
    bool shouldExit(Cycle now) const
    {
        return inRunahead() && now >= blockingReady_;
    }

    /** Leave runahead. @p farthest_instr is the youngest normal-stream
     *  instruction number reached (traditional mode pseudo-retirement);
     *  feeds the overlap enhancement. */
    void exit(Cycle now, std::uint64_t farthest_instr);

    /** Account one cycle in the current mode. */
    void tickCycle();

    /** Bulk-account @p n skipped cycles exactly as @p n tickCycle()
     *  calls would have (mode-cycle counters + ladder time); the
     *  caller must keep @p n within ladder().maxSkippableCycles(). */
    void accountSkippedCycles(std::uint64_t n);

    /** Cycle the blocking data returns (exit horizon; only meaningful
     *  while inRunahead()). */
    Cycle exitReadyAt() const { return blockingReady_; }

    /** An LLC miss was generated by a runahead op (MLP tracking). */
    void noteRunaheadMiss();

    /** Cycle the runahead buffer may start issuing (after chain
     *  generation completes). */
    Cycle bufferIssueStart() const { return bufferIssueStart_; }

    RunaheadCache &runaheadCache() { return runaheadCache_; }
    ChainCache &chainCache() { return chainCache_; }
    ChainGenerator &chainGenerator() { return chainGen_; }
    RunaheadBuffer &buffer() { return buffer_; }
    const RunaheadBuffer &buffer() const { return buffer_; }

    /** Attach the core's invariant checker (may be null / disabled):
     *  validates generated chains and chain-cache indexing. */
    void setChecker(InvariantChecker *checker) { checker_ = checker; }

    /** Attach a fault injector (may be null): corrupts chain-cache
     *  entries on the schedule it carries. */
    void setFaultInjector(FaultInjector *faults) { faults_ = faults; }

    /** The graceful-degradation ladder (fault containment). */
    DegradationLadder &ladder() { return ladder_; }
    const DegradationLadder &ladder() const { return ladder_; }

    /** A fault was detected in speculative state (routed invariant
     *  violation or reported corruption): feed the ladder. */
    void noteSpeculativeFault();

    /** Average runahead-generated LLC misses per interval (Fig. 10). */
    double missesPerInterval() const;

    /** Fraction of runahead cycles spent in buffer mode (Fig. 14). */
    double bufferCycleFraction() const;

    /** @{ Statistics. */
    Counter intervals;
    Counter traditionalIntervals;
    Counter bufferIntervals;
    Counter cyclesTraditional;
    Counter cyclesBuffer;
    Counter chainGenCycles;
    Counter runaheadMisses;       ///< LLC misses from runahead ops.
    Counter suppressedShort;      ///< Enhancement-1 suppressions.
    Counter suppressedOverlap;    ///< Enhancement-2 suppressions.
    Counter noChainNoEntry;       ///< Buffer-only: no chain available.
    Counter chainCacheExactHits;  ///< CC hits matching the ROB chain.
    Counter chainCacheCheckedHits;///< CC hits where a comparison ran.
    Counter checkpoints;          ///< Runahead entries (energy event).
    Counter pcCamSearches;
    Counter regCamSearches;
    Counter sqCamSearches;
    Counter robChainReads;
    Counter speculativeFaults;    ///< Detected speculative faults.
    Counter cachedChainsRejected; ///< Cached chains the checker
                                  ///< flagged and we discarded.
    Counter degradedNoEntry;      ///< Entries blocked: ladder at
                                  ///< no-runahead.
    Counter degradedTraditional;  ///< Buffer entries demoted to
                                  ///< traditional by the ladder.
    /** @} */

    /** Distribution of interval lengths in cycles. */
    const Distribution &intervalLengths() const { return intervalLengths_; }

    /** Distribution of new misses generated per interval. */
    const Distribution &intervalMlp() const { return intervalMlp_; }

    void regStats(StatGroup *parent);

  private:
    /** Chain-cache lookup that runs the checker over the cached chain
     *  and discards entries the checker flags (under the degrade
     *  policy a routed violation marks the chain corrupt). Returns
     *  nullptr on miss or rejection. */
    const DependenceChain *lookupTrustedChain(Pc pc);

    RunaheadPolicy policy_;
    RunaheadMode mode_ = RunaheadMode::kNone;
    Cycle blockingReady_ = 0;
    Cycle bufferIssueStart_ = 0;
    Cycle enteredAt_ = 0;
    std::uint64_t missesAtEntry_ = 0;
    std::uint64_t farthestInstr_ = 0;
    Distribution intervalLengths_{0, 1024, 32};
    Distribution intervalMlp_{0, 64, 2};

    RunaheadCache runaheadCache_;
    ChainGenerator chainGen_;
    ChainCache chainCache_;
    RunaheadBuffer buffer_;
    DegradationLadder ladder_;
    InvariantChecker *checker_ = nullptr;
    FaultInjector *faults_ = nullptr;
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_RUNAHEAD_RUNAHEAD_CONTROLLER_HH
