/**
 * @file
 * Runahead cache: a tiny 512-byte, 4-way set-associative cache with
 * 8-byte lines (Table 1) that holds speculative store data during
 * runahead so it can be forwarded to runahead loads. Store results must
 * never become globally observable, so this structure is cleared on
 * every runahead exit.
 */

#ifndef RAB_RUNAHEAD_RUNAHEAD_CACHE_HH
#define RAB_RUNAHEAD_RUNAHEAD_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace rab
{

/** Runahead cache configuration. */
struct RunaheadCacheConfig
{
    std::uint64_t sizeBytes = 512;
    int associativity = 4;
    int lineBytes = 8;
};

/** The runahead store-data cache. */
class RunaheadCache
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit RunaheadCache(const RunaheadCacheConfig &config);

    /** Record store data for the word containing @p addr. */
    void write(Addr addr, std::uint64_t data);

    /** Look up forwardable data. Returns true and fills @p data on a
     *  hit. */
    bool read(Addr addr, std::uint64_t &data);

    /** Invalidate everything (runahead exit). */
    void clear();

    std::uint64_t occupancy() const;

    /** @{ Statistics / energy events. */
    Counter writes;
    Counter readHits;
    Counter readMisses;
    /** @} */

    void regStats(StatGroup *parent);

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t data = 0;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    RunaheadCacheConfig config_;
    int numSets_;
    int lineShift_;
    std::vector<Line> lines_;
    std::uint64_t lruCounter_ = 0;
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_RUNAHEAD_RUNAHEAD_CACHE_HH
