#include "runahead/chain_engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/functional.hh"
#include "memory/memory_system.hh"

namespace rab
{

ChainEngine::ChainEngine(const ChainEngineConfig &config,
                         MemorySystem *mem,
                         const FunctionalMemory *func_mem)
    : config_(config), mem_(mem), funcMem_(func_mem),
      statGroup_("engine")
{
    if (config_.slots < 1)
        config_.slots = 1;
    if (config_.utilityMax < config_.utilityInit)
        config_.utilityMax = config_.utilityInit;
    slots_.resize(static_cast<std::size_t>(config_.slots));
    recent_.reserve(config_.recentEntries);
}

void
ChainEngine::regStats(StatGroup *parent)
{
    statGroup_.addCounter("chains_shipped", &chainsShipped,
                          "chains accepted from the core");
    statGroup_.addCounter("chain_replacements", &chainReplacements,
                          "ships that evicted a live chain slot");
    statGroup_.addCounter("uops_executed", &uopsExecuted,
                          "engine uops executed");
    statGroup_.addCounter("loads_executed", &loadsExecuted,
                          "engine loads executed");
    statGroup_.addCounter("store_uops_seen", &storeUopsSeen,
                          "store uops encountered in chains");
    statGroup_.addCounter("stores_contained", &storesContained,
                          "stores absorbed by the slot buffer");
    statGroup_.addCounter("prefetches_issued", &prefetchesIssued,
                          "new DRAM fills started by the engine");
    statGroup_.addCounter("prefetches_timely", &prefetchesTimely,
                          "fills referenced after completion");
    statGroup_.addCounter("prefetches_late", &prefetchesLate,
                          "fills referenced while still in flight");
    statGroup_.addCounter("prefetches_unused", &prefetchesUnused,
                          "fills evicted or aged out unreferenced");
    statGroup_.addCounter("iterations", &iterations,
                          "completed chain loop iterations");
    statGroup_.addCounter("deschedules", &deschedules,
                          "slots parked by utility or idleness");
    statGroup_.addCounter("queue_stalls", &queueStalls,
                          "memory-queue rejections absorbed");
    statGroup_.addCounter("pacing_stalls", &pacingStalls,
                          "credit-window pauses (recent table full)");
    parent->addChild(&statGroup_);
}

int
ChainEngine::pickShipSlot(Pc chain_pc)
{
    const int n = static_cast<int>(slots_.size());
    // Same chain PC: refresh in place, keeping its steering history.
    for (int i = 0; i < n; ++i) {
        if (slots_[static_cast<std::size_t>(i)].valid
            && slots_[static_cast<std::size_t>(i)].chainPc == chain_pc)
            return i;
    }
    for (int i = 0; i < n; ++i) {
        if (!slots_[static_cast<std::size_t>(i)].valid)
            return i;
    }
    // Evict the lowest-utility slot (parked slots sort below running
    // ones by construction — their utility already decayed).
    int victim = 0;
    for (int i = 1; i < n; ++i) {
        if (slots_[static_cast<std::size_t>(i)].utility
            < slots_[static_cast<std::size_t>(victim)].utility)
            victim = i;
    }
    ++chainReplacements;
    return victim;
}

void
ChainEngine::shipChain(
    Pc chain_pc, const DependenceChain &chain,
    const std::array<std::uint64_t, kNumArchRegs> &regs, Cycle now)
{
    if (!active() || chain.empty())
        return;
    // Catch up under the pre-ship state first: the chain arrives at
    // core cycle `now`, not retroactively.
    advanceTo(now);

    Slot &s = slots_[static_cast<std::size_t>(pickShipSlot(chain_pc))];
    const bool same_pc = s.valid && s.chainPc == chain_pc;
    ++chainsShipped;
    if (same_pc && s.running && chainsEqual(s.chain, chain)) {
        // The engine is already looping this exact chain, typically
        // ahead of the core's committed frontier. Keep its progressed
        // register state — reseeding from committed values would drag
        // the loop back inside the demand stream, and it would spend
        // its whole life catching up. The re-ship just reaffirms the
        // chain's usefulness.
        s.utility = std::max(s.utility, config_.utilityInit);
        return;
    }
    s.valid = true;
    s.running = true;
    s.chainPc = chain_pc;
    s.chain = chain;
    s.regs = regs;
    s.regReady.fill(0);
    s.storeBuf.clear();
    s.index = 0;
    s.utility = same_pc ? std::max(s.utility, config_.utilityInit)
                        : config_.utilityInit;
    s.stallUntil = now;
    s.fillsThisIteration = 0;
    s.idleIterations = 0;
}

Cycle
ChainEngine::nextRunnableCycle() const
{
    Cycle next = 0;
    for (const Slot &s : slots_) {
        if (!s.valid || !s.running || s.chain.empty())
            continue;
        if (next == 0 || s.stallUntil < next)
            next = s.stallUntil;
    }
    return next;
}

void
ChainEngine::advanceTo(Cycle now)
{
    if (!active() || now <= cycle_) {
        if (now > cycle_)
            cycle_ = now;
        return;
    }
    const std::size_t n = slots_.size();
    while (cycle_ < now) {
        ageRecentFills(cycle_);
        // Dataflow issue: up to uopsPerCycle ready uops per engine
        // cycle, round-robin over runnable slots, with same-cycle
        // forwarding. A uop that stalls (sources in flight, queue
        // full, pacing) parks its slot past cycle_ and costs no issue
        // bandwidth.
        int issued = 0;
        while (issued < config_.uopsPerCycle) {
            Slot *pick = nullptr;
            for (std::size_t k = 0; k < n; ++k) {
                const std::size_t i = (nextSlotRr_ + k) % n;
                Slot &s = slots_[i];
                if (!s.valid || !s.running || s.chain.empty()
                    || s.stallUntil > cycle_)
                    continue;
                nextSlotRr_ = (i + 1) % n;
                pick = &s;
                break;
            }
            if (!pick)
                break;
            if (executeUop(*pick, cycle_))
                ++issued;
        }
        if (issued > 0) {
            ++cycle_;
            continue;
        }
        // Every slot stalled or parked: jump straight to the next
        // wake-up (or the target), never past it.
        const Cycle next = nextRunnableCycle();
        cycle_ = (next == 0 || next > now) ? now : next;
    }
    ageRecentFills(cycle_);
}

bool
ChainEngine::executeUop(Slot &s, Cycle now)
{
    const ChainOp &op = s.chain[s.index];
    const Uop &uop = op.sop;
    const auto src = [&](ArchReg r) -> std::uint64_t {
        return r == kNoArchReg || r >= kNumArchRegs
            ? 0
            : s.regs[static_cast<std::size_t>(r)];
    };
    const auto readyAt = [&](ArchReg r) -> Cycle {
        return r == kNoArchReg || r >= kNumArchRegs
            ? 0
            : s.regReady[static_cast<std::size_t>(r)];
    };

    // Dataflow stall: a uop issues only once every source value has
    // landed. Loads whose values nothing downstream consumes never
    // block the loop, so gather chains run ahead of the demand
    // stream; a pointer chase stalls right here on the address
    // register until its producing fill completes.
    const Cycle ready = std::max(readyAt(uop.src1), readyAt(uop.src2));
    if (ready > now) {
        s.stallUntil = ready;
        return false;
    }

    switch (uop.op) {
    case Opcode::kLoad: {
        const Addr addr = effectiveAddr(uop, src(uop.src1));
        std::uint64_t value = 0;
        Cycle value_ready = now;
        bool forwarded = false;
        // Slot-local store forwarding completes without touching the
        // hierarchy at all.
        for (auto it = s.storeBuf.rbegin(); it != s.storeBuf.rend();
             ++it) {
            if ((it->addr & ~Addr{7}) == (addr & ~Addr{7})) {
                value = it->value;
                forwarded = true;
                break;
            }
        }
        if (!forwarded) {
            if (recent_.size() >= config_.recentEntries) {
                // Pacing governor: the recent-fill table is a credit
                // window — at most recentEntries fills may be awaiting
                // their demand reference. A full table means the loop
                // is that many lines ahead of the core; pausing here
                // bounds LLC pollution and lets demand drain credits.
                ++pacingStalls;
                s.stallUntil =
                    now + static_cast<Cycle>(config_.queueRetryCycles);
                return false;
            }
            const EnginePrefetchResult res =
                mem_->enginePrefetchLine(addr, now);
            if (!res.accepted) {
                // Queue full: demand traffic owns the reserved slots.
                ++queueStalls;
                s.stallUntil =
                    now + static_cast<Cycle>(config_.queueRetryCycles);
                return false;
            }
            if (res.issued) {
                ++prefetchesIssued;
                ++s.fillsThisIteration;
                recordFill(res.line, res.readyCycle, now,
                           static_cast<int>(&s - slots_.data()));
            } else if (res.merged) {
                // Joining an in-flight fill means the loop is at the
                // demand frontier, about to overtake it — that is
                // progress, not idleness.
                ++s.fillsThisIteration;
            }
            // Runahead value idiom: the destination takes the
            // architectural value now; the scoreboard defers its
            // *consumability* to the fill's ready cycle.
            value = funcMem_->read(addr);
            value_ready = std::max(res.readyCycle, now + 1);
        }
        if (uop.hasDest() && uop.dest < kNumArchRegs) {
            s.regs[static_cast<std::size_t>(uop.dest)] = value;
            s.regReady[static_cast<std::size_t>(uop.dest)] =
                value_ready;
        }
        ++loadsExecuted;
        break;
    }
    case Opcode::kStore: {
        // Prefetch-only containment: stores live and die in the slot
        // buffer; the functional image is const from here.
        const Addr addr = effectiveAddr(uop, src(uop.src1));
        if (s.storeBuf.size()
            >= static_cast<std::size_t>(config_.storeBufEntries))
            s.storeBuf.erase(s.storeBuf.begin());
        s.storeBuf.push_back({addr, src(uop.src2)});
        ++storeUopsSeen;
        ++storesContained;
        break;
    }
    case Opcode::kBranch:
    case Opcode::kJump:
        // Algorithm 1 never includes control uops; a fault-corrupted
        // chain might. The engine loops linearly regardless.
        break;
    case Opcode::kNop:
        break;
    default: {
        if (uop.hasDest() && uop.dest < kNumArchRegs) {
            s.regs[static_cast<std::size_t>(uop.dest)] =
                evalAlu(uop, src(uop.src1), src(uop.src2));
            // Same-cycle forwarding: consumable by the next issue slot
            // this cycle (serial ALU chains run at the issue width).
            s.regReady[static_cast<std::size_t>(uop.dest)] = now;
        }
        break;
    }
    }
    ++uopsExecuted;
    ++s.index;
    if (s.index >= s.chain.size())
        finishIteration(s);
    return true;
}

void
ChainEngine::finishIteration(Slot &s)
{
    s.index = 0;
    s.storeBuf.clear();
    ++iterations;
    if (s.fillsThisIteration == 0) {
        // ALU-only or fully cache-resident loop: it produces nothing,
        // so park it before it burns engine cycles forever.
        if (++s.idleIterations >= config_.idleIterationLimit)
            deschedule(s);
    } else {
        s.idleIterations = 0;
    }
    s.fillsThisIteration = 0;
}

void
ChainEngine::deschedule(Slot &s)
{
    if (!s.running)
        return;
    s.running = false;
    ++deschedules;
}

void
ChainEngine::bumpUtility(int slot, int delta)
{
    if (slot < 0 || slot >= static_cast<int>(slots_.size()))
        return;
    Slot &s = slots_[static_cast<std::size_t>(slot)];
    if (!s.valid)
        return;
    s.utility = std::clamp(s.utility + delta, 0, config_.utilityMax);
    if (s.utility == 0)
        deschedule(s);
}

void
ChainEngine::recordFill(Addr line, Cycle ready, Cycle now, int slot)
{
    if (recent_.size() >= config_.recentEntries) {
        // Table full: the oldest fill retires uncredited.
        ++prefetchesUnused;
        bumpUtility(recent_.front().slot, -1);
        recent_.erase(recent_.begin());
    }
    recent_.push_back({line, ready, now, slot});
}

void
ChainEngine::ageRecentFills(Cycle now)
{
    const auto ttl = static_cast<Cycle>(config_.recentTtlCycles);
    while (!recent_.empty()
           && recent_.front().issuedCycle + ttl <= now) {
        ++prefetchesUnused;
        bumpUtility(recent_.front().slot, -1);
        recent_.erase(recent_.begin());
    }
}

void
ChainEngine::noteDemandAccess(Addr line, Cycle now)
{
    if (!active() || recent_.empty())
        return;
    for (auto it = recent_.begin(); it != recent_.end(); ++it) {
        if (it->line != line)
            continue;
        if (now >= it->readyCycle) {
            ++prefetchesTimely;
            bumpUtility(it->slot, +1);
        } else {
            ++prefetchesLate;
        }
        recent_.erase(it);
        return;
    }
}

void
ChainEngine::noteEvicted(Addr line)
{
    if (!active() || recent_.empty())
        return;
    for (auto it = recent_.begin(); it != recent_.end(); ++it) {
        if (it->line != line)
            continue;
        ++prefetchesUnused;
        bumpUtility(it->slot, -1);
        recent_.erase(it);
        return;
    }
}

bool
ChainEngine::auditContainment(std::string *why) const
{
    if (storeUopsSeen.value() != storesContained.value()) {
        if (why) {
            *why = strprintf(
                "engine stores escaped containment: %llu seen, %llu "
                "contained",
                (unsigned long long)storeUopsSeen.value(),
                (unsigned long long)storesContained.value());
        }
        return false;
    }
    const auto line_mask =
        static_cast<Addr>(mem_->lineBytes() - 1);
    const auto core = static_cast<Addr>(mem_->coreId());
    for (const RecentFill &f : recent_) {
        if ((f.line & line_mask) != 0) {
            if (why)
                *why = strprintf("engine fill 0x%llx not line-aligned",
                                 (unsigned long long)f.line);
            return false;
        }
        if ((f.line >> kCoreAddrShift) != core) {
            if (why) {
                *why = strprintf(
                    "engine fill 0x%llx escaped core %d's slice",
                    (unsigned long long)f.line, mem_->coreId());
            }
            return false;
        }
    }
    for (const Slot &s : slots_) {
        if (s.storeBuf.size()
            > static_cast<std::size_t>(config_.storeBufEntries)) {
            if (why)
                *why = "engine store buffer overflowed its bound";
            return false;
        }
    }
    return true;
}

} // namespace rab
