#include "runahead/chain_cache.hh"

#include "common/logging.hh"

namespace rab
{

ChainCache::ChainCache(int entries)
    : statGroup_("chain_cache")
{
    if (entries <= 0)
        fatal("chain cache: bad entry count %d", entries);
    slots_.assign(entries, Slot{});
}

const DependenceChain *
ChainCache::lookup(Pc pc)
{
    for (Slot &slot : slots_) {
        if (slot.valid && slot.pc == pc) {
            slot.lruStamp = ++lruCounter_;
            ++hits;
            return &slot.chain;
        }
    }
    ++misses;
    return nullptr;
}

void
ChainCache::insert(Pc pc, const DependenceChain &chain)
{
    ++inserts;
    // No path associativity: at most one chain per PC.
    for (Slot &slot : slots_) {
        if (slot.valid && slot.pc == pc) {
            slot.chain = chain;
            slot.lruStamp = ++lruCounter_;
            return;
        }
    }
    Slot *victim = &slots_[0];
    for (Slot &slot : slots_) {
        if (!slot.valid) {
            victim = &slot;
            break;
        }
        if (slot.lruStamp < victim->lruStamp)
            victim = &slot;
    }
    victim->valid = true;
    victim->pc = pc;
    victim->chain = chain;
    victim->lruStamp = ++lruCounter_;
}

DependenceChain *
ChainCache::faultSlotChain(int idx)
{
    if (idx < 0 || idx >= static_cast<int>(slots_.size())
        || !slots_[idx].valid) {
        return nullptr;
    }
    return &slots_[idx].chain;
}

void
ChainCache::clear()
{
    for (Slot &slot : slots_)
        slot = Slot{};
    // Restart LRU time: replacement order after a clear (e.g. a
    // DegradationLadder re-enable) must not depend on pre-clear
    // history.
    lruCounter_ = 0;
}

void
ChainCache::regStats(StatGroup *parent)
{
    statGroup_.addCounter("hits", &hits, "chain cache hits");
    statGroup_.addCounter("misses", &misses, "chain cache misses");
    statGroup_.addCounter("inserts", &inserts, "chain insertions");
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
