/**
 * @file
 * Dependence chain cache (Section 4.4): a deliberately tiny,
 * fully-associative cache of generated chains indexed by the PC of the
 * ROB-blocking load. One chain per PC (no path associativity); LRU
 * replacement lets stale chains age out quickly.
 */

#ifndef RAB_RUNAHEAD_CHAIN_CACHE_HH
#define RAB_RUNAHEAD_CHAIN_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "runahead/chain.hh"
#include "stats/stats.hh"

namespace rab
{

/** The chain cache. Table 1: two 32-uop entries. */
class ChainCache
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit ChainCache(int entries);

    /** Look up the chain for @p pc; returns nullptr on miss. */
    const DependenceChain *lookup(Pc pc);

    /** Insert (or replace) the chain for @p pc. */
    void insert(Pc pc, const DependenceChain &chain);

    void clear();
    int entries() const { return static_cast<int>(slots_.size()); }

    /** Fault-injection access: the mutable chain stored in slot
     *  @p idx, or nullptr when the slot is out of range or invalid.
     *  Only the FaultInjector uses this. */
    DependenceChain *faultSlotChain(int idx);

    /** @{ Statistics. */
    Counter hits;
    Counter misses;
    Counter inserts;
    /** @} */

    void regStats(StatGroup *parent);

  private:
    struct Slot
    {
        bool valid = false;
        Pc pc = 0;
        DependenceChain chain;
        std::uint64_t lruStamp = 0;
    };

    std::vector<Slot> slots_;
    std::uint64_t lruCounter_ = 0;
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_RUNAHEAD_CHAIN_CACHE_HH
