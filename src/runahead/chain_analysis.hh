/**
 * @file
 * Instrumentation behind the paper's motivation figures.
 *
 * During *traditional* runahead intervals, every executed runahead op
 * is recorded. When a runahead load misses the LLC, its backward
 * dependence slice is reconstructed over the recorded window, giving:
 *   - Figure 3: fraction of runahead-executed ops that belong to some
 *     miss dependence chain ("necessary" ops),
 *   - Figure 4: whether each miss's chain is unique or a repeat within
 *     the current runahead interval (by structural signature),
 *   - Figure 5: average dependence chain length in uops.
 */

#ifndef RAB_RUNAHEAD_CHAIN_ANALYSIS_HH
#define RAB_RUNAHEAD_CHAIN_ANALYSIS_HH

#include <cstdint>
#include <map>
#include <unordered_set>

#include "backend/dyn_uop.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace rab
{

/** The runahead chain analyser. */
class ChainAnalysis
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    /**
     * @param window     executed-op history depth.
     * @param max_chain  backward-slice length cap.
     */
    explicit ChainAnalysis(int window = 4096, int max_chain = 64);

    /** A runahead interval begins. */
    void beginInterval();

    /** A runahead op executed (traditional mode). */
    void recordExec(const DynUop &uop);

    /** A runahead load generated an LLC miss. Call after recordExec. */
    void recordMiss(const DynUop &uop);

    /** The runahead interval ended. */
    void endInterval();

    /** @{ Figure 3. */
    Counter opsExecuted;
    Counter opsNecessary;
    /** @} */

    /** @{ Figure 4. */
    Counter chainsTotal;
    Counter chainsRepeated;
    /** @} */

    /** @{ Figure 5. */
    Counter chainLengthSum;
    Counter chainsMeasured;
    /** @} */

    double necessaryFraction() const;
    double repeatedFraction() const;
    double averageChainLength() const;

    void regStats(StatGroup *parent);

  private:
    struct Rec
    {
        Pc pc;
        ArchReg dest;
        ArchReg src1;
        ArchReg src2;
    };

    int window_;
    int maxChain_;
    bool inInterval_ = false;
    /** Executed-op history keyed (and therefore ordered) by sequence
     *  number: writeback order is not program order, and the backward
     *  slice walk needs the latter. */
    std::map<SeqNum, Rec> history_;
    std::unordered_set<std::uint64_t> intervalSignatures_;
    std::unordered_set<SeqNum> intervalNecessary_;
    std::uint64_t intervalExecuted_ = 0;
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_RUNAHEAD_CHAIN_ANALYSIS_HH
