#include "runahead/chain_microbench.hh"

#include <algorithm>
#include <chrono>
#include <vector>

#include "backend/lsq.hh"
#include "backend/rob.hh"
#include "runahead/chain_generator.hh"

namespace rab
{

namespace
{

/** Fill @p rob to capacity with a pointer-chasing loop body — the
 *  workload shape runahead targets: a load feeding address arithmetic
 *  feeding the next load, repeated PCs, a spill store, and a loop
 *  branch. */
void
fillRob(Rob &rob, SeqNum &next_seq)
{
    struct BodyUop
    {
        Pc pc;
        Opcode op;
        ArchReg dest, src1, src2;
    };
    static const BodyUop body[] = {
        {100, Opcode::kLoad, 1, 1, kNoArchReg},   // p = *p
        {101, Opcode::kIntAlu, 2, 1, 2},          // index math
        {102, Opcode::kIntAlu, 3, 2, kNoArchReg}, // address math
        {103, Opcode::kLoad, 4, 3, kNoArchReg},   // dependent load
        {104, Opcode::kIntAlu, 5, 4, 5},          // accumulate
        {105, Opcode::kStore, kNoArchReg, 3, 5},  // spill
        {106, Opcode::kIntAlu, 6, 6, kNoArchReg}, // induction
        {107, Opcode::kBranch, kNoArchReg, 6, kNoArchReg},
    };
    while (!rob.full()) {
        for (const BodyUop &b : body) {
            if (rob.full())
                break;
            DynUop u;
            u.seq = next_seq++;
            u.pc = b.pc;
            u.sop.op = b.op;
            u.sop.dest = b.dest;
            u.sop.src1 = b.src1;
            u.sop.src2 = b.src2;
            rob.push(std::move(u));
        }
    }
}

ChainGenLatencyDist
distribution(std::vector<double> &samples)
{
    ChainGenLatencyDist d;
    if (samples.empty())
        return d;
    std::sort(samples.begin(), samples.end());
    const auto at = [&](double q) {
        const std::size_t i = static_cast<std::size_t>(
            q * static_cast<double>(samples.size() - 1));
        return samples[i];
    };
    d.calls = samples.size();
    d.minNs = samples.front();
    d.p50Ns = at(0.50);
    d.p90Ns = at(0.90);
    d.p99Ns = at(0.99);
    d.maxNs = samples.back();
    double sum = 0;
    for (const double s : samples)
        sum += s;
    d.meanNs = sum / static_cast<double>(samples.size());
    return d;
}

ChainGenLatencyDist
timeVariant(Rob &rob, const StoreQueue &sq, bool indexed, int iterations,
            int *chain_length)
{
    rob.setIndexed(indexed);
    ChainGenerator gen(ChainGeneratorConfig{});
    std::vector<double> samples;
    samples.reserve(iterations);
    // The blocking load is the ROB head (pc 100, seq 1), the paper's
    // entry condition; a younger instance exists one loop body later.
    for (int i = 0; i < iterations; ++i) {
        // rablint: nondeterminism-ok (host wall-time measurement of
        // the generator microbench; reported, never fed back into
        // simulated state)
        const auto start = std::chrono::steady_clock::now();
        const ChainResult result = gen.generate(rob, sq, 100, 1);
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                // rablint: nondeterminism-ok (same measurement)
                std::chrono::steady_clock::now() - start)
                .count();
        samples.push_back(static_cast<double>(ns));
        if (chain_length)
            *chain_length = static_cast<int>(result.chain.size());
    }
    rob.setIndexed(true);
    return distribution(samples);
}

} // namespace

ChainGenMicrobench
runChainGenMicrobench(int rob_entries, int iterations)
{
    Rob rob(rob_entries);
    StoreQueue sq(48);
    SeqNum next_seq = 1;
    fillRob(rob, next_seq);

    ChainGenMicrobench result;
    result.robEntries = rob_entries;
    // Warm both paths (map population, branch predictors) before
    // timing.
    timeVariant(rob, sq, true, std::max(8, iterations / 16), nullptr);
    timeVariant(rob, sq, false, std::max(8, iterations / 16), nullptr);
    result.indexed =
        timeVariant(rob, sq, true, iterations, &result.chainLength);
    result.scan = timeVariant(rob, sq, false, iterations, nullptr);
    result.speedup = result.indexed.meanNs > 0
        ? result.scan.meanNs / result.indexed.meanNs
        : 0;
    return result;
}

Json
chainGenMicrobenchJson(const ChainGenMicrobench &result)
{
    const auto dist_json = [](const ChainGenLatencyDist &d) {
        Json j = Json::object();
        j["calls"] = static_cast<double>(d.calls);
        j["min_ns"] = d.minNs;
        j["p50_ns"] = d.p50Ns;
        j["p90_ns"] = d.p90Ns;
        j["p99_ns"] = d.p99Ns;
        j["max_ns"] = d.maxNs;
        j["mean_ns"] = d.meanNs;
        return j;
    };
    Json j = Json::object();
    j["rob_entries"] = static_cast<double>(result.robEntries);
    j["chain_length"] = static_cast<double>(result.chainLength);
    j["indexed"] = dist_json(result.indexed);
    j["scan"] = dist_json(result.scan);
    j["speedup"] = result.speedup;
    return j;
}

} // namespace rab
