#include "energy/energy_model.hh"

#include "backend/core.hh"
#include "common/logging.hh"

namespace rab
{

namespace
{

constexpr double kPj = 1e-12;

} // namespace

std::string
EnergyBreakdown::toString() const
{
    return strprintf(
        "total %.6f J in %.6f s (fe %.6f, rename %.6f, window %.6f, "
        "regfile %.6f, exec %.6f, cache %.6f, dram %.6f, runahead %.6f, "
        "engine %.6f, leak %.6f)",
        totalJ, seconds, frontendJ, renameJ, windowJ, regfileJ, executeJ,
        cacheJ, dramJ, runaheadJ, engineJ, leakageJ);
}

EnergyModel::EnergyModel(const EnergyCoefficients &coeffs)
    : coeffs_(coeffs)
{
}

EnergyBreakdown
EnergyModel::compute(Core &core, std::uint64_t measured_cycles) const
{
    const EnergyCoefficients &c = coeffs_;
    EnergyBreakdown e;

    Frontend &fe = core.frontend();
    MemorySystem &mem = core.memory();
    RunaheadController &ra = core.runahead();

    const double cycles = measured_cycles
        ? static_cast<double>(measured_cycles)
        : static_cast<double>(core.cycle());
    e.seconds = cycles / (c.clockGhz * 1e9);

    e.frontendJ = kPj
        * (static_cast<double>(fe.fetchedUops.value())
               * (c.fetchUopPj + c.decodeUopPj)
           + static_cast<double>(fe.activeCycles.value())
               * c.feActiveCyclePj);

    e.renameJ = kPj * static_cast<double>(core.renamedUops.value())
        * c.renameUopPj;

    e.windowJ = kPj
        * (static_cast<double>(core.rsInsertCount()) * c.rsInsertPj
           + static_cast<double>(core.rsWakeupCount()) * c.rsWakeupPj
           + static_cast<double>(core.issuedUops.value()) * c.selectPj
           + static_cast<double>(core.robWrites.value()) * c.robWritePj
           + static_cast<double>(core.robReads.value()) * c.robReadPj);

    e.regfileJ = kPj
        * (static_cast<double>(core.prfReads.value()) * c.prfReadPj
           + static_cast<double>(core.prfWrites.value()) * c.prfWritePj
           + static_cast<double>(ra.checkpoints.value())
               * c.checkpointPj);

    const double mem_uops =
        static_cast<double>(core.issuedMemUops.value());
    const double alu_uops =
        static_cast<double>(core.issuedUops.value()) - mem_uops;
    e.executeJ = kPj * (alu_uops * c.aluOpPj + mem_uops * c.memOpPj);

    const double l1_accesses =
        static_cast<double>(mem.l1d().hits.value())
        + static_cast<double>(mem.l1d().misses.value())
        + static_cast<double>(mem.l1i().hits.value())
        + static_cast<double>(mem.l1i().misses.value());
    const double llc_accesses =
        static_cast<double>(mem.llc().hits.value())
        + static_cast<double>(mem.llc().misses.value());
    e.cacheJ = kPj * (l1_accesses * c.l1AccessPj
                      + llc_accesses * c.llcAccessPj);

    e.dramJ = kPj * static_cast<double>(mem.dramRequests())
        * c.dramAccessPj;

    const RunaheadCache &rc = ra.runaheadCache();
    const ChainCache &cc = ra.chainCache();
    const double rob_cam_events =
        static_cast<double>(ra.pcCamSearches.value()
                            + ra.regCamSearches.value())
        * static_cast<double>(c.robEntries);
    e.runaheadJ = kPj
        * ((static_cast<double>(rc.writes.value())
            + static_cast<double>(rc.readHits.value())
            + static_cast<double>(rc.readMisses.value()))
               * c.runaheadCachePj
           + rob_cam_events * c.chainCamPerEntryPj
           + static_cast<double>(ra.sqCamSearches.value()) * c.sqCamPj
           + static_cast<double>(ra.robChainReads.value()) * c.robReadPj
           + (static_cast<double>(cc.hits.value())
              + static_cast<double>(cc.misses.value())
              + static_cast<double>(cc.inserts.value()))
                 * c.chainCacheAccessPj);

    // Continuous Runahead engine: dynamic energy per engine uop and
    // per issued prefetch, plus its own leakage — but only when the
    // engine exists and is enabled, so every other configuration's
    // energy numbers are bit-identical to the pre-engine model.
    if (const ChainEngine *engine = mem.chainEngine();
        engine && engine->active()) {
        e.engineJ = kPj
            * (static_cast<double>(engine->uopsExecuted.value())
                   * c.engineUopPj
               + static_cast<double>(engine->prefetchesIssued.value())
                   * c.enginePrefetchPj)
            + c.engineLeakageW * e.seconds;
    }

    e.leakageJ =
        (c.coreLeakageW + c.llcLeakageW + c.dramStaticW) * e.seconds
        + kPj * cycles * c.backgroundCorePj;

    e.totalJ = e.frontendJ + e.renameJ + e.windowJ + e.regfileJ
        + e.executeJ + e.cacheJ + e.dramJ + e.runaheadJ + e.engineJ
        + e.leakageJ;
    return e;
}

} // namespace rab
