/**
 * @file
 * Event-based chip + DRAM energy model (the paper used McPAT 1.3 and
 * CACTI 6.5; see DESIGN.md §2 for the substitution rationale).
 *
 * Energy = Σ (event count × per-event energy) + leakage power × time.
 * The front-end contributes dynamic energy only for fetched/decoded
 * uops and non-gated active cycles, so clock-gating it during runahead
 * buffer mode (and during idle cycles on every configuration, as McPAT
 * does) falls out naturally. The extra events the paper charges to the
 * runahead buffer — PC CAM and destination-register CAM searches across
 * the ROB, store-queue CAM searches, ROB chain read-out, and the
 * checkpoint RAT/PRF copy — are all modelled.
 *
 * Coefficients are order-of-magnitude estimates for a ~3 GHz, 4-wide
 * out-of-order core; absolute joules are not meaningful, but ratios
 * between configurations (the paper's metric) are driven by the same
 * mechanisms as in McPAT: dynamic instruction count, front-end
 * activity, DRAM traffic and execution time.
 */

#ifndef RAB_ENERGY_ENERGY_MODEL_HH
#define RAB_ENERGY_ENERGY_MODEL_HH

#include <cstdint>
#include <string>

namespace rab
{

class Core;

/** Per-event energies (pJ) and static powers (W). */
struct EnergyCoefficients
{
    /** @{ Front-end: fetch + decode dominate (the paper cites up to
     *  40% of core power in the front-end). */
    double fetchUopPj = 80.0;
    double decodeUopPj = 60.0;
    double feActiveCyclePj = 80.0; ///< FE clock per non-gated cycle.
    /** @} */

    /** @{ Back-end per-uop. */
    double renameUopPj = 10.0;
    double rsInsertPj = 5.0;
    double rsWakeupPj = 0.2;   ///< Per ready-check (window background).
    double selectPj = 3.0;     ///< Per issued uop.
    double prfReadPj = 5.0;
    double prfWritePj = 7.0;
    double robWritePj = 6.0;
    double robReadPj = 5.0;
    double aluOpPj = 10.0;
    double memOpPj = 14.0;     ///< AGU + TLB + LSQ per memory uop.
    /** @} */

    /** @{ Memory hierarchy. */
    double l1AccessPj = 30.0;
    double llcAccessPj = 150.0;
    double dramAccessPj = 15000.0; ///< Per 64 B line transfer.
    /** @} */

    /** Un-gateable core clock tree / sequencing energy per cycle (the
     *  McPAT "runtime dynamic" floor a stalled core still pays). */
    double backgroundCorePj = 800.0;

    /** @{ Runahead-specific events (Section 5). */
    double runaheadCachePj = 6.0;
    double chainCamPerEntryPj = 0.25; ///< × ROB entries per search.
    double sqCamPj = 15.0;
    double chainCacheAccessPj = 20.0;
    double checkpointPj = 600.0; ///< RAT + PRF read, checkpoint write.
    /** @} */

    /** @{ Continuous Runahead engine (CRE configs). A tiny in-order
     *  uop loop plus its 32-entry register file; prefetches pay the
     *  queue/LLC insertion on top of the DRAM transfer accounted in
     *  dramAccessPj (engine fills are regular DRAM reads). */
    double engineUopPj = 8.0;
    double enginePrefetchPj = 20.0;
    double engineLeakageW = 0.05;
    /** @} */

    /** @{ Static power (W). */
    double coreLeakageW = 0.55;
    double llcLeakageW = 0.30;
    double dramStaticW = 0.45;
    /** @} */

    double clockGhz = 3.2;
    int robEntries = 192;
};

/** Energy broken down by component, in joules. */
struct EnergyBreakdown
{
    double frontendJ = 0;
    double renameJ = 0;
    double windowJ = 0;   ///< RS + ROB.
    double regfileJ = 0;  ///< PRF + checkpointing.
    double executeJ = 0;
    double cacheJ = 0;    ///< L1 + LLC.
    double dramJ = 0;     ///< DRAM dynamic.
    double runaheadJ = 0; ///< Runahead cache, chain gen, chain cache.
    double engineJ = 0;   ///< Continuous Runahead engine (CRE only).
    double leakageJ = 0;
    double totalJ = 0;
    double seconds = 0;

    std::string toString() const;
};

/** The model. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyCoefficients &coeffs = {});

    /**
     * Compute the breakdown for a finished simulation.
     *
     * @param measured_cycles cycles in the measured region (pass
     *        core.cycle() when no warmup reset was applied; 0 means
     *        "use core.cycle()").
     */
    EnergyBreakdown compute(Core &core,
                            std::uint64_t measured_cycles = 0) const;

    const EnergyCoefficients &coefficients() const { return coeffs_; }

  private:
    EnergyCoefficients coeffs_;
};

} // namespace rab

#endif // RAB_ENERGY_ENERGY_MODEL_HH
