#include "memory/shared_memory.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "memory/memory_system.hh"
#include "runahead/chain_engine.hh"

namespace rab
{

std::string
perCoreStatName(int core, const std::string &name)
{
    return "core" + std::to_string(core) + "." + name;
}

SharedMemory::SharedMemory(const MemSysConfig &config, int num_cores)
    : numCores_(num_cores),
      llc_(config.llc), dram_(config.dram),
      prefetcher_(config.prefetcher, config.llc.lineBytes),
      stridePf_(config.stridePrefetcher, config.llc.lineBytes),
      ghbPf_(config.ghbPrefetcher, config.llc.lineBytes),
      heldNow_(static_cast<std::size_t>(num_cores), 0),
      mshrPeak_(static_cast<std::size_t>(num_cores)),
      memQueueEntries_(config.memQueueEntries),
      runaheadQueueReserve_(config.runaheadQueueReserve),
      memRetryLimit_(config.memRetryLimit),
      memTimeoutCycles_(config.memTimeoutCycles),
      memRetryBackoffCycles_(config.memRetryBackoffCycles),
      prefetchEnabled_(config.prefetcher.enabled),
      prefetcherKind_(static_cast<int>(config.prefetcherKind))
{
    if (num_cores < 1)
        panic("SharedMemory: num_cores must be >= 1");
    cores_.reserve(static_cast<std::size_t>(num_cores));
    // Sized once for the worst case any prefetcher emits per access;
    // issuePrefetches() drains it in place, so this is the only
    // allocation the candidate path ever performs.
    prefetchCandidates_.reserve(64);
}

SharedMemory::~SharedMemory() = default;

void
SharedMemory::attach(MemorySystem *core)
{
    if (static_cast<int>(cores_.size()) >= numCores_)
        panic("SharedMemory: more cores attached than numCores");
    cores_.push_back(core);
}

MemorySystem &
SharedMemory::ownerOf(Addr line_addr) const
{
    // Fault-corrupted runahead uops can carry arbitrary 64-bit
    // addresses whose top bits name no attached core; clamp those
    // deterministically instead of panicking (the back-invalidation
    // becomes a harmless no-op on the clamped core's L1s, exactly the
    // pre-split single-core behaviour).
    const auto id =
        static_cast<std::size_t>(line_addr >> kCoreAddrShift);
    if (id >= cores_.size()) {
        // Clamps indicate corrupted state upstream of the namespacing
        // boundary; they must never happen silently (satellite of the
        // attached-mode masking fix — see MemorySystem::access).
        ++ownerClamps;
        return *cores_[id % cores_.size()];
    }
    return *cores_[id];
}

void
SharedMemory::regComponentStats(StatGroup *parent)
{
    llc_.regStats(parent);
    dram_.regStats(parent);
    prefetcher_.regStats(parent);
    stridePf_.regStats(parent);
    ghbPf_.regStats(parent);
}

void
SharedMemory::regSharedStats(StatGroup *parent)
{
    parent->addCounter("cross_core_evictions", &crossCoreEvictions,
                       "LLC victims evicted by a different core");
    parent->addCounter("owner_clamps", &ownerClamps,
                       "line owners clamped: core-id bits named a "
                       "nonexistent core");
    for (int i = 0; i < numCores_; ++i) {
        parent->addCounter(
            perCoreStatName(i, "mshr_peak"),
            &mshrPeak_[static_cast<std::size_t>(i)],
            "peak shared memory-queue slots held at once");
    }
    regComponentStats(parent);
}

void
SharedMemory::trainPrefetcher(AccessType type, Pc pc, Addr line_addr,
                              bool was_miss)
{
    if (!prefetchEnabled_)
        return;
    if (type != AccessType::kLoad && type != AccessType::kStore)
        return; // Train on data traffic only.
    const auto kind = static_cast<PrefetcherKind>(prefetcherKind_);
    if (kind == PrefetcherKind::kStream)
        prefetcher_.observe(line_addr, was_miss, prefetchCandidates_);
    else if (kind == PrefetcherKind::kStride)
        stridePf_.observe(pc, line_addr, prefetchCandidates_);
    else
        ghbPf_.observe(pc, line_addr, prefetchCandidates_);
}

void
SharedMemory::notifyPrefetchUseful()
{
    const auto kind = static_cast<PrefetcherKind>(prefetcherKind_);
    if (kind == PrefetcherKind::kStream)
        prefetcher_.notifyUseful();
    else if (kind == PrefetcherKind::kStride)
        stridePf_.notifyUseful();
    else
        ghbPf_.notifyUseful();
}

void
SharedMemory::notifyPrefetchUnused()
{
    const auto kind = static_cast<PrefetcherKind>(prefetcherKind_);
    if (kind == PrefetcherKind::kStream)
        prefetcher_.notifyUnused();
    else if (kind == PrefetcherKind::kStride)
        stridePf_.notifyUnused();
    else
        ghbPf_.notifyUnused();
}

void
SharedMemory::pruneOutstanding(Cycle now)
{
    while (!outstanding_.empty() && outstanding_.top().ready <= now) {
        --heldNow_[static_cast<std::size_t>(outstanding_.top().core)];
        outstanding_.pop();
    }
}

void
SharedMemory::prunePending(PendingMap &pending, Cycle now)
{
    // Lazy cleanup: bound the map size without per-cycle sweeps.
    if (pending.size() < 4096)
        return;
    // rablint: order-independent (erase-only sweep; which entries
    // survive depends on their deadlines, never on visit order)
    for (auto it = pending.begin(); it != pending.end();) {
        if (it->second <= now)
            it = pending.erase(it);
        else
            ++it;
    }
}

void
SharedMemory::pushOutstanding(MemorySystem &core, Cycle ready)
{
    const auto id = static_cast<std::size_t>(core.coreId());
    // Slots held by the *other* cores at this admission: the shared
    // MSHR occupancy this core had to fit around.
    core.sharedMshrPeersHeld += outstanding_.size() - heldNow_[id];
    outstanding_.push({ready, core.coreId()});
    ++heldNow_[id];
    // Monotone peak: counters only grow, so the peak is expressed as
    // the increments that raised it.
    if (heldNow_[id] > mshrPeak_[id].value())
        mshrPeak_[id] += heldNow_[id] - mshrPeak_[id].value();
}

std::size_t
SharedMemory::outstandingMisses(Cycle now)
{
    pruneOutstanding(now);
    return outstanding_.size();
}

Cycle
SharedMemory::nextEventCycle(Cycle now)
{
    pruneOutstanding(now);
    Cycle next = outstanding_.empty() ? 0 : outstanding_.top().ready;
    const Cycle bank_free = dram_.nextBankFreeCycle(now);
    if (bank_free > now && (next == 0 || bank_free < next))
        next = bank_free;
    return next;
}

void
SharedMemory::handleEviction(const Eviction &ev, MemorySystem &accessor,
                             Cycle now)
{
    if (ev.prefetchUnused)
        notifyPrefetchUnused();
    // Inclusive hierarchy: back-invalidate the owning core's L1
    // copies. The owner is encoded in the namespaced line address.
    MemorySystem &owner = ownerOf(ev.lineAddr);
    const bool l1_dirty = owner.l1d().invalidate(ev.lineAddr);
    owner.l1i().invalidate(ev.lineAddr);
    if (ChainEngine *engine = owner.chainEngine()) {
        // Engine fills evicted before any demand reference cost their
        // chain utility.
        engine->noteEvicted(ev.lineAddr);
    }
    if (&owner != &accessor) {
        ++owner.llcEvictedByOthers;
        ++crossCoreEvictions;
    }
    if (ev.dirty || l1_dirty)
        dram_.access(ev.lineAddr, now, /*is_write=*/true);
}

Cycle
SharedMemory::accessLlc(MemorySystem &core, AccessType type,
                        Addr line_addr, Cycle llc_time, Cycle now,
                        AccessResult &result, bool &rejected,
                        bool runahead, Pc pc)
{
    rejected = false;

    // Merge with an in-flight LLC fill if one exists.
    if (llcPendingMax_ > now) {
        const auto pending_it = llcPending_.find(line_addr);
        if (pending_it != llcPending_.end()
            && pending_it->second > now) {
            ++core.mshrMerges;
            trainPrefetcher(type, pc, line_addr, /*was_miss=*/false);
            return std::max(pending_it->second, llc_time);
        }
    }

    const CacheLookup lookup =
        llc_.access(line_addr, type == AccessType::kStore);
    if (lookup.hit) {
        if (lookup.wasPrefetched) {
            result.prefetchHit = true;
            notifyPrefetchUseful();
        }
        trainPrefetcher(type, pc, line_addr, /*was_miss=*/false);
        return llc_time + llc_.config().latency;
    }

    // LLC miss: needs a memory queue slot. Runahead misses may not
    // take the last runaheadQueueReserve slots (demand priority).
    pruneOutstanding(now);
    std::size_t limit = static_cast<std::size_t>(memQueueEntries_);
    if (runahead && runaheadQueueReserve_ > 0) {
        limit -= static_cast<std::size_t>(
            std::min(runaheadQueueReserve_, memQueueEntries_));
    }
    if (outstanding_.size() >= limit) {
        ++core.queueRejects;
        if (outstanding_.size()
            > heldNow_[static_cast<std::size_t>(core.coreId())])
            ++core.queueRejectsContended;
        rejected = true;
        return 0;
    }

    // Injected transient stall window: the queue refuses new misses
    // until the window closes; the core retries like a full queue.
    FaultInjector *faults = core.faultInjector();
    if (faults && faults->memQueueStalled(now)) {
        ++core.queueFaultStalls;
        ++core.queueRejects;
        rejected = true;
        return 0;
    }

    // Injected response drops: model a timeout + bounded retry with
    // linear backoff. The whole outcome is decided up front (before
    // any DRAM/stat side effects) so a failed access leaves the
    // hierarchy untouched and the core simply retries later.
    Cycle fault_delay = 0;
    if (faults) {
        int attempt = 0;
        while (faults->dropDramResponse()) {
            ++core.memTimeouts;
            if (attempt >= memRetryLimit_) {
                ++core.memRetryFailures;
                result.faulted = true;
                rejected = true;
                return 0;
            }
            ++attempt;
            ++core.memRetries;
            fault_delay += memTimeoutCycles_
                + static_cast<Cycle>(attempt) * memRetryBackoffCycles_;
        }
        fault_delay += faults->dramDelay();
    }

    if (type != AccessType::kPrefetch) {
        ++core.llcDemandMisses;
        if (type == AccessType::kLoad)
            ++core.llcLoadMisses;
        trainPrefetcher(type, pc, line_addr, /*was_miss=*/true);
    }

    const DramResult dram_result =
        dram_.access(line_addr, llc_time + llc_.config().latency,
                     /*is_write=*/false);
    if (dram_result.queueWait > 0) {
        ++core.bankConflicts;
        core.bankConflictWaitCycles += dram_result.queueWait;
    }
    const Cycle ready = dram_result.readyCycle + fault_delay;
    llcPending_[line_addr] = ready;
    if (ready > llcPendingMax_)
        llcPendingMax_ = ready;
    pushOutstanding(core, ready);
    prunePending(llcPending_, now);

    const Eviction ev = llc_.insert(line_addr,
                                    type == AccessType::kStore,
                                    type == AccessType::kPrefetch);
    if (ev.valid)
        handleEviction(ev, core, now);
    return ready;
}

void
SharedMemory::issuePrefetches(MemorySystem &core, Cycle now)
{
    if (prefetchCandidates_.empty())
        return;
    // Drain in place: nothing in the loop body trains the prefetcher,
    // so the candidate list cannot grow under us, and clearing (rather
    // than the old swap-with-a-temporary) preserves the buffer's
    // capacity across accesses instead of reallocating it every time.
    for (const Addr line_addr : prefetchCandidates_) {
        if (llc_.probe(line_addr))
            continue;
        const auto it = llcPending_.find(line_addr);
        if (it != llcPending_.end() && it->second > now)
            continue;
        pruneOutstanding(now);
        if (outstanding_.size()
            >= static_cast<std::size_t>(memQueueEntries_)) {
            break; // Queue full: drop remaining prefetches.
        }
        const DramResult dram_result =
            dram_.access(line_addr, now, /*is_write=*/false);
        llcPending_[line_addr] = dram_result.readyCycle;
        pushOutstanding(core, dram_result.readyCycle);
        ++core.prefetchesIssued;
        const Eviction ev = llc_.insert(line_addr, /*is_write=*/false,
                                        /*is_prefetch=*/true);
        if (ev.valid)
            handleEviction(ev, core, now);
    }
    prefetchCandidates_.clear();
}

void
SharedMemory::enginePrefetch(MemorySystem &core, Addr line_addr,
                             Cycle now, EnginePrefetchResult &out)
{
    // Already resident: the engine can consume the value after an LLC
    // round trip, and no fill is started.
    if (llc_.probe(line_addr)) {
        out.accepted = true;
        out.readyCycle = now + llc_.config().latency;
        return;
    }
    // In flight (demand, prefetcher, or an earlier engine fill):
    // merge, like the MSHR path does for demand traffic.
    const auto it = llcPending_.find(line_addr);
    if (it != llcPending_.end() && it->second > now) {
        out.accepted = true;
        out.merged = true;
        out.readyCycle = it->second;
        return;
    }
    // Engine traffic is speculative: it may not take the memory-queue
    // slots reserved for demand misses.
    pruneOutstanding(now);
    std::size_t limit = static_cast<std::size_t>(memQueueEntries_);
    limit -= static_cast<std::size_t>(
        std::min(runaheadQueueReserve_, memQueueEntries_));
    if (outstanding_.size() >= limit)
        return; // Rejected; the engine backs off and retries.

    const DramResult dram_result =
        dram_.access(line_addr, now, /*is_write=*/false);
    llcPending_[line_addr] = dram_result.readyCycle;
    if (dram_result.readyCycle > llcPendingMax_)
        llcPendingMax_ = dram_result.readyCycle;
    pushOutstanding(core, dram_result.readyCycle);
    prunePending(llcPending_, now);
    const Eviction ev = llc_.insert(line_addr, /*is_write=*/false,
                                    /*is_prefetch=*/true);
    if (ev.valid)
        handleEviction(ev, core, now);
    out.accepted = true;
    out.issued = true;
    out.readyCycle = dram_result.readyCycle;
}

std::uint64_t
SharedMemory::dramRequests() const
{
    return dram_.reads.value() + dram_.writes.value();
}

} // namespace rab
