#include "memory/memory_system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/profiler.hh"
#include "fault/fault_injector.hh"

namespace rab
{

MemorySystem::MemorySystem(const MemSysConfig &config)
    : config_(config),
      l1i_(config.l1i), l1d_(config.l1d), llc_(config.llc),
      dram_(config.dram),
      prefetcher_(config.prefetcher, config.llc.lineBytes),
      stridePf_(config.stridePrefetcher, config.llc.lineBytes),
      ghbPf_(config.ghbPrefetcher, config.llc.lineBytes),
      statGroup_("mem")
{
    statGroup_.addCounter("demand_loads", &demandLoads, "demand loads");
    statGroup_.addCounter("demand_stores", &demandStores, "demand stores");
    statGroup_.addCounter("llc_demand_misses", &llcDemandMisses,
                          "demand LLC misses");
    statGroup_.addCounter("llc_load_misses", &llcLoadMisses,
                          "demand load LLC misses");
    statGroup_.addCounter("queue_rejects", &queueRejects,
                          "memory queue full rejections");
    statGroup_.addCounter("prefetches_issued", &prefetchesIssued,
                          "prefetches sent to DRAM");
    statGroup_.addCounter("mshr_merges", &mshrMerges,
                          "accesses merged into in-flight fills");
    statGroup_.addCounter("mem_retries", &memRetries,
                          "DRAM requests re-sent after a dropped response");
    statGroup_.addCounter("mem_timeouts", &memTimeouts,
                          "in-flight DRAM requests that timed out");
    statGroup_.addCounter("mem_retry_failures", &memRetryFailures,
                          "accesses that exhausted the retry budget");
    statGroup_.addCounter("queue_fault_stalls", &queueFaultStalls,
                          "rejections from injected queue stall windows");
    l1i_.regStats(&statGroup_);
    l1d_.regStats(&statGroup_);
    llc_.regStats(&statGroup_);
    dram_.regStats(&statGroup_);
    prefetcher_.regStats(&statGroup_);
    stridePf_.regStats(&statGroup_);
    ghbPf_.regStats(&statGroup_);
    // Sized once for the worst case any prefetcher emits per access;
    // issuePrefetches() drains it in place, so this is the only
    // allocation the candidate path ever performs.
    prefetchCandidates_.reserve(64);
}

void
MemorySystem::trainPrefetcher(AccessType type, Pc pc, Addr line_addr,
                              bool was_miss)
{
    if (!config_.prefetcher.enabled)
        return;
    if (type != AccessType::kLoad && type != AccessType::kStore)
        return; // Train on data traffic only.
    if (config_.prefetcherKind == PrefetcherKind::kStream)
        prefetcher_.observe(line_addr, was_miss, prefetchCandidates_);
    else if (config_.prefetcherKind == PrefetcherKind::kStride)
        stridePf_.observe(pc, line_addr, prefetchCandidates_);
    else
        ghbPf_.observe(pc, line_addr, prefetchCandidates_);
}

void
MemorySystem::notifyPrefetchUseful()
{
    if (config_.prefetcherKind == PrefetcherKind::kStream)
        prefetcher_.notifyUseful();
    else if (config_.prefetcherKind == PrefetcherKind::kStride)
        stridePf_.notifyUseful();
    else
        ghbPf_.notifyUseful();
}

void
MemorySystem::notifyPrefetchUnused()
{
    if (config_.prefetcherKind == PrefetcherKind::kStream)
        prefetcher_.notifyUnused();
    else if (config_.prefetcherKind == PrefetcherKind::kStride)
        stridePf_.notifyUnused();
    else
        ghbPf_.notifyUnused();
}

void
MemorySystem::pruneOutstanding(Cycle now)
{
    while (!outstanding_.empty() && outstanding_.top() <= now)
        outstanding_.pop();
}

void
MemorySystem::prunePending(PendingMap &pending, Cycle now)
{
    // Lazy cleanup: bound the map size without per-cycle sweeps.
    if (pending.size() < 4096)
        return;
    // rablint: order-independent (erase-only sweep; which entries
    // survive depends on their deadlines, never on visit order)
    for (auto it = pending.begin(); it != pending.end();) {
        if (it->second <= now)
            it = pending.erase(it);
        else
            ++it;
    }
}

std::size_t
MemorySystem::outstandingMisses(Cycle now)
{
    pruneOutstanding(now);
    return outstanding_.size();
}

Cycle
MemorySystem::nextEventCycle(Cycle now)
{
    pruneOutstanding(now);
    Cycle next = outstanding_.empty() ? 0 : outstanding_.top();
    const Cycle bank_free = dram_.nextBankFreeCycle(now);
    if (bank_free > now && (next == 0 || bank_free < next))
        next = bank_free;
    return next;
}

bool
MemorySystem::dataOnChip(Addr addr, Cycle now) const
{
    if (llcPendingMax_ > now) {
        const Addr line = llc_.lineAddr(addr);
        const auto it = llcPending_.find(line);
        if (it != llcPending_.end() && it->second > now)
            return false;
    }
    return l1d_.probe(addr) || llc_.probe(addr);
}

bool
MemorySystem::missInFlight(Addr addr, Cycle now) const
{
    if (llcPendingMax_ <= now)
        return false;
    const Addr line = llc_.lineAddr(addr);
    const auto it = llcPending_.find(line);
    return it != llcPending_.end() && it->second > now;
}

Cycle
MemorySystem::accessLlc(AccessType type, Addr line_addr, Cycle llc_time,
                        Cycle now, AccessResult &result, bool &rejected,
                        bool runahead, Pc pc)
{
    rejected = false;

    // Merge with an in-flight LLC fill if one exists.
    if (llcPendingMax_ > now) {
        const auto pending_it = llcPending_.find(line_addr);
        if (pending_it != llcPending_.end()
            && pending_it->second > now) {
            ++mshrMerges;
            trainPrefetcher(type, pc, line_addr, /*was_miss=*/false);
            return std::max(pending_it->second, llc_time);
        }
    }

    const CacheLookup lookup =
        llc_.access(line_addr, type == AccessType::kStore);
    if (lookup.hit) {
        if (lookup.wasPrefetched) {
            result.prefetchHit = true;
            notifyPrefetchUseful();
        }
        trainPrefetcher(type, pc, line_addr, /*was_miss=*/false);
        return llc_time + config_.llc.latency;
    }

    // LLC miss: needs a memory queue slot. Runahead misses may not
    // take the last runaheadQueueReserve slots (demand priority).
    pruneOutstanding(now);
    std::size_t limit = static_cast<std::size_t>(config_.memQueueEntries);
    if (runahead && config_.runaheadQueueReserve > 0) {
        limit -= static_cast<std::size_t>(
            std::min(config_.runaheadQueueReserve,
                     config_.memQueueEntries));
    }
    if (outstanding_.size() >= limit) {
        ++queueRejects;
        rejected = true;
        return 0;
    }

    // Injected transient stall window: the queue refuses new misses
    // until the window closes; the core retries like a full queue.
    if (faults_ && faults_->memQueueStalled(now)) {
        ++queueFaultStalls;
        ++queueRejects;
        rejected = true;
        return 0;
    }

    // Injected response drops: model a timeout + bounded retry with
    // linear backoff. The whole outcome is decided up front (before
    // any DRAM/stat side effects) so a failed access leaves the
    // hierarchy untouched and the core simply retries later.
    Cycle fault_delay = 0;
    if (faults_) {
        int attempt = 0;
        while (faults_->dropDramResponse()) {
            ++memTimeouts;
            if (attempt >= config_.memRetryLimit) {
                ++memRetryFailures;
                result.faulted = true;
                rejected = true;
                return 0;
            }
            ++attempt;
            ++memRetries;
            fault_delay += config_.memTimeoutCycles
                + static_cast<Cycle>(attempt)
                    * config_.memRetryBackoffCycles;
        }
        fault_delay += faults_->dramDelay();
    }

    if (type != AccessType::kPrefetch) {
        ++llcDemandMisses;
        if (type == AccessType::kLoad)
            ++llcLoadMisses;
        trainPrefetcher(type, pc, line_addr, /*was_miss=*/true);
    }

    const DramResult dram_result =
        dram_.access(line_addr, llc_time + config_.llc.latency,
                     /*is_write=*/false);
    const Cycle ready = dram_result.readyCycle + fault_delay;
    llcPending_[line_addr] = ready;
    if (ready > llcPendingMax_)
        llcPendingMax_ = ready;
    outstanding_.push(ready);
    prunePending(llcPending_, now);

    const Eviction ev = llc_.insert(line_addr,
                                    type == AccessType::kStore,
                                    type == AccessType::kPrefetch);
    if (ev.valid) {
        if (ev.prefetchUnused)
            notifyPrefetchUnused();
        // Inclusive hierarchy: back-invalidate the L1 copies.
        const bool l1_dirty = l1d_.invalidate(ev.lineAddr);
        l1i_.invalidate(ev.lineAddr);
        if (ev.dirty || l1_dirty)
            dram_.access(ev.lineAddr, now, /*is_write=*/true);
    }
    return ready;
}

AccessResult
MemorySystem::access(AccessType type, Addr addr, Cycle now,
                     bool runahead, Pc pc)
{
    ProfScope prof(ProfPhase::kMemAccess);
    AccessResult result;
    Cache &l1 = type == AccessType::kInstFetch ? l1i_ : l1d_;
    PendingMap &l1_pending =
        type == AccessType::kInstFetch ? l1iPending_ : l1dPending_;
    Cycle &l1_pending_max = type == AccessType::kInstFetch
        ? l1iPendingMax_
        : l1dPendingMax_;
    const Addr line_addr = l1.lineAddr(addr);

    if (type == AccessType::kLoad)
        ++demandLoads;
    else if (type == AccessType::kStore)
        ++demandStores;

    if (type == AccessType::kPrefetch) {
        panic("MemorySystem::access: prefetches are issued internally");
    }

    // L1 lookup.
    const CacheLookup l1_lookup =
        l1.access(addr, type == AccessType::kStore);
    if (l1_lookup.hit) {
        // The tags may hit while the fill is still in flight; that is an
        // MSHR merge, not a completed hit. The watermark guard keeps
        // the hash find off the steady-state hit path (one find per
        // fetched uop otherwise).
        PendingMap::const_iterator it;
        if (l1_pending_max > now
            && (it = l1_pending.find(line_addr)) != l1_pending.end()
            && it->second > now) {
            ++mshrMerges;
            result.l1Miss = true;
            result.readyCycle = it->second;
            result.pendingMiss = missInFlight(addr, now);
        } else {
            result.readyCycle = now + l1.config().latency;
        }
        issuePrefetches(now);
        return result;
    }

    result.l1Miss = true;

    // L1 miss: go to the LLC after the L1 lookup latency.
    const Cycle llc_time = now + l1.config().latency;
    bool rejected = false;
    const Cycle pre_misses = llcDemandMisses.value();
    const Cycle ready =
        accessLlc(type, llc_.lineAddr(addr), llc_time, now, result,
                  rejected, runahead, pc);
    if (rejected) {
        result.rejected = true;
        return result;
    }
    result.llcMiss = llcDemandMisses.value() != pre_misses;
    result.pendingMiss = !result.llcMiss && missInFlight(addr, now);

    // Fill L1 (write-allocate). Track availability for merges.
    const Eviction ev = l1.insert(addr, type == AccessType::kStore);
    if (ev.valid && ev.dirty) {
        // Write the victim back into the (inclusive) LLC.
        llc_.access(ev.lineAddr, /*is_write=*/true);
    }
    l1_pending[line_addr] = ready;
    if (ready > l1_pending_max)
        l1_pending_max = ready;
    prunePending(l1_pending, now);
    result.readyCycle = ready;

    issuePrefetches(now);
    return result;
}

void
MemorySystem::issuePrefetches(Cycle now)
{
    if (prefetchCandidates_.empty())
        return;
    // Drain in place: nothing in the loop body trains the prefetcher,
    // so the candidate list cannot grow under us, and clearing (rather
    // than the old swap-with-a-temporary) preserves the buffer's
    // capacity across accesses instead of reallocating it every time.
    for (const Addr line_addr : prefetchCandidates_) {
        if (llc_.probe(line_addr))
            continue;
        const auto it = llcPending_.find(line_addr);
        if (it != llcPending_.end() && it->second > now)
            continue;
        pruneOutstanding(now);
        if (outstanding_.size()
                >= static_cast<std::size_t>(config_.memQueueEntries)) {
            break; // Queue full: drop remaining prefetches.
        }
        const DramResult dram_result =
            dram_.access(line_addr, now, /*is_write=*/false);
        llcPending_[line_addr] = dram_result.readyCycle;
        outstanding_.push(dram_result.readyCycle);
        ++prefetchesIssued;
        const Eviction ev = llc_.insert(line_addr, /*is_write=*/false,
                                        /*is_prefetch=*/true);
        if (ev.valid) {
            if (ev.prefetchUnused)
                notifyPrefetchUnused();
            const bool l1_dirty = l1d_.invalidate(ev.lineAddr);
            l1i_.invalidate(ev.lineAddr);
            if (ev.dirty || l1_dirty)
                dram_.access(ev.lineAddr, now, /*is_write=*/true);
        }
    }
    prefetchCandidates_.clear();
}

std::uint64_t
MemorySystem::dramRequests() const
{
    return dram_.reads.value() + dram_.writes.value();
}

} // namespace rab
