#include "memory/memory_system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/profiler.hh"
#include "fault/fault_injector.hh"
#include "runahead/chain_engine.hh"

namespace rab
{

MemorySystem::MemorySystem(const MemSysConfig &config)
    : config_(config), l1i_(config.l1i), l1d_(config.l1d),
      ownedShared_(std::make_unique<SharedMemory>(config, 1)),
      shared_(ownedShared_.get()), statGroup_("mem")
{
    shared_->attach(this);
    regStats(/*attached=*/false);
    shared_->regComponentStats(&statGroup_);
}

MemorySystem::MemorySystem(const MemSysConfig &config,
                           SharedMemory &shared, int core_id)
    : config_(config), l1i_(config.l1i), l1d_(config.l1d),
      shared_(&shared), coreId_(core_id),
      addrBase_(static_cast<Addr>(core_id) << kCoreAddrShift),
      attached_(true), statGroup_("mem")
{
    if (core_id < 0 || core_id >= shared.numCores())
        panic("MemorySystem: core id %d outside shared range %d",
              core_id, shared.numCores());
    shared_->attach(this);
    regStats(/*attached=*/true);
}

MemorySystem::~MemorySystem() = default;

void
MemorySystem::regStats(bool attached)
{
    statGroup_.addCounter("demand_loads", &demandLoads, "demand loads");
    statGroup_.addCounter("demand_stores", &demandStores, "demand stores");
    statGroup_.addCounter("llc_demand_misses", &llcDemandMisses,
                          "demand LLC misses");
    statGroup_.addCounter("llc_load_misses", &llcLoadMisses,
                          "demand load LLC misses");
    statGroup_.addCounter("queue_rejects", &queueRejects,
                          "memory queue full rejections");
    statGroup_.addCounter("prefetches_issued", &prefetchesIssued,
                          "prefetches sent to DRAM");
    statGroup_.addCounter("mshr_merges", &mshrMerges,
                          "accesses merged into in-flight fills");
    statGroup_.addCounter("mem_retries", &memRetries,
                          "DRAM requests re-sent after a dropped response");
    statGroup_.addCounter("mem_timeouts", &memTimeouts,
                          "in-flight DRAM requests that timed out");
    statGroup_.addCounter("mem_retry_failures", &memRetryFailures,
                          "accesses that exhausted the retry budget");
    statGroup_.addCounter("queue_fault_stalls", &queueFaultStalls,
                          "rejections from injected queue stall windows");
    if (attached) {
        // Contention counters exist only in the multi-core stat
        // payload; the single-core layout predates them and is pinned
        // by the N=1 differential test.
        statGroup_.addCounter("llc_evicted_by_others",
                              &llcEvictedByOthers,
                              "my LLC lines evicted by other cores");
        statGroup_.addCounter("bank_conflicts", &bankConflicts,
                              "DRAM reads delayed by a busy bank/bus");
        statGroup_.addCounter("bank_conflict_wait_cycles",
                              &bankConflictWaitCycles,
                              "total cycles those reads waited");
        statGroup_.addCounter("shared_mshr_peers_held",
                              &sharedMshrPeersHeld,
                              "peer-held queue slots at my admissions");
        statGroup_.addCounter("queue_rejects_contended",
                              &queueRejectsContended,
                              "queue-full rejections with peers holding "
                              "slots");
        statGroup_.addCounter("addr_high_masked", &addrHighMasked,
                              "addresses masked at the namespacing "
                              "boundary (bits >= core-id field)");
    }
    l1i_.regStats(&statGroup_);
    l1d_.regStats(&statGroup_);
}

std::size_t
MemorySystem::outstandingMisses(Cycle now)
{
    return shared_->outstandingMisses(now);
}

Cycle
MemorySystem::nextEventCycle(Cycle now)
{
    return shared_->nextEventCycle(now);
}

bool
MemorySystem::dataOnChip(Addr addr, Cycle now) const
{
    addr = rebase(addr);
    if (shared_->llcPendingMax_ > now) {
        const Addr line = shared_->llc_.lineAddr(addr);
        const auto it = shared_->llcPending_.find(line);
        if (it != shared_->llcPending_.end() && it->second > now)
            return false;
    }
    return l1d_.probe(addr) || shared_->llc_.probe(addr);
}

bool
MemorySystem::missInFlight(Addr addr, Cycle now) const
{
    if (shared_->llcPendingMax_ <= now)
        return false;
    const Addr line = shared_->llc_.lineAddr(rebase(addr));
    const auto it = shared_->llcPending_.find(line);
    return it != shared_->llcPending_.end() && it->second > now;
}

AccessResult
MemorySystem::access(AccessType type, Addr addr, Cycle now,
                     bool runahead, Pc pc)
{
    ProfScope prof(ProfPhase::kMemAccess);
    AccessResult result;
    if (engine_)
        engine_->advanceTo(now);
    if (attached_ && (addr >> kCoreAddrShift) != 0) {
        // Namespacing boundary: an address already using the core-id
        // bits (runahead garbage values, corrupted state) would alias
        // another core's slice after rebasing. Mask and count it.
        ++addrHighMasked;
        addr &= kCoreAddrMask;
    }
    addr = rebase(addr);
    Cache &l1 = type == AccessType::kInstFetch ? l1i_ : l1d_;
    PendingMap &l1_pending =
        type == AccessType::kInstFetch ? l1iPending_ : l1dPending_;
    Cycle &l1_pending_max = type == AccessType::kInstFetch
        ? l1iPendingMax_
        : l1dPendingMax_;
    const Addr line_addr = l1.lineAddr(addr);

    if (type == AccessType::kLoad)
        ++demandLoads;
    else if (type == AccessType::kStore)
        ++demandStores;

    if (type == AccessType::kPrefetch) {
        panic("MemorySystem::access: prefetches are issued internally");
    }

    // L1 lookup.
    const CacheLookup l1_lookup =
        l1.access(addr, type == AccessType::kStore);
    if (l1_lookup.hit) {
        // The tags may hit while the fill is still in flight; that is an
        // MSHR merge, not a completed hit. The watermark guard keeps
        // the hash find off the steady-state hit path (one find per
        // fetched uop otherwise).
        PendingMap::const_iterator it;
        if (l1_pending_max > now
            && (it = l1_pending.find(line_addr)) != l1_pending.end()
            && it->second > now) {
            ++mshrMerges;
            result.l1Miss = true;
            result.readyCycle = it->second;
            result.pendingMiss = missInFlight(addr, now);
        } else {
            result.readyCycle = now + l1.config().latency;
        }
        shared_->issuePrefetches(*this, now);
        return result;
    }

    result.l1Miss = true;

    if (engine_) {
        // Timeliness crediting: was this demand miss covered by a
        // recent engine fill?
        engine_->noteDemandAccess(shared_->llc_.lineAddr(addr), now);
    }

    // L1 miss: go to the LLC after the L1 lookup latency.
    const Cycle llc_time = now + l1.config().latency;
    bool rejected = false;
    const Cycle pre_misses = llcDemandMisses.value();
    const Cycle ready = shared_->accessLlc(
        *this, type, shared_->llc_.lineAddr(addr), llc_time, now,
        result, rejected, runahead, pc);
    if (rejected) {
        result.rejected = true;
        return result;
    }
    result.llcMiss = llcDemandMisses.value() != pre_misses;
    result.pendingMiss = !result.llcMiss && missInFlight(addr, now);

    // Fill L1 (write-allocate). Track availability for merges.
    const Eviction ev = l1.insert(addr, type == AccessType::kStore);
    if (ev.valid && ev.dirty) {
        // Write the victim back into the (inclusive) LLC.
        shared_->llc_.access(ev.lineAddr, /*is_write=*/true);
    }
    l1_pending[line_addr] = ready;
    if (ready > l1_pending_max)
        l1_pending_max = ready;
    SharedMemory::prunePending(l1_pending, now);
    result.readyCycle = ready;

    shared_->issuePrefetches(*this, now);
    return result;
}

std::uint64_t
MemorySystem::dramRequests() const
{
    return shared_->dramRequests();
}

void
MemorySystem::enableChainEngine(const ChainEngineConfig &config,
                                const FunctionalMemory *func_mem)
{
    engine_ = std::make_unique<ChainEngine>(config, this, func_mem);
    if (config.enabled)
        engine_->regStats(&statGroup_);
}

EnginePrefetchResult
MemorySystem::enginePrefetchLine(Addr vaddr, Cycle now)
{
    // Corrupted chains compute arbitrary 64-bit addresses; mask them
    // below the namespacing boundary so an engine fill can never leave
    // this core's slice (the checker's containment audit relies on
    // this).
    vaddr &= kCoreAddrMask;
    const Addr line = shared_->llc_.lineAddr(rebase(vaddr));
    EnginePrefetchResult out;
    out.line = line;
    shared_->enginePrefetch(*this, line, now, out);
    return out;
}

} // namespace rab
