#include "memory/stream_prefetcher.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace rab
{

StreamPrefetcher::StreamPrefetcher(const PrefetcherConfig &config,
                                   int line_bytes)
    : config_(config), lineBytes_(line_bytes),
      distance_(config.distance), degree_(config.degree),
      statGroup_("prefetcher")
{
    streams_.assign(config_.streams, Stream{});
}

void
StreamPrefetcher::observe(Addr line_addr, bool was_miss,
                          std::vector<Addr> &out)
{
    if (!config_.enabled)
        return;

    const Addr line = line_addr / lineBytes_;

    // 1. Try to match an existing tracker. A stream matches when the
    //    access falls within a small window around its demand pointer in
    //    the stream's direction.
    Stream *match = nullptr;
    for (Stream &s : streams_) {
        if (!s.valid)
            continue;
        const std::int64_t delta = static_cast<std::int64_t>(line)
            - static_cast<std::int64_t>(s.lastDemand);
        const std::int64_t fwd = delta * s.direction;
        if (fwd >= 0 && fwd <= distance_ + 4) {
            match = &s;
            break;
        }
        // Unconfirmed trackers may still discover their direction.
        if (s.confirmations < 2 && std::llabs(delta) <= 4 && delta != 0) {
            s.direction = delta > 0 ? 1 : -1;
            match = &s;
            break;
        }
    }

    if (match) {
        Stream &s = *match;
        s.lruStamp = ++lruCounter_;
        const std::int64_t fwd =
            (static_cast<std::int64_t>(line)
             - static_cast<std::int64_t>(s.lastDemand)) * s.direction;
        if (fwd > 0) {
            if (s.confirmations < 2)
                ++s.confirmations;
            s.lastDemand = line;
        }
        if (s.confirmations >= 2) {
            // Keep the head within [demand+1, demand+distance].
            std::int64_t head_fwd =
                (static_cast<std::int64_t>(s.head)
                 - static_cast<std::int64_t>(s.lastDemand)) * s.direction;
            if (head_fwd < 1) {
                s.head = s.lastDemand + s.direction;
                head_fwd = 1;
            }
            for (int i = 0; i < degree_ && head_fwd <= distance_; ++i) {
                out.push_back(static_cast<Addr>(s.head) * lineBytes_);
                s.head += s.direction;
                ++head_fwd;
                ++issued;
                ++intervalIssued_;
            }
            maybeRethrottle();
        }
        return;
    }

    // 2. No tracker matched: allocate on demand misses only.
    if (!was_miss)
        return;
    Stream *victim = nullptr;
    for (Stream &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (!victim || s.lruStamp < victim->lruStamp)
            victim = &s;
    }
    *victim = Stream{};
    victim->valid = true;
    victim->confirmations = 0;
    victim->direction = 1;
    victim->lastDemand = line;
    victim->head = line + 1;
    victim->lruStamp = ++lruCounter_;
    ++streamsAllocated;
}

void
StreamPrefetcher::notifyUseful()
{
    ++useful;
    ++intervalUseful_;
}

void
StreamPrefetcher::notifyUnused()
{
    ++unused;
}

void
StreamPrefetcher::maybeRethrottle()
{
    if (!config_.fdpThrottle
        || intervalIssued_ < static_cast<std::uint64_t>(config_.fdpInterval))
        return;
    const double accuracy = intervalUseful_ == 0 ? 0.0
        : static_cast<double>(intervalUseful_)
            / static_cast<double>(intervalIssued_);
    if (accuracy < config_.fdpLowAccuracy) {
        const int new_distance = std::max(4, distance_ / 2);
        const int new_degree = std::max(1, degree_ - 1);
        if (new_distance != distance_ || new_degree != degree_)
            ++fdpDowngrades;
        distance_ = new_distance;
        degree_ = new_degree;
    } else if (accuracy > config_.fdpHighAccuracy) {
        const int new_distance = std::min(config_.distance, distance_ * 2);
        const int new_degree = std::min(config_.degree, degree_ + 1);
        if (new_distance != distance_ || new_degree != degree_)
            ++fdpUpgrades;
        distance_ = new_distance;
        degree_ = new_degree;
    }
    intervalIssued_ = 0;
    intervalUseful_ = 0;
}

void
StreamPrefetcher::regStats(StatGroup *parent)
{
    statGroup_.addCounter("issued", &issued, "prefetches issued");
    statGroup_.addCounter("useful", &useful, "prefetched lines used");
    statGroup_.addCounter("unused", &unused, "prefetched lines evicted "
                          "unused");
    statGroup_.addCounter("streams_allocated", &streamsAllocated,
                          "stream trackers allocated");
    statGroup_.addCounter("fdp_downgrades", &fdpDowngrades,
                          "FDP throttle-down events");
    statGroup_.addCounter("fdp_upgrades", &fdpUpgrades,
                          "FDP throttle-up events");
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
