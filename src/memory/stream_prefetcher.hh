/**
 * @file
 * POWER4-style stream prefetcher with feedback-directed throttling.
 *
 * Matches Table 1: 32 stream trackers, prefetch distance 32 lines,
 * degree 2, prefetching into the last level cache, throttled with a
 * simplified Feedback Directed Prefetching (FDP, Srinath et al. HPCA-13)
 * scheme that adapts (distance, degree) to measured prefetch accuracy.
 *
 * Training: allocation on an LLC demand miss; a stream is confirmed when
 * two further misses continue in the same direction. Confirmed streams
 * issue @c degree prefetches per triggering demand access, keeping the
 * stream head at most @c distance lines ahead of the demand pointer.
 */

#ifndef RAB_MEMORY_STREAM_PREFETCHER_HH
#define RAB_MEMORY_STREAM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace rab
{

/** Stream prefetcher configuration. */
struct PrefetcherConfig
{
    bool enabled = false;
    int streams = 32;
    int distance = 32;   ///< Max lines ahead of the demand pointer.
    int degree = 2;      ///< Prefetches issued per trigger.
    bool fdpThrottle = true;
    int fdpInterval = 2048; ///< Prefetches between FDP re-evaluations.
    double fdpHighAccuracy = 0.75;
    double fdpLowAccuracy = 0.40;
};

/** The prefetcher. Owned and driven by MemorySystem. */
class StreamPrefetcher
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit StreamPrefetcher(const PrefetcherConfig &config,
                              int line_bytes);

    /**
     * Observe an LLC demand access and append line addresses to
     * prefetch into @p out.
     *
     * @param line_addr line-aligned demand address.
     * @param was_miss  the demand access missed the LLC.
     * @param out       receives line-aligned prefetch candidates.
     */
    void observe(Addr line_addr, bool was_miss, std::vector<Addr> &out);

    /** A demand access hit a line this prefetcher brought in. */
    void notifyUseful();

    /** A prefetched line was evicted before any demand use. */
    void notifyUnused();

    /** Current FDP aggressiveness as (distance, degree). */
    int currentDistance() const { return distance_; }
    int currentDegree() const { return degree_; }

    const PrefetcherConfig &config() const { return config_; }

    /** @{ Statistics. */
    Counter issued;
    Counter useful;
    Counter unused;
    Counter streamsAllocated;
    Counter fdpDowngrades;
    Counter fdpUpgrades;
    /** @} */

    void regStats(StatGroup *parent);

  private:
    struct Stream
    {
        bool valid = false;
        int confirmations = 0; ///< 0 = allocated, >= 2 = confirmed.
        int direction = 1;     ///< +1 ascending, -1 descending.
        Addr lastDemand = 0;   ///< Line index of last demand access.
        Addr head = 0;         ///< Line index of next prefetch.
        std::uint64_t lruStamp = 0;
    };

    void maybeRethrottle();

    PrefetcherConfig config_;
    int lineBytes_;
    int distance_;
    int degree_;
    std::vector<Stream> streams_;
    std::uint64_t lruCounter_ = 0;
    std::uint64_t intervalIssued_ = 0;
    std::uint64_t intervalUseful_ = 0;
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_MEMORY_STREAM_PREFETCHER_HH
