#include "memory/cache.hh"

#include <bit>
#include <limits>

#include "common/logging.hh"

namespace rab
{

namespace
{

int
log2Exact(std::uint64_t v, const char *what)
{
    if (v == 0 || (v & (v - 1)) != 0)
        fatal("cache: %s (%llu) must be a power of two", what,
              (unsigned long long)v);
    return std::countr_zero(v);
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : config_(config), statGroup_(config.name)
{
    if (config_.associativity <= 0)
        fatal("cache %s: bad associativity %d", config_.name.c_str(),
              config_.associativity);
    lineShift_ = log2Exact(config_.lineBytes, "line size");
    const std::uint64_t lines = config_.sizeBytes / config_.lineBytes;
    if (lines % config_.associativity != 0)
        fatal("cache %s: size not divisible into %d ways",
              config_.name.c_str(), config_.associativity);
    numSets_ = static_cast<int>(lines / config_.associativity);
    log2Exact(numSets_, "set count");
    lines_.assign(lines, Line{});
    mruWay_.assign(numSets_, -1);
    validMask_.assign(numSets_, 0);
    wideSets_ = config_.associativity > 64;
    if (!wideSets_) {
        fullMask_ = config_.associativity == 64
            ? ~std::uint64_t(0)
            : (std::uint64_t(1) << config_.associativity) - 1;
    }
}

int
Cache::findWay(const Line *base, std::size_t set, Addr tag) const
{
    // MRU fast path: most references re-touch the way hit last.
    const int mru = mruWay_[set];
    if (mru >= 0 && base[mru].valid && base[mru].tag == tag)
        return mru;
    if (wideSets_) {
        for (int way = 0; way < config_.associativity; ++way) {
            if (base[way].valid && base[way].tag == tag)
                return way;
        }
        return -1;
    }
    // Visit only the valid ways.
    for (std::uint64_t m = validMask_[set]; m != 0; m &= m - 1) {
        const int way = std::countr_zero(m);
        if (base[way].tag == tag)
            return way;
    }
    return -1;
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

CacheLookup
Cache::access(Addr addr, bool is_write)
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * config_.associativity];
    const int way = findWay(base, set, tag);
    if (way >= 0) {
        Line &line = base[way];
        CacheLookup result;
        result.hit = true;
        result.wasPrefetched = line.prefetched;
        line.prefetched = false;
        line.lruStamp = ++lruCounter_;
        if (is_write)
            line.dirty = true;
        mruWay_[set] = way;
        ++hits;
        return result;
    }
    ++misses;
    return CacheLookup{};
}

bool
Cache::probe(Addr addr) const
{
    const std::size_t set = setIndex(addr);
    const Line *base = &lines_[set * config_.associativity];
    return findWay(base, set, tagOf(addr)) >= 0;
}

Eviction
Cache::insert(Addr addr, bool is_write, bool is_prefetch)
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * config_.associativity];

    // Re-insertion of a resident line just updates state.
    const int resident = findWay(base, set, tag);
    if (resident >= 0) {
        Line &line = base[resident];
        line.lruStamp = ++lruCounter_;
        if (is_write)
            line.dirty = true;
        if (!is_prefetch)
            line.prefetched = false;
        mruWay_[set] = resident;
        return Eviction{};
    }

    // Pick an invalid way (lowest-numbered, as the full scan would),
    // else the LRU way.
    int victim = 0;
    if (!wideSets_ && validMask_[set] != fullMask_) {
        victim = std::countr_zero(~validMask_[set]);
    } else {
        std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
        for (int way = 0; way < config_.associativity; ++way) {
            if (!base[way].valid) {
                victim = way;
                break;
            }
            if (base[way].lruStamp < oldest) {
                oldest = base[way].lruStamp;
                victim = way;
            }
        }
    }

    Eviction ev;
    Line &line = base[victim];
    if (line.valid) {
        ev.valid = true;
        ev.dirty = line.dirty;
        ev.lineAddr = line.tag << lineShift_;
        ev.prefetchUnused = line.prefetched;
    }
    line.valid = true;
    line.dirty = is_write;
    line.prefetched = is_prefetch;
    line.tag = tag;
    line.lruStamp = ++lruCounter_;
    if (!wideSets_)
        validMask_[set] |= std::uint64_t(1) << victim;
    mruWay_[set] = victim;
    return ev;
}

bool
Cache::invalidate(Addr addr)
{
    const std::size_t set = setIndex(addr);
    Line *base = &lines_[set * config_.associativity];
    const int way = findWay(base, set, tagOf(addr));
    if (way < 0)
        return false;
    Line &line = base[way];
    line.valid = false;
    if (!wideSets_)
        validMask_[set] &= ~(std::uint64_t(1) << way);
    if (mruWay_[set] == way)
        mruWay_[set] = -1;
    return line.dirty;
}

std::uint64_t
Cache::occupancy() const
{
    std::uint64_t count = 0;
    for (const Line &line : lines_) {
        if (line.valid)
            ++count;
    }
    return count;
}

std::vector<Addr>
Cache::validLines() const
{
    std::vector<Addr> lines;
    lines.reserve(occupancy());
    for (const Line &line : lines_) {
        if (line.valid)
            lines.push_back(line.tag << lineShift_);
    }
    return lines;
}

void
Cache::flush()
{
    lines_.assign(lines_.size(), Line{});
    mruWay_.assign(numSets_, -1);
    validMask_.assign(numSets_, 0);
}

void
Cache::regStats(StatGroup *parent)
{
    statGroup_.addCounter("hits", &hits, "demand hits");
    statGroup_.addCounter("misses", &misses, "demand misses");
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
