#include "memory/cache.hh"

#include <bit>
#include <limits>

#include "common/logging.hh"

namespace rab
{

namespace
{

int
log2Exact(std::uint64_t v, const char *what)
{
    if (v == 0 || (v & (v - 1)) != 0)
        fatal("cache: %s (%llu) must be a power of two", what,
              (unsigned long long)v);
    return std::countr_zero(v);
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : config_(config), statGroup_(config.name)
{
    if (config_.associativity <= 0)
        fatal("cache %s: bad associativity %d", config_.name.c_str(),
              config_.associativity);
    lineShift_ = log2Exact(config_.lineBytes, "line size");
    const std::uint64_t lines = config_.sizeBytes / config_.lineBytes;
    if (lines % config_.associativity != 0)
        fatal("cache %s: size not divisible into %d ways",
              config_.name.c_str(), config_.associativity);
    numSets_ = static_cast<int>(lines / config_.associativity);
    log2Exact(numSets_, "set count");
    lines_.assign(lines, Line{});
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

CacheLookup
Cache::access(Addr addr, bool is_write)
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * config_.associativity];
    for (int way = 0; way < config_.associativity; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            CacheLookup result;
            result.hit = true;
            result.wasPrefetched = line.prefetched;
            line.prefetched = false;
            line.lruStamp = ++lruCounter_;
            if (is_write)
                line.dirty = true;
            ++hits;
            return result;
        }
    }
    ++misses;
    return CacheLookup{};
}

bool
Cache::probe(Addr addr) const
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *base = &lines_[set * config_.associativity];
    for (int way = 0; way < config_.associativity; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return true;
    }
    return false;
}

Eviction
Cache::insert(Addr addr, bool is_write, bool is_prefetch)
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * config_.associativity];

    // Re-insertion of a resident line just updates state.
    for (int way = 0; way < config_.associativity; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++lruCounter_;
            if (is_write)
                line.dirty = true;
            if (!is_prefetch)
                line.prefetched = false;
            return Eviction{};
        }
    }

    // Pick an invalid way, else the LRU way.
    int victim = 0;
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (int way = 0; way < config_.associativity; ++way) {
        if (!base[way].valid) {
            victim = way;
            oldest = 0;
            break;
        }
        if (base[way].lruStamp < oldest) {
            oldest = base[way].lruStamp;
            victim = way;
        }
    }

    Eviction ev;
    Line &line = base[victim];
    if (line.valid) {
        ev.valid = true;
        ev.dirty = line.dirty;
        ev.lineAddr = line.tag << lineShift_;
        ev.prefetchUnused = line.prefetched;
    }
    line.valid = true;
    line.dirty = is_write;
    line.prefetched = is_prefetch;
    line.tag = tag;
    line.lruStamp = ++lruCounter_;
    return ev;
}

bool
Cache::invalidate(Addr addr)
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * config_.associativity];
    for (int way = 0; way < config_.associativity; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            line.valid = false;
            return line.dirty;
        }
    }
    return false;
}

std::uint64_t
Cache::occupancy() const
{
    std::uint64_t count = 0;
    for (const Line &line : lines_) {
        if (line.valid)
            ++count;
    }
    return count;
}

void
Cache::flush()
{
    lines_.assign(lines_.size(), Line{});
}

void
Cache::regStats(StatGroup *parent)
{
    statGroup_.addCounter("hits", &hits, "demand hits");
    statGroup_.addCounter("misses", &misses, "demand misses");
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
