#include "memory/stride_prefetcher.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rab
{

StridePrefetcher::StridePrefetcher(const StridePrefetcherConfig &config,
                                   int line_bytes)
    : config_(config), lineBytes_(line_bytes),
      statGroup_("stride_prefetcher")
{
    if (config_.entries <= 0
        || (config_.entries & (config_.entries - 1)) != 0) {
        fatal("stride prefetcher: entries must be a power of two");
    }
    table_.assign(config_.entries, Entry{});
}

void
StridePrefetcher::observe(Pc pc, Addr line_addr, std::vector<Addr> &out)
{
    const Addr line = line_addr / lineBytes_;
    Entry &e = table_[pc & (config_.entries - 1)];

    if (!e.valid || e.pc != pc) {
        e = Entry{};
        e.valid = true;
        e.pc = pc;
        e.lastLine = line;
        return;
    }

    const std::int64_t delta = static_cast<std::int64_t>(line)
        - static_cast<std::int64_t>(e.lastLine);
    e.lastLine = line;
    if (delta == 0)
        return; // Same line: nothing to learn.

    if (delta == e.stride) {
        if (e.confidence < 3)
            ++e.confidence;
        if (e.confidence == config_.confirmThreshold)
            ++confirmations;
        // The demand pointer advanced one stride: the covered lead
        // shrinks by one.
        e.prefetched = std::max<std::int64_t>(0, e.prefetched - 1);
    } else {
        if (e.confidence > 0) {
            --e.confidence;
        } else {
            e.stride = delta;
        }
        e.prefetched = 0;
        return;
    }

    if (e.confidence < config_.confirmThreshold)
        return;

    for (int i = 0; i < config_.degree
                    && e.prefetched < config_.distance;
         ++i) {
        ++e.prefetched;
        const std::int64_t target = static_cast<std::int64_t>(line)
            + e.stride * (e.prefetched);
        if (target < 0)
            break;
        out.push_back(static_cast<Addr>(target) * lineBytes_);
        ++issued;
    }
}

void
StridePrefetcher::regStats(StatGroup *parent)
{
    statGroup_.addCounter("issued", &issued, "prefetches issued");
    statGroup_.addCounter("useful", &useful, "prefetched lines used");
    statGroup_.addCounter("unused", &unused,
                          "prefetched lines evicted unused");
    statGroup_.addCounter("confirmations", &confirmations,
                          "strides confirmed");
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
