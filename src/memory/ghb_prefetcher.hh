/**
 * @file
 * Global History Buffer prefetcher, PC/DC flavour (Nesbit & Smith,
 * HPCA-10 — related work [26] in the paper).
 *
 * An index table keyed by load PC points at the most recent entry for
 * that PC in a circular global history buffer of miss addresses; each
 * GHB entry links to the previous entry with the same PC. On a miss,
 * the per-PC history is recovered by walking the links and the last
 * two address deltas are correlated: when they agree, the pattern is
 * extrapolated @c degree addresses ahead. Compared with a
 * reference-prediction table, the GHB stores history in one shared
 * buffer (so hot loads get deep history) and ages naturally.
 */

#ifndef RAB_MEMORY_GHB_PREFETCHER_HH
#define RAB_MEMORY_GHB_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace rab
{

/** GHB configuration. */
struct GhbPrefetcherConfig
{
    int historyEntries = 256; ///< Circular buffer depth.
    int indexEntries = 256;   ///< Power of two, direct-mapped by PC.
    int degree = 2;           ///< Prefetches per correlated trigger.
    int maxWalk = 4;          ///< Link-walk depth per trigger.
};

/** The GHB PC/DC prefetcher. */
class GhbPrefetcher
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit GhbPrefetcher(const GhbPrefetcherConfig &config,
                           int line_bytes);

    /** Observe a demand access; append prefetch candidates to @p out. */
    void observe(Pc pc, Addr line_addr, std::vector<Addr> &out);

    void notifyUseful() { ++useful; }
    void notifyUnused() { ++unused; }

    const GhbPrefetcherConfig &config() const { return config_; }

    /** @{ Statistics. */
    Counter issued;
    Counter useful;
    Counter unused;
    Counter correlations;
    /** @} */

    void regStats(StatGroup *parent);

  private:
    struct GhbEntry
    {
        Addr line = 0;
        Pc pc = 0;
        int prev = -1;          ///< Previous entry for the same PC.
        std::uint64_t gen = 0;  ///< Wraparound generation stamp.
    };

    struct IndexEntry
    {
        bool valid = false;
        Pc pc = 0;
        int head = -1;
        std::uint64_t gen = 0;
    };

    /** True if @p idx still holds the entry stamped @p gen. */
    bool live(int idx, std::uint64_t gen) const;

    GhbPrefetcherConfig config_;
    int lineBytes_;
    std::vector<GhbEntry> ghb_;
    std::vector<IndexEntry> index_;
    std::uint64_t nextGen_ = 1;
    int nextSlot_ = 0;
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_MEMORY_GHB_PREFETCHER_HH
