/**
 * @file
 * DDR3 main-memory timing model.
 *
 * Matches the paper's Table 1: 2 channels, 1 rank of 8 banks per
 * channel, 8 KB row buffers, CAS = 13.75 ns, 800 MHz bus, with bank
 * conflicts and queueing delays modelled. Requests are scheduled with a
 * bank-availability model: each bank and each channel data bus track the
 * cycle they next become free; a request's service start is the maximum
 * of its arrival and those resources, and its latency depends on whether
 * it hits the bank's open row. This captures row locality, bank-level
 * parallelism, and queueing to first order while staying deterministic.
 */

#ifndef RAB_MEMORY_DRAM_HH
#define RAB_MEMORY_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace rab
{

/** DDR3 organisation and timing, in core-clock terms. */
struct DramConfig
{
    double coreClockGhz = 3.2;
    double busClockMhz = 800.0;
    int channels = 2;
    int banksPerChannel = 8;
    std::uint64_t rowBytes = 8 * 1024;
    int lineBytes = 64;
    double casNs = 13.75;  ///< CAS latency (also used for tRCD and tRP).
    double tRcdNs = 13.75;
    double tRpNs = 13.75;
};

/** One scheduled DRAM access. */
struct DramResult
{
    Cycle readyCycle = 0; ///< Core cycle the line is delivered.
    bool rowHit = false;
    Cycle queueWait = 0;  ///< Cycles the request waited for its bank
                          ///< to free before service began (the
                          ///< bank-conflict share of the latency).
};

/** The DDR3 device model. */
class Dram
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit Dram(const DramConfig &config);

    /**
     * Schedule the access to the line containing @p addr arriving at
     * core cycle @p now. @p is_write accesses (writebacks) occupy the
     * bank/bus but their completion time is not meaningful to callers.
     */
    DramResult access(Addr addr, Cycle now, bool is_write);

    /** Channel index for an address (for tests/instrumentation). */
    int channelOf(Addr addr) const;
    /** Bank index within the channel. */
    int bankOf(Addr addr) const;
    /** Row index within the bank. */
    std::uint64_t rowOf(Addr addr) const;

    /** Earliest cycle the bank serving @p addr is free. */
    Cycle bankFreeAt(Addr addr) const;

    /** Earliest future cycle (> @p now) at which any bank or channel
     *  bus becomes free, or 0 when everything is already free. The
     *  fast-forward next-event query. */
    Cycle nextBankFreeCycle(Cycle now) const;

    const DramConfig &config() const { return config_; }

    /** Unloaded read latency (row hit, idle bank) in core cycles. */
    Cycle idleHitLatency() const;
    /** Unloaded read latency on a row conflict. */
    Cycle idleConflictLatency() const;

    /** @{ Statistics. */
    Counter reads;
    Counter writes;
    Counter rowHits;
    Counter rowConflicts;
    Counter latencySum;   ///< Σ (readyCycle - arrival) over reads.
    Counter queueWaitSum; ///< Σ (serviceStart - arrival) over reads.
    /** @} */

    void regStats(StatGroup *parent);

    /** Reset bank state (used between simulations). */
    void reset();

  private:
    struct Bank
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        Cycle freeAt = 0;
    };

    Cycle nsToCycles(double ns) const;

    /** Row-sized block index within the channel's compressed address
     *  space; bank and row indices both derive from it. */
    std::uint64_t rowSequence(Addr addr) const;

    DramConfig config_;
    Cycle casCycles_;
    Cycle rcdCycles_;
    Cycle rpCycles_;
    Cycle burstCycles_; ///< Data-bus occupancy per 64 B line transfer.
    std::vector<Bank> banks_;          // channels * banksPerChannel
    std::vector<Cycle> busFreeAt_;     // per channel
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_MEMORY_DRAM_HH
