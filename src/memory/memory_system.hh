/**
 * @file
 * One core's view of the cache hierarchy: split 32 KB L1I/L1D private
 * to the core, in front of the chip-shared state (unified inclusive
 * 1 MB LLC, the 64-entry memory queue, the DDR3 model and the stream
 * prefetcher — see SharedMemory) (Table 1).
 *
 * Timing model: tags are updated immediately on a miss, but the line's
 * availability is tracked in per-level pending (MSHR) maps; accesses to
 * an in-flight line merge with the outstanding fill instead of issuing a
 * duplicate memory request. The memory queue bounds the number of LLC
 * misses in flight — requests beyond it are rejected and retried by the
 * core, which is what bounds achievable MLP.
 *
 * A default-constructed MemorySystem owns a private SharedMemory (the
 * single-core hierarchy, byte-identical to the pre-split model). The
 * attached form plugs the core into an external SharedMemory under a
 * core id; its addresses are namespaced with that id (see
 * kCoreAddrShift) and it gains the per-core contention counters.
 */

#ifndef RAB_MEMORY_MEMORY_SYSTEM_HH
#define RAB_MEMORY_MEMORY_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "memory/cache.hh"
#include "memory/dram.hh"
#include "memory/ghb_prefetcher.hh"
#include "memory/req.hh"
#include "memory/shared_memory.hh"
#include "memory/stream_prefetcher.hh"
#include "memory/stride_prefetcher.hh"
#include "stats/stats.hh"

namespace rab
{

/** Which hardware prefetcher trains on LLC demand traffic. */
enum class PrefetcherKind
{
    kStream, ///< Table 1's POWER4-style stream prefetcher.
    kStride, ///< PC-indexed stride prefetcher (related-work baseline).
    kGhb,    ///< Global-history-buffer PC/DC prefetcher [26].
};

/** Hierarchy configuration (defaults reproduce the paper's Table 1). */
struct MemSysConfig
{
    CacheConfig l1i{"l1i", 32 * 1024, 8, 64, 3};
    CacheConfig l1d{"l1d", 32 * 1024, 8, 64, 3};
    CacheConfig llc{"llc", 1024 * 1024, 8, 64, 18};
    DramConfig dram{};
    PrefetcherConfig prefetcher{};
    PrefetcherKind prefetcherKind = PrefetcherKind::kStream;
    StridePrefetcherConfig stridePrefetcher{};
    GhbPrefetcherConfig ghbPrefetcher{};
    int memQueueEntries = 64; ///< Max LLC misses in flight.
    int runaheadQueueReserve = 24; ///< Memory-queue slots reserved for
                                   ///< demand (non-runahead) misses, so
                                   ///< speculative runahead traffic
                                   ///< cannot starve the demand stream.

    /** @{ Bounded-retry recovery for dropped DRAM responses (fault
     *  injection). A dropped response costs memTimeoutCycles before
     *  the requester notices; each retry adds a linear backoff. After
     *  memRetryLimit drops the access fails back to the core. */
    int memRetryLimit = 3;
    Cycle memTimeoutCycles = 1000;
    Cycle memRetryBackoffCycles = 200;
    /** @} */
};

class FaultInjector;
class ChainEngine;
struct ChainEngineConfig;
struct EnginePrefetchResult;
class FunctionalMemory;

/** One core's composed view of the cache/DRAM hierarchy. */
class MemorySystem
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    /** Single-core form: owns its SharedMemory privately. */
    explicit MemorySystem(const MemSysConfig &config);

    /** Multi-core form: core @p core_id's private L1s in front of an
     *  external @p shared hierarchy. Cores must be constructed in
     *  core-id order (each constructor attaches to @p shared). */
    MemorySystem(const MemSysConfig &config, SharedMemory &shared,
                 int core_id);

    ~MemorySystem();

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    /**
     * Perform a demand access.
     *
     * @param type kInstFetch, kLoad or kStore.
     * @param addr byte address.
     * @param now  current core cycle.
     */
    AccessResult access(AccessType type, Addr addr, Cycle now,
                        bool runahead = false, Pc pc = 0);

    /** Number of LLC misses currently in flight (chip-wide). */
    std::size_t outstandingMisses(Cycle now);

    /** Earliest future cycle (> @p now) at which memory-side state
     *  changes: the next in-flight LLC-miss fill completing or a DRAM
     *  bank/bus freeing up. Returns 0 when nothing is pending. The
     *  fast-forward engine bounds its skip horizon with this. */
    Cycle nextEventCycle(Cycle now);

    /** True if the line holding @p addr is present in L1D or LLC tags
     *  and its fill (if any) has completed by @p now. */
    bool dataOnChip(Addr addr, Cycle now) const;

    /** True if an LLC miss for this line is currently in flight. */
    bool missInFlight(Addr addr, Cycle now) const;

    int lineBytes() const { return config_.llc.lineBytes; }
    const MemSysConfig &config() const { return config_; }

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &llc() { return shared_->llc(); }
    Dram &dram() { return shared_->dram(); }
    StreamPrefetcher &prefetcher() { return shared_->prefetcher(); }
    StridePrefetcher &stridePrefetcher()
    {
        return shared_->stridePrefetcher();
    }
    GhbPrefetcher &ghbPrefetcher() { return shared_->ghbPrefetcher(); }

    /** The shared half of the hierarchy (owned or external). */
    SharedMemory &shared() { return *shared_; }
    const SharedMemory &shared() const { return *shared_; }

    /** This core's id (0 in the single-core form). */
    int coreId() const { return coreId_; }

    /** Rebase an architectural address into this core's namespaced
     *  slice of the shared address space (identity for core 0). */
    Addr rebase(Addr addr) const { return addr | addrBase_; }

    /** Total DRAM requests (reads + writebacks); Figure 16's metric.
     *  Chip-wide in the multi-core form. */
    std::uint64_t dramRequests() const;

    /** @{ Statistics. */
    Counter demandLoads;
    Counter demandStores;
    Counter llcDemandMisses;  ///< Demand (non-prefetch) LLC misses.
    Counter llcLoadMisses;    ///< Demand load LLC misses only.
    Counter queueRejects;     ///< Accesses rejected: memory queue full.
    Counter prefetchesIssued; ///< Prefetches sent to DRAM.
    Counter mshrMerges;       ///< Accesses merged into in-flight fills.
    Counter memRetries;       ///< DRAM requests re-sent after a drop.
    Counter memTimeouts;      ///< In-flight requests that timed out.
    Counter memRetryFailures; ///< Accesses that exhausted the retry
                              ///< budget and failed back to the core.
    Counter queueFaultStalls; ///< Accesses rejected by an injected
                              ///< memory-queue stall window.
    /** @} */

    /** @{ Contention statistics, meaningful (and registered) only in
     *  the attached multi-core form; a single core keeps them at
     *  zero so the legacy stat payload is unchanged. */
    Counter llcEvictedByOthers;     ///< My LLC lines evicted by peers.
    Counter bankConflicts;          ///< My DRAM reads that waited for a
                                    ///< busy bank or bus.
    Counter bankConflictWaitCycles; ///< Total cycles those reads waited.
    Counter sharedMshrPeersHeld;    ///< Σ queue slots held by other
                                    ///< cores at my queue admissions.
    Counter queueRejectsContended;  ///< Queue-full rejections while
                                    ///< peers held at least one slot.
    /** @} */

    StatGroup &stats() { return statGroup_; }

    /** Attach a fault injector (may be null): drops/delays DRAM
     *  responses and opens transient memory-queue stall windows. */
    void setFaultInjector(FaultInjector *faults) { faults_ = faults; }

    /** The attached fault injector (may be null). */
    FaultInjector *faultInjector() const { return faults_; }

    /**
     * Instantiate the Continuous Runahead chain engine beside this
     * hierarchy (see src/runahead/chain_engine.hh). @p func_mem is the
     * architectural memory image the engine reads values from — const:
     * the engine is prefetch-only by construction. Registers the
     * engine.* stat subtree only when the engine is enabled, so every
     * non-CRE stat payload is unchanged.
     */
    void enableChainEngine(const ChainEngineConfig &config,
                           const FunctionalMemory *func_mem);

    /** The chain engine, or null when never instantiated. */
    ChainEngine *chainEngine() const { return engine_.get(); }

    /**
     * Issue one engine prefetch for architectural address @p vaddr at
     * engine cycle @p now. Masks bits above the namespacing boundary
     * (corrupted chains compute arbitrary addresses), rebases into
     * this core's slice and line-aligns before handing the fill to
     * SharedMemory's speculative prefetch path.
     */
    EnginePrefetchResult enginePrefetchLine(Addr vaddr, Cycle now);

    /** Demand addresses (attached form) whose bits ≥ kCoreAddrShift
     *  were masked at the namespacing boundary. */
    Counter addrHighMasked;

  private:
    friend class SharedMemory;

    /** Per-level in-flight fill tracking. */
    using PendingMap = std::unordered_map<Addr, Cycle>;

    /** Shared counter + L1 registration (both constructors). */
    void regStats(bool attached);

    MemSysConfig config_;
    Cache l1i_;
    Cache l1d_;

    std::unique_ptr<SharedMemory> ownedShared_;
    SharedMemory *shared_;
    std::unique_ptr<ChainEngine> engine_;
    int coreId_ = 0;
    Addr addrBase_ = 0;
    bool attached_ = false;

    PendingMap l1iPending_;
    PendingMap l1dPending_;
    /** @{ Watermarks: the latest fill cycle ever inserted into the
     *  matching pending map. Once `now` passes a watermark, no entry
     *  can still be in flight, so the hit path can skip the hash find
     *  entirely (the maps are pruned lazily and stay populated with
     *  stale entries long after the fills land). */
    Cycle l1iPendingMax_ = 0;
    Cycle l1dPendingMax_ = 0;
    /** @} */

    FaultInjector *faults_ = nullptr;
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_MEMORY_MEMORY_SYSTEM_HH
