/**
 * @file
 * The memory-system state shared by every core of a chip: the
 * inclusive LLC, the memory queue (shared MSHR pool) in front of DRAM,
 * the DDR3 channel/bank state, and the prefetchers that train on LLC
 * demand traffic.
 *
 * A single-core MemorySystem owns a private SharedMemory internally —
 * the split is pure code motion and the single-core path is certified
 * byte-identical to the pre-split hierarchy. Multi-core simulations
 * build one SharedMemory and attach one MemorySystem (private L1s,
 * per-core counters) per core; cores contend for memory-queue slots,
 * DRAM banks and LLC capacity exactly the way a single core contends
 * with its own prefetcher.
 *
 * Cores are kept architecturally disjoint by address namespacing: each
 * attached MemorySystem rebases its addresses with its core id in the
 * top bits (see kCoreAddrShift), so two cores never alias a line while
 * still colliding in LLC sets and DRAM banks — the contention the
 * multi-core model exists to measure. The namespaced address also
 * encodes the owner of every LLC line, which is how evictions are
 * back-invalidated into the right core's L1s and attributed to the
 * eviction-by-other-core contention counters.
 */

#ifndef RAB_MEMORY_SHARED_MEMORY_HH
#define RAB_MEMORY_SHARED_MEMORY_HH

#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "memory/cache.hh"
#include "memory/dram.hh"
#include "memory/ghb_prefetcher.hh"
#include "memory/req.hh"
#include "memory/stream_prefetcher.hh"
#include "memory/stride_prefetcher.hh"
#include "stats/stats.hh"

namespace rab
{

class MemorySystem;
struct MemSysConfig;

/** Bit position of the core id inside a namespaced address. Workload
 *  address spaces stay far below this, so rebasing is collision-free
 *  and the single-core base (core 0) is the identity. */
constexpr int kCoreAddrShift = 48;

/** Mask selecting the architectural (pre-namespacing) address bits.
 *  Addresses presented to an attached MemorySystem must fit below the
 *  core-id field; anything above is masked at the namespacing boundary
 *  (and counted) so it can never alias another core's slice. */
constexpr Addr kCoreAddrMask = (Addr{1} << kCoreAddrShift) - 1;

struct EnginePrefetchResult;

/** "coreN.name" — the per-core indexed stat-name convention for
 *  registration loops over cores (rablint's rab-stat-registration
 *  check understands this helper; see tools/rablint). */
std::string perCoreStatName(int core, const std::string &name);

/** The chip-shared half of the memory hierarchy. */
class SharedMemory
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    /** @p config supplies the LLC/DRAM/prefetcher/queue parameters;
     *  the L1 fields are ignored here (they are per-core). */
    SharedMemory(const MemSysConfig &config, int num_cores);
    ~SharedMemory();

    SharedMemory(const SharedMemory &) = delete;
    SharedMemory &operator=(const SharedMemory &) = delete;

    /** Register core @p core_id's private view. Cores must attach in
     *  id order, once each, before the first access. */
    void attach(MemorySystem *core);

    int numCores() const { return numCores_; }

    /** Number of LLC misses currently in flight (all cores). */
    std::size_t outstandingMisses(Cycle now);

    /** Earliest future cycle (> @p now) at which shared memory state
     *  changes: the next in-flight fill completing or a DRAM bank/bus
     *  freeing up. 0 when nothing is pending. */
    Cycle nextEventCycle(Cycle now);

    Cache &llc() { return llc_; }
    const Cache &llc() const { return llc_; }
    Dram &dram() { return dram_; }
    StreamPrefetcher &prefetcher() { return prefetcher_; }
    StridePrefetcher &stridePrefetcher() { return stridePf_; }
    GhbPrefetcher &ghbPrefetcher() { return ghbPf_; }

    /** Total DRAM requests (reads + writebacks), chip-wide. */
    std::uint64_t dramRequests() const;

    /**
     * Register the shared components' stats into @p parent in the
     * legacy single-core order (llc, dram, prefetchers). The owning
     * single-core MemorySystem calls this with its own "mem" group so
     * the pre-split stat layout is preserved byte-for-byte.
     */
    void regComponentStats(StatGroup *parent);

    /**
     * Multi-core registration: the components plus the shared-pool
     * contention counters and the per-core indexed MSHR occupancy
     * peaks, into the simulation's "shared" group.
     */
    void regSharedStats(StatGroup *parent);

    /** @{ Shared-pool statistics (registered by regSharedStats only;
     *  they stay zero on a single core). */
    Counter crossCoreEvictions; ///< LLC victims owned by another core.
    /** Line addresses whose core-id bits named a nonexistent core and
     *  were clamped by ownerOf (corrupted state; should stay 0). */
    mutable Counter ownerClamps;
    /** @} */

  private:
    friend class MemorySystem;

    /** Per-line in-flight fill tracking (the LLC MSHR file). */
    using PendingMap = std::unordered_map<Addr, Cycle>;

    /** One shared memory-queue slot: the fill's completion cycle and
     *  the core the miss belongs to. */
    struct OutstandingMiss
    {
        Cycle ready = 0;
        int core = 0;
    };
    struct OutstandingLater
    {
        bool operator()(const OutstandingMiss &a,
                        const OutstandingMiss &b) const
        {
            if (a.ready != b.ready)
                return a.ready > b.ready;
            return a.core > b.core;
        }
    };

    /** The core owning a namespaced line address. */
    MemorySystem &ownerOf(Addr line_addr) const;

    /** Handle @p core's access that missed its L1, at the LLC and
     *  below. Returns the cycle the line reaches L1 / the requester.
     *  Counters for the miss are charged to @p core. */
    Cycle accessLlc(MemorySystem &core, AccessType type, Addr line_addr,
                    Cycle llc_time, Cycle now, AccessResult &result,
                    bool &rejected, bool runahead, Pc pc);

    /** Train the configured prefetcher on a demand access. */
    void trainPrefetcher(AccessType type, Pc pc, Addr line_addr,
                         bool was_miss);
    void notifyPrefetchUseful();
    void notifyPrefetchUnused();

    /** Issue prefetch candidates produced by the prefetcher; issued
     *  prefetches are charged to the triggering @p core. */
    void issuePrefetches(MemorySystem &core, Cycle now);

    /** One chain-engine prefetch for @p core's (namespaced, aligned)
     *  @p line_addr at engine cycle @p now. Fills @p out with the
     *  admission verdict and the fill's ready cycle. Engine traffic is
     *  speculative: it respects the demand queue reserve and never
     *  touches the demand counters or prefetcher training. */
    void enginePrefetch(MemorySystem &core, Addr line_addr, Cycle now,
                        EnginePrefetchResult &out);

    /** Inclusive-hierarchy eviction handling: back-invalidate the
     *  owner core's L1 copies, attribute cross-core evictions, and
     *  write dirty victims back to DRAM. */
    void handleEviction(const Eviction &ev, MemorySystem &accessor,
                        Cycle now);

    void pruneOutstanding(Cycle now);
    static void prunePending(PendingMap &pending, Cycle now);

    /** Acquire a memory-queue slot for @p core's fill completing at
     *  @p ready, maintaining the per-core occupancy accounting. */
    void pushOutstanding(MemorySystem &core, Cycle ready);

    int numCores_;
    Cache llc_;
    Dram dram_;
    StreamPrefetcher prefetcher_;
    StridePrefetcher stridePf_;
    GhbPrefetcher ghbPf_;

    PendingMap llcPending_;
    /** Watermark: the latest fill cycle ever inserted into
     *  llcPending_; once `now` passes it the hit path skips the hash
     *  find (see MemorySystem's L1 equivalents). */
    Cycle llcPendingMax_ = 0;

    /** Ready cycles of in-flight LLC misses (memory queue occupancy),
     *  shared by all cores. */
    std::priority_queue<OutstandingMiss, std::vector<OutstandingMiss>,
                        OutstandingLater>
        outstanding_;
    /** Memory-queue slots currently held per core. */
    std::vector<std::uint64_t> heldNow_;
    /** Running per-core peak of heldNow_ (monotone counters so the
     *  stats package can register them; see regSharedStats). */
    std::vector<Counter> mshrPeak_;

    std::vector<Addr> prefetchCandidates_;
    std::vector<MemorySystem *> cores_;

    /** Shared config snapshot (LLC/DRAM/prefetcher/queue knobs). */
    const int memQueueEntries_;
    const int runaheadQueueReserve_;
    const int memRetryLimit_;
    const Cycle memTimeoutCycles_;
    const Cycle memRetryBackoffCycles_;
    const bool prefetchEnabled_;
    const int prefetcherKind_; ///< PrefetcherKind as int (layering).
};

} // namespace rab

#endif // RAB_MEMORY_SHARED_MEMORY_HH
