/**
 * @file
 * PC-indexed stride prefetcher (reference-prediction-table style, after
 * Chen & Baer / Fu et al. — the classic alternative baseline the paper
 * cites in related work [11, 14, 27]).
 *
 * Each static load gets a table entry tracking its last line and line
 * stride with a 2-bit confidence counter; once confident, @c degree
 * prefetches are issued along the stride. Unlike the POWER4-style
 * stream prefetcher it can follow large and negative strides, at the
 * cost of needing the load PC at training time.
 */

#ifndef RAB_MEMORY_STRIDE_PREFETCHER_HH
#define RAB_MEMORY_STRIDE_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace rab
{

/** Stride prefetcher configuration. */
struct StridePrefetcherConfig
{
    int entries = 256;   ///< Power of two, direct-mapped by PC.
    int degree = 2;      ///< Prefetches per confident trigger.
    int distance = 8;    ///< Max strides ahead of the demand access.
    int confirmThreshold = 2; ///< Matches before prefetching starts.
};

/** The stride prefetcher. */
class StridePrefetcher
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit StridePrefetcher(const StridePrefetcherConfig &config,
                              int line_bytes);

    /**
     * Observe a demand access from the load at @p pc and append
     * line-aligned prefetch candidates to @p out.
     */
    void observe(Pc pc, Addr line_addr, std::vector<Addr> &out);

    /** A demand access hit a line this prefetcher brought in. */
    void notifyUseful() { ++useful; }

    /** A prefetched line was evicted before use. */
    void notifyUnused() { ++unused; }

    const StridePrefetcherConfig &config() const { return config_; }

    /** @{ Statistics. */
    Counter issued;
    Counter useful;
    Counter unused;
    Counter confirmations;
    /** @} */

    void regStats(StatGroup *parent);

  private:
    struct Entry
    {
        bool valid = false;
        Pc pc = 0;
        Addr lastLine = 0;
        std::int64_t stride = 0; ///< In lines; may be negative.
        int confidence = 0;
        std::int64_t prefetched = 0; ///< Strides already covered ahead.
    };

    StridePrefetcherConfig config_;
    int lineBytes_;
    std::vector<Entry> table_;
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_MEMORY_STRIDE_PREFETCHER_HH
