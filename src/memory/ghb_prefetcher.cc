#include "memory/ghb_prefetcher.hh"

#include "common/logging.hh"

namespace rab
{

GhbPrefetcher::GhbPrefetcher(const GhbPrefetcherConfig &config,
                             int line_bytes)
    : config_(config), lineBytes_(line_bytes), statGroup_("ghb")
{
    if (config_.indexEntries <= 0
        || (config_.indexEntries & (config_.indexEntries - 1)) != 0) {
        fatal("ghb: index entries must be a power of two");
    }
    if (config_.historyEntries <= 0)
        fatal("ghb: bad history size");
    ghb_.assign(config_.historyEntries, GhbEntry{});
    index_.assign(config_.indexEntries, IndexEntry{});
}

bool
GhbPrefetcher::live(int idx, std::uint64_t gen) const
{
    return idx >= 0 && idx < static_cast<int>(ghb_.size())
        && ghb_[idx].gen == gen && gen != 0;
}

void
GhbPrefetcher::observe(Pc pc, Addr line_addr, std::vector<Addr> &out)
{
    const Addr line = line_addr / lineBytes_;
    IndexEntry &ie = index_[pc & (config_.indexEntries - 1)];

    // Recover this PC's recent history through the link chain.
    Addr history[8];
    std::uint64_t gens[8];
    int depth = 0;
    if (ie.valid && ie.pc == pc) {
        int idx = ie.head;
        std::uint64_t gen = ie.gen;
        while (depth < config_.maxWalk && depth < 8 && live(idx, gen)) {
            history[depth] = ghb_[idx].line;
            gens[depth] = gen;
            ++depth;
            gen = ghb_[idx].gen == 0 ? 0 : ghb_[idx].gen;
            const int prev = ghb_[idx].prev;
            // The previous entry's stamp is the generation it was
            // written with; recover it directly from the entry.
            if (prev < 0)
                break;
            gen = ghb_[prev].gen;
            idx = prev;
        }
    }
    (void)gens;

    // Insert the new access at the GHB head.
    const int slot = nextSlot_;
    nextSlot_ = (nextSlot_ + 1) % config_.historyEntries;
    ghb_[slot] = GhbEntry{line, pc,
                          (ie.valid && ie.pc == pc) ? ie.head : -1,
                          nextGen_};
    ie.valid = true;
    ie.pc = pc;
    ie.head = slot;
    ie.gen = nextGen_;
    ++nextGen_;

    // Delta correlation over the two most recent gaps.
    if (depth < 2)
        return;
    const std::int64_t d1 = static_cast<std::int64_t>(line)
        - static_cast<std::int64_t>(history[0]);
    const std::int64_t d2 = static_cast<std::int64_t>(history[0])
        - static_cast<std::int64_t>(history[1]);
    if (d1 == 0 || d1 != d2)
        return;
    ++correlations;
    for (int i = 1; i <= config_.degree; ++i) {
        const std::int64_t target =
            static_cast<std::int64_t>(line) + d1 * i;
        if (target < 0)
            break;
        out.push_back(static_cast<Addr>(target) * lineBytes_);
        ++issued;
    }
}

void
GhbPrefetcher::regStats(StatGroup *parent)
{
    statGroup_.addCounter("issued", &issued, "prefetches issued");
    statGroup_.addCounter("useful", &useful, "prefetched lines used");
    statGroup_.addCounter("unused", &unused,
                          "prefetched lines evicted unused");
    statGroup_.addCounter("correlations", &correlations,
                          "delta correlations found");
    if (parent)
        parent->addChild(&statGroup_);
}

} // namespace rab
