/**
 * @file
 * Generic set-associative, write-back, LRU cache tag/state array.
 *
 * The cache models tags and replacement only; data values live in the
 * functional memory image. Timing (latencies, miss handling) is
 * composed by MemorySystem.
 */

#ifndef RAB_MEMORY_CACHE_HH
#define RAB_MEMORY_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace rab
{

/** Configuration for one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    int associativity = 8;
    int lineBytes = 64;
    int latency = 3; ///< Hit latency in core cycles.
};

/** Result of looking a line up. */
struct CacheLookup
{
    bool hit = false;
    bool wasPrefetched = false; ///< Line was installed by a prefetch and
                                ///< had not yet been demand-referenced.
};

/** Information about a line evicted by an insertion. */
struct Eviction
{
    bool valid = false;     ///< An occupied line was evicted.
    bool dirty = false;     ///< The victim needs a writeback.
    Addr lineAddr = kNoAddr;///< Victim line address (line-aligned).
    bool prefetchUnused = false; ///< Victim was an unused prefetch.
};

/** Set-associative write-back cache with true-LRU replacement. */
class Cache
{
    friend struct SnapshotAccess; ///< src/snapshot serializer.
  public:
    explicit Cache(const CacheConfig &config);

    const CacheConfig &config() const { return config_; }

    /** Line-align an address. */
    Addr lineAddr(Addr addr) const { return addr & ~Addr(lineBytes() - 1); }
    int lineBytes() const { return config_.lineBytes; }
    int numSets() const { return numSets_; }

    /**
     * Look up @p addr. On a hit, updates LRU, clears the prefetch bit,
     * and sets the dirty bit when @p is_write.
     */
    CacheLookup access(Addr addr, bool is_write);

    /** Tag check with no state update (for instrumentation). */
    bool probe(Addr addr) const;

    /**
     * Install the line containing @p addr, evicting the LRU way.
     * @param is_write  install in dirty state.
     * @param is_prefetch  mark as prefetched (for accuracy tracking).
     */
    Eviction insert(Addr addr, bool is_write, bool is_prefetch = false);

    /** Invalidate the line if present; returns true if it was dirty. */
    bool invalidate(Addr addr);

    /** Number of valid lines currently resident. */
    std::uint64_t occupancy() const;

    /** Line-aligned addresses of every valid resident line, in
     *  deterministic (set, way) order. Containment checks and tests;
     *  never a hot path. */
    std::vector<Addr> validLines() const;

    /** Reset all tags to invalid. */
    void flush();

    /** @{ Access statistics, maintained by access(). */
    Counter hits;
    Counter misses;
    /** @} */

    /** Register stats on @p parent. */
    void regStats(StatGroup *parent);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheConfig config_;
    int numSets_;
    int lineShift_;
    std::vector<Line> lines_; // numSets_ * associativity, row-major
    std::uint64_t lruCounter_ = 0;

    /** @{ Set-lookup fast paths (pure acceleration; replacement and
     *  statistics behaviour is identical to the full way scan). The
     *  MRU way resolves the common re-reference without touching the
     *  other ways; the valid-way bitmask narrows scans and insertions
     *  to occupied (or the first free) ways. */
    int findWay(const Line *base, std::size_t set, Addr tag) const;

    std::vector<int> mruWay_;            ///< Last way hit per set.
    std::vector<std::uint64_t> validMask_; ///< Valid-way bits per set.
    std::uint64_t fullMask_ = 0;  ///< Mask value with every way valid.
    bool wideSets_ = false; ///< associativity > 64: bitmask disabled.
    /** @} */
    StatGroup statGroup_;
};

} // namespace rab

#endif // RAB_MEMORY_CACHE_HH
