/**
 * @file
 * Memory access request/response types shared across the hierarchy.
 */

#ifndef RAB_MEMORY_REQ_HH
#define RAB_MEMORY_REQ_HH

#include <cstdint>

#include "common/types.hh"

namespace rab
{

/** Who generated a memory access; drives stats and prefetcher training. */
enum class AccessType : std::uint8_t
{
    kInstFetch, ///< Demand instruction fetch.
    kLoad,      ///< Demand data load.
    kStore,     ///< Demand data store (write-allocate).
    kPrefetch,  ///< Hardware prefetch (into LLC only).
    kWriteback, ///< Dirty line eviction to DRAM.
};

/** Result of a hierarchical access. */
struct AccessResult
{
    /** Cycle the critical word is available to the requester. */
    Cycle readyCycle = 0;

    /** True if the request could not be accepted (queues full). */
    bool rejected = false;

    /** True if the access missed the last level cache (a *new* miss;
     *  merges into in-flight fills set pendingMiss instead). */
    bool llcMiss = false;

    /** True if the access waits on an LLC miss already in flight
     *  (MSHR merge). The requester stalls off-chip-long, but no new
     *  DRAM request was generated. */
    bool pendingMiss = false;

    /** True if the access missed the first-level cache. */
    bool l1Miss = false;

    /** True if it hit a line that a prefetch brought in. */
    bool prefetchHit = false;

    /** True if an injected fault exhausted the bounded retry budget;
     *  the request was not accepted (rejected is also set) and the
     *  core retries it from the reservation station. */
    bool faulted = false;
};

} // namespace rab

#endif // RAB_MEMORY_REQ_HH
