#include "memory/dram.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rab
{

Dram::Dram(const DramConfig &config)
    : config_(config), statGroup_("dram")
{
    if (config_.channels <= 0 || config_.banksPerChannel <= 0)
        fatal("dram: bad organisation");
    casCycles_ = nsToCycles(config_.casNs);
    rcdCycles_ = nsToCycles(config_.tRcdNs);
    rpCycles_ = nsToCycles(config_.tRpNs);
    // A 64 B line moves over an 8 B-wide DDR bus in lineBytes/8 half-bus
    // cycles = 4 bus cycles at DDR-1600 (800 MHz bus).
    const double bus_cycle_ns = 1000.0 / config_.busClockMhz;
    const double transfer_ns =
        (static_cast<double>(config_.lineBytes) / 16.0) * bus_cycle_ns;
    burstCycles_ = nsToCycles(transfer_ns);
    banks_.assign(
        static_cast<std::size_t>(config_.channels * config_.banksPerChannel),
        Bank{});
    busFreeAt_.assign(config_.channels, 0);
}

Cycle
Dram::nsToCycles(double ns) const
{
    return static_cast<Cycle>(std::ceil(ns * config_.coreClockGhz));
}

int
Dram::channelOf(Addr addr) const
{
    // Interleave channels on line granularity for bandwidth.
    return static_cast<int>((addr / config_.lineBytes) % config_.channels);
}

std::uint64_t
Dram::rowSequence(Addr addr) const
{
    // Compress the address to this channel's private space (channels
    // interleave on lines), then index by row-sized blocks. The low
    // log2(banksPerChannel) digits of this sequence select the bank;
    // they MUST be stripped before forming the per-bank row index, or
    // consecutive rows of different banks would alias onto the same
    // open-row tag and corrupt hit/conflict accounting.
    const Addr chan_addr = addr / config_.lineBytes / config_.channels
        * config_.lineBytes;
    return chan_addr / config_.rowBytes;
}

int
Dram::bankOf(Addr addr) const
{
    // Interleave banks on row granularity within a channel.
    return static_cast<int>(rowSequence(addr) % config_.banksPerChannel);
}

std::uint64_t
Dram::rowOf(Addr addr) const
{
    // Bank bits stripped: rows are indexed within their bank, so
    // (channel, bank, row) is a bijective decomposition of the line
    // address and distinct rows never share an open-row tag.
    return rowSequence(addr) / config_.banksPerChannel;
}

Cycle
Dram::bankFreeAt(Addr addr) const
{
    const int channel = channelOf(addr);
    const int bank = bankOf(addr);
    return banks_[channel * config_.banksPerChannel + bank].freeAt;
}

Cycle
Dram::nextBankFreeCycle(Cycle now) const
{
    Cycle next = 0;
    const auto consider = [&](Cycle free_at) {
        if (free_at > now && (next == 0 || free_at < next))
            next = free_at;
    };
    for (const Bank &bank : banks_)
        consider(bank.freeAt);
    for (const Cycle bus_free : busFreeAt_)
        consider(bus_free);
    return next;
}

DramResult
Dram::access(Addr addr, Cycle now, bool is_write)
{
    const int channel = channelOf(addr);
    const int bank_idx = bankOf(addr);
    const std::uint64_t row = rowOf(addr);
    Bank &bank = banks_[channel * config_.banksPerChannel + bank_idx];

    const Cycle start = std::max(now, bank.freeAt);
    Cycle access_latency;
    DramResult result;
    result.queueWait = start - now;
    if (bank.rowOpen && bank.openRow == row) {
        access_latency = casCycles_;
        result.rowHit = true;
        ++rowHits;
    } else {
        // Close the open row (precharge) then activate the new one.
        access_latency = (bank.rowOpen ? rpCycles_ : 0) + rcdCycles_
            + casCycles_;
        ++rowConflicts;
    }
    bank.rowOpen = true;
    bank.openRow = row;

    // Data comes back over the channel bus after the array access.
    const Cycle data_start =
        std::max(start + access_latency, busFreeAt_[channel]);
    busFreeAt_[channel] = data_start + burstCycles_;
    bank.freeAt = data_start + burstCycles_;
    result.readyCycle = data_start + burstCycles_;

    if (is_write) {
        ++writes;
    } else {
        ++reads;
        latencySum += result.readyCycle - now;
        queueWaitSum += start - now;
    }
    return result;
}

Cycle
Dram::idleHitLatency() const
{
    return casCycles_ + burstCycles_;
}

Cycle
Dram::idleConflictLatency() const
{
    return rpCycles_ + rcdCycles_ + casCycles_ + burstCycles_;
}

void
Dram::regStats(StatGroup *parent)
{
    statGroup_.addCounter("reads", &reads, "line reads");
    statGroup_.addCounter("writes", &writes, "line writebacks");
    statGroup_.addCounter("row_hits", &rowHits, "row buffer hits");
    statGroup_.addCounter("row_conflicts", &rowConflicts,
                          "row buffer conflicts");
    statGroup_.addCounter("latency_sum", &latencySum,
                          "total read latency (cycles)");
    statGroup_.addCounter("queue_wait_sum", &queueWaitSum,
                          "total pre-service wait (cycles)");
    if (parent)
        parent->addChild(&statGroup_);
}

void
Dram::reset()
{
    banks_.assign(banks_.size(), Bank{});
    busFreeAt_.assign(busFreeAt_.size(), 0);
    reads.reset();
    writes.reset();
    rowHits.reset();
    rowConflicts.reset();
}

} // namespace rab
