/**
 * @file
 * Unit tests: rename machinery, ROB, reservation station, store queue.
 */

#include <gtest/gtest.h>

#include "backend/lsq.hh"
#include "backend/rename.hh"
#include "backend/reservation_station.hh"
#include "backend/rob.hh"

namespace rab
{
namespace
{

DynUop
makeUop(SeqNum seq, Pc pc, ArchReg dest = kNoArchReg,
        ArchReg src1 = kNoArchReg, ArchReg src2 = kNoArchReg)
{
    DynUop u;
    u.seq = seq;
    u.pc = pc;
    u.sop.op = Opcode::kIntAlu;
    u.sop.dest = dest;
    u.sop.src1 = src1;
    u.sop.src2 = src2;
    return u;
}

// --------------------------------------------------------------------
// PhysRegFile / Rat
// --------------------------------------------------------------------

TEST(PhysRegFile, AllocWriteReadFree)
{
    PhysRegFile prf(64);
    EXPECT_EQ(prf.freeCount(), 64);
    const PhysReg r = prf.alloc();
    EXPECT_FALSE(prf.ready(r));
    prf.write(r, 99, false, false);
    EXPECT_TRUE(prf.ready(r));
    EXPECT_EQ(prf.value(r), 99u);
    prf.free(r);
    EXPECT_EQ(prf.freeCount(), 64);
}

TEST(PhysRegFile, PoisonAndProvenanceBits)
{
    PhysRegFile prf(64);
    const PhysReg r = prf.alloc();
    prf.write(r, 0, true, true);
    EXPECT_TRUE(prf.poisoned(r));
    EXPECT_TRUE(prf.offChip(r));
    prf.setPoisoned(r, false);
    EXPECT_FALSE(prf.poisoned(r));
}

TEST(PhysRegFile, DoubleFreePanics)
{
    PhysRegFile prf(64);
    const PhysReg r = prf.alloc();
    prf.free(r);
    EXPECT_DEATH(prf.free(r), "double free");
}

TEST(PhysRegFile, ExhaustionPanics)
{
    PhysRegFile prf(33);
    for (int i = 0; i < 33; ++i)
        prf.alloc();
    EXPECT_FALSE(prf.canAlloc());
    EXPECT_DEATH(prf.alloc(), "free list empty");
}

TEST(PhysRegFile, ResetAllReclaimsEverything)
{
    PhysRegFile prf(64);
    for (int i = 0; i < 10; ++i)
        prf.alloc();
    prf.resetAll();
    EXPECT_EQ(prf.freeCount(), 64);
}

TEST(Rat, MapAndSnapshot)
{
    Rat rat;
    rat.setMap(3, 17);
    EXPECT_EQ(rat.map(3), 17);
    const auto snapshot = rat.snapshot();
    rat.setMap(3, 20);
    rat.restore(snapshot);
    EXPECT_EQ(rat.map(3), 17);
}

// --------------------------------------------------------------------
// Rob
// --------------------------------------------------------------------

TEST(Rob, FifoOrder)
{
    Rob rob(4);
    rob.push(makeUop(1, 10));
    rob.push(makeUop(2, 11));
    EXPECT_EQ(rob.head().seq, 1u);
    rob.popHead();
    EXPECT_EQ(rob.head().seq, 2u);
    EXPECT_EQ(rob.size(), 1);
}

TEST(Rob, FullAndWraparound)
{
    Rob rob(3);
    for (SeqNum s = 1; s <= 3; ++s)
        rob.push(makeUop(s, s));
    EXPECT_TRUE(rob.full());
    rob.popHead();
    rob.push(makeUop(4, 4)); // wraps into the freed slot
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.head().seq, 2u);
    EXPECT_EQ(rob.slot(rob.tailSlot()).seq, 4u);
}

TEST(Rob, PopTailSquash)
{
    Rob rob(4);
    rob.push(makeUop(1, 10));
    const int slot2 = rob.push(makeUop(2, 11));
    rob.popTail();
    EXPECT_EQ(rob.size(), 1);
    EXPECT_FALSE(rob.validSlot(slot2, 2));
}

TEST(Rob, ValidSlotChecksSeq)
{
    Rob rob(4);
    const int slot = rob.push(makeUop(5, 10));
    EXPECT_TRUE(rob.validSlot(slot, 5));
    EXPECT_FALSE(rob.validSlot(slot, 6));
    rob.popHead();
    EXPECT_FALSE(rob.validSlot(slot, 5));
}

TEST(Rob, FindOldestByPc)
{
    Rob rob(8);
    rob.push(makeUop(1, 100)); // the blocking op itself
    rob.push(makeUop(2, 50));
    rob.push(makeUop(3, 100)); // oldest *younger* instance
    rob.push(makeUop(4, 100));
    const int slot = rob.findOldestByPc(100, /*after_seq=*/1);
    ASSERT_GE(slot, 0);
    EXPECT_EQ(rob.slot(slot).seq, 3u);
    EXPECT_EQ(rob.findOldestByPc(999, 1), -1);
}

TEST(Rob, FindProducerYoungestBeforeConsumer)
{
    Rob rob(8);
    rob.push(makeUop(1, 0, /*dest=*/5));
    rob.push(makeUop(2, 1, /*dest=*/5));
    rob.push(makeUop(3, 2, /*dest=*/5));
    const int slot = rob.findProducer(5, /*before_seq=*/3);
    ASSERT_GE(slot, 0);
    EXPECT_EQ(rob.slot(slot).seq, 2u);
    EXPECT_EQ(rob.findProducer(6, 3), -1);
}

TEST(Rob, LogicalToSlotAfterWrap)
{
    Rob rob(3);
    rob.push(makeUop(1, 1));
    rob.push(makeUop(2, 2));
    rob.popHead();
    rob.push(makeUop(3, 3));
    rob.push(makeUop(4, 4));
    EXPECT_EQ(rob.slot(rob.logicalToSlot(0)).seq, 2u);
    EXPECT_EQ(rob.slot(rob.logicalToSlot(2)).seq, 4u);
}

// --------------------------------------------------------------------
// ReservationStation
// --------------------------------------------------------------------

TEST(ReservationStation, SelectsOnlyReady)
{
    Rob rob(8);
    PhysRegFile prf(64);
    const PhysReg ready_reg = prf.alloc();
    prf.write(ready_reg, 1, false, false);
    const PhysReg pending_reg = prf.alloc(); // not ready

    DynUop a = makeUop(1, 0, 1, 2);
    a.psrc1 = ready_reg;
    DynUop b = makeUop(2, 1, 3, 4);
    b.psrc1 = pending_reg;
    const int slot_a = rob.push(std::move(a));
    const int slot_b = rob.push(std::move(b));

    ReservationStation rs(4);
    rs.insert(slot_a, 1, ready_reg, kNoPhysReg, prf);
    rs.insert(slot_b, 2, pending_reg, kNoPhysReg, prf);
    const auto selected = rs.selectReady(4);
    ASSERT_EQ(selected.size(), 1u);
    EXPECT_EQ(selected[0], slot_a);
    EXPECT_EQ(rs.size(), 1);
}

TEST(ReservationStation, WakeupOnWrite)
{
    Rob rob(8);
    PhysRegFile prf(64);
    const PhysReg src = prf.alloc(); // not ready

    DynUop a = makeUop(1, 0, 1, 2);
    a.psrc1 = src;
    const int slot = rob.push(std::move(a));

    ReservationStation rs(4);
    rs.insert(slot, 1, src, kNoPhysReg, prf);
    EXPECT_FALSE(rs.hasReady());
    EXPECT_FALSE(rs.anyReady(rob, prf));
    EXPECT_TRUE(rs.selectReady(4).empty());

    prf.write(src, 7, false, false);
    rs.notifyWritten(src);
    EXPECT_TRUE(rs.hasReady());
    EXPECT_TRUE(rs.anyReady(rob, prf));
    const auto selected = rs.selectReady(4);
    ASSERT_EQ(selected.size(), 1u);
    EXPECT_EQ(selected[0], slot);
    EXPECT_FALSE(rs.hasReady());
}

TEST(ReservationStation, WakeupBothSourcesSameRegister)
{
    // src1 == src2: the entry enlists twice on the same register but
    // must wake exactly once and stay selectable exactly once.
    Rob rob(8);
    PhysRegFile prf(64);
    const PhysReg src = prf.alloc(); // not ready

    DynUop a = makeUop(1, 0, 1, 2);
    a.psrc1 = src;
    a.psrc2 = src;
    const int slot = rob.push(std::move(a));

    ReservationStation rs(4);
    rs.insert(slot, 1, src, src, prf);
    EXPECT_FALSE(rs.hasReady());

    prf.write(src, 7, false, false);
    rs.notifyWritten(src);
    const auto selected = rs.selectReady(4);
    ASSERT_EQ(selected.size(), 1u);
    EXPECT_EQ(selected[0], slot);
    EXPECT_EQ(rs.size(), 0);
    EXPECT_FALSE(rs.hasReady());
}

TEST(ReservationStation, OldestFirstWithinWidth)
{
    Rob rob(8);
    PhysRegFile prf(64);
    ReservationStation rs(8);
    std::vector<int> slots;
    for (SeqNum s = 1; s <= 4; ++s) {
        slots.push_back(rob.push(makeUop(s, s)));
        rs.insert(slots.back(), s, kNoPhysReg, kNoPhysReg, prf);
    }
    const auto selected = rs.selectReady(2);
    ASSERT_EQ(selected.size(), 2u);
    EXPECT_EQ(rob.slot(selected[0]).seq, 1u);
    EXPECT_EQ(rob.slot(selected[1]).seq, 2u);
}

TEST(ReservationStation, SquashAfterRemovesYounger)
{
    Rob rob(8);
    PhysRegFile prf(64);
    ReservationStation rs(8);
    for (SeqNum s = 1; s <= 4; ++s)
        rs.insert(rob.push(makeUop(s, s)), s, kNoPhysReg, kNoPhysReg,
                  prf);
    rs.squashAfter(2);
    EXPECT_EQ(rs.size(), 2);
    // Squashed entries must also leave the ready list: only the two
    // surviving (source-less, hence ready) entries may issue.
    EXPECT_EQ(rs.selectReady(8).size(), 2u);
}

TEST(ReservationStation, StaleWakeupAfterSquashIsHarmless)
{
    // An entry squashed while waiting leaves a stale registration in
    // the register's wakeup list; a later write must not revive it or
    // corrupt the ready list.
    Rob rob(8);
    PhysRegFile prf(64);
    const PhysReg src = prf.alloc(); // not ready

    DynUop a = makeUop(5, 0, 1, 2);
    a.psrc1 = src;
    const int slot = rob.push(std::move(a));

    ReservationStation rs(4);
    rs.insert(slot, 5, src, kNoPhysReg, prf);
    rs.squashAfter(2); // removes seq 5
    EXPECT_EQ(rs.size(), 0);

    prf.write(src, 7, false, false);
    rs.notifyWritten(src);
    EXPECT_FALSE(rs.hasReady());
    EXPECT_TRUE(rs.selectReady(4).empty());
}

TEST(ReservationStation, FullInsertPanics)
{
    Rob rob(8);
    PhysRegFile prf(64);
    ReservationStation rs(1);
    rs.insert(rob.push(makeUop(1, 1)), 1, kNoPhysReg, kNoPhysReg, prf);
    const int slot = rob.push(makeUop(2, 2));
    EXPECT_DEATH(rs.insert(slot, 2, kNoPhysReg, kNoPhysReg, prf),
                 "full");
}

// --------------------------------------------------------------------
// StoreQueue
// --------------------------------------------------------------------

TEST(StoreQueue, ForwardsYoungestOlderStore)
{
    StoreQueue sq(8);
    sq.allocate(1, 0);
    sq.allocate(3, 1);
    sq.setAddress(1, 0x100, false);
    sq.setData(1, 11, false);
    sq.setAddress(3, 0x100, false);
    sq.setData(3, 33, false);
    const SqSearch hit = sq.searchForLoad(/*load_seq=*/5, 0x100);
    EXPECT_EQ(hit.kind, SqSearch::Kind::kForward);
    EXPECT_EQ(hit.data, 33u);
    // A load between the stores sees only the older one.
    const SqSearch mid = sq.searchForLoad(2, 0x100);
    EXPECT_EQ(mid.data, 11u);
}

TEST(StoreQueue, UnknownOlderAddressBlocks)
{
    StoreQueue sq(8);
    sq.allocate(1, 0); // address never computed
    const SqSearch r = sq.searchForLoad(2, 0x200);
    EXPECT_EQ(r.kind, SqSearch::Kind::kUnknownAddr);
    EXPECT_EQ(sq.unknownAddrStalls.value(), 1u);
}

TEST(StoreQueue, MatchWithoutDataIsNotReady)
{
    StoreQueue sq(8);
    sq.allocate(1, 0);
    sq.setAddress(1, 0x300, false);
    const SqSearch r = sq.searchForLoad(2, 0x300);
    EXPECT_EQ(r.kind, SqSearch::Kind::kNotReady);
}

TEST(StoreQueue, PoisonedAddressMatchesNothing)
{
    StoreQueue sq(8);
    sq.allocate(1, 0);
    sq.setAddress(1, 0, /*poisoned=*/true);
    sq.setData(1, 5, false);
    const SqSearch r = sq.searchForLoad(2, 0x0);
    EXPECT_EQ(r.kind, SqSearch::Kind::kNoMatch);
}

TEST(StoreQueue, WordGranularity)
{
    StoreQueue sq(8);
    sq.allocate(1, 0);
    sq.setAddress(1, 0x100, false);
    sq.setData(1, 9, false);
    EXPECT_EQ(sq.searchForLoad(2, 0x104).kind,
              SqSearch::Kind::kForward); // same 8-byte word
    EXPECT_EQ(sq.searchForLoad(2, 0x108).kind,
              SqSearch::Kind::kNoMatch);
}

TEST(StoreQueue, ReleaseInOrderAndSquash)
{
    StoreQueue sq(8);
    sq.allocate(1, 0);
    sq.allocate(2, 1);
    sq.allocate(3, 2);
    sq.squashAfter(2);
    EXPECT_EQ(sq.size(), 2);
    sq.release(1);
    sq.release(2);
    EXPECT_EQ(sq.size(), 0);
}

TEST(StoreQueue, ReleaseOutOfOrderPanics)
{
    StoreQueue sq(8);
    sq.allocate(1, 0);
    sq.allocate(2, 1);
    EXPECT_DEATH(sq.release(2), "out of order");
}

TEST(StoreQueue, FindStoreRobSlotForChainGen)
{
    StoreQueue sq(8);
    sq.allocate(1, 7);
    sq.setAddress(1, 0x400, false);
    EXPECT_EQ(sq.findStoreRobSlot(/*before_seq=*/2, 0x400), 7);
    EXPECT_EQ(sq.findStoreRobSlot(1, 0x400), -1); // not older
    EXPECT_EQ(sq.findStoreRobSlot(2, 0x500), -1);
}

} // namespace
} // namespace rab
