/**
 * @file
 * Unit tests: DDR3 timing model.
 */

#include <gtest/gtest.h>

#include "memory/dram.hh"

namespace rab
{
namespace
{

DramConfig
defaultConfig()
{
    return DramConfig{};
}

TEST(Dram, RowHitFasterThanConflict)
{
    Dram dram(defaultConfig());
    EXPECT_LT(dram.idleHitLatency(), dram.idleConflictLatency());

    // First access opens the row (activate), second hits it.
    const Addr a = 0x100000;
    const DramResult first = dram.access(a, 0, false);
    EXPECT_FALSE(first.rowHit);
    const Cycle t1 = first.readyCycle;
    const DramResult second = dram.access(a + 64 * dram.config().channels,
                                          t1, false);
    EXPECT_TRUE(second.rowHit);
    EXPECT_LT(second.readyCycle - t1, t1 - 0);
}

TEST(Dram, SameBankDifferentRowConflicts)
{
    Dram dram(defaultConfig());
    const Addr a = 0x100000;
    // Same channel + bank, next row: channels * banks * rowBytes apart.
    const Addr b = a
        + static_cast<Addr>(dram.config().rowBytes)
            * dram.config().banksPerChannel * dram.config().channels;
    ASSERT_EQ(dram.channelOf(a), dram.channelOf(b));
    ASSERT_EQ(dram.bankOf(a), dram.bankOf(b));
    ASSERT_NE(dram.rowOf(a), dram.rowOf(b));

    dram.access(a, 0, false);
    const DramResult r = dram.access(b, 0, false);
    EXPECT_FALSE(r.rowHit);
    // The second access waits for the bank: later than an idle conflict.
    EXPECT_GT(r.readyCycle, dram.idleConflictLatency());
}

TEST(Dram, DifferentBanksProceedInParallel)
{
    Dram dram(defaultConfig());
    const Addr a = 0x100000;
    const Addr b = a + dram.config().rowBytes * dram.config().channels;
    ASSERT_EQ(dram.channelOf(a), dram.channelOf(b));
    ASSERT_NE(dram.bankOf(a), dram.bankOf(b));

    const Cycle t_a = dram.access(a, 0, false).readyCycle;
    const Cycle t_b = dram.access(b, 0, false).readyCycle;
    // Bank-parallel: only the shared data bus separates them.
    EXPECT_LT(t_b, t_a + t_a / 2);
}

TEST(Dram, ConsecutiveLinesAlternateChannels)
{
    Dram dram(defaultConfig());
    EXPECT_NE(dram.channelOf(0), dram.channelOf(64));
    EXPECT_EQ(dram.channelOf(0), dram.channelOf(128));
}

TEST(Dram, StatsCountReadsAndWrites)
{
    Dram dram(defaultConfig());
    dram.access(0, 0, false);
    dram.access(64, 0, true);
    dram.access(128, 0, false);
    EXPECT_EQ(dram.reads.value(), 2u);
    EXPECT_EQ(dram.writes.value(), 1u);
    EXPECT_EQ(dram.rowHits.value() + dram.rowConflicts.value(), 3u);
}

TEST(Dram, LatencyAccounting)
{
    Dram dram(defaultConfig());
    const DramResult r = dram.access(0x4000, 100, false);
    EXPECT_EQ(dram.latencySum.value(), r.readyCycle - 100);
}

TEST(Dram, ResetClearsBankState)
{
    Dram dram(defaultConfig());
    dram.access(0x100000, 0, false);
    dram.reset();
    EXPECT_EQ(dram.reads.value(), 0u);
    const DramResult r = dram.access(0x100000, 0, false);
    EXPECT_FALSE(r.rowHit); // rows closed again
}

TEST(Dram, BankOccupancySerializesBursts)
{
    Dram dram(defaultConfig());
    const Addr a = 0x100000;
    const Addr row_stride = static_cast<Addr>(dram.config().rowBytes)
        * dram.config().banksPerChannel * dram.config().channels;
    // Ten conflicting accesses to one bank arriving together must
    // serialise: each occupies the bank for roughly tRC.
    Cycle last = 0;
    for (int i = 0; i < 10; ++i)
        last = dram.access(a + i * row_stride, 0, false).readyCycle;
    EXPECT_GT(last, 9 * dram.idleConflictLatency() / 2);
}

} // namespace
} // namespace rab
