/**
 * @file
 * Unit tests: DDR3 timing model.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "memory/dram.hh"

namespace rab
{
namespace
{

DramConfig
defaultConfig()
{
    return DramConfig{};
}

TEST(Dram, RowHitFasterThanConflict)
{
    Dram dram(defaultConfig());
    EXPECT_LT(dram.idleHitLatency(), dram.idleConflictLatency());

    // First access opens the row (activate), second hits it.
    const Addr a = 0x100000;
    const DramResult first = dram.access(a, 0, false);
    EXPECT_FALSE(first.rowHit);
    const Cycle t1 = first.readyCycle;
    const DramResult second = dram.access(a + 64 * dram.config().channels,
                                          t1, false);
    EXPECT_TRUE(second.rowHit);
    EXPECT_LT(second.readyCycle - t1, t1 - 0);
}

TEST(Dram, SameBankDifferentRowConflicts)
{
    Dram dram(defaultConfig());
    const Addr a = 0x100000;
    // Same channel + bank, next row: channels * banks * rowBytes apart.
    const Addr b = a
        + static_cast<Addr>(dram.config().rowBytes)
            * dram.config().banksPerChannel * dram.config().channels;
    ASSERT_EQ(dram.channelOf(a), dram.channelOf(b));
    ASSERT_EQ(dram.bankOf(a), dram.bankOf(b));
    ASSERT_NE(dram.rowOf(a), dram.rowOf(b));

    dram.access(a, 0, false);
    const DramResult r = dram.access(b, 0, false);
    EXPECT_FALSE(r.rowHit);
    // The second access waits for the bank: later than an idle conflict.
    EXPECT_GT(r.readyCycle, dram.idleConflictLatency());
}

TEST(Dram, DifferentBanksProceedInParallel)
{
    Dram dram(defaultConfig());
    const Addr a = 0x100000;
    const Addr b = a + dram.config().rowBytes * dram.config().channels;
    ASSERT_EQ(dram.channelOf(a), dram.channelOf(b));
    ASSERT_NE(dram.bankOf(a), dram.bankOf(b));

    const Cycle t_a = dram.access(a, 0, false).readyCycle;
    const Cycle t_b = dram.access(b, 0, false).readyCycle;
    // Bank-parallel: only the shared data bus separates them.
    EXPECT_LT(t_b, t_a + t_a / 2);
}

TEST(Dram, ConsecutiveLinesAlternateChannels)
{
    Dram dram(defaultConfig());
    EXPECT_NE(dram.channelOf(0), dram.channelOf(64));
    EXPECT_EQ(dram.channelOf(0), dram.channelOf(128));
}

TEST(Dram, StatsCountReadsAndWrites)
{
    Dram dram(defaultConfig());
    dram.access(0, 0, false);
    dram.access(64, 0, true);
    dram.access(128, 0, false);
    EXPECT_EQ(dram.reads.value(), 2u);
    EXPECT_EQ(dram.writes.value(), 1u);
    EXPECT_EQ(dram.rowHits.value() + dram.rowConflicts.value(), 3u);
}

TEST(Dram, LatencyAccounting)
{
    Dram dram(defaultConfig());
    const DramResult r = dram.access(0x4000, 100, false);
    EXPECT_EQ(dram.latencySum.value(), r.readyCycle - 100);
}

TEST(Dram, ResetClearsBankState)
{
    Dram dram(defaultConfig());
    dram.access(0x100000, 0, false);
    dram.reset();
    EXPECT_EQ(dram.reads.value(), 0u);
    const DramResult r = dram.access(0x100000, 0, false);
    EXPECT_FALSE(r.rowHit); // rows closed again
}

TEST(Dram, BankBoundaryWalkPreservesOpenRows)
{
    // Walk one channel line by line across a row-block boundary: the
    // crossing activates the *next* bank (rows interleave across banks
    // within a channel) and must leave the first bank's open row
    // untouched, so returning to it is a CAS-only row hit.
    Dram dram(defaultConfig());
    const DramConfig &cfg = dram.config();
    const Addr line_step =
        static_cast<Addr>(cfg.lineBytes) * cfg.channels; // same channel
    const Addr lines_per_row = cfg.rowBytes / cfg.lineBytes;

    const Addr first = 0;                              // bank 0, row 0
    const Addr last = (lines_per_row - 1) * line_step; // bank 0, row 0
    const Addr crossed = lines_per_row * line_step;    // bank 1, row 0
    ASSERT_EQ(dram.channelOf(first), dram.channelOf(crossed));
    ASSERT_EQ(dram.bankOf(first), dram.bankOf(last));
    ASSERT_EQ(dram.rowOf(first), dram.rowOf(last));
    ASSERT_EQ(dram.bankOf(crossed), dram.bankOf(first) + 1);
    ASSERT_EQ(dram.rowOf(crossed), dram.rowOf(first));

    // Space the accesses far apart so bank/bus occupancy can't mask a
    // row-buffer bug as extra latency.
    Cycle now = 0;
    const Cycle gap = 100 * dram.idleConflictLatency();
    EXPECT_FALSE(dram.access(first, now, false).rowHit); // activate b0
    now += gap;
    EXPECT_TRUE(dram.access(last, now, false).rowHit); // still open
    now += gap;
    EXPECT_FALSE(dram.access(crossed, now, false).rowHit); // activate b1
    now += gap;
    const DramResult back = dram.access(first, now, false);
    EXPECT_TRUE(back.rowHit); // bank 0's row survived the crossing
    EXPECT_EQ(back.readyCycle - now, dram.idleHitLatency());
}

TEST(Dram, AddressSlicingIsBijective)
{
    // (channel, bank, row) must decompose the line address uniquely:
    // one line per row block, every channel, several row wraps.
    Dram dram(defaultConfig());
    const DramConfig &cfg = dram.config();
    const Addr lines_per_row = cfg.rowBytes / cfg.lineBytes;
    const int blocks = cfg.banksPerChannel * 3; // 3 row wraps per bank

    std::set<std::tuple<int, int, std::uint64_t>> seen;
    for (int c = 0; c < cfg.channels; ++c) {
        for (int k = 0; k < blocks; ++k) {
            const Addr addr =
                (static_cast<Addr>(k) * lines_per_row * cfg.channels + c)
                * cfg.lineBytes;
            EXPECT_EQ(dram.channelOf(addr), c);
            seen.emplace(dram.channelOf(addr), dram.bankOf(addr),
                         dram.rowOf(addr));
        }
    }
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(cfg.channels) * blocks);
}

TEST(Dram, BankOccupancySerializesBursts)
{
    Dram dram(defaultConfig());
    const Addr a = 0x100000;
    const Addr row_stride = static_cast<Addr>(dram.config().rowBytes)
        * dram.config().banksPerChannel * dram.config().channels;
    // Ten conflicting accesses to one bank arriving together must
    // serialise: each occupies the bank for roughly tRC.
    Cycle last = 0;
    for (int i = 0; i < 10; ++i)
        last = dram.access(a + i * row_stride, 0, false).readyCycle;
    EXPECT_GT(last, 9 * dram.idleConflictLatency() / 2);
}

} // namespace
} // namespace rab
