/**
 * @file
 * Unit tests: global-history-buffer (PC/DC) prefetcher.
 */

#include <gtest/gtest.h>

#include "core/simulation.hh"
#include "memory/ghb_prefetcher.hh"
#include "workloads/suite.hh"

namespace rab
{
namespace
{

GhbPrefetcher
makePf()
{
    return GhbPrefetcher(GhbPrefetcherConfig{}, 64);
}

TEST(GhbPrefetcher, CorrelatesConstantDelta)
{
    auto pf = makePf();
    std::vector<Addr> out;
    for (int i = 0; i < 4; ++i)
        pf.observe(7, static_cast<Addr>(i) * 9 * 64, out);
    EXPECT_FALSE(out.empty());
    EXPECT_GT(pf.correlations.value(), 0u);
    // First correlation fires at the third observation (line 18)
    // and extrapolates one delta ahead.
    EXPECT_EQ(out.front() / 64, 27u);
}

TEST(GhbPrefetcher, NeedsThreeObservationsToCorrelate)
{
    auto pf = makePf();
    std::vector<Addr> out;
    pf.observe(7, 0, out);
    pf.observe(7, 9 * 64, out);
    EXPECT_TRUE(out.empty()); // only one delta known
    pf.observe(7, 18 * 64, out);
    EXPECT_FALSE(out.empty());
}

TEST(GhbPrefetcher, NegativeDeltas)
{
    auto pf = makePf();
    std::vector<Addr> out;
    for (int i = 0; i < 4; ++i)
        pf.observe(3, static_cast<Addr>(4000 - i * 5) * 64, out);
    ASSERT_FALSE(out.empty());
    EXPECT_LT(out.front() / 64, 4000u - 10u);
}

TEST(GhbPrefetcher, IrregularDeltasStaySilent)
{
    auto pf = makePf();
    std::vector<Addr> out;
    Addr a = 7;
    for (int i = 0; i < 40; ++i) {
        a = a * 6364136223846793005ull + 1442695040888963407ull;
        pf.observe(5, (a % (1u << 28)) & ~63ull, out);
    }
    EXPECT_TRUE(out.empty());
}

TEST(GhbPrefetcher, HistoryWraparoundSafe)
{
    GhbPrefetcherConfig cfg;
    cfg.historyEntries = 8; // force constant wraparound
    GhbPrefetcher pf(cfg, 64);
    std::vector<Addr> out;
    // Interleave many PCs so links constantly dangle into overwritten
    // slots; must never crash and still correlate the live pattern.
    for (int i = 0; i < 100; ++i) {
        for (Pc pc = 1; pc <= 5; ++pc) {
            pf.observe(pc, static_cast<Addr>(i) * (pc + 1) * 64, out);
        }
    }
    EXPECT_GT(pf.issued.value(), 0u);
}

TEST(GhbPrefetcher, EndToEndOnLargeStrideWorkload)
{
    const auto run = [&](PrefetcherKind kind, bool enabled) {
        SimConfig config = makeConfig(RunaheadConfig::kBaseline, enabled);
        config.mem.prefetcherKind = kind;
        config.instructions = 20'000;
        config.warmupInstructions = 5'000;
        Simulation sim(config, buildSuiteWorkload("GemsFDTD"));
        return sim.run().ipc;
    };
    const double base = run(PrefetcherKind::kGhb, false);
    const double ghb = run(PrefetcherKind::kGhb, true);
    EXPECT_GT(ghb, base * 1.05);
}

} // namespace
} // namespace rab
