/**
 * @file
 * Unit tests: hybrid branch predictor, BTB, RAS.
 */

#include <gtest/gtest.h>

#include "frontend/branch_predictor.hh"

namespace rab
{
namespace
{

BranchPredictor
makeBp()
{
    return BranchPredictor(BranchPredictorConfig{});
}

TEST(BranchPredictor, ColdTakenBranchPredictedNotTakenWithoutBtb)
{
    auto bp = makeBp();
    const BranchPrediction pred = bp.predictBranch(10);
    EXPECT_FALSE(pred.btbHit);
    EXPECT_FALSE(pred.taken); // no target available
}

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    auto bp = makeBp();
    for (int i = 0; i < 8; ++i) {
        const BranchPrediction pred = bp.predictBranch(10);
        bp.update(10, true, 42, pred.taken);
    }
    const BranchPrediction pred = bp.predictBranch(10);
    EXPECT_TRUE(pred.taken);
    EXPECT_TRUE(pred.btbHit);
    EXPECT_EQ(pred.target, 42u);
}

TEST(BranchPredictor, LearnsAlwaysNotTaken)
{
    auto bp = makeBp();
    for (int i = 0; i < 8; ++i)
        bp.update(10, false, 11, 0);
    EXPECT_FALSE(bp.predictBranch(10).taken);
}

TEST(BranchPredictor, GshareLearnsAlternatingPattern)
{
    auto bp = makeBp();
    // Train T,N,T,N... with correct history updates; gshare + chooser
    // should converge to ~perfect prediction.
    bool taken = false;
    int correct_tail = 0;
    for (int i = 0; i < 400; ++i) {
        taken = !taken;
        const std::uint64_t hist = bp.history();
        const BranchPrediction pred = bp.predictBranch(20);
        if (pred.taken != taken)
            bp.setHistory((hist << 1) | (taken ? 1 : 0));
        bp.update(20, taken, 99, hist);
        if (i >= 300)
            correct_tail += (pred.taken == taken) ? 1 : 0;
    }
    EXPECT_GE(correct_tail, 95);
}

TEST(BranchPredictor, HistorySnapshotRestore)
{
    auto bp = makeBp();
    bp.setHistory(0b101);
    const std::uint64_t snapshot = bp.history();
    bp.predictBranch(3); // speculative update shifts the history
    EXPECT_NE(bp.history(), snapshot);
    bp.setHistory(snapshot);
    EXPECT_EQ(bp.history(), snapshot);
}

TEST(BranchPredictor, JumpUsesBtb)
{
    auto bp = makeBp();
    EXPECT_FALSE(bp.predictJump(30).btbHit);
    bp.update(30, true, 77, 0);
    const BranchPrediction pred = bp.predictJump(30);
    EXPECT_TRUE(pred.btbHit);
    EXPECT_EQ(pred.target, 77u);
}

TEST(BranchPredictor, RasPushPopLifo)
{
    auto bp = makeBp();
    bp.rasPush(100);
    bp.rasPush(200);
    EXPECT_EQ(bp.rasPop(), 200u);
    EXPECT_EQ(bp.rasPop(), 100u);
    EXPECT_EQ(bp.rasPop(), 0u); // empty
}

TEST(BranchPredictor, RasSnapshotRestore)
{
    auto bp = makeBp();
    bp.rasPush(1);
    bp.rasPush(2);
    const auto snapshot = bp.rasSnapshot();
    bp.rasPop();
    bp.rasRestore(snapshot);
    EXPECT_EQ(bp.rasPop(), 2u);
}

TEST(BranchPredictor, RasBounded)
{
    BranchPredictorConfig cfg;
    cfg.rasEntries = 4;
    BranchPredictor bp(cfg);
    for (Pc i = 1; i <= 10; ++i)
        bp.rasPush(i);
    EXPECT_EQ(bp.rasSnapshot().size(), 4u);
    EXPECT_EQ(bp.rasPop(), 10u);
}

TEST(BranchPredictor, BadConfigFatal)
{
    BranchPredictorConfig cfg;
    cfg.bimodalEntries = 1000; // not a power of two
    EXPECT_DEATH(BranchPredictor bp(cfg), "power of two");
}

} // namespace
} // namespace rab
