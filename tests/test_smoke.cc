/**
 * @file
 * End-to-end smoke tests: build tiny programs, run the full simulator,
 * and check architectural results and basic liveness.
 */

#include <gtest/gtest.h>

#include "core/simulation.hh"
#include "isa/program.hh"
#include "workloads/suite.hh"

namespace rab
{
namespace
{

Program
countingLoop()
{
    ProgramBuilder b("count");
    b.initReg(1, 0);
    auto loop = b.label();
    b.addi(1, 1, 1);
    b.mix(2, 1, 1, 7);
    b.jump(loop);
    return b.build();
}

TEST(Smoke, CountingLoopRetires)
{
    SimConfig config = makeConfig(RunaheadConfig::kBaseline, false);
    config.warmupInstructions = 0;
    config.instructions = 3000;
    Simulation sim(config, countingLoop());
    const SimResult result = sim.run();
    EXPECT_GE(result.instructions, 3000u);
    EXPECT_GT(result.ipc, 0.5);
    // r1 counts retired loop iterations: 3 uops per iteration. The
    // committed value must be consistent with the retired uop count.
    const std::uint64_t r1 = sim.core().archReg(1);
    EXPECT_GE(r1 * 3, result.instructions - 3);
}

TEST(Smoke, EveryWorkloadBuildsAndRuns)
{
    for (const WorkloadSpec &spec : spec06Suite()) {
        SimConfig config = makeConfig(RunaheadConfig::kBaseline, false);
        config.warmupInstructions = 0;
        config.instructions = 2000;
        Simulation sim(config, buildWorkload(spec.params));
        const SimResult result = sim.run();
        EXPECT_GE(result.instructions, 2000u) << spec.params.name;
        EXPECT_GT(result.ipc, 0.0) << spec.params.name;
    }
}

TEST(Smoke, RunaheadConfigsRun)
{
    for (const RunaheadConfig rc :
         {RunaheadConfig::kRunahead, RunaheadConfig::kRunaheadBuffer,
          RunaheadConfig::kRunaheadBufferCC, RunaheadConfig::kHybrid}) {
        const SimResult result =
            simulateWorkload("mcf", rc, false, 5000, 1000);
        EXPECT_GE(result.instructions, 5000u)
            << runaheadConfigName(rc);
    }
}

} // namespace
} // namespace rab
